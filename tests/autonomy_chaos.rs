//! The unattended autonomy drill: poisoning → guard trip → automatic
//! rollback → retrain → shadow → canary → recovery, with **zero** manual
//! `publish`/`rollback` calls after the bootstrap install, and the whole
//! cycle byte-identical under one seed.
//!
//! This is the acceptance test for the closed loop: the paper's claim
//! (Zhu et al., SIGMOD 2023, §3) is that learned components are safe to
//! operate *because* detection, mitigation, and recovery run without a
//! human in the loop. Here the human is the test harness, and it only
//! turns the simulated clock.

use autonomous_data_services::core::feedback::LoopConfig;
use autonomous_data_services::faultsim::{ModelFaults, PoisonProfile};
use autonomous_data_services::obs::{DeploymentKind, Obs, Trace};
use autonomous_data_services::serve::{
    AutonomyAction, AutonomyConfig, AutonomyController, CanaryConfig, FnModel, Gateway,
    GatewayConfig, PoisonScope, Retrainer, ServableModel, SloPolicy,
};
use std::sync::Arc;

const DRILL_SEEDS: [u64; 3] = [7, 21, 42];

fn drill_config() -> AutonomyConfig {
    AutonomyConfig {
        monitor: LoopConfig {
            window: 20,
            retrain_factor: 1.5,
            rollback_factor: 8.0,
        },
        canary: CanaryConfig {
            traffic_pct: 30,
            shadow_first: true,
            min_decisions: 10,
            promote_streak: 2,
            demote_streak: 2,
            promote_error_factor: 1.2,
            demote_error_factor: 2.0,
            restage_backoff_ticks: 16.0,
            max_restage_backoff_ticks: 128.0,
        },
        slo: SloPolicy::default(),
        guarded_streak: 4,
        breaker_open_streak: 10,
        retrain_cooldown_ticks: 8.0,
        min_retrain_observations: 20,
    }
}

fn scalar_retrainer() -> Retrainer {
    Box::new(|history: &[(Vec<f64>, f64)]| {
        let (num, den) = history
            .iter()
            .fold((0.0, 0.0), |(n, d), (f, y)| (n + f[0] * y, d + f[0] * f[0]));
        let a = num / den.max(1e-12);
        Some((
            Arc::new(FnModel(move |f: &[f64]| a * f[0])) as Arc<dyn ServableModel>,
            0.01,
        ))
    })
}

struct DrillOutcome {
    trace: Trace,
    actions: Vec<AutonomyAction>,
    final_version: u64,
    final_error: f64,
}

/// Runs the full drill for one seed. The driver only predicts, reports
/// outcomes, and injects faults — it never deploys anything itself.
fn run_drill(seed: u64) -> DrillOutcome {
    let obs = Obs::recording();
    let mut config = GatewayConfig::standard();
    config.cache_capacity = 0;
    config.breaker.guard_factor = 2.0;
    config.breaker.failure_threshold = 4;
    config.breaker.cooldown_ticks = 8.0;
    config.breaker.backoff_factor = 2.0;
    config.breaker.max_cooldown_ticks = 64.0;
    let gateway = Gateway::with_obs(config, obs.clone());
    let handle = gateway.register("card/drill", |f: &[f64]| f[0]);
    let mut ctl = AutonomyController::new(gateway.clone(), obs.clone());
    ctl.supervise(handle, drill_config(), scalar_retrainer());
    ctl.install(handle, Arc::new(FnModel(|f: &[f64]| 1.05 * f[0])), 0.2, 0.0)
        .unwrap();

    let mut actions = Vec::new();
    let mut promoted_version = None;
    let mut poisoned = false;
    let world = |f: &[f64]| 1.3 * f[0]; // drifted world, phase A onward
    for t in 0..2000u64 {
        let sim_time = t as f64;
        let features = [1.0 + (t % 5) as f64];
        let p = gateway.predict(handle, &features, sim_time).unwrap();
        let actual = world(&features);
        let step = ctl
            .observe(handle, &features, &p, actual, sim_time)
            .unwrap();
        for a in &step {
            if let AutonomyAction::Promoted { version } = a {
                if promoted_version.is_none() {
                    promoted_version = Some(*version);
                }
            }
        }
        actions.extend(step);
        // Phase B trigger: the moment the first candidate is promoted, its
        // artifact "corrupts" — version-scoped poison plus flaky serving.
        if !poisoned {
            if let Some(v) = promoted_version {
                gateway
                    .inject_faults_at(
                        handle,
                        ModelFaults::with_profile(seed, 0.05, 0.05, 4.0, PoisonProfile::Constant),
                        sim_time,
                    )
                    .unwrap();
                gateway
                    .set_poison_scope_at(handle, PoisonScope::Version(v), sim_time)
                    .unwrap();
                poisoned = true;
            }
        }
    }
    let final_version = gateway.current_version(handle).unwrap().unwrap();
    let p = gateway.predict(handle, &[3.0], 5000.0).unwrap();
    let final_error = (p.value - world(&[3.0])).abs();
    DrillOutcome {
        trace: obs.snapshot(),
        actions,
        final_version,
        final_error,
    }
}

#[test]
fn unattended_cycle_recovers_from_poisoned_promotion() {
    let out = run_drill(7);
    // The loop promoted a retrained candidate (phase A: drift recovery).
    let first_promote = out
        .actions
        .iter()
        .position(|a| matches!(a, AutonomyAction::Promoted { .. }))
        .expect("drift must end in a promotion");
    // The poisoned promotion was rolled back automatically (phase B).
    let rollback = out.actions[first_promote..]
        .iter()
        .find_map(|a| match a {
            AutonomyAction::RolledBack { version, cause } => Some((*version, cause.clone())),
            _ => None,
        })
        .expect("poisoning must trigger an automatic rollback");
    assert!(
        rollback.1 == "guard_trip_streak"
            || rollback.1 == "breaker_open_streak"
            || rollback.1 == "monitor_rollback",
        "rollback cause must be a loop trigger, got {}",
        rollback.1
    );
    // And the loop then retrained *again* and re-promoted: the final
    // serving version postdates the rollback and tracks the drifted world.
    let promotions = out
        .actions
        .iter()
        .filter(|a| matches!(a, AutonomyAction::Promoted { .. }))
        .count();
    assert!(
        promotions >= 2,
        "recovery needs a second promotion: {:?}",
        out.actions
    );
    assert!(
        out.final_version > rollback.0,
        "final version {} must postdate the rollback landing {}",
        out.final_version,
        rollback.0
    );
    assert!(
        out.final_error < 0.2,
        "recovered serving error {} too high",
        out.final_error
    );
    // Zero manual deployments: every deployment record names a loop cause.
    let deployments = &out.trace.deployments;
    assert!(!deployments.is_empty());
    assert_eq!(deployments[0].cause, "bootstrap");
    assert!(
        deployments.iter().all(|d| d.cause != "manual"),
        "no manual publish/rollback anywhere in the drill"
    );
    // The full lifecycle shows up as typed records.
    for kind in [
        DeploymentKind::Publish,
        DeploymentKind::ShadowStart,
        DeploymentKind::CanaryStart,
        DeploymentKind::Promote,
        DeploymentKind::Rollback,
    ] {
        assert!(
            deployments.iter().any(|d| d.kind == kind),
            "missing {kind:?} in {deployments:?}"
        );
    }
}

#[test]
fn drill_replays_byte_identical_per_seed() {
    for seed in DRILL_SEEDS {
        let a = run_drill(seed);
        let b = run_drill(seed);
        let ja = serde_json::to_string(&a.trace).unwrap();
        let jb = serde_json::to_string(&b.trace).unwrap();
        assert_eq!(ja, jb, "seed {seed} must replay byte-identically");
        assert_eq!(a.actions, b.actions);
        assert_eq!(a.final_version, b.final_version);
    }
}

#[test]
fn drill_seeds_diverge() {
    let a = serde_json::to_string(&run_drill(DRILL_SEEDS[0]).trace).unwrap();
    let b = serde_json::to_string(&run_drill(DRILL_SEEDS[1]).trace).unwrap();
    assert_ne!(a, b, "different fault seeds must produce different traces");
}

/// Hysteresis: a candidate whose artifact flaps between healthy and
/// poisoned can never assemble `promote_streak` consecutive healthy
/// windows, so it never promotes — the serving version stays put.
#[test]
fn flapping_candidate_never_promotes() {
    let obs = Obs::recording();
    let mut config = GatewayConfig::standard();
    config.cache_capacity = 0;
    let gateway = Gateway::with_obs(config, obs.clone());
    let handle = gateway.register("card/flappy", |f: &[f64]| f[0]);
    let mut ctl = AutonomyController::new(gateway.clone(), obs.clone());
    let mut cfg = drill_config();
    cfg.canary.min_decisions = 10;
    cfg.canary.promote_streak = 2;
    ctl.supervise(handle, cfg, scalar_retrainer());
    ctl.install(handle, Arc::new(FnModel(|f: &[f64]| 1.05 * f[0])), 0.2, 0.0)
        .unwrap();
    let mut staged_version = None;
    let mut actions = Vec::new();
    for t in 0..1500u64 {
        let sim_time = t as f64;
        let features = [1.0 + (t % 5) as f64];
        let p = gateway.predict(handle, &features, sim_time).unwrap();
        let actual = 1.3 * features[0];
        let step = ctl
            .observe(handle, &features, &p, actual, sim_time)
            .unwrap();
        for a in &step {
            if let AutonomyAction::CandidateStaged { version, .. } = a {
                if staged_version.is_none() {
                    staged_version = Some(*version);
                    // The candidate's artifact flaps: 10 healthy calls, 10
                    // poisoned calls, aligned with the evaluation window.
                    gateway
                        .inject_faults(
                            handle,
                            ModelFaults::with_profile(
                                9,
                                0.0,
                                0.0,
                                5.0,
                                PoisonProfile::Flappy { period_calls: 10 },
                            ),
                        )
                        .unwrap();
                    gateway
                        .set_poison_scope(handle, PoisonScope::Version(*version))
                        .unwrap();
                }
            }
        }
        actions.extend(step);
    }
    assert!(staged_version.is_some(), "drift must stage a candidate");
    assert!(
        !actions
            .iter()
            .any(|a| matches!(a, AutonomyAction::Promoted { .. })),
        "a flapping candidate must never promote: {actions:?}"
    );
    assert_eq!(
        gateway.current_version(handle).unwrap(),
        Some(1),
        "serving version must not move"
    );
    assert!(
        !obs.snapshot()
            .deployments
            .iter()
            .any(|d| d.kind == DeploymentKind::Promote),
        "no promote record may exist"
    );
}
