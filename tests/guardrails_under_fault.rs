//! Guardrail behaviour at the edges, under faulted inputs (ISSUE 2
//! satellite): `RegressionGuard`/`CostGuard` boundary and degenerate
//! baselines, and `FairnessCheck::flag_groups` on empty, single-group and
//! all-flagged batches.

use autonomous_data_services::core::guardrails::{
    CostGuard, Decision, FairnessCheck, Guardrail, GuardrailSet, RegressionGuard, Verdict,
};
use autonomous_data_services::faultsim::{FaultConfig, ModelFaults};
use autonomous_data_services::obs::{digest_f64, Obs, Provenance};

fn decision(perf: f64, cost: f64, group: u32) -> Decision {
    Decision {
        predicted_perf: perf,
        baseline_perf: 100.0,
        predicted_cost: cost,
        baseline_cost: 10.0,
        group,
    }
}

#[test]
fn regression_guard_boundary_is_inclusive() {
    let g = RegressionGuard { tolerance: 0.05 };
    // Exactly at tolerance: allowed (strict > comparison).
    assert_eq!(g.check(&decision(105.0, 10.0, 0)), Verdict::Allow);
    assert!(matches!(
        g.check(&decision(105.0 + 1e-9, 10.0, 0)),
        Verdict::Block(_)
    ));
}

#[test]
fn guards_ignore_degenerate_baselines() {
    // A zero or negative baseline (e.g. a telemetry gap zeroed the
    // measurement) must not divide-by-zero or spuriously block.
    let reg = RegressionGuard { tolerance: 0.05 };
    let cost = CostGuard { tolerance: 0.10 };
    let zero_baseline = Decision {
        predicted_perf: 50.0,
        baseline_perf: 0.0,
        predicted_cost: 50.0,
        baseline_cost: 0.0,
        group: 0,
    };
    assert_eq!(reg.check(&zero_baseline), Verdict::Allow);
    assert_eq!(cost.check(&zero_baseline), Verdict::Allow);
    let negative = Decision {
        baseline_perf: -1.0,
        baseline_cost: -1.0,
        ..zero_baseline
    };
    assert_eq!(reg.check(&negative), Verdict::Allow);
    assert_eq!(cost.check(&negative), Verdict::Allow);
}

#[test]
fn cost_guard_blocks_poison_scaled_costs() {
    let guards = GuardrailSet::standard();
    let faults = ModelFaults::new(1, 0.0, 0.0, FaultConfig::standard().poison_factor);
    // Honest cost estimate passes; the poisoned one trips the cost guard
    // (perf is kept clean so the *cost* guard must be the one that fires).
    let honest = decision(100.0, 10.0, 0);
    assert_eq!(guards.check(&honest), Verdict::Allow);
    let poisoned = Decision {
        predicted_cost: faults.poisoned(honest.predicted_cost),
        ..honest
    };
    match guards.check(&poisoned) {
        Verdict::Block(reason) => assert!(reason.contains("cost"), "{reason}"),
        Verdict::Allow => panic!("poison-inflated cost slipped through"),
    }
}

/// ISSUE 3 acceptance: replaying the scenarios above through
/// `check_recorded` makes the flight recorder reproduce *every* veto —
/// with the vetoing model's id + version, the predicted performance and the
/// observed baseline it was judged against — while allowed decisions are
/// recorded unvetoed.
#[test]
fn flight_recorder_reproduces_every_guardrail_veto() {
    let obs = Obs::recording();
    let guards = GuardrailSet::standard().with_obs(obs.clone());
    let faults = ModelFaults::new(1, 0.0, 0.0, FaultConfig::standard().poison_factor);

    // The same decision mix the unrecorded tests exercise: boundary allows,
    // degenerate baselines, honest estimates and poison-scaled ones.
    let honest = decision(100.0, 10.0, 0);
    let poisoned_cost = Decision {
        predicted_cost: faults.poisoned(honest.predicted_cost),
        ..honest
    };
    let regressed_perf = decision(faults.poisoned(100.0), 10.0, 0);
    let zero_baseline = Decision {
        predicted_perf: 50.0,
        baseline_perf: 0.0,
        predicted_cost: 50.0,
        baseline_cost: 0.0,
        group: 0,
    };
    let cases = [
        ("honest", &honest),
        ("poisoned-cost", &poisoned_cost),
        ("regressed-perf", &regressed_perf),
        ("zero-baseline", &zero_baseline),
    ];

    let mut expected_vetoes = Vec::new();
    for (version, (name, d)) in cases.iter().enumerate() {
        let provenance = Provenance::new(
            name,
            version as u64 + 1,
            digest_f64([d.predicted_perf, d.baseline_perf]),
        );
        if let Verdict::Block(reason) = guards.check_recorded(d, &provenance, version as f64) {
            expected_vetoes.push((*name, version as u64 + 1, d.predicted_perf, reason));
        }
    }
    assert_eq!(
        expected_vetoes.len(),
        2,
        "exactly the poisoned cost and regressed perf are vetoed"
    );

    // Every veto the guardrails issued is reproducible from the trace.
    let trace = obs.snapshot();
    assert_eq!(
        trace.decisions.len(),
        cases.len(),
        "every check is recorded"
    );
    let vetoed = trace
        .query()
        .component("core.guardrails")
        .vetoed()
        .decisions();
    assert_eq!(vetoed.len(), expected_vetoes.len());
    for (record, (model, version, predicted, reason)) in vetoed.iter().zip(&expected_vetoes) {
        assert_eq!(record.model_id, *model);
        assert_eq!(record.model_version, *version);
        assert_eq!(record.predicted, *predicted);
        assert_eq!(
            record.observed,
            Some(100.0),
            "the observed outcome is the measured baseline"
        );
        assert_eq!(record.verdict, format!("block: {reason}"));
        assert!(record.vetoed);
    }
    // Allowed decisions are recorded too, unvetoed — the audit trail covers
    // the whole loop, not just the refusals.
    assert!(trace
        .query()
        .model("honest")
        .decisions()
        .iter()
        .all(|d| !d.vetoed && d.verdict == "allow"));
    // And the per-guard veto counters agree with the verdicts.
    assert_eq!(
        trace.metrics.counter("core.guardrails", "checks", &[]),
        cases.len() as u64
    );
}

#[test]
fn fairness_on_empty_batch_is_quiet() {
    let check = FairnessCheck { max_disparity: 0.1 };
    let (outcomes, flagged) = check.flag_groups(&[]);
    assert!(outcomes.is_empty());
    assert!(flagged.is_empty());
}

#[test]
fn fairness_single_group_never_flagged() {
    // One group IS the fleet; it cannot lag itself.
    let check = FairnessCheck { max_disparity: 0.0 };
    let decisions: Vec<Decision> = (0..10)
        .map(|i| decision(80.0 + i as f64, 10.0, 7))
        .collect();
    let (outcomes, flagged) = check.flag_groups(&decisions);
    assert_eq!(outcomes.len(), 1);
    assert_eq!(outcomes[0].group, 7);
    assert_eq!(outcomes[0].decisions, 10);
    assert!(flagged.is_empty());
}

#[test]
fn fairness_uniform_regression_flags_no_one() {
    // Every group regresses identically (a fleet-wide poisoned model):
    // that is a guardrail problem, not a fairness disparity — nobody lags
    // the (equally bad) fleet mean.
    let check = FairnessCheck {
        max_disparity: 0.05,
    };
    let decisions: Vec<Decision> = (0..30).map(|i| decision(150.0, 10.0, i % 3)).collect();
    let (outcomes, flagged) = check.flag_groups(&decisions);
    assert_eq!(outcomes.len(), 3);
    for o in &outcomes {
        assert!(o.mean_improvement < 0.0);
    }
    assert!(flagged.is_empty(), "uniform badness is not disparity");
}

#[test]
fn fairness_flags_every_lagging_group() {
    // Two favoured groups, two marginalized ones: both laggards flagged.
    let mut decisions = Vec::new();
    for g in 0..4u32 {
        let perf = if g >= 2 { 120.0 } else { 60.0 };
        for _ in 0..5 {
            decisions.push(decision(perf, 10.0, g));
        }
    }
    let check = FairnessCheck {
        max_disparity: 0.15,
    };
    let (outcomes, flagged) = check.flag_groups(&decisions);
    assert_eq!(outcomes.len(), 4);
    assert_eq!(flagged, vec![2, 3]);
}

#[test]
fn fairness_zero_baseline_groups_count_as_unimproved() {
    // Decisions whose baseline is zero contribute 0 improvement instead of
    // NaN/inf — the batch still evaluates.
    let mut decisions: Vec<Decision> = (0..5).map(|_| decision(60.0, 10.0, 0)).collect();
    decisions.extend((0..5).map(|_| Decision {
        predicted_perf: 60.0,
        baseline_perf: 0.0,
        predicted_cost: 10.0,
        baseline_cost: 10.0,
        group: 1,
    }));
    let check = FairnessCheck {
        max_disparity: 0.15,
    };
    let (outcomes, flagged) = check.flag_groups(&decisions);
    assert!(outcomes.iter().all(|o| o.mean_improvement.is_finite()));
    // Group 1 (0% improvement) lags group 0 (40%) by more than 15%.
    assert_eq!(flagged, vec![1]);
}
