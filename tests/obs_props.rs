//! Property tests for the recording hot path's two load-bearing tricks:
//! string interning (invisible in exports) and deterministic sampling (a
//! strict, replayable filter).

use autonomous_data_services::obs::{sample_keeps, Interner, Obs, SampleConfig};
use proptest::prelude::*;

/// Maps a small integer to a short identifier-ish string, including empties
/// and separator-looking content that could confuse a sloppy hash. The
/// vendored proptest has no string strategies, so tests draw ranged ints
/// and project them through this table.
fn ident(n: u32) -> String {
    match n % 8 {
        0 => String::new(),
        1 => ".".to_string(),
        2 => "_".to_string(),
        3 => format!("id_{}", n / 8),
        4 => format!("metric.name.{}", n / 8),
        5 => format!("{}_{}", n / 8, n / 8),
        6 => "a".repeat((n as usize / 8) % 13),
        _ => format!("x{:x}", n),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// intern → resolve is the identity, equal strings share an id, and
    /// distinct strings never collide — regardless of insertion order.
    #[test]
    fn intern_resolve_round_trips(raw in proptest::collection::vec(0u32..50_000, 1..32)) {
        let strings: Vec<String> = raw.iter().map(|&n| ident(n)).collect();
        let mut interner = Interner::new();
        let ids: Vec<u32> = strings.iter().map(|s| interner.intern(s)).collect();
        for (s, &id) in strings.iter().zip(&ids) {
            prop_assert_eq!(interner.resolve(id), s.as_str());
        }
        for (i, a) in strings.iter().enumerate() {
            for (j, b) in strings.iter().enumerate() {
                prop_assert_eq!(ids[i] == ids[j], a == b);
            }
        }
        // Re-interning is stable and allocates nothing new.
        let len = interner.len();
        for (s, &id) in strings.iter().zip(&ids) {
            prop_assert_eq!(interner.intern(s), id);
        }
        prop_assert_eq!(interner.len(), len);
    }

    /// The exported registry is independent of intern order: applying one
    /// update per distinct metric key in two different orders exports the
    /// same canonical JSON, even though the interner assigned completely
    /// different ids underneath.
    #[test]
    fn metric_export_is_independent_of_intern_order(
        raw in proptest::collection::vec(0u32..50_000, 1..16),
        rotate in 0usize..16,
    ) {
        let mut names: Vec<String> = raw.iter().map(|&n| ident(n)).collect();
        names.sort();
        names.dedup();
        let mut rotated = names.clone();
        rotated.rotate_left(rotate % names.len());

        let record = |order: &[String]| {
            let obs = Obs::recording();
            for (i, name) in order.iter().enumerate() {
                obs.counter_add("props", name, &[("idx", "x")], 1 + i as u64 % 3);
                obs.counter_add("props", name, &[], 2);
            }
            obs
        };
        let a = record(&names);
        let b = record(&rotated);
        // Counter adds commute across keys, so only the per-key totals
        // differ with order — normalize by comparing the same multiset.
        let totals = |obs: &Obs, order: &[String]| -> Vec<(String, u64)> {
            let snap = obs.snapshot();
            let mut v: Vec<(String, u64)> = order
                .iter()
                .map(|n| (n.clone(), snap.metrics.counter("props", n, &[])))
                .collect();
            v.sort();
            v
        };
        prop_assert_eq!(totals(&a, &names), totals(&b, &rotated));
        // With identical per-key updates the whole export matches bytewise.
        let c = record(&names);
        prop_assert_eq!(a.export_json(), c.export_json());
    }

    /// Sampling is a pure function of (seed, id): the kept id set replays
    /// exactly, and different seeds are allowed to (and generally do) keep
    /// different sets.
    #[test]
    fn sampling_decisions_replay_exactly(seed in 0u64..u64::MAX, ratio in 0.0f64..=1.0) {
        let keep = |s: u64| -> Vec<u64> {
            (0..512u64).filter(|&id| sample_keeps(s, ratio, id)).collect()
        };
        prop_assert_eq!(keep(seed), keep(seed));
        let config = SampleConfig::new(seed, ratio);
        for id in 0..512u64 {
            prop_assert_eq!(config.keeps(id), sample_keeps(seed, ratio, id));
        }
    }

    /// A sampled trace is a strict filter of the full trace: every kept
    /// record is bit-identical to the full run's, nothing is rewritten, and
    /// deployments/metrics are never dropped.
    #[test]
    fn sampled_trace_is_strict_filter(seed in 0u64..u64::MAX, n in 16usize..128) {
        let drive = |obs: &Obs| {
            for i in 0..n {
                let t = i as f64 * 0.25;
                let s = obs.span_enter("props", "work", t);
                obs.event("props", "tick", t, &[("i", "v")]);
                obs.counter_add("props", "ticks", &[], 1);
                obs.span_exit(s, t + 0.1);
            }
        };
        let full = Obs::recording();
        let sampled = Obs::recording_sampled(seed, 0.5);
        drive(&full);
        drive(&sampled);
        let full = full.snapshot();
        let sampled = sampled.snapshot();
        prop_assert!(sampled.spans.len() <= full.spans.len());
        prop_assert!(sampled.events.len() <= full.events.len());
        for s in &sampled.spans {
            prop_assert!(full.spans.contains(s), "sampled span not in full trace");
        }
        for e in &sampled.events {
            prop_assert!(full.events.contains(e), "sampled event not in full trace");
        }
        prop_assert_eq!(&sampled.metrics, &full.metrics);
    }

    /// Ratio extremes: 1.0 keeps everything (bit-identical to an unsampled
    /// recorder), 0.0 drops every span/event but still keeps metrics.
    #[test]
    fn sampling_ratio_extremes(seed in 0u64..u64::MAX) {
        let drive = |obs: &Obs| {
            for i in 0..32usize {
                let s = obs.span_enter("props", "work", i as f64);
                obs.event("props", "tick", i as f64, &[]);
                obs.gauge_set("props", "depth", &[], i as f64);
                obs.span_exit(s, i as f64 + 0.5);
            }
        };
        let full = Obs::recording();
        let all = Obs::recording_sampled(seed, 1.0);
        let none = Obs::recording_sampled(seed, 0.0);
        drive(&full);
        drive(&all);
        drive(&none);
        prop_assert_eq!(all.export_json(), full.export_json());
        let none = none.snapshot();
        prop_assert!(none.spans.is_empty());
        prop_assert!(none.events.is_empty());
        prop_assert_eq!(&none.metrics, &full.snapshot().metrics);
    }
}
