//! Integration of computation reuse, pipeline optimization and checkpoint
//! placement over one workload.

use autonomous_data_services::checkpoint::{
    evaluate, plan_checkpoints, PhoebeConfig, StagePredictor,
};
use autonomous_data_services::engine::cost::CostModel;
use autonomous_data_services::engine::exec::{ClusterConfig, SimOptions, Simulator};
use autonomous_data_services::engine::physical::StageDag;
use autonomous_data_services::pipeline::{optimize_pipelines, schedule, PipelineGraph, Policy};
use autonomous_data_services::reuse::{
    replay, rewrite_plan, MatchPolicy, ReplayConfig, SelectionConfig, ViewCatalog,
};
use autonomous_data_services::workload::gen::{GeneratorConfig, WorkloadGenerator};

fn workload() -> autonomous_data_services::workload::gen::GeneratedWorkload {
    WorkloadGenerator::new(GeneratorConfig {
        days: 5,
        jobs_per_day: 100,
        n_templates: 16,
        shared_template_fraction: 0.7,
        ..Default::default()
    })
    .expect("valid config")
    .generate()
    .expect("generation succeeds")
}

#[test]
fn view_rewrites_preserve_validity_and_reduce_cost() {
    let w = workload();
    let plans: Vec<_> = w
        .trace
        .jobs()
        .iter()
        .take(250)
        .map(|j| j.plan.clone())
        .collect();
    let views = ViewCatalog::select(&plans, &w.catalog, &SelectionConfig::default());
    assert!(!views.is_empty());
    let extended = views.extend_catalog(&w.catalog);
    let cost_model = CostModel::default();
    let truth = autonomous_data_services::engine::cardinality::TrueCardinality::new(&w.catalog);
    let truth_ext = autonomous_data_services::engine::cardinality::TrueCardinality::new(&extended);

    // ISSUE 2: a per-job bound `after <= 1.05 * before` is not structurally
    // guaranteed. `TrueCardinality`'s correlation factors are keyed on
    // template signatures; view scans now expand to their definitions
    // (`Catalog::register_view`), which makes exact-match rewrites
    // truth-invariant — but semantic and containment hits still replace a
    // subtree with a differently-shaped one, so ancestor factors can shift
    // either way. Reuse is a *fleet-level* win: assert the aggregate cost
    // over all hit jobs decreases, not each job individually.
    let mut hits = 0usize;
    let (mut total_before, mut total_after) = (0.0f64, 0.0f64);
    for job in w.trace.jobs().iter().skip(250) {
        let outcome = rewrite_plan(&job.plan, &views, MatchPolicy::full());
        outcome
            .plan
            .validate(&extended)
            .expect("rewritten plans validate");
        if outcome.hits > 0 {
            hits += 1;
            total_before += cost_model.total_cost(&job.plan, &truth).expect("validates");
            total_after += cost_model
                .total_cost(&outcome.plan, &truth_ext)
                .expect("validates");
        }
    }
    assert!(hits > 20, "too few view hits: {hits}");
    assert!(
        total_after <= total_before * 1.05,
        "rewrites must not blow up aggregate cost: {total_before} -> {total_after}"
    );
}

#[test]
fn replay_improvement_consistent_with_policies() {
    let w = workload();
    let syntactic = replay(
        &w.trace,
        &w.catalog,
        &ReplayConfig {
            policy: MatchPolicy::syntactic_only(),
            ..Default::default()
        },
    )
    .expect("replay runs");
    let full = replay(&w.trace, &w.catalog, &ReplayConfig::default()).expect("replay runs");
    assert!(full.total_hits >= syntactic.total_hits);
    assert!(full.jobs_evaluated == syntactic.jobs_evaluated);
}

#[test]
fn pipeline_optimization_composes_with_scheduling() {
    let w = workload();
    let graph = PipelineGraph::build(&w.trace);
    let stats = graph.stats(&w.trace);
    assert!(stats.pipelined_fraction > 0.5);

    let (jobs, extended, report) = optimize_pipelines(&w.trace, &w.catalog).expect("optimizes");
    assert_eq!(jobs.len(), w.trace.len(), "pushdown never drops jobs");
    for job in &jobs {
        job.plan
            .validate(&extended)
            .expect("rewritten plans validate");
    }
    // Work never increases beyond the one-time materialization.
    assert!(report.optimized_work <= report.baseline_work * 1.2);

    // Scheduling both traces works and respects dependencies.
    let baseline = schedule(&w.trace, &w.catalog, 8, 1e7, Policy::CriticalPath).expect("schedules");
    let optimized = schedule(
        &autonomous_data_services::workload::job::Trace::new(jobs),
        &extended,
        8,
        1e7,
        Policy::CriticalPath,
    )
    .expect("schedules");
    assert!(baseline.makespan > 0.0);
    assert!(optimized.makespan > 0.0);
}

#[test]
fn checkpoints_work_on_generated_jobs() {
    let w = workload();
    let cost_model = CostModel::default();
    let cluster = ClusterConfig::default();
    let sim = Simulator::new(cluster).expect("valid cluster");

    // Train the predictor on a handful of real generated jobs.
    let history: Vec<(StageDag, _)> = w
        .trace
        .jobs()
        .iter()
        .take(6)
        .map(|j| {
            let dag = StageDag::compile(&j.plan, &w.catalog, &cost_model).expect("compiles");
            let report = sim.run(&dag, &SimOptions::default()).expect("simulates");
            (dag, report)
        })
        .collect();
    let refs: Vec<_> = history.iter().map(|(d, r)| (d, r)).collect();
    let predictor = StagePredictor::train(&refs).expect("enough stages");

    // Checkpoint a later job and confirm the evaluation is well-formed.
    let job = &w.trace.jobs()[50];
    let dag = StageDag::compile(&job.plan, &w.catalog, &cost_model).expect("compiles");
    let forecast = predictor.forecast(&dag);
    let plan = plan_checkpoints(&dag, &forecast, &PhoebeConfig::default());
    let report = evaluate(&dag, &plan, cluster, 0.8).expect("evaluates");
    assert!(report.baseline_latency > 0.0);
    assert!(report.ckpt_recovery <= report.baseline_recovery + 1e-9);
    assert!(report.hotspot_reduction >= 0.0);
}
