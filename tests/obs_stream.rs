//! Streaming trace export: chunked canonical JSON whose concatenation is
//! byte-identical to the whole-string exporter, so fleet-scale runs can
//! ship their flight record without ever holding it in memory.

use autonomous_data_services::engine::cost::CostModel;
use autonomous_data_services::engine::exec::{ClusterConfig, SimOptions, Simulator};
use autonomous_data_services::engine::physical::StageDag;
use autonomous_data_services::obs::{DeploymentKind, Obs, Provenance, Trace};
use autonomous_data_services::workload::gen::{GeneratorConfig, WorkloadGenerator};

fn collect_stream(obs: &Obs, chunk_size: usize) -> (String, usize) {
    let mut out = String::new();
    let mut chunks = 0usize;
    obs.export_stream(chunk_size, |chunk| {
        assert!(!chunk.is_empty(), "exporter must not emit empty chunks");
        out.push_str(chunk);
        chunks += 1;
    });
    (out, chunks)
}

/// A recorder with every record kind the trace schema has.
fn populated_obs() -> Obs {
    let obs = Obs::recording();
    let root = obs.span_enter("stream", "root", 0.0);
    obs.event("stream", "tick", 0.1, &[("k", "v"), ("n", "2")]);
    obs.counter_add("stream", "ticks", &[("shard", "0")], 3);
    obs.gauge_set("stream", "depth", &[], 1.5);
    obs.histogram_observe("stream", "lat", &[], 0.004);
    obs.record_decision(
        "stream",
        "route",
        &Provenance::new("m", 1, 0xbeef),
        1.0,
        Some(1.25),
        "allow",
        false,
        2,
        0.2,
    );
    obs.record_deployment("stream", DeploymentKind::Publish, "m", 1, "manual", 0.3);
    obs.span_exit(root, 0.5);
    obs
}

#[test]
fn concatenated_chunks_match_export_json_and_parse() {
    let obs = populated_obs();
    let whole = obs.export_json();
    for chunk_size in [1usize, 2, 7, 32, 1024, 1 << 22] {
        let (streamed, chunks) = collect_stream(&obs, chunk_size);
        assert_eq!(streamed, whole, "chunk_size {chunk_size}");
        if chunk_size == 1 {
            assert!(chunks > 1, "a 1-byte chunk size must split the export");
        }
        let parsed: Trace = serde_json::from_str(&streamed).expect("streamed JSON parses");
        assert_eq!(parsed, obs.snapshot());
    }
}

#[test]
fn empty_trace_streams_as_canonical_empty_document() {
    for obs in [Obs::recording(), Obs::recording_direct(), Obs::disabled()] {
        let (streamed, _) = collect_stream(&obs, 16);
        assert_eq!(streamed, obs.export_json());
        let parsed: Trace = serde_json::from_str(&streamed).expect("parses");
        assert_eq!(parsed, Trace::default());
    }
}

#[test]
fn single_event_trace_streams_byte_identically() {
    let obs = Obs::recording();
    obs.event("stream", "only", 0.0, &[]);
    let (streamed, _) = collect_stream(&obs, 8);
    assert_eq!(streamed, obs.export_json());
    let parsed: Trace = serde_json::from_str(&streamed).expect("parses");
    assert_eq!(parsed.events.len(), 1);
    assert_eq!(parsed.events[0].name, "only");
}

#[test]
fn trace_export_stream_matches_obs_export_stream() {
    let obs = populated_obs();
    let trace = obs.snapshot();
    for chunk_size in [3usize, 64, 4096] {
        let mut from_trace = String::new();
        trace.export_stream(chunk_size, |chunk| from_trace.push_str(chunk));
        let (from_obs, _) = collect_stream(&obs, chunk_size);
        assert_eq!(from_trace, from_obs);
    }
}

#[test]
fn streaming_a_real_workload_trace_round_trips() {
    let w = WorkloadGenerator::new(GeneratorConfig {
        days: 1,
        jobs_per_day: 10,
        ..Default::default()
    })
    .expect("valid")
    .generate()
    .expect("generates");
    let cm = CostModel::default();
    let obs = Obs::recording();
    let sim = Simulator::with_obs(ClusterConfig::default(), obs.clone()).expect("valid cluster");
    for job in w.trace.jobs().iter().take(6) {
        let dag = StageDag::compile(&job.plan, &w.catalog, &cm).expect("compiles");
        sim.run(&dag, &SimOptions::default()).expect("simulates");
    }
    let (streamed, chunks) = collect_stream(&obs, 2048);
    assert_eq!(streamed, obs.export_json());
    assert!(chunks > 1, "a real trace must span multiple 2KiB chunks");
    let parsed: Trace = serde_json::from_str(&streamed).expect("parses");
    assert!(!parsed.spans.is_empty());
    assert!(!parsed.metrics.metrics.is_empty());
}
