//! Property tests for the watchtower analyses.
//!
//! - The critical path can never claim more simulated time than the trace's
//!   envelope, and never less than the longest single span.
//! - Incident reconstruction is a function of record *contents*, not of the
//!   order the trace's vectors happen to hold them in.

use autonomous_data_services::obs::{DeploymentKind, Obs, Provenance, SpanId, Trace};
use autonomous_data_services::watchtower::{critical_path, reconstruct, to_canonical_json};
use proptest::prelude::*;

/// A random span forest: each span picks an earlier span as parent (or
/// none), with start/end drawn inside a bounded tick range.
fn arb_trace_spans() -> impl Strategy<Value = Trace> {
    proptest::collection::vec((0u64..64, 0u64..64, 0u64..4, 0u64..3), 1..24).prop_map(|raw| {
        let obs = Obs::recording();
        let mut ids: Vec<SpanId> = Vec::new();
        let mut open: Vec<(SpanId, f64)> = Vec::new();
        for (a, b, parent_sel, component_sel) in raw {
            let start = a.min(b) as f64;
            let end = a.max(b) as f64;
            let component = ["engine.exec", "serve.gateway", "infra.sim"][component_sel as usize];
            // The recorder nests by stack; to exercise arbitrary parent
            // links (including none), close everything not on the chosen
            // ancestry path first.
            let keep = if ids.is_empty() {
                0
            } else {
                (parent_sel as usize) % (open.len() + 1)
            };
            while open.len() > keep {
                let (id, at) = open.pop().unwrap();
                obs.span_exit(id, at);
            }
            let id = obs.span_enter(component, "op", start);
            ids.push(id);
            open.push((id, end));
        }
        while let Some((id, at)) = open.pop() {
            obs.span_exit(id, at);
        }
        obs.snapshot()
    })
}

/// A random incident-shaped trace: interleaved fault events, degraded
/// serves, breaker transitions, and deployments across a few models.
fn arb_incident_trace() -> impl Strategy<Value = Trace> {
    proptest::collection::vec((0u64..6, 0u64..3, 1u64..5, 0u64..4), 0..40).prop_map(|raw| {
        let obs = Obs::recording();
        for (i, (kind_sel, model_sel, version, cause_sel)) in raw.iter().enumerate() {
            let sim_time = i as f64;
            let model = ["card", "cost", "steer"][*model_sel as usize];
            match kind_sel {
                0 => obs.event(
                    "serve.gateway",
                    "model_fault_injected",
                    sim_time,
                    &[("model", model), ("kind", "poison")],
                ),
                1 => obs.record_decision(
                    "serve.gateway",
                    "degraded_serve",
                    &Provenance::new(model, *version, 0),
                    0.0,
                    None,
                    "guarded",
                    true,
                    0,
                    sim_time,
                ),
                2 => obs.event(
                    "serve.gateway",
                    "breaker_transition",
                    sim_time,
                    &[("model", model), ("from", "Closed"), ("to", "Open")],
                ),
                3 => obs.event(
                    "faultsim.chaos",
                    "fault_injected",
                    sim_time,
                    &[("kind", "crash")],
                ),
                4 => obs.record_deployment(
                    "serve.gateway",
                    DeploymentKind::Rollback,
                    model,
                    *version,
                    ["guard_trip_streak", "slo_burn", "manual", "bootstrap"][*cause_sel as usize],
                    sim_time,
                ),
                _ => obs.record_deployment(
                    "serve.gateway",
                    DeploymentKind::Publish,
                    model,
                    *version,
                    "retrain",
                    sim_time,
                ),
            }
        }
        obs.snapshot()
    })
}

/// Rotates every record vector by `k` — a permutation that preserves record
/// contents (and seq numbers) while scrambling vector order.
fn rotate_trace(trace: &Trace, k: usize) -> Trace {
    fn rotate<T>(v: &mut [T], k: usize) {
        if !v.is_empty() {
            let mid = k % v.len();
            v.rotate_left(mid);
        }
    }
    let mut t = trace.clone();
    rotate(&mut t.spans, k);
    rotate(&mut t.events, k);
    rotate(&mut t.decisions, k);
    rotate(&mut t.deployments, k);
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn critical_path_is_bounded_by_envelope_and_longest_span(trace in arb_trace_spans()) {
        let report = critical_path(&trace);
        let env_start = trace.spans.iter().map(|s| s.start).fold(f64::INFINITY, f64::min);
        let env_end = trace.spans.iter().map(|s| s.end).fold(f64::NEG_INFINITY, f64::max);
        let envelope = (env_end - env_start).max(0.0);
        let longest = trace
            .spans
            .iter()
            .map(|s| s.duration())
            .fold(0.0f64, f64::max);
        prop_assert!(report.path_ticks <= envelope + 1e-9,
            "path {} exceeds wall envelope {}", report.path_ticks, envelope);
        prop_assert!(report.path_ticks + 1e-9 >= longest,
            "path {} undercuts longest span {}", report.path_ticks, longest);
        // The decomposition accounts for the whole path.
        let attributed: f64 = report.path.iter().map(|s| s.self_ticks).sum();
        prop_assert!((attributed + report.idle_ticks - report.path_ticks).abs() < 1e-6);
    }

    #[test]
    fn incident_reconstruction_is_permutation_invariant(
        trace in arb_incident_trace(),
        k in 1usize..17,
    ) {
        let baseline = to_canonical_json(&reconstruct(&trace));
        let rotated = to_canonical_json(&reconstruct(&rotate_trace(&trace, k)));
        prop_assert_eq!(baseline, rotated);
    }
}
