//! Property tests for the serving layer's prediction cache.
//!
//! Two invariants from ISSUE 5:
//! 1. **LRU watermark** — against a shadow exact-LRU model, a shard never
//!    evicts anything except its least-recently-touched entry, so the keys
//!    a shard holds are exactly the `per_shard_capacity` most recently
//!    touched keys that mapped to it.
//! 2. **Bitwise hits** — a gateway cache hit returns a value bitwise equal
//!    to what recomputing the prediction through the model would produce.

use autonomous_data_services::serve::{
    CacheKey, FnModel, Gateway, GatewayConfig, PredictionCache, Source,
};
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, f64),
    Get(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Small digest space so shards fill and evict constantly.
        (0u64..24, -1e6f64..1e6).prop_map(|(d, v)| Op::Insert(d, v)),
        (0u64..24).prop_map(Op::Get),
    ]
}

fn key(digest: u64) -> CacheKey {
    CacheKey {
        model: digest % 3,
        version: 1 + digest % 2,
        digest,
    }
}

/// Shadow exact-LRU: per shard, keys most-recent-first plus their values.
struct ShadowShard {
    order: Vec<CacheKey>,
    values: std::collections::HashMap<CacheKey, f64>,
    capacity: usize,
}

impl ShadowShard {
    fn touch_front(&mut self, key: CacheKey) {
        self.order.retain(|k| *k != key);
        self.order.insert(0, key);
    }

    fn insert(&mut self, key: CacheKey, value: f64) {
        if !self.values.contains_key(&key) && self.order.len() >= self.capacity {
            let victim = self.order.pop().expect("full shard has a victim");
            self.values.remove(&victim);
        }
        self.values.insert(key, value);
        self.touch_front(key);
    }

    fn get(&mut self, key: CacheKey) -> Option<f64> {
        let hit = self.values.get(&key).copied();
        if hit.is_some() {
            self.touch_front(key);
        }
        hit
    }
}

proptest! {
    /// Replaying any op sequence against the real cache and the shadow LRU
    /// leaves every shard holding exactly the shadow's keys, in the
    /// shadow's recency order, with bitwise-identical values.
    #[test]
    fn eviction_respects_the_lru_watermark(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let cache = PredictionCache::new(8, 2);
        let mut shadow: Vec<ShadowShard> = (0..cache.shard_count())
            .map(|_| ShadowShard {
                order: Vec::new(),
                values: std::collections::HashMap::new(),
                capacity: cache.per_shard_capacity(),
            })
            .collect();

        for op in &ops {
            match *op {
                Op::Insert(d, v) => {
                    let k = key(d);
                    cache.insert(k, v);
                    shadow[cache.shard_index(&k)].insert(k, v);
                }
                Op::Get(d) => {
                    let k = key(d);
                    let real = cache.get(&k);
                    let expected = shadow[cache.shard_index(&k)].get(k);
                    prop_assert_eq!(real.map(f64::to_bits), expected.map(f64::to_bits));
                }
            }
        }

        for (s, shadow_shard) in shadow.iter().enumerate() {
            let real_order = cache.shard_keys_by_recency(s);
            prop_assert!(
                real_order.len() <= cache.per_shard_capacity(),
                "shard {} holds {} entries over its budget of {}",
                s, real_order.len(), cache.per_shard_capacity()
            );
            prop_assert_eq!(
                &real_order, &shadow_shard.order,
                "shard {} diverged from the exact-LRU shadow", s
            );
            for k in &real_order {
                prop_assert_eq!(
                    cache.peek(k).map(f64::to_bits),
                    shadow_shard.values.get(k).copied().map(f64::to_bits)
                );
            }
        }
    }

    /// Every gateway cache hit is bitwise equal to recomputing the
    /// prediction through the model directly.
    #[test]
    fn cache_hits_are_bitwise_equal_to_recomputation(
        picks in proptest::collection::vec((0usize..12, 0u64..4), 1..150)
    ) {
        fn model_fn(f: &[f64]) -> f64 {
            (f[0] * 1.7).sin() * f[1].exp() + f[0] / (f[1].abs() + 0.25)
        }

        let gateway = Gateway::new(GatewayConfig::standard());
        let handle = gateway.register("props/model", |f: &[f64]| f[0]);
        gateway
            .publish(handle, Arc::new(FnModel(|f: &[f64]| model_fn(f))), 0.0)
            .expect("registered");

        let pool: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![i as f64 * 0.37 - 2.0, (i % 5) as f64 * 0.81 - 1.5])
            .collect();

        let mut hits = 0u64;
        for (t, &(i, _salt)) in picks.iter().enumerate() {
            let features = &pool[i];
            let p = gateway
                .predict(handle, features, t as f64)
                .expect("registered");
            prop_assert!(!p.source.is_fallback());
            if p.source == Source::Cache {
                hits += 1;
            }
            // Model answers and cache hits alike must reproduce the model
            // function bit-for-bit.
            prop_assert_eq!(p.value.to_bits(), model_fn(features).to_bits());
        }
        prop_assert_eq!(hits, gateway.stats().cache_hits);
    }
}
