//! Property tests for the autonomy loop's two safety invariants:
//!
//! 1. **Rollback lands healthy** — whenever the controller rolls back
//!    automatically, the version it lands on serves with a windowed
//!    observed error back inside the guard threshold: subsequent requests
//!    are answered by the model (no guard trips) and the windowed error is
//!    below the monitor's rollback line.
//! 2. **Promotion floor** — canary promotion can never happen from fewer
//!    than `min_decisions * promote_streak` observations of the candidate:
//!    the gap between staging and promotion is bounded below, whatever the
//!    traffic split, window size, or streak requirement.

use autonomous_data_services::core::feedback::LoopConfig;
use autonomous_data_services::faultsim::{ModelFaults, PoisonProfile};
use autonomous_data_services::obs::Obs;
use autonomous_data_services::serve::{
    AutonomyAction, AutonomyConfig, AutonomyController, CanaryConfig, FallbackCause, FnModel,
    Gateway, GatewayConfig, PoisonScope, Retrainer, ServableModel, SloPolicy, Source,
};
use proptest::prelude::*;
use std::sync::Arc;

fn scalar_retrainer() -> Retrainer {
    Box::new(|history: &[(Vec<f64>, f64)]| {
        let (num, den) = history
            .iter()
            .fold((0.0, 0.0), |(n, d), (f, y)| (n + f[0] * y, d + f[0] * f[0]));
        let a = num / den.max(1e-12);
        Some((
            Arc::new(FnModel(move |f: &[f64]| a * f[0])) as Arc<dyn ServableModel>,
            0.01,
        ))
    })
}

fn base_config() -> AutonomyConfig {
    AutonomyConfig {
        monitor: LoopConfig {
            window: 15,
            retrain_factor: 1.5,
            rollback_factor: 6.0,
        },
        canary: CanaryConfig {
            traffic_pct: 30,
            shadow_first: true,
            min_decisions: 8,
            promote_streak: 2,
            demote_streak: 2,
            promote_error_factor: 1.2,
            demote_error_factor: 2.0,
            restage_backoff_ticks: 8.0,
            max_restage_backoff_ticks: 64.0,
        },
        slo: SloPolicy::default(),
        guarded_streak: 4,
        breaker_open_streak: 10,
        retrain_cooldown_ticks: 4.0,
        min_retrain_observations: 15,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property 1: after any automatic rollback, the landed version's
    /// windowed observed error is under the guard threshold — its serves
    /// come from the model path and the windowed mean error sits below the
    /// rollback line that just fired.
    #[test]
    fn auto_rollback_lands_on_guard_healthy_version(
        seed in 1u64..1000,
        poison_factor in 2.5f64..8.0,
    ) {
        let obs = Obs::recording();
        let mut config = GatewayConfig::standard();
        config.cache_capacity = 0;
        config.breaker.guard_factor = 1.5;
        let gateway = Gateway::with_obs(config, obs.clone());
        let handle = gateway.register("m", |f: &[f64]| f[0]);
        let mut ctl = AutonomyController::new(gateway.clone(), obs);
        ctl.supervise(handle, base_config(), scalar_retrainer());
        // v1 and v2 are both honest; the world matches them.
        ctl.install(handle, Arc::new(FnModel(|f: &[f64]| 1.02 * f[0])), 0.05, 0.0)
            .unwrap();
        ctl.install(handle, Arc::new(FnModel(|f: &[f64]| 1.02 * f[0])), 0.06, 1.0)
            .unwrap();
        // v2's artifact corrupts.
        gateway
            .inject_faults(
                handle,
                ModelFaults::with_profile(seed, 0.0, 0.0, poison_factor, PoisonProfile::Constant),
            )
            .unwrap();
        gateway
            .set_poison_scope(handle, PoisonScope::Version(2))
            .unwrap();
        let world = |f: &[f64]| 1.02 * f[0];
        let mut landed = None;
        for t in 0..200u64 {
            let sim_time = 2.0 + t as f64;
            let features = [1.0 + (t % 5) as f64];
            let p = gateway.predict(handle, &features, sim_time).unwrap();
            let acts = ctl
                .observe(handle, &features, &p, world(&features), sim_time)
                .unwrap();
            if let Some(v) = acts.iter().find_map(|a| match a {
                AutonomyAction::RolledBack { version, .. } => Some(*version),
                _ => None,
            }) {
                landed = Some((v, sim_time));
                break;
            }
        }
        let (landed_version, rolled_at) = landed.expect("poisoned v2 must roll back");
        prop_assert_eq!(
            gateway.current_version(handle).unwrap(),
            Some(landed_version)
        );
        // The landed version serves a full monitor window cleanly.
        let window = 15usize;
        let mut errors = Vec::with_capacity(window);
        for t in 0..window as u64 {
            let sim_time = rolled_at + 1.0 + t as f64;
            let features = [1.0 + (t % 5) as f64];
            let p = gateway.predict(handle, &features, sim_time).unwrap();
            prop_assert!(
                p.source != Source::Fallback(FallbackCause::Guarded),
                "landed version must not trip the guard, got {:?}",
                p.source
            );
            errors.push((p.value - world(&features)).abs());
        }
        let windowed = errors.iter().sum::<f64>() / errors.len() as f64;
        // Under the line that fired: deployment error of the landed
        // artifact (0.05) times the rollback factor (6.0).
        prop_assert!(
            windowed < 6.0 * 0.05,
            "windowed error {} not under the guard threshold",
            windowed
        );
    }

    /// Property 2: promotion never happens from fewer than
    /// `min_decisions * promote_streak` candidate observations. One tick
    /// contributes at most one candidate observation, so the tick gap
    /// between staging and promotion bounds the evidence from below.
    #[test]
    fn promotion_never_undershoots_min_decisions(
        min_decisions in 2usize..15,
        promote_streak in 1u32..4,
        traffic_pct in 10u8..90,
        shadow_first_bit in 0u8..2,
    ) {
        let obs = Obs::recording();
        let mut gconfig = GatewayConfig::standard();
        gconfig.cache_capacity = 0;
        let gateway = Gateway::with_obs(gconfig, obs.clone());
        let handle = gateway.register("m", |f: &[f64]| f[0]);
        let mut ctl = AutonomyController::new(gateway.clone(), obs);
        let mut config = base_config();
        config.canary.min_decisions = min_decisions;
        config.canary.promote_streak = promote_streak;
        config.canary.traffic_pct = traffic_pct;
        config.canary.shadow_first = shadow_first_bit == 1;
        ctl.supervise(handle, config, scalar_retrainer());
        ctl.install(handle, Arc::new(FnModel(|f: &[f64]| 1.05 * f[0])), 0.2, 0.0)
            .unwrap();
        let mut staged_tick = None;
        let mut promoted_gap = None;
        for t in 0..3000u64 {
            let sim_time = t as f64;
            let features = [1.0 + (t % 5) as f64];
            let p = gateway.predict(handle, &features, sim_time).unwrap();
            let actual = 1.3 * features[0]; // drifted world drives a retrain
            let acts = ctl
                .observe(handle, &features, &p, actual, sim_time)
                .unwrap();
            for a in acts {
                match a {
                    AutonomyAction::CandidateStaged { .. } => {
                        staged_tick.get_or_insert(t);
                    }
                    AutonomyAction::Promoted { .. } => {
                        let staged = staged_tick.expect("promotion implies staging");
                        promoted_gap.get_or_insert(t - staged);
                    }
                    _ => {}
                }
            }
            if promoted_gap.is_some() {
                break;
            }
        }
        if let Some(gap) = promoted_gap {
            let floor = (min_decisions as u64) * (promote_streak as u64);
            prop_assert!(
                gap >= floor,
                "promoted after {} ticks; hysteresis floor is {} observations",
                gap,
                floor
            );
        }
    }
}
