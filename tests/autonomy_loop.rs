//! Cross-crate integration of the control plane: the granularity hierarchy
//! backed by real ML models, the feedback loop driving registry rollbacks,
//! and guardrails/fairness applied to service-layer decisions.

use autonomous_data_services::core::{
    joint_optimize, sequential_optimize, AlgorithmStore, Component, Decision, FairnessCheck,
    FeedbackLoop, GranularityRouter, GuardrailSet, LoopConfig, ModelRegistry, ModelScope,
    MonitorVerdict, Verdict,
};
use autonomous_data_services::ml::dataset::Dataset;
use autonomous_data_services::ml::linear::LinearRegression;
use autonomous_data_services::service::doppler::{
    generate_customers, standard_skus, true_best_sku, Doppler,
};

fn line(slope: f64, intercept: f64) -> LinearRegression {
    let pairs: Vec<(f64, f64)> = (0..10)
        .map(|i| (i as f64, intercept + slope * i as f64))
        .collect();
    LinearRegression::fit(&Dataset::from_xy(&pairs).expect("shape ok")).expect("fits")
}

#[test]
fn granularity_router_with_real_models() {
    // Global model: load = 2x; segment 3 model: load = 3x; entity 42: 5x.
    let mut router = GranularityRouter::new(line(2.0, 0.0), 3, 6);
    router.set_segment_model(3, line(3.0, 0.0));
    router.set_individual_model(42, line(5.0, 0.0));

    let check = |got: (f64, ModelScope), value: f64, scope: ModelScope| {
        assert!((got.0 - value).abs() < 1e-9, "{got:?} != {value}");
        assert_eq!(got.1, scope);
    };
    check(router.predict(42, 3, &[10.0]), 20.0, ModelScope::Global);
    for _ in 0..3 {
        router.record_observation(42, 3);
    }
    check(router.predict(42, 3, &[10.0]), 30.0, ModelScope::Segment);
    for _ in 0..3 {
        router.record_observation(42, 3);
    }
    check(router.predict(42, 3, &[10.0]), 50.0, ModelScope::Individual);
}

#[test]
fn feedback_loop_rolls_back_drifted_service_model() {
    // The "service" predicts per-server load; after drift its error grows
    // and the loop rolls back to the previous version.
    let mut registry = ModelRegistry::new();
    registry.deploy(line(1.0, 0.0), 0.1); // matches the world
    registry.deploy(line(4.0, 0.0), 0.1); // deployed with an optimistic error
    let mut feedback = FeedbackLoop::new(LoopConfig {
        window: 16,
        ..Default::default()
    });
    let mut rolled_back = false;
    for i in 0..64 {
        let x = (i % 8) as f64;
        let current = registry.current().expect("deployed");
        let prediction = current.model.predict(&[x]);
        let actual = x; // the world is still y = x
        if feedback.observe(prediction, actual, current.deployment_error)
            == MonitorVerdict::Rollback
        {
            registry.rollback();
            feedback.reset();
            rolled_back = true;
            break;
        }
    }
    assert!(rolled_back, "drifted model must trigger rollback");
    let restored = registry.current().expect("deployed");
    assert!((restored.model.predict(&[5.0]) - 5.0).abs() < 1e-9);
}

use autonomous_data_services::ml::Regressor;

#[test]
fn guardrails_and_fairness_on_doppler_decisions() {
    let skus = standard_skus();
    let train = generate_customers(1200, 8, 0.12, 3);
    let doppler = Doppler::train(&train, skus.clone(), 8, 7).expect("trains");
    let test = generate_customers(240, 8, 0.12, 9);

    // Build decisions: predicted cost = recommended SKU price; baseline =
    // naive rule's price; perf proxy = provided vcores (higher = better, so
    // invert into a latency-like metric).
    let guards = GuardrailSet::standard();
    let mut decisions = Vec::new();
    let mut blocked = 0usize;
    for customer in &test {
        let (Some(rec), Some(naive)) = (doppler.recommend(customer), doppler.naive(customer))
        else {
            continue;
        };
        let decision = Decision {
            predicted_perf: 1.0 / skus[rec].vcores,
            baseline_perf: 1.0 / skus[naive].vcores,
            predicted_cost: skus[rec].price,
            baseline_cost: skus[naive].price,
            group: (customer.segment_truth % 3) as u32,
        };
        match guards.check(&decision) {
            Verdict::Allow => decisions.push(decision),
            Verdict::Block(_) => blocked += 1,
        }
    }
    assert!(!decisions.is_empty());
    // Guardrails may block some boundary decisions but not the majority.
    assert!(
        blocked < decisions.len(),
        "guardrails blocked too much: {blocked}"
    );
    // Fairness: no customer group is systematically disadvantaged.
    let (outcomes, flagged) = FairnessCheck { max_disparity: 0.2 }.flag_groups(&decisions);
    assert_eq!(outcomes.len(), 3);
    assert!(flagged.is_empty(), "flagged groups: {flagged:?}");
}

#[test]
fn doppler_recommendations_match_truth_end_to_end() {
    let skus = standard_skus();
    let train = generate_customers(1600, 8, 0.12, 3);
    let doppler = Doppler::train(&train, skus.clone(), 8, 7).expect("trains");
    let test = generate_customers(200, 8, 0.12, 11);
    let hits = test
        .iter()
        .filter(|c| doppler.recommend(c) == true_best_sku(&skus, c))
        .count();
    assert!(hits as f64 / test.len() as f64 > 0.95);
}

#[test]
fn algorithm_store_indexes_the_workspace() {
    let store = AlgorithmStore::standard();
    // Everything the store points at is a real workspace path.
    for entry in store.search("forecast") {
        assert!(entry.implementation.starts_with("adas_"));
    }
    // Direction-1 discovery flow: a new team searching for backup windows
    // should find the Seagull primitive.
    let results = store.search("backup window");
    assert!(results.iter().any(|e| e.name == "low-load-window"));
}

#[test]
fn joint_optimization_coordinates_provisioning_knobs() {
    // A two-knob pool/cap objective with interaction: total capacity must
    // cover demand while balancing the layers.
    let components = vec![
        Component::new("warm-pool", (0..=20).map(|i| i as f64).collect()),
        Component::new("autoscale-cap", (0..=20).map(|i| i as f64).collect()),
    ];
    let demand = 18.0;
    let objective = |s: &[f64]| {
        let shortfall = (demand - (s[0] + s[1])).max(0.0);
        let imbalance = (s[0] - s[1]).powi(2) * 0.2;
        let cost = s[0] * 1.5 + s[1]; // warm pools are pricier
        shortfall * 100.0 + imbalance + cost
    };
    let seq = sequential_optimize(&components, objective);
    let joint = joint_optimize(&components, objective, 20);
    assert!(joint.objective <= seq.objective);
    assert!(joint.settings[0] + joint.settings[1] >= demand);
}

#[test]
fn controller_closes_the_loop_for_served_cardinality() {
    // End to end through the PR-5 consumer: a learned cardinality model
    // drifts, the controller retrains it from observed outcomes, evaluates
    // the candidate in shadow then canary, and promotes — all through
    // `ServedCardinality::observe_actual`, no manual deployment calls.
    use autonomous_data_services::engine::cardinality::CardinalityModel;
    use autonomous_data_services::learned::cardinality::{LearnedCardinality, TrainConfig};
    use autonomous_data_services::learned::serving::cardinality_model_name;
    use autonomous_data_services::obs::Obs;
    use autonomous_data_services::serve::{
        AutonomyAction, AutonomyConfig, AutonomyController, CanaryConfig, FnModel, Gateway,
        GatewayConfig, ServableModel, SloPolicy,
    };
    use autonomous_data_services::workload::gen::{GeneratorConfig, WorkloadGenerator};
    use autonomous_data_services::workload::signature::template_signature;
    use std::sync::Arc;

    let w = WorkloadGenerator::new(GeneratorConfig {
        days: 6,
        jobs_per_day: 150,
        n_templates: 20,
        ..Default::default()
    })
    .unwrap()
    .generate()
    .unwrap();
    let plans: Vec<_> = w.trace.jobs().iter().map(|j| j.plan.clone()).collect();
    let (direct, _) = LearnedCardinality::train(&w.catalog, &plans, TrainConfig::default());
    let obs = Obs::recording();
    let gateway = Gateway::with_obs(GatewayConfig::standard(), obs.clone());
    let served = direct.publish(&gateway);
    let plan = plans
        .iter()
        .find(|p| served.covers(p))
        .expect("trained coverage");
    let handle = gateway
        .resolve(&cardinality_model_name(template_signature(plan)))
        .expect("published template");

    let mut ctl = AutonomyController::new(gateway.clone(), obs.clone());
    ctl.supervise(
        handle,
        AutonomyConfig {
            monitor: autonomous_data_services::core::LoopConfig {
                window: 10,
                retrain_factor: 1.5,
                rollback_factor: 8.0,
            },
            canary: CanaryConfig {
                traffic_pct: 40,
                shadow_first: true,
                min_decisions: 5,
                promote_streak: 2,
                demote_streak: 2,
                promote_error_factor: 1.2,
                demote_error_factor: 2.0,
                restage_backoff_ticks: 8.0,
                max_restage_backoff_ticks: 64.0,
            },
            slo: SloPolicy::default(),
            guarded_streak: 4,
            breaker_open_streak: 10,
            retrain_cooldown_ticks: 4.0,
            min_retrain_observations: 10,
        },
        // Constant fit in ln-rows space: the template's observed outcomes.
        Box::new(|history: &[(Vec<f64>, f64)]| {
            let c = history.iter().map(|(_, y)| *y).sum::<f64>() / history.len() as f64;
            Some((
                Arc::new(FnModel(move |_: &[f64]| c)) as Arc<dyn ServableModel>,
                0.05,
            ))
        }),
    );

    // The world changed: this template now always yields 1000 rows.
    let mut actions = Vec::new();
    for t in 0..600u64 {
        let sim_time = t as f64;
        served.set_sim_time(sim_time);
        served.estimate(plan).unwrap();
        if let Some(step) = served.observe_actual(plan, 1000.0, &mut ctl, sim_time) {
            actions.extend(step);
        }
    }
    assert!(
        actions
            .iter()
            .any(|a| matches!(a, AutonomyAction::RetrainScheduled { .. })),
        "drift must schedule a retrain: {actions:?}"
    );
    assert!(
        actions
            .iter()
            .any(|a| matches!(a, AutonomyAction::Promoted { .. })),
        "the retrained template model must promote: {actions:?}"
    );
    // The promoted model now tracks the new world.
    served.set_sim_time(1000.0);
    let rows = served.estimate(plan).unwrap();
    assert!(
        (rows - 1000.0).abs() / 1000.0 < 0.05,
        "estimate {rows} should track the new cardinality"
    );
    assert!(gateway.current_version(handle).unwrap().unwrap() >= 2);
}
