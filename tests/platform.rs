//! Integration of the platform pieces: the Peregrine feedback loop closed
//! end-to-end, interchange formats crossing "system" boundaries, and the
//! RAI gate over real recommender decisions.

use autonomous_data_services::core::rai::AssessmentStatus;
use autonomous_data_services::core::{Assessment, Decision};
use autonomous_data_services::engine::cardinality::{CardinalityModel, DefaultEstimator};
use autonomous_data_services::engine::cost::CostModel;
use autonomous_data_services::engine::exec::{ClusterConfig, SimOptions, Simulator};
use autonomous_data_services::engine::feedback::FeedbackStore;
use autonomous_data_services::engine::physical::StageDag;
use autonomous_data_services::learned::cardinality::{LearnedCardinality, TrainConfig};
use autonomous_data_services::ml::bundle::{ModelBundle, ModelKind};
use autonomous_data_services::ml::forecast::{Forecaster, SeasonalNaive};
use autonomous_data_services::workload::evolution::analyze_evolution;
use autonomous_data_services::workload::gen::{GeneratorConfig, WorkloadGenerator};
use autonomous_data_services::workload::interchange::{export_plan, import_plan};

#[test]
fn execute_record_train_loop_beats_default() {
    // The full production loop: execute jobs on the cluster simulator,
    // record feedback, train micromodels from the feedback, verify they
    // beat the default estimator on fresh instances of covered templates.
    let w = WorkloadGenerator::new(GeneratorConfig {
        days: 6,
        jobs_per_day: 100,
        n_templates: 15,
        ..Default::default()
    })
    .expect("valid config")
    .generate()
    .expect("generates");
    let sim = Simulator::new(ClusterConfig::default()).expect("valid");
    let cost_model = CostModel::default();
    let mut store = FeedbackStore::new();
    let (train_jobs, eval_jobs) = w.trace.jobs().split_at(400);
    for job in train_jobs.iter().take(120) {
        // Execute a sample on the simulator (latency recorded), the rest
        // record stats without a full simulation.
        let report = if job.id.raw() % 10 == 0 {
            let dag = StageDag::compile(&job.plan, &w.catalog, &cost_model).expect("compiles");
            Some(sim.run(&dag, &SimOptions::default()).expect("simulates"))
        } else {
            None
        };
        store
            .record_execution(&job.plan, &w.catalog, report.as_ref())
            .expect("records");
    }
    for job in train_jobs.iter().skip(120) {
        store
            .record_execution(&job.plan, &w.catalog, None)
            .expect("records");
    }

    let (model, report) =
        LearnedCardinality::train_from_feedback(&w.catalog, &store, TrainConfig::default());
    assert!(report.models_kept > 0);

    let truth = autonomous_data_services::engine::cardinality::TrueCardinality::new(&w.catalog);
    let default = DefaultEstimator::new(&w.catalog);
    let mut learned_wins = 0usize;
    let mut covered = 0usize;
    for job in eval_jobs {
        if !model.covers(&job.plan) {
            continue;
        }
        covered += 1;
        let actual = truth.estimate(&job.plan).expect("validates");
        let learned_err = (model.estimate(&job.plan).expect("validates") / actual)
            .ln()
            .abs();
        let default_err = (default.estimate(&job.plan).expect("validates") / actual)
            .ln()
            .abs();
        if learned_err <= default_err + 1e-9 {
            learned_wins += 1;
        }
    }
    assert!(covered > 30, "coverage too small: {covered}");
    assert!(learned_wins as f64 / covered as f64 > 0.8);
}

#[test]
fn plan_travels_between_engines_with_model_bundle() {
    // An "optimizer service" exports plan + model; a "deployment target"
    // imports both and reproduces the estimate exactly.
    let w = WorkloadGenerator::new(GeneratorConfig {
        days: 5,
        jobs_per_day: 100,
        n_templates: 12,
        ..Default::default()
    })
    .expect("valid config")
    .generate()
    .expect("generates");
    let plans: Vec<_> = w.trace.jobs().iter().map(|j| j.plan.clone()).collect();
    let (model, _) = LearnedCardinality::train(&w.catalog, &plans, TrainConfig::default());
    let covered = plans
        .iter()
        .find(|p| model.covers(p))
        .expect("a covered plan exists");

    // Export the plan across the wire.
    let wire = export_plan("engine-a", covered).expect("exports");
    let received = import_plan(&wire).expect("imports");
    assert_eq!(&received, covered);

    // Ship a forecaster in a bundle alongside.
    let values: Vec<f64> = (0..72).map(|i| (i % 24) as f64).collect();
    let forecaster = SeasonalNaive::fit(&values, 24).expect("fits");
    let bundle = ModelBundle::pack(ModelKind::SeasonalNaive, "arrivals", &forecaster)
        .expect("packs")
        .to_json()
        .expect("serializes");
    let restored: SeasonalNaive = ModelBundle::from_json(&bundle)
        .expect("parses")
        .unpack(ModelKind::SeasonalNaive)
        .expect("unpacks");
    assert_eq!(forecaster.forecast(24), restored.forecast(24));
}

#[test]
fn evolution_feeds_capacity_planning() {
    let w = WorkloadGenerator::new(GeneratorConfig {
        days: 8,
        jobs_per_day: 200,
        n_templates: 15,
        ..Default::default()
    })
    .expect("valid config")
    .generate()
    .expect("generates");
    let evolution = analyze_evolution(&w.trace, 20, 0.15, 3);
    assert!(evolution.days == 8);
    assert!(!evolution.templates.is_empty());
    // Volume forecast is usable and non-negative.
    let forecast = evolution.forecast_volume(3);
    assert_eq!(forecast.len(), 3);
    assert!(forecast.iter().all(|&v| v >= 0.0));
    // Steady generator → forecast near the observed daily mean.
    let mean = evolution.daily_volume.iter().sum::<f64>() / evolution.days as f64;
    assert!((forecast[0] - mean).abs() < mean * 0.2);
}

#[test]
fn rai_gate_blocks_unfair_rollout_and_passes_fair_one() {
    let fair: Vec<Decision> = (0..30)
        .map(|i| Decision {
            predicted_perf: 80.0,
            baseline_perf: 100.0,
            predicted_cost: 10.0,
            baseline_cost: 10.0,
            group: i % 3,
        })
        .collect();
    let mut assessment = Assessment::standard("steering-v2");
    assessment.run_automated(&fair);
    assessment.attest("privacy-review", true, "");
    assessment.attest("transparency-docs", true, "");
    assert_eq!(assessment.status(), AssessmentStatus::Approved);

    // One group left behind → rejected without any manual input needed.
    let unfair: Vec<Decision> = (0..30)
        .map(|i| Decision {
            predicted_perf: if i % 3 == 2 { 103.0 } else { 60.0 },
            baseline_perf: 100.0,
            predicted_cost: 10.0,
            baseline_cost: 10.0,
            group: i % 3,
        })
        .collect();
    let mut assessment = Assessment::standard("steering-v3");
    assessment.run_automated(&unfair);
    assert_eq!(assessment.status(), AssessmentStatus::Rejected);
}
