//! Cross-crate chaos suite: the system under seeded fault injection.
//!
//! Four properties, per ISSUE 2:
//! 1. determinism — the same fault seed produces byte-identical outcomes;
//! 2. checkpoint safety — checkpointed stages never recompute after
//!    injected restarts;
//! 3. guardrail safety — `GuardrailSet::check` blocks regressions coming
//!    from poisoned models;
//! 4. graceful degradation — no fault schedule, however hostile or
//!    malformed, panics the stack.

use autonomous_data_services::core::feedback::{
    FeedbackLoop, LoopConfig, ModelRegistry, MonitorVerdict,
};
use autonomous_data_services::core::guardrails::{Decision, GuardrailSet, Verdict};
use autonomous_data_services::engine::cost::CostModel;
use autonomous_data_services::engine::exec::ClusterConfig;
use autonomous_data_services::engine::physical::{StageDag, StageId};
use autonomous_data_services::faultsim::{
    ChaosRunner, DelayedFeedback, FaultCause, FaultConfig, FaultEvent, FaultInjector,
    FaultSchedule, ModelFaults, Served,
};
use autonomous_data_services::infra::machine::{MachineFleet, SkuSpec};
use autonomous_data_services::learned::cost::{CostEnsemble, CostTrainConfig};
use autonomous_data_services::telemetry::schema::SemanticSchema;
use autonomous_data_services::telemetry::TelemetryStore;
use autonomous_data_services::workload::gen::{GeneratorConfig, WorkloadGenerator};
use proptest::prelude::*;
use std::collections::HashSet;

fn workload() -> autonomous_data_services::workload::gen::GeneratedWorkload {
    WorkloadGenerator::new(GeneratorConfig {
        days: 2,
        jobs_per_day: 40,
        ..Default::default()
    })
    .expect("valid config")
    .generate()
    .expect("generates")
}

fn dags(w: &autonomous_data_services::workload::gen::GeneratedWorkload, n: usize) -> Vec<StageDag> {
    let cm = CostModel::default();
    w.trace
        .jobs()
        .iter()
        .take(n)
        .map(|j| StageDag::compile(&j.plan, &w.catalog, &cm).expect("compiles"))
        .collect()
}

// ---------------------------------------------------------------- property 1

/// Same seed ⇒ identical `ExecReport`s, down to the serialized bytes; a
/// different seed diverges somewhere across the job set.
#[test]
fn chaos_same_seed_produces_identical_exec_reports() {
    let w = workload();
    let dags = dags(&w, 12);
    let cluster = ClusterConfig::default();
    let runner = ChaosRunner::new(cluster, f64::INFINITY).expect("valid cluster");

    let run_all = |seed: u64| -> Vec<String> {
        let injector = FaultInjector::new(seed, FaultConfig::standard());
        dags.iter()
            .enumerate()
            .map(|(i, dag)| {
                let schedule = injector.schedule_for(i as u64, cluster.machines);
                let checkpointed: HashSet<StageId> = dag.stages().iter().map(|s| s.id).collect();
                let outcome = runner.run_job(dag, &checkpointed, &schedule).expect("runs");
                serde_json::to_string(&outcome).expect("serializes")
            })
            .collect()
    };

    let a = run_all(42);
    let b = run_all(42);
    assert_eq!(a, b, "same seed must replay byte-identically");
    let c = run_all(43);
    assert_ne!(a, c, "different seeds must diverge over 12 jobs");
}

// ---------------------------------------------------------------- property 2

/// A checkpointed stage that completed before a fault is never executed
/// again — across every seed, schedule and checkpoint subset tried.
#[test]
fn chaos_checkpointed_stages_never_recompute_after_restarts() {
    let w = workload();
    let dags = dags(&w, 8);
    let cluster = ClusterConfig::default();
    // Make faults certain so every job actually restarts.
    let config = FaultConfig {
        task_crash_rate: 1.0,
        machine_loss_rate: 1.0,
        ..FaultConfig::standard()
    };
    let runner = ChaosRunner::new(cluster, f64::INFINITY).expect("valid cluster");
    for seed in 0..8u64 {
        let injector = FaultInjector::new(seed, config);
        for (i, dag) in dags.iter().enumerate() {
            let schedule = injector.schedule_for(i as u64, cluster.machines);
            // All checkpointed, half checkpointed, none checkpointed.
            let all: HashSet<StageId> = dag.stages().iter().map(|s| s.id).collect();
            let half: HashSet<StageId> = dag
                .stages()
                .iter()
                .map(|s| s.id)
                .filter(|id| id.0 % 2 == 0)
                .collect();
            for ckpt in [&all, &half, &HashSet::new()] {
                let outcome = runner.run_job(dag, ckpt, &schedule).expect("runs");
                assert_eq!(
                    outcome.recomputed_checkpointed, 0,
                    "seed {seed} job {i}: checkpointed stage recomputed"
                );
                if !schedule.is_empty() {
                    assert!(outcome.attempts >= 2, "faults must actually fire");
                }
            }
        }
    }
}

/// ISSUE 3 satellite: the restart loop used to swallow *why* each attempt
/// died. Every injected fault now surfaces as a typed `AttemptFailure`
/// carrying its cause, strike fraction and surviving-stage count, and the
/// causes serialize with the outcome so recorded baselines capture them.
#[test]
fn chaos_attempt_failures_carry_typed_causes() {
    let w = workload();
    let dags = dags(&w, 6);
    let cluster = ClusterConfig::default();
    let config = FaultConfig {
        task_crash_rate: 1.0,
        machine_loss_rate: 1.0,
        ..FaultConfig::standard()
    };
    let runner = ChaosRunner::new(cluster, f64::INFINITY).expect("valid cluster");
    let injector = FaultInjector::new(11, config);
    let mut causes_seen: HashSet<&'static str> = HashSet::new();
    for (i, dag) in dags.iter().enumerate() {
        let schedule = injector.schedule_for(i as u64, cluster.machines);
        let all: HashSet<StageId> = dag.stages().iter().map(|s| s.id).collect();
        let outcome = runner.run_job(dag, &all, &schedule).expect("runs");
        assert_eq!(
            outcome.attempt_failures.len(),
            outcome.injected,
            "job {i}: every injected fault must surface its cause"
        );
        for (idx, failure) in outcome.attempt_failures.iter().enumerate() {
            assert_eq!(failure.attempt, idx + 1, "failures arrive in attempt order");
            assert!((0.0..=1.0).contains(&failure.at));
            assert!(failure.surviving_stages <= dag.len());
            causes_seen.insert(failure.cause.kind());
            match failure.cause {
                FaultCause::TaskCrash => {}
                FaultCause::MachineLoss { machine } => assert!(machine < cluster.machines),
                FaultCause::TempExhaustion { hotspot } => assert!(hotspot < cluster.machines),
            }
        }
        let json = serde_json::to_string(&outcome).expect("serializes");
        assert!(json.contains("attempt_failures"));
    }
    assert!(
        causes_seen.contains("task_crash") && causes_seen.contains("machine_loss"),
        "forced crash+loss rates must exercise both causes, saw {causes_seen:?}"
    );
}

/// With everything checkpointed, recovery is never slower than with
/// nothing checkpointed — the paper's reason to checkpoint at all.
#[test]
fn chaos_full_checkpointing_never_hurts_under_faults() {
    let w = workload();
    let dags = dags(&w, 6);
    let cluster = ClusterConfig::default();
    let runner = ChaosRunner::new(cluster, f64::INFINITY).expect("valid cluster");
    let injector = FaultInjector::new(
        5,
        FaultConfig {
            task_crash_rate: 1.0,
            ..FaultConfig::standard()
        },
    );
    for (i, dag) in dags.iter().enumerate() {
        let schedule = injector.schedule_for(i as u64, cluster.machines);
        let all: HashSet<StageId> = dag.stages().iter().map(|s| s.id).collect();
        let ckpt = runner.run_job(dag, &all, &schedule).expect("runs");
        let bare = runner
            .run_job(dag, &HashSet::new(), &schedule)
            .expect("runs");
        assert!(ckpt.total_latency <= bare.total_latency + 1e-9, "job {i}");
    }
}

// ---------------------------------------------------------------- property 3

/// A poisoned cost model inflates predicted performance; `GuardrailSet`
/// blocks every decision the poison pushes past tolerance, while the same
/// decisions under the clean model pass.
#[test]
fn chaos_guardrails_block_poisoned_model_regressions() {
    let w = workload();
    let history: Vec<_> = w
        .trace
        .jobs()
        .iter()
        .take(60)
        .map(|j| j.plan.clone())
        .collect();
    let (ensemble, _) = CostEnsemble::train(&w.catalog, &history, CostTrainConfig::default());
    let guards = GuardrailSet::standard();
    let faults = ModelFaults::new(3, 0.0, 0.0, FaultConfig::standard().poison_factor);
    assert!(
        faults.poison_factor() > 1.05,
        "poison must exceed regression tolerance"
    );

    let mut clean_allowed = 0usize;
    let mut poisoned_blocked = 0usize;
    let mut evaluated = 0usize;
    for job in w.trace.jobs().iter().skip(60).take(40) {
        let clean = ensemble.predict(&job.plan);
        let baseline = clean; // an honest model predicts the baseline
        let decision = |predicted: f64| Decision {
            predicted_perf: predicted,
            baseline_perf: baseline,
            predicted_cost: 1.0,
            baseline_cost: 1.0,
            group: 0,
        };
        evaluated += 1;
        if guards.check(&decision(clean)) == Verdict::Allow {
            clean_allowed += 1;
        }
        match guards.check(&decision(faults.poisoned(clean))) {
            Verdict::Block(reason) => {
                poisoned_blocked += 1;
                assert!(reason.contains("regression"), "wrong guard fired: {reason}");
            }
            Verdict::Allow => panic!("poisoned regression slipped past the guardrails"),
        }
    }
    assert_eq!(clean_allowed, evaluated, "clean predictions must all pass");
    assert_eq!(poisoned_blocked, evaluated);
}

/// The feedback loop detects a poisoned deployment even when observations
/// arrive late, and rolls back to the clean version.
#[test]
fn chaos_delayed_feedback_still_rolls_back_poisoned_model() {
    let poison = 3.5f64;
    let mut registry = ModelRegistry::new();
    registry.deploy(1.0f64, 0.02); // clean multiplier
    registry.deploy(poison, 0.02); // poisoned deployment with optimistic error
    let mut monitor = FeedbackLoop::new(LoopConfig {
        window: 10,
        ..Default::default()
    });
    let mut pipe = DelayedFeedback::new(FaultConfig::standard().feedback_delay);

    let mut rolled_back_at = None;
    for step in 0..200usize {
        let current = registry.current().expect("deployed");
        let actual = 1.0; // ground truth unchanged
        let prediction = current.model * actual;
        if let Some((p, a)) = pipe.push(prediction, actual) {
            if monitor.observe(p, a, current.deployment_error) == MonitorVerdict::Rollback {
                registry.rollback();
                monitor.reset();
                rolled_back_at = Some(step);
                break;
            }
        }
    }
    let step = rolled_back_at.expect("monitor must catch the poisoned model");
    // Delay postpones detection past the bare window but cannot prevent it.
    assert!(step >= 10, "rollback cannot precede a full window");
    assert_eq!(registry.current().expect("deployed").model, 1.0);
}

// ---------------------------------------------------------------- property 4

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any schedule — including machine indices far out of range and strike
    /// fractions outside [0, 1] — completes without panicking, fires at
    /// most its own length, and still produces a positive-latency report.
    #[test]
    fn chaos_arbitrary_schedules_never_panic(
        seed in 0u64..1_000,
        events in proptest::collection::vec(
            prop_oneof![
                (0.0f64..1.5).prop_map(|at| FaultEvent::TaskCrash { at }),
                (0usize..64, -0.2f64..1.2)
                    .prop_map(|(machine, at)| FaultEvent::MachineLoss { machine, at }),
                (0.0f64..1.0).prop_map(|at| FaultEvent::TempExhaustion { at }),
            ],
            0..6,
        ),
        capacity_exp in 0u32..12,
    ) {
        let w = WorkloadGenerator::new(GeneratorConfig {
            days: 1,
            jobs_per_day: 10,
            seed,
            ..Default::default()
        })
        .expect("valid config")
        .generate()
        .expect("generates");
        let cm = CostModel::default();
        let job = &w.trace.jobs()[(seed % 10) as usize];
        let dag = StageDag::compile(&job.plan, &w.catalog, &cm).expect("compiles");
        let runner = ChaosRunner::new(ClusterConfig::default(), 10f64.powi(capacity_exp as i32))
            .expect("valid cluster");
        let schedule = FaultSchedule { events: events.clone() };
        let half: HashSet<StageId> =
            dag.stages().iter().map(|s| s.id).filter(|id| id.0 % 2 == 0).collect();
        let outcome = runner.run_job(&dag, &half, &schedule).expect("never errors");
        prop_assert!(outcome.injected <= events.len());
        prop_assert_eq!(outcome.attempts, outcome.injected + 1);
        prop_assert_eq!(outcome.recomputed_checkpointed, 0);
        // A fault striking at fraction >= 1.0 hits a job that already
        // finished, so the final attempt may legitimately run nothing —
        // but some attempt always did real work.
        prop_assert!(outcome.total_latency > 0.0);
        prop_assert!(outcome.final_report.latency >= 0.0);
        prop_assert!(outcome.total_latency >= outcome.final_report.latency - 1e-9);
    }

    /// Telemetry perturbed under any rate still flows through the semantic
    /// schema into the store without violating its ordering contract, and
    /// the dropout rate observed matches the configured one loosely.
    #[test]
    fn chaos_perturbed_telemetry_always_ingestible(
        seed in 0u64..1_000,
        dropout in 0.0f64..0.9,
        burst_rate in 0.0f64..0.3,
        burst_len in 0usize..8,
    ) {
        let fleet = MachineFleet::new(SkuSpec::standard_fleet(), 3);
        let clean = fleet.generate_telemetry(24, 0.05, seed);
        let injector = FaultInjector::new(
            seed,
            FaultConfig {
                telemetry_dropout: dropout,
                outlier_burst_rate: burst_rate,
                outlier_burst_len: burst_len,
                ..FaultConfig::standard()
            },
        );
        let (perturbed, stats) = injector.telemetry_faults().perturb(&clean, 0);
        prop_assert_eq!(stats.dropped + stats.corrupted + stats.clean, clean.len());
        let store = TelemetryStore::new();
        let written = fleet
            .emit_to_store(&perturbed, &SemanticSchema::standard(), &store)
            .expect("perturbed telemetry must stay ingestible");
        prop_assert_eq!(written, perturbed.len() * 3);
    }

    /// Model serving under any staleness/timeout mix degrades gracefully:
    /// every call yields a usable value via the fallback path, and the
    /// fresh-path values are exact.
    #[test]
    fn chaos_model_serving_always_yields_usable_values(
        seed in 0u64..1_000,
        staleness in 0.0f64..1.0,
        timeout in 0.0f64..1.0,
    ) {
        let mut faults = ModelFaults::new(seed, staleness, timeout, 1.0);
        let fallback = 123.0;
        for i in 0..100 {
            let clean = 1.0 + i as f64;
            let served = faults.serve(clean);
            let value = served.value_or(fallback);
            prop_assert!(value.is_finite() && value > 0.0);
            if let Served::Fresh(v) = served {
                prop_assert_eq!(v, clean);
            }
        }
    }
}

// ---------------------------------------------------------------- property 5

/// Runs the gateway breaker scenario once: heavy injected timeouts open the
/// per-model breaker, the run completes on the heuristic fallback, faults
/// clear, and half-open probes close the breaker again. Returns the
/// serialized flight-recorder trace (breaker transitions included).
fn gateway_breaker_scenario(seed: u64) -> (String, autonomous_data_services::serve::GatewayStats) {
    use autonomous_data_services::obs::Obs;
    use autonomous_data_services::serve::{BreakerState, FnModel, Gateway, GatewayConfig, Source};
    use std::sync::Arc;

    let obs = Obs::recording();
    let mut config = GatewayConfig::standard();
    config.cache_capacity = 0; // every request must face the fault channel
    let gateway = Gateway::with_obs(config, obs.clone());
    let handle = gateway.register("chaos/cardinality", |f: &[f64]| f[0] + 1.0);
    gateway
        .publish(handle, Arc::new(FnModel(|f: &[f64]| f[0] * 2.0)), 0.0)
        .expect("registered");

    // Phase 1: a hostile fault channel — most calls time out or serve
    // stale. The breaker must open; every answer must stay usable.
    gateway
        .inject_faults(handle, ModelFaults::new(seed, 0.3, 0.5, 1.0))
        .expect("registered");
    let mut opened = false;
    for t in 0..120u64 {
        let p = gateway
            .predict(handle, &[(t % 13) as f64], t as f64)
            .expect("registered");
        assert!(p.value.is_finite(), "degraded serving must stay usable");
        if gateway.breaker_state(handle).expect("registered") == BreakerState::Open {
            opened = true;
        }
    }
    assert!(opened, "sustained timeouts must open the breaker");

    // Phase 2: the model recovers. Half-open probes (after the cooldown)
    // must close the breaker and hand serving back to the model.
    gateway.clear_faults(handle).expect("registered");
    let mut last_source = None;
    for t in 200..260u64 {
        let p = gateway
            .predict(handle, &[(t % 13) as f64], t as f64)
            .expect("registered");
        assert!(p.value.is_finite());
        last_source = Some(p.source);
    }
    assert_eq!(
        gateway.breaker_state(handle).expect("registered"),
        BreakerState::Closed,
        "probes against the recovered model must close the breaker"
    );
    assert_eq!(last_source, Some(Source::Model));

    let stats = gateway.stats();
    let trace = obs.snapshot();
    assert!(
        trace
            .events
            .iter()
            .any(|e| e.name == "breaker_transition" && e.field("to") == Some("open")),
        "the trace must record the breaker opening"
    );
    assert!(
        trace
            .events
            .iter()
            .any(|e| e.name == "breaker_transition" && e.field("to") == Some("closed")),
        "the trace must record the breaker closing"
    );
    (
        serde_json::to_string(&trace).expect("trace serializes"),
        stats,
    )
}

/// Injected model timeouts open the circuit breaker, the run completes on
/// the registered heuristic fallback, and the same seed replays a
/// byte-identical trace — breaker transitions included. A different seed
/// draws a different fault pattern.
#[test]
fn chaos_gateway_breaker_trips_and_replays_byte_identically() {
    let (trace_a, stats_a) = gateway_breaker_scenario(7);
    let (trace_b, stats_b) = gateway_breaker_scenario(7);
    assert_eq!(trace_a, trace_b, "same seed must replay byte-identically");
    assert_eq!(stats_a.fallbacks, stats_b.fallbacks);
    assert!(stats_a.fallbacks > 0, "degraded mode must actually engage");
    assert!(stats_a.stale > 0, "staleness channel must actually engage");

    let (trace_c, _) = gateway_breaker_scenario(8);
    assert_ne!(trace_a, trace_c, "a different seed must draw differently");
}
