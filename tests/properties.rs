//! Cross-crate property-based tests: invariants that must hold for *any*
//! plan/workload the generators can produce.

use autonomous_data_services::engine::cardinality::{
    CardinalityModel, DefaultEstimator, TrueCardinality,
};
use autonomous_data_services::engine::cost::CostModel;
use autonomous_data_services::engine::physical::StageDag;
use autonomous_data_services::engine::rules::{Optimizer, RuleSet, ALL_RULES};
use autonomous_data_services::workload::catalog::Catalog;
use autonomous_data_services::workload::plan::{CmpOp, Comparison, LogicalPlan, Predicate};
use autonomous_data_services::workload::signature::{strict_signature, template_signature};
use proptest::prelude::*;

/// Strategy producing arbitrary valid plans over the standard catalog.
fn arb_plan() -> impl Strategy<Value = LogicalPlan> {
    let tables = ["events", "sessions", "users", "regions", "telemetry"];
    let leaf = (0..tables.len()).prop_map(move |i| LogicalPlan::scan(tables[i]));
    leaf.prop_recursive(4, 24, 2, move |inner| {
        prop_oneof![
            // Filter: clause columns constrained to the narrowest table (2
            // columns) so the plan validates regardless of base table.
            (
                inner.clone(),
                0usize..2,
                prop_oneof![Just(CmpOp::Le), Just(CmpOp::Ge), Just(CmpOp::Eq)],
                -5i64..1000
            )
                .prop_map(|(child, col, op, v)| child
                    .filter(Predicate::new(vec![Comparison::new(col, op, v)]))),
            (inner.clone()).prop_map(|child| child.project(vec![0, 1])),
            (inner.clone()).prop_map(|child| child.aggregate(vec![0])),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| LogicalPlan::join(l, r, 0, 0)),
            (inner.clone(), inner).prop_map(|(l, r)| LogicalPlan::union(l, r)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any valid plan gets positive, finite cardinality and cost estimates
    /// from both models, with per-node annotations covering every node.
    #[test]
    fn estimates_are_finite_and_positive(plan in arb_plan()) {
        let catalog = Catalog::standard();
        prop_assume!(plan.validate(&catalog).is_ok());
        for model in [&DefaultEstimator::new(&catalog) as &dyn CardinalityModel,
                      &TrueCardinality::new(&catalog)] {
            let ann = model.annotate(&plan).expect("validated plan annotates");
            prop_assert_eq!(ann.len(), plan.node_count());
            for rows in &ann {
                prop_assert!(rows.is_finite() && *rows >= 1.0);
            }
            let cost = CostModel::default().total_cost(&plan, model).expect("costs");
            prop_assert!(cost.is_finite() && cost >= 0.0);
        }
    }

    /// The optimizer is safe under any rule subset: output validates, cost
    /// never rises, and disabled-rule runs leave the plan untouched.
    #[test]
    fn optimizer_safe_under_any_ruleset(plan in arb_plan(), mask in 0u64..(1 << ALL_RULES.len())) {
        let catalog = Catalog::standard();
        prop_assume!(plan.validate(&catalog).is_ok());
        let est = DefaultEstimator::new(&catalog);
        let optimizer = Optimizer::default();
        let before = CostModel::default().total_cost(&plan, &est).expect("costs");
        let out = optimizer.optimize(&plan, RuleSet(mask), &est).expect("optimizes");
        prop_assert!(out.plan.validate(&catalog).is_ok());
        prop_assert!(out.estimated_cost <= before + 1e-6);
        if mask == 0 {
            prop_assert_eq!(out.plan, plan);
        }
    }

    /// Physical compilation covers every node with topologically valid
    /// edges, and signatures are stable under clone.
    #[test]
    fn compilation_and_signatures(plan in arb_plan()) {
        let catalog = Catalog::standard();
        prop_assume!(plan.validate(&catalog).is_ok());
        let dag = StageDag::compile(&plan, &catalog, &CostModel::default()).expect("compiles");
        prop_assert_eq!(dag.len(), plan.node_count());
        for (i, stage) in dag.stages().iter().enumerate() {
            prop_assert_eq!(stage.id.0, i);
            for input in &stage.inputs {
                prop_assert!(input.0 < i);
            }
        }
        let copy = plan.clone();
        prop_assert_eq!(strict_signature(&plan), strict_signature(&copy));
        prop_assert_eq!(template_signature(&plan), template_signature(&copy));
    }

    /// Literal rewrites preserve the template signature and structure.
    #[test]
    fn template_signature_invariant_under_literals(plan in arb_plan(), shift in -100i64..100) {
        let rewritten = plan.map_literals(&mut |v| v.saturating_add(shift));
        prop_assert_eq!(template_signature(&plan), template_signature(&rewritten));
        prop_assert_eq!(plan.node_count(), rewritten.node_count());
        prop_assert_eq!(plan.height(), rewritten.height());
    }
}

mod exec_properties {
    use autonomous_data_services::engine::cost::CostModel;
    use autonomous_data_services::engine::exec::{ClusterConfig, SimOptions, Simulator};
    use autonomous_data_services::engine::physical::StageDag;
    use autonomous_data_services::workload::catalog::Catalog;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// For any valid plan and cluster size, the simulated schedule obeys
        /// the physics: dependencies respected, latency at least the
        /// critical-path bound, CPU time at least total work / speed.
        #[test]
        fn schedule_physics(
            plan in super::arb_plan(),
            machines in 1usize..24,
            slots in 1usize..6,
        ) {
            let catalog = Catalog::standard();
            prop_assume!(plan.validate(&catalog).is_ok());
            let config = ClusterConfig {
                machines,
                slots_per_machine: slots,
                ..Default::default()
            };
            let sim = Simulator::new(config).expect("valid cluster");
            let dag = StageDag::compile(&plan, &catalog, &CostModel::default()).expect("compiles");
            let report = sim.run(&dag, &SimOptions::default()).expect("simulates");

            for stage in dag.stages() {
                for input in &stage.inputs {
                    prop_assert!(
                        report.stage_start[stage.id.0] >= report.stage_finish[input.0] - 1e-9
                    );
                }
                prop_assert!(report.stage_finish[stage.id.0] >= report.stage_start[stage.id.0]);
            }
            // Work conservation: CPU seconds >= pure work / speed (overheads add).
            let min_cpu = dag.total_work() / config.work_per_second;
            prop_assert!(report.total_cpu_seconds >= min_cpu - 1e-6);
            // Latency >= the longest single task (stages parallelize their
            // work across tasks, so the per-stage bound is work / tasks).
            let longest_task = dag
                .stages()
                .iter()
                .map(|st| st.work / st.tasks as f64 / config.work_per_second)
                .fold(0.0f64, f64::max);
            prop_assert!(report.latency >= longest_task - 1e-6);
            // Temp peaks are non-negative and bounded by total output bytes.
            let total_bytes: f64 = dag.stages().iter().map(|s| s.output_bytes).sum();
            for &peak in &report.machine_temp_peak {
                // Relative tolerance: byte totals reach 1e10+, where f64
                // accumulation error exceeds any absolute epsilon.
                prop_assert!(peak >= 0.0 && peak <= total_bytes * (1.0 + 1e-9) + 1.0);
            }
        }

        /// Checkpointing every stage never increases the hotspot and never
        /// slows recovery.
        #[test]
        fn full_checkpointing_dominates(plan in super::arb_plan()) {
            use std::collections::HashSet;
            let catalog = Catalog::standard();
            prop_assume!(plan.validate(&catalog).is_ok());
            let sim = Simulator::new(ClusterConfig::default()).expect("valid");
            let dag = StageDag::compile(&plan, &catalog, &CostModel::default()).expect("compiles");
            let all: HashSet<_> = dag.stages().iter().map(|s| s.id).collect();
            let plain = sim.run(&dag, &SimOptions::default()).expect("simulates");
            let ckpt = sim
                .run(&dag, &SimOptions { checkpointed: all.clone(), precomputed: HashSet::new() })
                .expect("simulates");
            prop_assert!(ckpt.hotspot_peak() <= plain.hotspot_peak() + 1e-6);
            let (orig, recovery) = sim.run_with_failure(&dag, &all, 0.7).expect("simulates");
            prop_assert!(recovery.latency <= orig.latency + 1e-6);
        }
    }
}

mod interchange_properties {
    use autonomous_data_services::workload::interchange::{export_plan, import_plan};
    use autonomous_data_services::workload::signature::strict_signature;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any plan survives the interchange round trip exactly.
        #[test]
        fn round_trip_exact(plan in super::arb_plan()) {
            let json = export_plan("prop-test", &plan).expect("exports");
            let back = import_plan(&json).expect("imports");
            prop_assert_eq!(strict_signature(&back), strict_signature(&plan));
            prop_assert_eq!(back, plan);
        }
    }
}
