//! Kernel-equivalence suite, per ISSUE 9: the four time owners that were
//! ported onto the `simkern` discrete-event kernel must reproduce their
//! pre-kernel blocking loops *byte for byte* — same reports (down to the
//! serialized JSON) and same exported obs traces — across the seeded
//! chaos drill at seeds 7, 21 and 42.
//!
//! Each legacy loop is kept in-tree as a `*_legacy` reference
//! implementation precisely so this suite stays executable: any drift in
//! the kernel ports (a wake one ulp off a decision instant, a reordered
//! tie) shows up here as a byte diff, not as a silent behaviour change.

use autonomous_data_services::engine::cost::CostModel;
use autonomous_data_services::engine::exec::{ClusterConfig, SimOptions, Simulator};
use autonomous_data_services::engine::physical::{StageDag, StageId};
use autonomous_data_services::faultsim::{ChaosRunner, FaultConfig, FaultInjector};
use autonomous_data_services::obs::Obs;
use autonomous_data_services::pipeline::{schedule_legacy, schedule_with_obs, Policy};
use autonomous_data_services::workload::gen::{
    GeneratedWorkload, GeneratorConfig, WorkloadGenerator,
};
use std::collections::HashSet;

/// The pinned drill seeds from the acceptance criteria.
const SEEDS: [u64; 3] = [7, 21, 42];

fn workload(seed: u64) -> GeneratedWorkload {
    WorkloadGenerator::new(GeneratorConfig {
        days: 2,
        jobs_per_day: 40,
        seed,
        ..Default::default()
    })
    .expect("valid config")
    .generate()
    .expect("generates")
}

fn dags(w: &GeneratedWorkload, n: usize) -> Vec<StageDag> {
    let cm = CostModel::default();
    w.trace
        .jobs()
        .iter()
        .take(n)
        .map(|j| StageDag::compile(&j.plan, &w.catalog, &cm).expect("compiles"))
        .collect()
}

// ------------------------------------------------------------ chaos drill

/// Runs the full chaos drill at one seed through either the kernel path or
/// the legacy loop, with a fresh recording trace, and returns the
/// serialized outcomes plus the exported trace bytes.
fn drill(seed: u64, legacy: bool) -> (Vec<String>, String) {
    let w = workload(seed);
    let dags = dags(&w, 10);
    let cluster = ClusterConfig::default();
    let obs = Obs::recording();
    // A cramped temp capacity so TempExhaustion events genuinely fire.
    let runner = ChaosRunner::with_obs(cluster, 1.0, obs.clone()).expect("valid cluster");
    let injector = FaultInjector::new(seed, FaultConfig::standard());
    let outcomes = dags
        .iter()
        .enumerate()
        .map(|(i, dag)| {
            let schedule = injector.schedule_for(i as u64, cluster.machines);
            // Checkpoint every other stage so restarts exercise both the
            // persisted and the recompute paths.
            let ckpt: HashSet<StageId> = dag
                .stages()
                .iter()
                .map(|s| s.id)
                .filter(|id| id.0 % 2 == 0)
                .collect();
            let outcome = if legacy {
                runner.run_job_legacy(dag, &ckpt, &schedule)
            } else {
                runner.run_job(dag, &ckpt, &schedule)
            }
            .expect("drill runs");
            serde_json::to_string(&outcome).expect("serializes")
        })
        .collect();
    (outcomes, obs.export_json())
}

/// The tentpole pin: at seeds 7/21/42 the kernel-backed chaos drill
/// produces byte-identical outcomes *and* byte-identical recorded traces
/// to the pre-kernel blocking loop.
#[test]
fn chaos_drill_kernel_matches_legacy_bytes_at_pinned_seeds() {
    for seed in SEEDS {
        let (legacy_outcomes, legacy_trace) = drill(seed, true);
        let (kernel_outcomes, kernel_trace) = drill(seed, false);
        assert_eq!(
            legacy_outcomes, kernel_outcomes,
            "seed {seed}: chaos outcomes must be byte-identical"
        );
        assert_eq!(
            legacy_trace, kernel_trace,
            "seed {seed}: exported obs traces must be byte-identical"
        );
    }
}

// ------------------------------------------------------------ engine exec

/// The cluster simulator's kernel path (`run`) against the legacy loop
/// (`run_legacy`): identical `ExecReport` bytes and identical traces, over
/// plain runs and checkpoint/precompute variants.
#[test]
fn engine_exec_kernel_matches_legacy_bytes() {
    for seed in SEEDS {
        let w = workload(seed);
        let dags = dags(&w, 10);
        let run_all = |legacy: bool| -> (Vec<String>, String) {
            let obs = Obs::recording();
            let sim = Simulator::with_obs(ClusterConfig::default(), obs.clone()).expect("valid");
            let reports = dags
                .iter()
                .map(|dag| {
                    let half: HashSet<StageId> = dag
                        .stages()
                        .iter()
                        .map(|s| s.id)
                        .filter(|id| id.0 % 2 == 0)
                        .collect();
                    let options = SimOptions {
                        checkpointed: half,
                        precomputed: HashSet::new(),
                    };
                    let report = if legacy {
                        sim.run_legacy(dag, &options)
                    } else {
                        sim.run(dag, &options)
                    }
                    .expect("runs");
                    serde_json::to_string(&report).expect("serializes")
                })
                .collect();
            (reports, obs.export_json())
        };
        let (legacy_reports, legacy_trace) = run_all(true);
        let (kernel_reports, kernel_trace) = run_all(false);
        assert_eq!(
            legacy_reports, kernel_reports,
            "seed {seed}: exec reports must be byte-identical"
        );
        assert_eq!(
            legacy_trace, kernel_trace,
            "seed {seed}: exec traces must be byte-identical"
        );
    }
}

// --------------------------------------------------------- pipeline sched

/// The pipeline scheduler's kernel path against the legacy loop: identical
/// `ScheduleReport` bytes and identical traces, across both policies and
/// several slot counts.
#[test]
fn pipeline_sched_kernel_matches_legacy_bytes() {
    for seed in SEEDS {
        let w = workload(seed);
        for policy in [Policy::Fifo, Policy::CriticalPath] {
            for slots in [1usize, 4, 16] {
                let run = |legacy: bool| -> (String, String) {
                    let obs = Obs::recording();
                    let report = if legacy {
                        schedule_legacy(&w.trace, &w.catalog, slots, 1e7, policy, &obs)
                    } else {
                        schedule_with_obs(&w.trace, &w.catalog, slots, 1e7, policy, &obs)
                    }
                    .expect("schedules");
                    (
                        serde_json::to_string(&report).expect("serializes"),
                        obs.export_json(),
                    )
                };
                let (legacy_report, legacy_trace) = run(true);
                let (kernel_report, kernel_trace) = run(false);
                assert_eq!(
                    legacy_report, kernel_report,
                    "seed {seed} {policy:?} slots {slots}: schedule reports must match"
                );
                assert_eq!(
                    legacy_trace, kernel_trace,
                    "seed {seed} {policy:?} slots {slots}: schedule traces must match"
                );
            }
        }
    }
}
