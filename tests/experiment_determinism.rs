//! The experiment harness itself is deterministic: rerunning an experiment
//! yields bit-identical rows (the property EXPERIMENTS.md relies on).

use adas_bench::experiments;

fn rows_json(run: fn() -> Vec<adas_bench::Row>) -> String {
    serde_json::to_string(&run()).expect("rows serialize")
}

#[test]
fn figure_experiments_are_deterministic() {
    assert_eq!(
        rows_json(experiments::fig1::run),
        rows_json(experiments::fig1::run)
    );
    assert_eq!(
        rows_json(experiments::fig2::run),
        rows_json(experiments::fig2::run)
    );
}

#[test]
fn service_experiments_are_deterministic() {
    assert_eq!(
        rows_json(experiments::doppler::run),
        rows_json(experiments::doppler::run)
    );
    assert_eq!(
        rows_json(experiments::moneyball::run),
        rows_json(experiments::moneyball::run)
    );
}

#[test]
fn registry_names_are_unique_and_runnable() {
    let registry = experiments::registry();
    let mut names: Vec<&str> = registry.iter().map(|(n, _)| *n).collect();
    let total = names.len();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), total, "duplicate experiment names");
    assert!(total >= 21);
}
