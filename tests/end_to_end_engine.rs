//! End-to-end engine-layer integration: workload generation → analysis →
//! learned components → optimization → simulated execution.

use autonomous_data_services::engine::cardinality::{
    CardinalityModel, DefaultEstimator, TrueCardinality,
};
use autonomous_data_services::engine::cost::CostModel;
use autonomous_data_services::engine::exec::{ClusterConfig, SimOptions, Simulator};
use autonomous_data_services::engine::physical::StageDag;
use autonomous_data_services::engine::rules::{Optimizer, RuleSet};
use autonomous_data_services::learned::cardinality::{LearnedCardinality, TrainConfig};
use autonomous_data_services::learned::cost::{CostEnsemble, CostTrainConfig};
use autonomous_data_services::workload::analyze::WorkloadAnalysis;
use autonomous_data_services::workload::gen::{
    GeneratedWorkload, GeneratorConfig, WorkloadGenerator,
};

fn workload() -> GeneratedWorkload {
    WorkloadGenerator::new(GeneratorConfig {
        days: 6,
        jobs_per_day: 150,
        n_templates: 20,
        ..Default::default()
    })
    .expect("valid config")
    .generate()
    .expect("generation succeeds")
}

#[test]
fn every_generated_plan_compiles_optimizes_and_executes() {
    let w = workload();
    let est = DefaultEstimator::new(&w.catalog);
    let optimizer = Optimizer::default();
    let cost_model = CostModel::default();
    let sim = Simulator::new(ClusterConfig::default()).expect("valid cluster");
    for job in w.trace.jobs().iter().take(100) {
        job.plan
            .validate(&w.catalog)
            .expect("generated plans validate");
        let optimized = optimizer
            .optimize(&job.plan, RuleSet::all(), &est)
            .expect("optimization succeeds");
        optimized
            .plan
            .validate(&w.catalog)
            .expect("optimized plans stay valid");
        let dag = StageDag::compile(&optimized.plan, &w.catalog, &cost_model)
            .expect("compilation succeeds");
        let report = sim
            .run(&dag, &SimOptions::default())
            .expect("execution succeeds");
        assert!(report.latency > 0.0);
        assert!(report.total_cpu_seconds > 0.0);
    }
}

#[test]
fn optimizer_never_worsens_estimated_cost() {
    let w = workload();
    let est = DefaultEstimator::new(&w.catalog);
    let optimizer = Optimizer::default();
    let cost_model = CostModel::default();
    for job in w.trace.jobs().iter().take(100) {
        let before = cost_model
            .total_cost(&job.plan, &est)
            .expect("plan validates");
        let optimized = optimizer
            .optimize(&job.plan, RuleSet::all(), &est)
            .expect("optimization succeeds");
        assert!(
            optimized.estimated_cost <= before + 1e-6,
            "optimization regressed estimated cost: {} -> {}",
            before,
            optimized.estimated_cost
        );
    }
}

#[test]
fn learned_components_train_on_analyzed_workload() {
    let w = workload();
    let analysis = WorkloadAnalysis::analyze(&w.trace);
    assert!(analysis.stats().recurring_fraction > 0.5);

    let plans: Vec<_> = w.trace.jobs().iter().map(|j| j.plan.clone()).collect();
    let (cardinality, card_report) =
        LearnedCardinality::train(&w.catalog, &plans, TrainConfig::default());
    assert!(card_report.learned_q_error <= card_report.default_q_error);

    let (cost, cost_report) = CostEnsemble::train(&w.catalog, &plans, CostTrainConfig::default());
    assert!(cost_report.ensemble_mape <= cost_report.default_mape);

    // The learned estimator must agree with the oracle better than the
    // default on covered plans.
    let truth = TrueCardinality::new(&w.catalog);
    let default = DefaultEstimator::new(&w.catalog);
    let mut learned_better = 0usize;
    let mut covered = 0usize;
    for job in w.trace.jobs() {
        if !cardinality.covers(&job.plan) {
            continue;
        }
        covered += 1;
        let actual = truth.estimate(&job.plan).expect("plan validates");
        let learned_err = (cardinality.estimate(&job.plan).expect("plan validates") / actual)
            .ln()
            .abs();
        let default_err = (default.estimate(&job.plan).expect("plan validates") / actual)
            .ln()
            .abs();
        if learned_err <= default_err + 1e-9 {
            learned_better += 1;
        }
    }
    assert!(covered > 50, "coverage too small: {covered}");
    assert!(
        learned_better as f64 / covered as f64 > 0.8,
        "learned beat default on only {learned_better}/{covered}"
    );
    assert!(cost.micromodel_count() > 0);
}

#[test]
fn steered_ruleset_reduces_true_cost_when_promoted() {
    use autonomous_data_services::learned::steering::{SteeringConfig, SteeringController};
    use autonomous_data_services::workload::signature::template_signature;
    use std::collections::HashMap;

    let w = workload();
    let est = DefaultEstimator::new(&w.catalog);
    let truth = TrueCardinality::new(&w.catalog);
    let cost_model = CostModel::default();
    let optimizer = Optimizer::default();
    let mut by_template: HashMap<_, Vec<_>> = HashMap::new();
    for job in w.trace.jobs() {
        by_template
            .entry(template_signature(&job.plan))
            .or_default()
            .push(&job.plan);
    }
    by_template.retain(|_, v| v.len() >= 10);

    let true_cost = |plan: &autonomous_data_services::workload::plan::LogicalPlan,
                     rules: RuleSet| {
        let o = optimizer
            .optimize(plan, rules, &est)
            .expect("plan validates");
        cost_model
            .total_cost(&o.plan, &truth)
            .expect("plan validates")
    };
    let mut controller = SteeringController::new(RuleSet::all(), SteeringConfig::default());
    for round in 0..50 {
        for (&sig, plans) in &by_template {
            let plan = plans[round % plans.len()];
            let chosen = controller.choose(sig);
            let deployed = controller.deployed(sig);
            let c = true_cost(plan, chosen);
            let d = if chosen == deployed {
                c
            } else {
                true_cost(plan, deployed)
            };
            controller.observe(sig, chosen, c, d);
        }
    }
    // Every promoted template must genuinely be cheaper than the default.
    for (&sig, plans) in &by_template {
        let deployed = controller.deployed(sig);
        if deployed == RuleSet::all() {
            continue;
        }
        let steered: f64 = plans.iter().map(|p| true_cost(p, deployed)).sum();
        let default: f64 = plans.iter().map(|p| true_cost(p, RuleSet::all())).sum();
        assert!(
            steered <= default * 1.01,
            "steered template regressed: {steered} vs {default}"
        );
    }
}
