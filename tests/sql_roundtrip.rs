//! The SQL loop closed in both directions: the generator's workload
//! rendered to SQL templates, compiled back through parse → rewrite →
//! lower, must land on byte-identical signatures — and the downstream
//! autonomy stack (recurring-job detection, cloud-views replay) must not
//! be able to tell the two worlds apart.

use autonomous_data_services::reuse::{replay, ReplayConfig};
use autonomous_data_services::sql::{Frontend, QueryRule, RuleOutcome};
use autonomous_data_services::workload::analyze::WorkloadAnalysis;
use autonomous_data_services::workload::gen::{
    GeneratedWorkload, GeneratorConfig, WorkloadGenerator,
};
use autonomous_data_services::workload::job::Trace;
use autonomous_data_services::workload::signature::{strict_signature, template_signature};
use autonomous_data_services::workload::sqltext::{to_sql, to_sql_template};
use autonomous_data_services::workload::TemplateId;

fn workload() -> GeneratedWorkload {
    WorkloadGenerator::new(GeneratorConfig {
        days: 3,
        jobs_per_day: 120,
        n_templates: 16,
        ..Default::default()
    })
    .expect("valid config")
    .generate()
    .expect("generation succeeds")
}

#[test]
fn generator_sql_compiles_to_byte_identical_signatures() {
    let w = workload();
    let frontend = Frontend::new(&w.catalog);
    let sql_jobs = w.sql_jobs().expect("every generated plan renders");
    assert_eq!(sql_jobs.len(), w.trace.len());
    for (job, sql_job) in w.trace.jobs().iter().zip(&sql_jobs) {
        assert_eq!(job.id, sql_job.id);
        let compiled = frontend
            .compile(&sql_job.sql, &sql_job.params)
            .unwrap_or_else(|e| panic!("{} failed to compile: {}", job.id, e.render(&sql_job.sql)));
        // Node-for-node plan equality, hence byte-identical signatures.
        assert_eq!(compiled.plan, job.plan, "{} plan mismatch", job.id);
        assert_eq!(
            strict_signature(&compiled.plan),
            strict_signature(&job.plan)
        );
        assert_eq!(
            template_signature(&compiled.plan),
            template_signature(&job.plan)
        );
    }
}

#[test]
fn literal_sql_round_trip_is_also_exact() {
    let w = workload();
    let frontend = Frontend::new(&w.catalog);
    for job in w.trace.jobs().iter().take(100) {
        let sql = to_sql(&job.plan, &w.catalog).expect("renders");
        let compiled = frontend
            .compile(&sql, &[])
            .unwrap_or_else(|e| panic!("{}", e.render(&sql)));
        assert_eq!(compiled.plan, job.plan);
        // A canonical rendering needs no canonicalization: only analysis
        // rules may report Changed on it.
        assert_eq!(
            compiled.report.outcome(QueryRule::BetweenDesugar),
            Some(RuleOutcome::NotApplicable)
        );
        assert_eq!(
            compiled.report.outcome(QueryRule::ComparisonFlip),
            Some(RuleOutcome::NotApplicable)
        );
        assert_eq!(
            compiled.report.outcome(QueryRule::DerivedTableCollapse),
            Some(RuleOutcome::NotApplicable)
        );
    }
}

#[test]
fn template_text_groups_exactly_like_template_signatures() {
    let w = workload();
    use std::collections::BTreeMap;
    let mut by_text: BTreeMap<String, std::collections::BTreeSet<u64>> = BTreeMap::new();
    for job in w.trace.jobs() {
        if job.template == TemplateId(u64::MAX) {
            continue;
        }
        let (sql, _) = to_sql_template(&job.plan, &w.catalog).expect("renders");
        by_text
            .entry(sql)
            .or_default()
            .insert(template_signature(&job.plan).0);
    }
    // Jobs with the same template text always share one template
    // signature: textual templating is exactly as fine-grained as the
    // signature hash.
    for (text, signatures) in &by_text {
        assert_eq!(signatures.len(), 1, "template text groups split: {text}");
    }
}

#[test]
fn sql_born_trace_is_indistinguishable_downstream() {
    let w = workload();
    let frontend = Frontend::new(&w.catalog);
    let sql_jobs = w.sql_jobs().expect("renders");
    let rebuilt: Vec<_> = w
        .trace
        .jobs()
        .iter()
        .zip(&sql_jobs)
        .map(|(job, sql_job)| {
            let mut clone = job.clone();
            clone.plan = frontend
                .compile(&sql_job.sql, &sql_job.params)
                .expect("compiles")
                .plan;
            clone
        })
        .collect();
    let sql_trace = Trace::new(rebuilt);

    // Recurring-job detection sees the same workload.
    let baseline = WorkloadAnalysis::analyze(&w.trace);
    let from_sql = WorkloadAnalysis::analyze(&sql_trace);
    assert_eq!(baseline, from_sql);
    assert_eq!(baseline.stats(), from_sql.stats());

    // Cloud-views replay selects the same views and reports identical
    // savings.
    let baseline_report =
        replay(&w.trace, &w.catalog, &ReplayConfig::default()).expect("replay runs");
    let sql_report = replay(&sql_trace, &w.catalog, &ReplayConfig::default()).expect("replay runs");
    assert_eq!(baseline_report, sql_report);
}
