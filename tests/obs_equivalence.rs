//! Replay equivalence between the flight recorder's backends.
//!
//! The batched hot-path recorder (`Obs::recording`) earns its speed with
//! ring staging, string interning and pre-resolved handles — none of which
//! may change a single exported byte. This suite drives the same seeded
//! chaos scenario through the old-style direct-mutation reference backend
//! (`Obs::recording_direct`), the batched default, and a batched recorder
//! with a tiny staging ring (forcing many flush boundaries mid-scenario),
//! and pins all three to byte-identical canonical JSON.

use autonomous_data_services::engine::cost::CostModel;
use autonomous_data_services::engine::exec::{ClusterConfig, SimOptions, Simulator};
use autonomous_data_services::engine::physical::{StageDag, StageId};
use autonomous_data_services::faultsim::{ChaosRunner, FaultConfig, FaultInjector};
use autonomous_data_services::obs::{DeploymentKind, Obs};
use autonomous_data_services::service::seagull::{
    generate_fleet, schedule_fleet_with_obs, BackupForecaster,
};
use autonomous_data_services::workload::gen::{GeneratorConfig, WorkloadGenerator};
use std::collections::HashSet;

fn scenario_dags() -> Vec<StageDag> {
    let w = WorkloadGenerator::new(GeneratorConfig {
        days: 1,
        jobs_per_day: 12,
        ..Default::default()
    })
    .expect("valid")
    .generate()
    .expect("generates");
    let cm = CostModel::default();
    w.trace
        .jobs()
        .iter()
        .take(8)
        .map(|j| StageDag::compile(&j.plan, &w.catalog, &cm).expect("compiles"))
        .collect()
}

/// One full seeded scenario: chaos-injected job runs (spans, events,
/// counters, histograms), a seagull fleet sweep (decision records), and a
/// deployment triple (deployment records) — every record kind the trace
/// schema has.
fn drive_scenario(obs: &Obs, dags: &[StageDag], seed: u64) {
    let cluster = ClusterConfig::default();
    let runner = ChaosRunner::with_obs(cluster, f64::INFINITY, obs.clone()).expect("valid cluster");
    let injector = FaultInjector::new(seed, FaultConfig::standard());
    for (i, dag) in dags.iter().enumerate() {
        let schedule = injector.schedule_for(i as u64, cluster.machines);
        let ckpt: HashSet<StageId> = dag
            .stages()
            .iter()
            .map(|s| s.id)
            .filter(|id| id.0 % 2 == 0)
            .collect();
        runner.run_job(dag, &ckpt, &schedule).expect("runs");
    }

    let fleet = generate_fleet(20, 14, 0.6, 0.3, seed);
    schedule_fleet_with_obs(&fleet, BackupForecaster::MlModel, 2, 0.25, obs);

    obs.record_deployment(
        "serve.gateway",
        DeploymentKind::Publish,
        "m",
        1,
        "manual",
        0.5,
    );
    obs.record_deployment(
        "serve.gateway",
        DeploymentKind::CanaryStart,
        "m",
        2,
        "drift",
        1.0,
    );
    obs.record_deployment(
        "serve.gateway",
        DeploymentKind::Rollback,
        "m",
        2,
        "guard_trip",
        2.0,
    );
}

#[test]
fn batched_and_direct_backends_export_byte_identical_traces() {
    let dags = scenario_dags();
    for seed in [7u64, 21, 42] {
        let direct = Obs::recording_direct();
        let batched = Obs::recording();
        // A 3-record ring forces a flush boundary inside nearly every job,
        // so flush-ordering bugs cannot hide behind a large ring.
        let tiny_ring = Obs::recording_with_ring(3);
        drive_scenario(&direct, &dags, seed);
        drive_scenario(&batched, &dags, seed);
        drive_scenario(&tiny_ring, &dags, seed);

        let reference = direct.export_json();
        assert_eq!(
            reference,
            batched.export_json(),
            "seed {seed}: batched backend diverged from the direct reference"
        );
        assert_eq!(
            reference,
            tiny_ring.export_json(),
            "seed {seed}: tiny-ring backend diverged from the direct reference"
        );
        assert!(
            !reference.is_empty() && reference.contains("\"spans\""),
            "seed {seed}: scenario must actually record something"
        );
    }
}

#[test]
fn backends_agree_across_interleaved_snapshots() {
    // Snapshots force flushes at arbitrary points; taking one mid-scenario
    // must not perturb what either backend ultimately exports.
    let dags = scenario_dags();
    let direct = Obs::recording_direct();
    let batched = Obs::recording();
    let cluster = ClusterConfig::default();
    for obs in [&direct, &batched] {
        let sim = Simulator::with_obs(cluster, obs.clone()).expect("valid cluster");
        for (i, dag) in dags.iter().enumerate() {
            sim.run(dag, &SimOptions::default()).expect("simulates");
            if i % 3 == 0 {
                let _ = obs.snapshot();
            }
        }
    }
    assert_eq!(direct.export_json(), batched.export_json());
}

#[test]
fn same_seed_replays_are_byte_identical_per_backend() {
    let dags = scenario_dags();
    for mk in [Obs::recording, Obs::recording_direct] {
        let (a, b) = (mk(), mk());
        drive_scenario(&a, &dags, 21);
        drive_scenario(&b, &dags, 21);
        assert_eq!(a.export_json(), b.export_json());
    }
    let a = Obs::recording();
    let b = Obs::recording();
    drive_scenario(&a, &dags, 21);
    drive_scenario(&b, &dags, 42);
    assert_ne!(
        a.export_json(),
        b.export_json(),
        "different fault seeds must diverge in the trace"
    );
}
