//! Property tests for the `simkern` discrete-event kernel, per ISSUE 9:
//! event ordering is a total order (time, then schedule order), a
//! cancelled event never fires, and the clock is monotone no matter what
//! the components do.

use autonomous_data_services::simkern::{Component, ComponentId, Ctx, Simulation};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// Records every dispatch it receives as `(fire_time, payload)`.
#[derive(Default)]
struct Recorder {
    log: Vec<(f64, u64)>,
}

impl Component<u64> for Recorder {
    fn on_event(&mut self, event: &u64, ctx: &mut Ctx<'_, u64>) {
        self.log.push((ctx.time(), *event));
    }
}

/// Re-emits to itself with the next queued delay on every dispatch, so the
/// event chain is generated *during* the run, not pre-scheduled.
struct Chainer {
    delays: Vec<f64>,
    next: usize,
    times: Vec<f64>,
}

impl Component<()> for Chainer {
    fn on_event(&mut self, _event: &(), ctx: &mut Ctx<'_, ()>) {
        self.times.push(ctx.time());
        if self.next < self.delays.len() {
            let delay = self.delays[self.next];
            self.next += 1;
            ctx.emit_self((), delay);
        }
    }
}

/// Times drawn from a small grid so same-instant ties are common — the
/// interesting case for the (time, seq) total order.
fn grid_times() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec((0u32..40).prop_map(|k| k as f64 * 0.5), 1..64)
}

proptest! {
    /// Dispatch order is exactly the stable sort of the scheduled events
    /// by fire time: ties resolve in schedule order, every event fires
    /// exactly once, and the order is a total order (no pair is ever
    /// swapped across runs).
    #[test]
    fn event_ordering_is_a_total_order(times in grid_times()) {
        let recorder = Rc::new(RefCell::new(Recorder::default()));
        let mut sim: Simulation<u64> = Simulation::new(1);
        let id = sim.add_component(recorder.clone());
        for (i, &t) in times.iter().enumerate() {
            sim.schedule_at(t, id, i as u64);
        }
        let processed = sim.run();
        prop_assert_eq!(processed as usize, times.len());

        // Expected order: stable sort by time — seq (schedule order)
        // breaks ties.
        let mut expected: Vec<usize> = (0..times.len()).collect();
        expected.sort_by(|&a, &b| times[a].total_cmp(&times[b]));
        let got: Vec<usize> = recorder
            .borrow()
            .log
            .iter()
            .map(|&(_, payload)| payload as usize)
            .collect();
        prop_assert_eq!(got, expected);
        // And each event fired at exactly its scheduled time.
        for &(fire_time, payload) in &recorder.borrow().log {
            prop_assert_eq!(fire_time.to_bits(), times[payload as usize].to_bits());
        }
    }

    /// A cancelled event never reaches its component; everything else
    /// still fires exactly once.
    #[test]
    fn cancelled_events_never_fire(
        times in grid_times(),
        cancel_mask in proptest::collection::vec((0u32..2).prop_map(|v| v == 1), 64),
    ) {
        let recorder = Rc::new(RefCell::new(Recorder::default()));
        let mut sim: Simulation<u64> = Simulation::new(1);
        let id = sim.add_component(recorder.clone());
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| sim.schedule_at(t, id, i as u64))
            .collect();
        let cancelled: Vec<usize> = (0..times.len()).filter(|&i| cancel_mask[i]).collect();
        for &i in &cancelled {
            prop_assert!(sim.cancel(ids[i]), "live events must cancel");
        }
        // Cancelling twice (or after the fact) is a no-op, not a panic.
        for &i in &cancelled {
            prop_assert!(!sim.cancel(ids[i]));
        }
        sim.run();
        let fired: Vec<usize> = recorder
            .borrow()
            .log
            .iter()
            .map(|&(_, p)| p as usize)
            .collect();
        for &i in &cancelled {
            prop_assert!(!fired.contains(&i), "cancelled event {} fired", i);
        }
        prop_assert_eq!(fired.len(), times.len() - cancelled.len());
    }

    /// The clock never runs backwards: across an arbitrary self-emitting
    /// chain (zero delays included) every observed dispatch time is >= the
    /// previous one, and the driver's clock ends at the last dispatch.
    #[test]
    fn clock_is_monotone(delays in proptest::collection::vec(0.0f64..100.0, 0..64)) {
        let chainer = Rc::new(RefCell::new(Chainer {
            delays,
            next: 0,
            times: Vec::new(),
        }));
        let mut sim: Simulation<()> = Simulation::new(1);
        let id = sim.add_component(chainer.clone());
        prop_assert_eq!(id, ComponentId(0));
        sim.schedule(0.0, id, ());
        sim.run();
        let times = &chainer.borrow().times;
        for pair in times.windows(2) {
            prop_assert!(pair[1] >= pair[0], "clock went backwards: {pair:?}");
        }
        if let Some(&last) = times.last() {
            prop_assert_eq!(sim.now().to_bits(), last.to_bits());
        }
    }
}
