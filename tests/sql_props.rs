//! Property tests for the SQL front-end: render/parse round-trips are
//! byte-identical, the rewrite pipeline is idempotent, and rule order
//! within a phase cannot change the lowered plan.

use autonomous_data_services::sql::{Frontend, PhaseOrders, QueryRule, RuleOutcome};
use autonomous_data_services::workload::catalog::Catalog;
use autonomous_data_services::workload::plan::{CmpOp, Comparison, LogicalPlan, Predicate};
use autonomous_data_services::workload::signature::{strict_signature, template_signature};
use autonomous_data_services::workload::sqltext::{to_sql, to_sql_template};
use proptest::prelude::*;
use std::fmt::Write as _;

/// Strategy producing arbitrary renderable plans over the standard catalog:
/// every operator keeps its ordinals within the narrowest table (regions,
/// width 2) so any base table resolves them.
fn arb_plan() -> impl Strategy<Value = LogicalPlan> {
    let tables = ["events", "sessions", "users", "regions", "telemetry"];
    let leaf = (0..tables.len()).prop_map(move |i| LogicalPlan::scan(tables[i]));
    let clause = (
        0usize..2,
        prop_oneof![
            Just(CmpOp::Lt),
            Just(CmpOp::Le),
            Just(CmpOp::Gt),
            Just(CmpOp::Ge),
            Just(CmpOp::Eq),
            Just(CmpOp::Ne),
        ],
        -500i64..5000,
    )
        .prop_map(|(col, op, v)| Comparison::new(col, op, v))
        .boxed();
    leaf.prop_recursive(4, 24, 2, move |inner| {
        prop_oneof![
            (inner.clone(), collection::vec(clause.clone(), 1..3))
                .prop_map(|(child, clauses)| child.filter(Predicate::new(clauses))),
            (
                inner.clone(),
                prop_oneof![Just(vec![0]), Just(vec![0, 1]), Just(vec![1, 0])]
            )
                .prop_map(|(child, cols)| child.project(cols)),
            (
                inner.clone(),
                prop_oneof![Just(vec![0]), Just(vec![1]), Just(vec![0, 1])]
            )
                .prop_map(|(child, cols)| child.aggregate(cols)),
            (inner.clone(), inner.clone(), 0usize..2, 0usize..2)
                .prop_map(|(l, r, lk, rk)| LogicalPlan::join(l, r, lk, rk)),
            (inner.clone(), inner).prop_map(|(l, r)| LogicalPlan::union(l, r)),
        ]
    })
}

const TABLES: &[(&str, &[&str])] = &[
    ("events", &["user_id", "event_type", "ts_hour", "region_id"]),
    ("sessions", &["user_id", "duration_s", "ts_hour"]),
    ("users", &["user_id", "segment", "country_id"]),
    ("regions", &["region_id", "tier"]),
    (
        "telemetry",
        &["machine_id", "counter_id", "ts_hour", "value_bucket"],
    ),
];

/// A deliberately messy (but always valid) query: flipped comparisons,
/// `BETWEEN`, both `!=` spellings, `ORDER BY`/`LIMIT`, pass-through derived
/// wrapping, optional trailing union — everything the canonicalize and
/// optimize phases exist to clean up.
#[derive(Debug, Clone)]
struct MessyQuery {
    table: usize,
    select_cols: Vec<usize>,
    conds: Vec<(usize, usize, usize, i64, i64, bool)>,
    group: (bool, usize),
    order: (bool, usize, bool),
    limit: (bool, u64),
    wraps: usize,
    union_with: (bool, usize),
}

fn arb_messy() -> impl Strategy<Value = MessyQuery> {
    (
        (
            0usize..TABLES.len(),
            collection::vec(0usize..4, 0..3),
            collection::vec(
                (
                    0usize..4,
                    0usize..7,
                    0usize..3,
                    -100i64..10_000,
                    -100i64..10_000,
                    {
                        // parameterize roughly half the values
                        (0usize..2).prop_map(|b| b == 1)
                    },
                ),
                0..4,
            ),
        ),
        (0usize..2, 0usize..4),
        (0usize..2, 0usize..4, 0usize..2),
        (0usize..2, 1u64..500),
        0usize..3,
        (0usize..2, 0usize..TABLES.len()),
    )
        .prop_map(
            |((table, select_cols, conds), group, order, limit, wraps, union_with)| MessyQuery {
                table,
                select_cols,
                conds,
                group: (group.0 == 1, group.1),
                order: (order.0 == 1, order.1, order.2 == 1),
                limit: (limit.0 == 1, limit.1),
                wraps,
                union_with: (union_with.0 == 1, union_with.1),
            },
        )
}

/// Renders a [`MessyQuery`] to SQL text plus its `?` bindings.
fn build_sql(q: &MessyQuery) -> (String, Vec<i64>) {
    let (tname, cols) = TABLES[q.table];
    let col = |i: usize| cols[i % cols.len()];
    let mut params = Vec::new();
    let mut sql = String::from("SELECT ");
    if q.select_cols.is_empty() {
        sql.push('*');
    } else {
        let names: Vec<&str> = q.select_cols.iter().map(|&i| col(i)).collect();
        sql.push_str(&names.join(", "));
    }
    write!(sql, " FROM {tname}").unwrap();
    if !q.conds.is_empty() {
        sql.push_str(" WHERE ");
        const OPS: &[&str] = &["=", "<", "<=", ">", ">=", "!=", "<>"];
        for (i, &(c, op, form, v1, v2, param)) in q.conds.iter().enumerate() {
            if i > 0 {
                sql.push_str(" AND ");
            }
            let value = |v: i64, params: &mut Vec<i64>| -> String {
                if param {
                    params.push(v);
                    "?".into()
                } else {
                    v.to_string()
                }
            };
            match form {
                0 => {
                    let v = value(v1, &mut params);
                    write!(sql, "{} {} {v}", col(c), OPS[op]).unwrap();
                }
                1 => {
                    let v = value(v1, &mut params);
                    write!(sql, "{v} {} {}", OPS[op], col(c)).unwrap();
                }
                _ => {
                    let lo = value(v1, &mut params);
                    let hi = value(v2, &mut params);
                    write!(sql, "{} BETWEEN {lo} AND {hi}", col(c)).unwrap();
                }
            }
        }
    }
    if q.group.0 {
        write!(sql, " GROUP BY {}", col(q.group.1)).unwrap();
    }
    if q.order.0 {
        write!(
            sql,
            " ORDER BY {}{}",
            col(q.order.1),
            if q.order.2 { " DESC" } else { " ASC" }
        )
        .unwrap();
    }
    if q.limit.0 {
        write!(sql, " LIMIT {}", q.limit.1).unwrap();
    }
    for _ in 0..q.wraps {
        sql = format!("SELECT * FROM ({sql})");
    }
    if q.union_with.0 {
        write!(sql, " UNION ALL SELECT * FROM {}", TABLES[q.union_with.1].0).unwrap();
    }
    (sql, params)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `parse(render(plan))` lowers back to the *same plan*, node for node
    /// — hence byte-identical strict and template signatures — in both the
    /// literal and the `?`-templated rendering.
    #[test]
    fn render_parse_roundtrip_is_byte_identical(plan in arb_plan()) {
        let catalog = Catalog::standard();
        let frontend = Frontend::new(&catalog);

        let sql = to_sql(&plan, &catalog).expect("generated plans render");
        let compiled = match frontend.compile(&sql, &[]) {
            Ok(c) => c,
            Err(e) => return Err(TestCaseError::fail(e.render(&sql))),
        };
        prop_assert_eq!(&compiled.plan, &plan, "literal round trip: {}", sql);
        prop_assert_eq!(strict_signature(&compiled.plan), strict_signature(&plan));
        prop_assert_eq!(template_signature(&compiled.plan), template_signature(&plan));

        let (tsql, params) = to_sql_template(&plan, &catalog).expect("renders");
        let compiled = match frontend.compile(&tsql, &params) {
            Ok(c) => c,
            Err(e) => return Err(TestCaseError::fail(e.render(&tsql))),
        };
        prop_assert_eq!(&compiled.plan, &plan, "template round trip: {}", tsql);
    }

    /// The rewrite phases are idempotent: whatever they changed on the
    /// first run, a second run over their own output reports no `Changed`
    /// outcome and leaves the AST untouched.
    #[test]
    fn rewrite_phases_are_idempotent(q in arb_messy()) {
        let catalog = Catalog::standard();
        let frontend = Frontend::new(&catalog);
        let (sql, params) = build_sql(&q);
        let compiled = match frontend.compile(&sql, &params) {
            Ok(c) => c,
            Err(e) => return Err(TestCaseError::fail(e.render(&sql))),
        };
        // The decorations really exercised their rules on the first run.
        if sql.contains(" BETWEEN ") {
            prop_assert_eq!(
                compiled.report.outcome(QueryRule::BetweenDesugar),
                Some(RuleOutcome::Changed)
            );
        }
        if sql.contains(" ORDER BY ") || sql.contains(" LIMIT ") {
            // Either elision dropped the clauses, or a collapse of the
            // enclosing pass-through derived table discarded them first.
            prop_assert!(
                compiled.report.outcome(QueryRule::OrderLimitElision)
                    == Some(RuleOutcome::Changed)
                    || compiled.report.outcome(QueryRule::DerivedTableCollapse)
                        == Some(RuleOutcome::Changed),
                "ordering clauses survived: {}",
                sql
            );
        }
        let mut again = compiled.query.clone();
        let report = frontend.rewrite(&mut again, &[]).expect("re-rewrite runs");
        prop_assert!(
            !report.any_rewrite_changed(),
            "second run changed the query: {:?} on {}",
            report.changed(),
            sql
        );
        prop_assert_eq!(again, compiled.query);
    }

    /// Rule application order within a phase does not change the lowered
    /// plan (the rules of one phase touch disjoint AST parts).
    #[test]
    fn rule_order_within_a_phase_is_irrelevant(q in arb_messy()) {
        let catalog = Catalog::standard();
        let frontend = Frontend::new(&catalog);
        let (sql, params) = build_sql(&q);
        let mut reversed = PhaseOrders::canonical();
        reversed.analyze.reverse();
        reversed.canonicalize.reverse();
        reversed.optimize.reverse();
        let canonical = match frontend.compile(&sql, &params) {
            Ok(c) => c,
            Err(e) => return Err(TestCaseError::fail(e.render(&sql))),
        };
        let permuted = frontend
            .compile_with_order(&sql, &params, &reversed)
            .expect("reversed order compiles");
        prop_assert_eq!(&canonical.plan, &permuted.plan, "order changed plan on {}", sql);
        prop_assert_eq!(
            strict_signature(&canonical.plan),
            strict_signature(&permuted.plan)
        );
    }
}
