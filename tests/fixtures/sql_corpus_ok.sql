-- Positive SQL corpus: every non-comment line must parse, resolve against
-- the standard catalog, and lower to a LogicalPlan. `?` placeholders are
-- bound positionally by the corpus test.
SELECT * FROM events
select * from events
SELECT user_id FROM events
SELECT user_id, event_type FROM events
SELECT user_id, user_id FROM events
SELECT * FROM events WHERE user_id = 42
SELECT * FROM events WHERE user_id != 42
SELECT * FROM events WHERE user_id <> 42
SELECT * FROM events WHERE user_id < 10 AND event_type >= 3
SELECT * FROM events WHERE 42 = user_id
SELECT * FROM events WHERE 42 <= user_id AND 99 > event_type
SELECT * FROM events WHERE ts_hour BETWEEN 100 AND 200
SELECT * FROM events WHERE ts_hour BETWEEN ? AND ?
SELECT * FROM events WHERE user_id = ?
SELECT * FROM events WHERE user_id = ? AND event_type = ? AND region_id = ?
SELECT * FROM events WHERE user_id = -9223372036854775808
SELECT * FROM events WHERE user_id = 9223372036854775807
SELECT * FROM sessions WHERE duration_s > -1
SELECT * FROM events GROUP BY user_id
SELECT user_id FROM events GROUP BY user_id
SELECT * FROM events WHERE region_id = 7 GROUP BY user_id
SELECT * FROM events ORDER BY ts_hour
SELECT * FROM events ORDER BY ts_hour ASC
SELECT * FROM events ORDER BY ts_hour DESC, user_id ASC
SELECT * FROM events LIMIT 10
SELECT * FROM events ORDER BY ts_hour DESC LIMIT 10
SELECT * FROM events JOIN users ON events.user_id = users.user_id
SELECT * FROM events INNER JOIN users ON user_id = user_id
SELECT * FROM events JOIN regions ON region_id = region_id WHERE ts_hour > 5
SELECT * FROM (SELECT * FROM events)
SELECT * FROM (SELECT * FROM (SELECT * FROM events))
SELECT * FROM (SELECT user_id FROM events WHERE user_id > 5)
SELECT * FROM (SELECT * FROM events WHERE user_id = ?) WHERE event_type = ?
SELECT * FROM events UNION ALL SELECT * FROM sessions
SELECT * FROM events UNION ALL SELECT * FROM sessions UNION ALL SELECT * FROM users
(SELECT * FROM events) UNION ALL (SELECT * FROM sessions)
SELECT * FROM (SELECT * FROM events UNION ALL SELECT * FROM sessions)
SELECT user_id FROM events WHERE user_id BETWEEN 1 AND 9 GROUP BY user_id
SELECT machine_id, value_bucket FROM telemetry WHERE counter_id = 3 AND ts_hour BETWEEN ? AND ?
SELECT * FROM telemetry JOIN events ON machine_id = user_id WHERE value_bucket <> 0 ORDER BY machine_id LIMIT 100
