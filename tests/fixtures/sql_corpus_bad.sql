-- Negative SQL corpus: every non-comment line must be rejected — either by
-- the lexer/parser, by name resolution, or by parameter-arity checking.
-- The corpus test binds one value per `?` placeholder, so rejections here
-- are never a param-count artifact unless the line is specifically about it.
SELECT
SELECT FROM events
SELECT * FROM
SELECT * WHERE user_id = 1
FROM events
SELECT ** FROM events
SELECT *, user_id FROM events
SELECT user_id, FROM events
SELECT user_id user_id FROM events
SELECT * FROM events events
SELECT * FROM events WHERE
SELECT * FROM events WHERE user_id
SELECT * FROM events WHERE user_id =
SELECT * FROM events WHERE user_id = = 4
SELECT * FROM events WHERE user_id ! 4
SELECT * FROM events WHERE user_id == 4
SELECT * FROM events WHERE user_id = 4 AND
SELECT * FROM events WHERE user_id = 4 OR event_type = 2
SELECT * FROM events WHERE user_id BETWEEN 1
SELECT * FROM events WHERE user_id BETWEEN 1 AND
SELECT * FROM events WHERE user_id BETWEEN AND 2
SELECT * FROM events WHERE user_id = 9223372036854775808
SELECT * FROM events WHERE user_id = -9223372036854775809
SELECT * FROM events WHERE user_id = 99999999999999999999999999
SELECT * FROM events GROUP BY
SELECT * FROM events GROUP user_id
SELECT * FROM events ORDER ts_hour
SELECT * FROM events ORDER BY
SELECT * FROM events LIMIT
SELECT * FROM events LIMIT x
SELECT * FROM events LIMIT -1
SELECT * FROM (SELECT * FROM events
SELECT * FROM (SELECT * FROM events))
SELECT * FROM ()
SELECT * FROM events JOIN users
SELECT * FROM events JOIN users ON
SELECT * FROM events JOIN users ON user_id
SELECT * FROM events JOIN users ON user_id = 4
SELECT * FROM events UNION SELECT * FROM sessions
SELECT * FROM events UNION ALL
SELECT * FROM evnts
SELECT * FROM events WHERE usr_id = 1
SELECT * FROM events WHERE duration_s = 1
SELECT nonexistent FROM events
SELECT * FROM events JOIN users ON users.user_id = users.user_id
SELECT * FROM events WHERE sessions.user_id = 1
SELECT * FROM events; DROP TABLE events
