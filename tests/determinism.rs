//! Determinism guarantees: every stochastic component is seed-driven, so
//! whole subsystem runs must be bit-identical across invocations — the
//! property the experiment harness and EXPERIMENTS.md rely on.

use autonomous_data_services::engine::cost::CostModel;
use autonomous_data_services::engine::exec::{ClusterConfig, SimOptions, Simulator};
use autonomous_data_services::engine::physical::{StageDag, StageId};
use autonomous_data_services::faultsim::{ChaosRunner, FaultConfig, FaultInjector};
use autonomous_data_services::infra::machine::{MachineFleet, SkuSpec};
use autonomous_data_services::infra::provision::{
    simulate_provisioning, DemandModel, PoolPolicy, ProvisionConfig,
};
use autonomous_data_services::obs::{Histogram, Obs};
use autonomous_data_services::service::moneyball::{generate_usage, simulate_policy, PausePolicy};
use autonomous_data_services::service::seagull::{
    generate_fleet, schedule_fleet, BackupForecaster,
};
use autonomous_data_services::workload::gen::{GeneratorConfig, WorkloadGenerator};
use proptest::prelude::*;
use std::collections::HashSet;

#[test]
fn workload_generation_is_reproducible() {
    let mk = || {
        WorkloadGenerator::new(GeneratorConfig::default())
            .expect("valid")
            .generate()
            .expect("generates")
    };
    let (a, b) = (mk(), mk());
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.catalog, b.catalog);
}

#[test]
fn execution_simulation_is_reproducible() {
    let w = WorkloadGenerator::new(GeneratorConfig {
        days: 2,
        jobs_per_day: 30,
        ..Default::default()
    })
    .expect("valid")
    .generate()
    .expect("generates");
    let sim = Simulator::new(ClusterConfig::default()).expect("valid");
    let cm = CostModel::default();
    for job in w.trace.jobs().iter().take(10) {
        let dag = StageDag::compile(&job.plan, &w.catalog, &cm).expect("compiles");
        let r1 = sim.run(&dag, &SimOptions::default()).expect("simulates");
        let r2 = sim.run(&dag, &SimOptions::default()).expect("simulates");
        assert_eq!(r1, r2);
    }
}

#[test]
fn service_layer_simulations_are_reproducible() {
    let f1 = generate_fleet(50, 14, 0.6, 0.3, 5);
    let f2 = generate_fleet(50, 14, 0.6, 0.3, 5);
    assert_eq!(f1, f2);
    let s1 = schedule_fleet(&f1, BackupForecaster::MlModel, 2, 0.25);
    let s2 = schedule_fleet(&f2, BackupForecaster::MlModel, 2, 0.25);
    assert_eq!(s1, s2);

    let u1 = generate_usage(100, 14, 0.77, 3);
    let u2 = generate_usage(100, 14, 0.77, 3);
    assert_eq!(u1, u2);
    let p = PausePolicy::Proactive {
        idle_hours: 2,
        threshold: 0.4,
    };
    assert_eq!(simulate_policy(&u1, p), simulate_policy(&u2, p));
}

#[test]
fn infra_simulations_are_reproducible() {
    let fleet = MachineFleet::new(SkuSpec::standard_fleet(), 4);
    assert_eq!(
        fleet.generate_telemetry(48, 0.1, 9),
        fleet.generate_telemetry(48, 0.1, 9)
    );
    let demand = DemandModel::default();
    let config = ProvisionConfig::default();
    let policy = PoolPolicy::Forecast { headroom: 1.2 };
    assert_eq!(
        simulate_provisioning(&demand, policy, &config),
        simulate_provisioning(&demand, policy, &config)
    );
}

/// ISSUE 2: determinism down to the serialized bytes. `assert_eq!` on the
/// structs proves value equality; the chaos harness and recorded baselines
/// additionally rely on the *serialized* form being stable, so compare
/// JSON byte-for-byte.
#[test]
fn fleet_telemetry_serialization_is_byte_identical() {
    let fleet = MachineFleet::new(SkuSpec::standard_fleet(), 4);
    let a = serde_json::to_string(&fleet.generate_telemetry(48, 0.1, 17)).expect("serializes");
    let b = serde_json::to_string(&fleet.generate_telemetry(48, 0.1, 17)).expect("serializes");
    assert_eq!(a, b);
    let c = serde_json::to_string(&fleet.generate_telemetry(48, 0.1, 18)).expect("serializes");
    assert_ne!(a, c);
}

/// Same property for the execution simulator: two runs of the same DAG
/// serialize to identical bytes, across a spread of generated jobs.
#[test]
fn exec_reports_serialize_byte_identical() {
    let w = WorkloadGenerator::new(GeneratorConfig {
        days: 1,
        jobs_per_day: 20,
        ..Default::default()
    })
    .expect("valid")
    .generate()
    .expect("generates");
    let sim = Simulator::new(ClusterConfig::default()).expect("valid");
    let cm = CostModel::default();
    for job in w.trace.jobs().iter().take(8) {
        let dag = StageDag::compile(&job.plan, &w.catalog, &cm).expect("compiles");
        let r1 = sim.run(&dag, &SimOptions::default()).expect("simulates");
        let r2 = sim.run(&dag, &SimOptions::default()).expect("simulates");
        assert_eq!(
            serde_json::to_string(&r1).expect("serializes"),
            serde_json::to_string(&r2).expect("serializes")
        );
    }
}

/// ISSUE 3: the flight recorder itself replays deterministically. Two
/// chaos runs under the same fault seed — spans, fault events, counters,
/// histograms and all — export byte-identical serialized traces, while a
/// different seed diverges somewhere in the trace.
#[test]
fn chaos_flight_recorder_traces_are_byte_identical() {
    let w = WorkloadGenerator::new(GeneratorConfig {
        days: 1,
        jobs_per_day: 12,
        ..Default::default()
    })
    .expect("valid")
    .generate()
    .expect("generates");
    let cm = CostModel::default();
    let cluster = ClusterConfig::default();
    let dags: Vec<StageDag> = w
        .trace
        .jobs()
        .iter()
        .take(8)
        .map(|j| StageDag::compile(&j.plan, &w.catalog, &cm).expect("compiles"))
        .collect();

    let run = |seed: u64| -> String {
        let obs = Obs::recording();
        let runner =
            ChaosRunner::with_obs(cluster, f64::INFINITY, obs.clone()).expect("valid cluster");
        let injector = FaultInjector::new(seed, FaultConfig::standard());
        for (i, dag) in dags.iter().enumerate() {
            let schedule = injector.schedule_for(i as u64, cluster.machines);
            let ckpt: HashSet<StageId> = dag
                .stages()
                .iter()
                .map(|s| s.id)
                .filter(|id| id.0 % 2 == 0)
                .collect();
            runner.run_job(dag, &ckpt, &schedule).expect("runs");
        }
        obs.export_json()
    };

    let a = run(42);
    let b = run(42);
    assert_eq!(a, b, "same seed must export byte-identical traces");
    assert_ne!(a, run(43), "different seeds must diverge in the trace");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ISSUE 3: histogram bucket counts are permutation-invariant under
    /// merge — observing a value set in any order, sharded across two
    /// histograms at any split point and merged in either direction, yields
    /// exactly the buckets of observing them directly.
    #[test]
    fn histogram_bucket_counts_are_permutation_invariant_under_merge(
        values in proptest::collection::vec(0.0f64..50.0, 1..64),
        split in 0usize..64,
        rotate in 0usize..64,
    ) {
        let bounds = Histogram::default_bounds();
        let mut direct = Histogram::new(&bounds);
        for &v in &values {
            direct.observe(v);
        }

        let mut permuted = values.clone();
        permuted.rotate_left(rotate % values.len());
        permuted.reverse();
        let split = split % (values.len() + 1);
        let mut left = Histogram::new(&bounds);
        let mut right = Histogram::new(&bounds);
        for (i, &v) in permuted.iter().enumerate() {
            if i < split {
                left.observe(v);
            } else {
                right.observe(v);
            }
        }

        let mut ab = left.clone();
        prop_assert!(ab.merge(&right), "same bounds must merge");
        let mut ba = right.clone();
        prop_assert!(ba.merge(&left), "merge is direction-agnostic");
        prop_assert_eq!(&ab.counts, &direct.counts);
        prop_assert_eq!(&ba.counts, &direct.counts);
        prop_assert_eq!(ab.count, direct.count);
        prop_assert_eq!(ba.count, direct.count);
        // Bucket counts are exact; the running sum is float arithmetic, so
        // permutations may differ by rounding only.
        prop_assert!((ab.sum - direct.sum).abs() <= 1e-9 * direct.sum.abs().max(1.0));
    }
}

#[test]
fn different_seeds_differ() {
    let a = WorkloadGenerator::new(GeneratorConfig {
        seed: 1,
        ..Default::default()
    })
    .expect("valid")
    .generate()
    .expect("generates");
    let b = WorkloadGenerator::new(GeneratorConfig {
        seed: 2,
        ..Default::default()
    })
    .expect("valid")
    .generate()
    .expect("generates");
    assert_ne!(a.trace, b.trace);
}
