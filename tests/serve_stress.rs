//! Hot-swap stress: readers racing a publisher never observe a torn or
//! stale-beyond-one-version serving snapshot.
//!
//! Each deployed model version `v` answers every request with exactly
//! `v as f64`, so a prediction is *torn* iff `value != version as f64` —
//! i.e. the reader saw a model body from one version stitched to another
//! version's metadata. Staleness is bounded against a watermark the
//! publisher bumps only **after** `Gateway::publish` returns: a read that
//! starts after the watermark reads `w` must be answered by version ≥ `w`.

use autonomous_data_services::serve::{FnModel, Gateway, GatewayConfig, Source};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const READERS: usize = 8;
const VERSIONS: u64 = 64;
const READS_PER_CHECK: usize = 32;

#[test]
fn hot_swap_never_tears_or_rewinds() {
    let gateway = Gateway::new(GatewayConfig::standard());
    let handle = gateway.register("stress/versioned", |_f: &[f64]| -1.0);

    // Version the readers start from.
    gateway
        .publish(handle, Arc::new(FnModel(|_f: &[f64]| 1.0)), 0.0)
        .expect("registered");
    let watermark = AtomicU64::new(1);
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let reader = |reader_id: usize| {
            let gateway = gateway.clone();
            let watermark = &watermark;
            let stop = &stop;
            move || {
                let mut last_seen = 0u64;
                let mut iter = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let published = watermark.load(Ordering::Acquire);
                    for _ in 0..READS_PER_CHECK {
                        iter += 1;
                        // Vary features so cache lookups exercise many keys.
                        let features = [(reader_id as u64 * 7919 + iter % 17) as f64];
                        let p = gateway
                            .predict(handle, &features, iter as f64)
                            .expect("registered");
                        assert!(
                            !p.source.is_fallback(),
                            "no faults are injected, so no fallback"
                        );
                        // Torn check: the value must be the one this exact
                        // version computes. Cache hits are keyed by version,
                        // so they must agree too.
                        assert_eq!(
                            p.value, p.version as f64,
                            "torn snapshot: version {} answered {} (source {:?})",
                            p.version, p.value, p.source
                        );
                        assert!(
                            p.version >= published,
                            "stale snapshot: watermark was {published}, served {}",
                            p.version
                        );
                        assert!(
                            p.version >= last_seen,
                            "version rewound from {last_seen} to {}",
                            p.version
                        );
                        last_seen = p.version;
                    }
                }
            }
        };
        let readers: Vec<_> = (0..READERS).map(|id| scope.spawn(reader(id))).collect();

        for v in 2..=VERSIONS {
            gateway
                .publish(handle, Arc::new(FnModel(move |_f: &[f64]| v as f64)), 0.0)
                .expect("registered");
            watermark.store(v, Ordering::Release);
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Release);
        for r in readers {
            r.join().expect("reader panicked");
        }
    });

    // After the race, the gateway serves the final version everywhere.
    let p = gateway.predict(handle, &[0.5], 0.0).expect("registered");
    assert_eq!(p.version, VERSIONS);
    assert_eq!(p.value, VERSIONS as f64);
    assert!(matches!(p.source, Source::Model | Source::Cache));
}

/// The registry behind each entry keeps the full version history while the
/// race runs — hot swap replaces the serving snapshot, not the lineage.
#[test]
fn hot_swap_preserves_version_lineage() {
    let gateway = Gateway::new(GatewayConfig::standard());
    let handle = gateway.register("stress/lineage", |_f: &[f64]| 0.0);
    for v in 1..=10u64 {
        let version = gateway
            .publish(handle, Arc::new(FnModel(move |_f: &[f64]| v as f64)), 0.0)
            .expect("registered");
        assert_eq!(version, v, "publish returns sequential versions");
    }
    let p = gateway.predict(handle, &[1.0], 0.0).expect("registered");
    assert_eq!(p.version, 10);
    // Rollback redeploys an earlier body as a fresh version — never rewinds.
    let rolled = gateway
        .rollback(handle)
        .expect("registered")
        .expect("earlier versions exist");
    assert!(rolled > 10, "rollback must move the version forward");
}
