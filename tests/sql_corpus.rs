//! Fixture-driven corpus test for the SQL front-end: every query in the
//! positive corpus must compile end to end (parse → rewrite → lower), and
//! every query in the negative corpus must be rejected with a span that
//! renders a caret snippet inside the offending line.

use autonomous_data_services::sql::Frontend;
use autonomous_data_services::workload::catalog::Catalog;

fn corpus(name: &str) -> Vec<String> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/");
    let text = std::fs::read_to_string(format!("{path}{name}"))
        .unwrap_or_else(|e| panic!("read {name}: {e}"));
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("--"))
        .map(str::to_owned)
        .collect()
}

/// One bound value per `?` placeholder, so positive queries always have the
/// right arity and negative rejections are never an arity artifact.
fn params_for(sql: &str) -> Vec<i64> {
    vec![1; sql.matches('?').count()]
}

#[test]
fn every_positive_corpus_query_compiles() {
    let catalog = Catalog::standard();
    let frontend = Frontend::new(&catalog);
    let queries = corpus("sql_corpus_ok.sql");
    assert!(
        queries.len() >= 40,
        "positive corpus shrank: {}",
        queries.len()
    );
    for sql in &queries {
        let compiled = frontend
            .compile(sql, &params_for(sql))
            .unwrap_or_else(|e| panic!("positive corpus rejected:\n{}", e.render(sql)));
        compiled
            .plan
            .validate(&catalog)
            .unwrap_or_else(|e| panic!("lowered plan invalid for `{sql}`: {e}"));
    }
}

#[test]
fn every_negative_corpus_query_is_rejected() {
    let catalog = Catalog::standard();
    let frontend = Frontend::new(&catalog);
    let queries = corpus("sql_corpus_bad.sql");
    assert!(
        queries.len() >= 40,
        "negative corpus shrank: {}",
        queries.len()
    );
    for sql in &queries {
        let err = match frontend.compile(sql, &params_for(sql)) {
            Ok(_) => panic!("negative corpus accepted: `{sql}`"),
            Err(e) => e,
        };
        // Every rejection carries a usable span: the rendered snippet must
        // quote the source line and point carets at it.
        let rendered = err.render(sql);
        assert!(
            rendered.contains('^'),
            "no caret in diagnostic for `{sql}`:\n{rendered}"
        );
        assert!(
            rendered.lines().any(|l| l.contains(sql.trim())),
            "diagnostic does not quote the source for `{sql}`:\n{rendered}"
        );
    }
}
