//! Watchtower acceptance drills.
//!
//! 1. On the seeded poison → rollback chaos drill, incident reconstruction
//!    blames the injected poison as root cause and the automatic rollback
//!    as resolution — and the whole watchtower report (SLO windows,
//!    incidents, critical path) is byte-identical across replays of each
//!    seed.
//! 2. A new SLO drill: with every legacy streak/monitor trigger disabled,
//!    a multi-window burn-rate signal computed *online* from incremental
//!    trace snapshots drives the rollback — zero manual deploy calls.

use autonomous_data_services::core::feedback::LoopConfig;
use autonomous_data_services::faultsim::{ModelFaults, PoisonProfile};
use autonomous_data_services::obs::{DeploymentKind, Obs, Trace, TraceCursor};
use autonomous_data_services::serve::{
    AutonomyAction, AutonomyConfig, AutonomyController, CanaryConfig, FnModel, Gateway,
    GatewayConfig, PoisonScope, Retrainer, ServableModel, SloPolicy,
};
use autonomous_data_services::watchtower::{
    analyze, default_specs, reconstruct, to_canonical_json, SloEngine, SloSpec,
};
use std::sync::Arc;

const DRILL_SEEDS: [u64; 3] = [7, 21, 42];

fn drill_config() -> AutonomyConfig {
    AutonomyConfig {
        monitor: LoopConfig {
            window: 20,
            retrain_factor: 1.5,
            rollback_factor: 8.0,
        },
        canary: CanaryConfig {
            traffic_pct: 30,
            shadow_first: true,
            min_decisions: 10,
            promote_streak: 2,
            demote_streak: 2,
            promote_error_factor: 1.2,
            demote_error_factor: 2.0,
            restage_backoff_ticks: 16.0,
            max_restage_backoff_ticks: 128.0,
        },
        slo: SloPolicy::default(),
        guarded_streak: 4,
        breaker_open_streak: 10,
        retrain_cooldown_ticks: 8.0,
        min_retrain_observations: 20,
    }
}

fn scalar_retrainer() -> Retrainer {
    Box::new(|history: &[(Vec<f64>, f64)]| {
        let (num, den) = history
            .iter()
            .fold((0.0, 0.0), |(n, d), (f, y)| (n + f[0] * y, d + f[0] * f[0]));
        let a = num / den.max(1e-12);
        Some((
            Arc::new(FnModel(move |f: &[f64]| a * f[0])) as Arc<dyn ServableModel>,
            0.01,
        ))
    })
}

/// The autonomy chaos drill (see `tests/autonomy_chaos.rs`), with the
/// event-emitting fault injectors so the poison lands in the trace.
fn run_poison_drill(seed: u64) -> Trace {
    let obs = Obs::recording();
    let mut config = GatewayConfig::standard();
    config.cache_capacity = 0;
    config.breaker.guard_factor = 2.0;
    config.breaker.failure_threshold = 4;
    config.breaker.cooldown_ticks = 8.0;
    config.breaker.backoff_factor = 2.0;
    config.breaker.max_cooldown_ticks = 64.0;
    let gateway = Gateway::with_obs(config, obs.clone());
    let handle = gateway.register("card/drill", |f: &[f64]| f[0]);
    let mut ctl = AutonomyController::new(gateway.clone(), obs.clone());
    ctl.supervise(handle, drill_config(), scalar_retrainer());
    ctl.install(handle, Arc::new(FnModel(|f: &[f64]| 1.05 * f[0])), 0.2, 0.0)
        .unwrap();

    let mut promoted_version = None;
    let mut poisoned = false;
    for t in 0..2000u64 {
        let sim_time = t as f64;
        let features = [1.0 + (t % 5) as f64];
        let p = gateway.predict(handle, &features, sim_time).unwrap();
        let actual = 1.3 * features[0];
        let step = ctl
            .observe(handle, &features, &p, actual, sim_time)
            .unwrap();
        for a in &step {
            if let AutonomyAction::Promoted { version } = a {
                if promoted_version.is_none() {
                    promoted_version = Some(*version);
                }
            }
        }
        if !poisoned {
            if let Some(v) = promoted_version {
                // Poison scope first: the first injected-fault record in
                // the trace — the one reconstruction blames — is the
                // poisoned artifact, not the flaky channel around it.
                gateway
                    .set_poison_scope_at(handle, PoisonScope::Version(v), sim_time)
                    .unwrap();
                gateway
                    .inject_faults_at(
                        handle,
                        ModelFaults::with_profile(seed, 0.05, 0.05, 4.0, PoisonProfile::Constant),
                        sim_time,
                    )
                    .unwrap();
                poisoned = true;
            }
        }
    }
    obs.snapshot()
}

#[test]
fn poison_drill_incident_blames_injection_and_resolves_by_rollback() {
    for seed in DRILL_SEEDS {
        let trace = run_poison_drill(seed);
        let report = reconstruct(&trace);
        let incident = report
            .incidents
            .iter()
            .find(|i| i.resolution.is_some())
            .unwrap_or_else(|| panic!("seed {seed}: no resolved incident reconstructed"));
        assert_eq!(incident.model, "card/drill");
        assert_eq!(
            incident.root_cause.stage, "fault_injected",
            "seed {seed}: root cause must be the injected fault, got {:?}",
            incident.root_cause
        );
        assert!(
            incident.root_cause.detail.contains("kind=poison"),
            "seed {seed}: blamed record should be the poison injection: {}",
            incident.root_cause.detail
        );
        let resolution = incident.resolution.as_ref().unwrap();
        assert_eq!(resolution.kind, "rollback", "seed {seed}");
        assert!(
            incident.degraded_serves > 0,
            "seed {seed}: the poisoned window must degrade serves"
        );
    }
}

#[test]
fn watchtower_report_is_byte_identical_per_seed() {
    for seed in DRILL_SEEDS {
        let specs = default_specs();
        let a = to_canonical_json(&analyze(&run_poison_drill(seed), &specs));
        let b = to_canonical_json(&analyze(&run_poison_drill(seed), &specs));
        assert_eq!(a, b, "seed {seed}: analysis must replay byte-identically");
    }
}

/// The SLO drill: every legacy trigger is effectively disabled — streaks
/// enormous, monitor factors enormous — so the *only* path to a rollback is
/// the burn-rate signal fed through `ingest_health`. The signal itself is
/// computed online from `snapshot_since` deltas, the way a sidecar would.
#[test]
fn slo_burn_signal_drives_autonomous_rollback() {
    let obs = Obs::recording();
    let mut config = GatewayConfig::standard();
    config.cache_capacity = 0;
    config.breaker.guard_factor = 2.0;
    let gateway = Gateway::with_obs(config, obs.clone());
    let handle = gateway.register("card/slo", |f: &[f64]| f[0]);
    let mut ctl = AutonomyController::new(gateway.clone(), obs.clone());
    let mut cfg = drill_config();
    cfg.guarded_streak = u32::MAX;
    cfg.breaker_open_streak = u32::MAX;
    cfg.monitor.retrain_factor = 1e12;
    cfg.monitor.rollback_factor = 1e12;
    ctl.supervise(handle, cfg, Box::new(|_: &[(Vec<f64>, f64)]| None));
    // Two bootstrap installs give the loop a v1 to roll back to.
    ctl.install(handle, Arc::new(FnModel(|f: &[f64]| 1.3 * f[0])), 0.01, 0.0)
        .unwrap();
    let v2 = ctl
        .install(handle, Arc::new(FnModel(|f: &[f64]| 1.3 * f[0])), 0.01, 1.0)
        .unwrap();

    let mut engine = SloEngine::new(vec![SloSpec::error_rate(
        "gateway-availability",
        "serve.gateway",
        0.99,
        25.0,
    )]);
    let mut cursor = TraceCursor::default();
    let mut actions = Vec::new();
    let mut poisoned = false;
    for t in 0..500u64 {
        let sim_time = t as f64;
        let features = [1.0 + (t % 5) as f64];
        let p = gateway.predict(handle, &features, sim_time).unwrap();
        let actual = 1.3 * features[0];
        actions.extend(
            ctl.observe(handle, &features, &p, actual, sim_time)
                .unwrap(),
        );
        if t == 100 && !poisoned {
            gateway
                .inject_faults_at(
                    handle,
                    ModelFaults::with_profile(11, 0.0, 0.0, 6.0, PoisonProfile::Constant),
                    sim_time,
                )
                .unwrap();
            gateway
                .set_poison_scope_at(handle, PoisonScope::Version(v2), sim_time)
                .unwrap();
            poisoned = true;
        }
        // The online analytics sidecar: fold the fresh delta, compute the
        // burn signal, and hand it to the controller.
        engine.ingest(&obs.snapshot_since(&mut cursor));
        let signal = engine.health_signal();
        actions.extend(ctl.ingest_health(handle, &signal, sim_time).unwrap());
    }

    let rolled_back = actions
        .iter()
        .any(|a| matches!(a, AutonomyAction::RolledBack { cause, .. } if cause == "slo_burn"));
    assert!(
        rolled_back,
        "burn-rate signal must roll the poisoned version back: {actions:?}"
    );
    let trace = obs.snapshot();
    assert!(
        trace.deployments.iter().all(|d| d.cause != "manual"),
        "zero manual deploy calls in the SLO drill"
    );
    assert!(
        trace
            .deployments
            .iter()
            .any(|d| d.kind == DeploymentKind::Rollback && d.cause == "slo_burn"),
        "the rollback must be recorded with the slo_burn cause"
    );
    // After the rollback the healthy v1 serves again: trailing windows are
    // clean, so the engine reports no sustained burn at the end.
    let signal = engine.health_signal();
    assert!(
        signal.fast_burn.min(signal.slow_burn) < 2.0,
        "post-rollback burn must subside, got {signal:?}"
    );
    // The incident layer ties the whole story together: the poison
    // injection opens the incident and the slo_burn rollback closes it.
    let report = reconstruct(&trace);
    let incident = report
        .incidents
        .iter()
        .find(|i| i.resolution.is_some())
        .expect("the SLO drill must reconstruct a resolved incident");
    assert_eq!(incident.root_cause.stage, "fault_injected");
    assert_eq!(incident.resolution.as_ref().unwrap().cause, "slo_burn");
}
