//! Typed AST for the SQL subset, with byte-offset spans on every node.
//!
//! The AST is deliberately close to the text: flipped comparisons
//! (`5 < col`), `BETWEEN`, `ORDER BY` and `LIMIT` all survive parsing and
//! are only normalized away by the rewrite pipeline, so each rule has a
//! visible, testable effect and diagnostics can point at the original
//! source.

use adas_workload::plan::CmpOp;

/// A half-open byte range `[start, end)` into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span.
    pub fn new(start: usize, end: usize) -> Self {
        Self { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn join(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// A query: a single select block or a `UNION ALL` of two queries.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryExpr {
    /// A plain `SELECT` block.
    Select(Box<SelectBlock>),
    /// `left UNION ALL right`. Chains parse left-associatively; a union as
    /// the right operand requires parentheses in the text.
    Union {
        /// Left operand.
        left: Box<QueryExpr>,
        /// Right operand.
        right: Box<QueryExpr>,
        /// Source span of the whole union expression.
        span: Span,
    },
}

impl QueryExpr {
    /// Source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            Self::Select(b) => b.span,
            Self::Union { span, .. } => *span,
        }
    }

    /// Name and span of the base table: the leftmost table reference,
    /// which resolves the query's unqualified column names (mirroring
    /// `LogicalPlan::base_table`).
    pub fn base_table(&self) -> (&str, Span) {
        match self {
            Self::Select(b) => b.from.base_table(),
            Self::Union { left, .. } => left.base_table(),
        }
    }

    /// Visits every select block in deterministic pre-order (a block before
    /// the blocks nested in its FROM items; union left before right).
    pub fn for_each_block(&self, f: &mut impl FnMut(&SelectBlock)) {
        match self {
            Self::Select(b) => {
                f(b);
                b.from.for_each_block(f);
                if let Some(join) = &b.join {
                    join.right.for_each_block(f);
                }
            }
            Self::Union { left, right, .. } => {
                left.for_each_block(f);
                right.for_each_block(f);
            }
        }
    }

    /// Mutable variant of [`for_each_block`](Self::for_each_block), same
    /// deterministic order.
    pub fn for_each_block_mut(&mut self, f: &mut impl FnMut(&mut SelectBlock)) {
        match self {
            Self::Select(b) => {
                f(b);
                b.from.for_each_block_mut(f);
                if let Some(join) = &mut b.join {
                    join.right.for_each_block_mut(f);
                }
            }
            Self::Union { left, right, .. } => {
                left.for_each_block_mut(f);
                right.for_each_block_mut(f);
            }
        }
    }
}

/// One `SELECT … FROM … [JOIN …] [WHERE …] [GROUP BY …] [ORDER BY …]
/// [LIMIT …]` block.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectBlock {
    /// The select list (`*` or explicit columns).
    pub select: SelectList,
    /// The (left) FROM item.
    pub from: FromItem,
    /// Optional equi-join against a second FROM item.
    pub join: Option<JoinClause>,
    /// WHERE conjunction, in textual order. Empty when absent.
    pub conditions: Vec<Condition>,
    /// GROUP BY columns. Empty when absent.
    pub group_by: Vec<ColumnRef>,
    /// ORDER BY keys. Empty when absent; elided by the optimize phase.
    pub order_by: Vec<OrderKey>,
    /// LIMIT row count. Elided by the optimize phase.
    pub limit: Option<Limit>,
    /// Source span of the whole block.
    pub span: Span,
}

/// The select list of a block.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectList {
    /// `SELECT *` — lowers to no projection.
    Star(Span),
    /// Explicit columns — lowers to a `Project` node.
    Columns(Vec<ColumnRef>),
}

/// A FROM-position item.
#[derive(Debug, Clone, PartialEq)]
pub enum FromItem {
    /// A base table reference.
    Table {
        /// Table name as written.
        name: String,
        /// Source span of the name.
        span: Span,
    },
    /// A parenthesized derived table.
    Derived {
        /// The subquery.
        query: Box<QueryExpr>,
        /// Source span including the parentheses.
        span: Span,
    },
}

impl FromItem {
    /// Source span of the item.
    pub fn span(&self) -> Span {
        match self {
            Self::Table { span, .. } | Self::Derived { span, .. } => *span,
        }
    }

    /// Name and span of the base table reachable through this item.
    pub fn base_table(&self) -> (&str, Span) {
        match self {
            Self::Table { name, span } => (name, *span),
            Self::Derived { query, .. } => query.base_table(),
        }
    }

    fn for_each_block(&self, f: &mut impl FnMut(&SelectBlock)) {
        if let Self::Derived { query, .. } = self {
            query.for_each_block(f);
        }
    }

    fn for_each_block_mut(&mut self, f: &mut impl FnMut(&mut SelectBlock)) {
        if let Self::Derived { query, .. } = self {
            query.for_each_block_mut(f);
        }
    }
}

/// `[INNER] JOIN right ON left_key = right_key`.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// The right FROM item.
    pub right: FromItem,
    /// Join key resolved against the left item's base table.
    pub left_key: ColumnRef,
    /// Join key resolved against the right item's base table.
    pub right_key: ColumnRef,
    /// Source span of the join clause.
    pub span: Span,
}

/// A possibly-qualified column reference. `resolved` is filled by the
/// analyze phase's column-resolution rule.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnRef {
    /// Optional `table.` qualifier (must match the resolving base table).
    pub qualifier: Option<(String, Span)>,
    /// Column name as written.
    pub name: String,
    /// Source span of the whole reference.
    pub span: Span,
    /// Column ordinal in the resolving base table, once resolved.
    pub resolved: Option<usize>,
}

/// One WHERE conjunct.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// `column op value` (or `value op column` when `flipped`).
    Cmp(CmpCond),
    /// `column BETWEEN low AND high` — desugared by the canonicalize phase.
    Between(BetweenCond),
}

impl Condition {
    /// Source span of the condition.
    pub fn span(&self) -> Span {
        match self {
            Self::Cmp(c) => c.span,
            Self::Between(b) => b.span,
        }
    }
}

/// A comparison condition.
#[derive(Debug, Clone, PartialEq)]
pub struct CmpCond {
    /// The column operand.
    pub column: ColumnRef,
    /// Comparison operator, as written.
    pub op: CmpOp,
    /// The value operand.
    pub value: Value,
    /// True when the text had the value on the left (`5 < col`); the
    /// canonicalize phase mirrors the operator and clears this.
    pub flipped: bool,
    /// Source span of the condition.
    pub span: Span,
}

/// A `BETWEEN` condition.
#[derive(Debug, Clone, PartialEq)]
pub struct BetweenCond {
    /// The column operand.
    pub column: ColumnRef,
    /// Inclusive lower bound.
    pub low: Value,
    /// Inclusive upper bound.
    pub high: Value,
    /// Source span of the condition.
    pub span: Span,
}

/// A literal or `?` template parameter in value position.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An integer literal.
    Literal {
        /// The value.
        value: i64,
        /// Source span.
        span: Span,
    },
    /// A `?` placeholder; `index` counts placeholders in lexical order.
    /// `bound` is filled by the analyze phase's parameter-binding rule.
    Param {
        /// Zero-based lexical placeholder index.
        index: usize,
        /// Source span of the `?`.
        span: Span,
        /// The bound literal, once binding has run.
        bound: Option<i64>,
    },
}

impl Value {
    /// Source span of the value.
    pub fn span(&self) -> Span {
        match self {
            Self::Literal { span, .. } | Self::Param { span, .. } => *span,
        }
    }

    /// The concrete value, if it is a literal or an already-bound
    /// parameter.
    pub fn concrete(&self) -> Option<i64> {
        match self {
            Self::Literal { value, .. } => Some(*value),
            Self::Param { bound, .. } => *bound,
        }
    }
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// The ordering column.
    pub column: ColumnRef,
    /// True for `DESC`, false for `ASC` (the default).
    pub desc: bool,
    /// Source span of the key.
    pub span: Span,
}

/// A LIMIT clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limit {
    /// Maximum number of rows requested.
    pub rows: u64,
    /// Source span of the clause.
    pub span: Span,
}
