//! Hand-written lexer for the SQL subset.
//!
//! Produces a flat token stream with byte spans. Keywords are not
//! distinguished here — they are ordinary identifiers matched
//! case-insensitively by the parser — so `select` and `SELECT` lex
//! identically and table/column names may shadow nothing.

use crate::ast::Span;
use crate::diag::{ErrorKind, Result, SqlError};

/// Token payload. Tokens are `Copy`: identifier text is not stored here —
/// it is read back from the source through the token's span, which keeps
/// the hot lexing loop allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (text = the token's span of the source).
    Ident,
    /// Unsigned integer literal (sign is a separate [`TokenKind::Minus`]).
    Number(u64),
    /// `?` template parameter placeholder.
    Question,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `!=` or `<>`
    Ne,
    /// `-`
    Minus,
    /// End of input (always the final token).
    Eof,
}

impl Token {
    /// The token as it would appear in `src`, for error messages.
    pub fn describe(&self, src: &str) -> String {
        match self.kind {
            TokenKind::Ident => src[self.span.start..self.span.end].to_string(),
            TokenKind::Number(n) => n.to_string(),
            TokenKind::Question => "?".into(),
            TokenKind::Comma => ",".into(),
            TokenKind::Dot => ".".into(),
            TokenKind::LParen => "(".into(),
            TokenKind::RParen => ")".into(),
            TokenKind::Star => "*".into(),
            TokenKind::Eq => "=".into(),
            TokenKind::Lt => "<".into(),
            TokenKind::Le => "<=".into(),
            TokenKind::Gt => ">".into(),
            TokenKind::Ge => ">=".into(),
            TokenKind::Ne => "!=".into(),
            TokenKind::Minus => "-".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// One token with its source span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// The payload.
    pub kind: TokenKind,
    /// Byte span in the source.
    pub span: Span,
}

/// Lexes `input` into tokens, ending with a single [`TokenKind::Eof`].
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::with_capacity(input.len() / 4 + 1);
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let start = i;
        let kind = match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
                continue;
            }
            b'?' => {
                i += 1;
                TokenKind::Question
            }
            b',' => {
                i += 1;
                TokenKind::Comma
            }
            b'.' => {
                i += 1;
                TokenKind::Dot
            }
            b'(' => {
                i += 1;
                TokenKind::LParen
            }
            b')' => {
                i += 1;
                TokenKind::RParen
            }
            b'*' => {
                i += 1;
                TokenKind::Star
            }
            b'=' => {
                i += 1;
                TokenKind::Eq
            }
            b'-' => {
                i += 1;
                TokenKind::Minus
            }
            b'<' => {
                i += 1;
                match bytes.get(i) {
                    Some(b'=') => {
                        i += 1;
                        TokenKind::Le
                    }
                    Some(b'>') => {
                        i += 1;
                        TokenKind::Ne
                    }
                    _ => TokenKind::Lt,
                }
            }
            b'>' => {
                i += 1;
                if bytes.get(i) == Some(&b'=') {
                    i += 1;
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            b'!' => {
                i += 1;
                if bytes.get(i) == Some(&b'=') {
                    i += 1;
                    TokenKind::Ne
                } else {
                    return Err(SqlError::new(
                        ErrorKind::UnexpectedChar('!'),
                        Span::new(start, start + 1),
                    ));
                }
            }
            b'0'..=b'9' => {
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &input[start..i];
                let value = text
                    .parse::<u64>()
                    .map_err(|_| SqlError::new(ErrorKind::NumberTooLarge, Span::new(start, i)))?;
                TokenKind::Number(value)
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                TokenKind::Ident
            }
            other => {
                // Report the whole UTF-8 scalar, not its lead byte.
                let c = input[start..].chars().next().unwrap_or(other as char);
                return Err(SqlError::new(
                    ErrorKind::UnexpectedChar(c),
                    Span::new(start, start + c.len_utf8()),
                ));
            }
        };
        tokens.push(Token {
            kind,
            span: Span::new(start, i),
        });
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span::new(input.len(), input.len()),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        lex(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_operators_and_idents() {
        assert_eq!(
            kinds("a <= 5 AND b <> -3"),
            vec![
                TokenKind::Ident,
                TokenKind::Le,
                TokenKind::Number(5),
                TokenKind::Ident,
                TokenKind::Ident,
                TokenKind::Ne,
                TokenKind::Minus,
                TokenKind::Number(3),
                TokenKind::Eof,
            ]
        );
        assert_eq!(kinds("x != 1")[1], TokenKind::Ne);
    }

    #[test]
    fn spans_are_byte_offsets() {
        let tokens = lex("ab <= 12").unwrap();
        assert_eq!(tokens[0].span, Span::new(0, 2));
        assert_eq!(tokens[1].span, Span::new(3, 5));
        assert_eq!(tokens[2].span, Span::new(6, 8));
        assert_eq!(tokens[3].span, Span::new(8, 8));
    }

    #[test]
    fn rejects_stray_characters() {
        let err = lex("a @ b").unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnexpectedChar('@'));
        assert_eq!(err.span, Span::new(2, 3));
        let err = lex("a ! b").unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnexpectedChar('!'));
    }

    #[test]
    fn rejects_oversized_numbers() {
        let err = lex("99999999999999999999999").unwrap_err();
        assert_eq!(err.kind, ErrorKind::NumberTooLarge);
    }
}
