//! Recursive-descent parser for the SQL subset.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query        := union_term ( UNION ALL union_term )*        -- left-associative
//! union_term   := select_block | '(' query ')'
//! select_block := SELECT select_list FROM from_item
//!                 [ [INNER] JOIN from_item ON column '=' column ]
//!                 [ WHERE condition ( AND condition )* ]
//!                 [ GROUP BY column ( ',' column )* ]
//!                 [ ORDER BY column [ASC|DESC] ( ',' column [ASC|DESC] )* ]
//!                 [ LIMIT number ]
//! select_list  := '*' | column ( ',' column )*
//! from_item    := ident | '(' query ')'
//! condition    := column cmp value | value cmp column
//!               | column BETWEEN value AND value
//! cmp          := '=' | '<' | '<=' | '>' | '>=' | '!=' | '<>'
//! value        := ['-'] number | '?'
//! column       := ident [ '.' ident ]
//! ```
//!
//! `?` placeholders are numbered left to right in lexical order. The parser
//! is purely syntactic: names, parameter arity, and clause legality are the
//! rewrite pipeline's business.

use crate::ast::{
    BetweenCond, CmpCond, ColumnRef, Condition, FromItem, JoinClause, Limit, OrderKey, QueryExpr,
    SelectBlock, SelectList, Span, Value,
};
use crate::diag::{ErrorKind, Result, SqlError};
use crate::lexer::{lex, Token, TokenKind};
use adas_workload::plan::CmpOp;

/// Parses a complete query, consuming all input.
pub fn parse(sql: &str) -> Result<QueryExpr> {
    let tokens = lex(sql)?;
    let mut parser = Parser {
        src: sql,
        tokens,
        pos: 0,
        next_param: 0,
    };
    let query = parser.query()?;
    let token = *parser.peek();
    if token.kind != TokenKind::Eof {
        return Err(SqlError::new(
            ErrorKind::TrailingInput {
                found: token.describe(sql),
            },
            token.span,
        ));
    }
    Ok(query)
}

struct Parser<'a> {
    src: &'a str,
    tokens: Vec<Token>,
    pos: usize,
    next_param: usize,
}

impl Parser<'_> {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    /// The source text a token covers (identifier spelling, etc.).
    fn text(&self, token: &Token) -> &str {
        &self.src[token.span.start..token.span.end]
    }

    fn advance(&mut self) -> Token {
        let token = self.tokens[self.pos];
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        token
    }

    /// Span of the most recently consumed token.
    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn error_here(&self, expected: &str) -> SqlError {
        let token = self.peek();
        let kind = if token.kind == TokenKind::Eof {
            ErrorKind::UnexpectedEof {
                expected: expected.to_string(),
            }
        } else {
            ErrorKind::UnexpectedToken {
                expected: expected.to_string(),
                found: token.describe(self.src),
            }
        };
        SqlError::new(kind, token.span)
    }

    fn expect(&mut self, kind: &TokenKind, expected: &str) -> Result<Token> {
        if &self.peek().kind == kind {
            Ok(self.advance())
        } else {
            Err(self.error_here(expected))
        }
    }

    /// True when the next token is the given keyword (case-insensitive).
    fn at_keyword(&self, kw: &str) -> bool {
        let token = self.peek();
        token.kind == TokenKind::Ident && self.text(token).eq_ignore_ascii_case(kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<Token> {
        if self.at_keyword(kw) {
            Ok(self.advance())
        } else {
            Err(self.error_here(&format!("`{kw}`")))
        }
    }

    fn ident(&mut self, expected: &str) -> Result<(String, Span)> {
        if self.peek().kind == TokenKind::Ident {
            let token = self.advance();
            Ok((self.text(&token).to_string(), token.span))
        } else {
            Err(self.error_here(expected))
        }
    }

    fn query(&mut self) -> Result<QueryExpr> {
        let mut left = self.union_term()?;
        while self.at_keyword("UNION") {
            self.advance();
            self.expect_keyword("ALL")?;
            let right = self.union_term()?;
            let span = left.span().join(right.span());
            left = QueryExpr::Union {
                left: Box::new(left),
                right: Box::new(right),
                span,
            };
        }
        Ok(left)
    }

    fn union_term(&mut self) -> Result<QueryExpr> {
        if self.peek().kind == TokenKind::LParen {
            self.advance();
            let query = self.query()?;
            self.expect(&TokenKind::RParen, "`)`")?;
            Ok(query)
        } else {
            Ok(QueryExpr::Select(Box::new(self.select_block()?)))
        }
    }

    fn select_block(&mut self) -> Result<SelectBlock> {
        let start = self.expect_keyword("SELECT")?.span;
        let select = self.select_list()?;
        self.expect_keyword("FROM")?;
        let from = self.parse_from_item()?;

        let join = if self.at_keyword("JOIN") || self.at_keyword("INNER") {
            let join_start = self.peek().span;
            if self.eat_keyword("INNER") {
                self.expect_keyword("JOIN")?;
            } else {
                self.advance();
            }
            let right = self.parse_from_item()?;
            self.expect_keyword("ON")?;
            let left_key = self.column()?;
            self.expect(&TokenKind::Eq, "`=`")?;
            let right_key = self.column()?;
            Some(JoinClause {
                right,
                span: join_start.join(self.prev_span()),
                left_key,
                right_key,
            })
        } else {
            None
        };

        let mut conditions = Vec::new();
        if self.eat_keyword("WHERE") {
            conditions.push(self.condition()?);
            while self.eat_keyword("AND") {
                conditions.push(self.condition()?);
            }
        }

        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.column()?);
            while self.peek().kind == TokenKind::Comma {
                self.advance();
                group_by.push(self.column()?);
            }
        }

        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let column = self.column()?;
                let key_start = column.span;
                let desc = if self.eat_keyword("DESC") {
                    true
                } else {
                    self.eat_keyword("ASC");
                    false
                };
                order_by.push(OrderKey {
                    column,
                    desc,
                    span: key_start.join(self.prev_span()),
                });
                if self.peek().kind == TokenKind::Comma {
                    self.advance();
                } else {
                    break;
                }
            }
        }

        let limit = if self.eat_keyword("LIMIT") {
            let kw_span = self.prev_span();
            match self.peek().kind {
                TokenKind::Number(rows) => {
                    self.advance();
                    Some(Limit {
                        rows,
                        span: kw_span.join(self.prev_span()),
                    })
                }
                _ => return Err(self.error_here("a row count")),
            }
        } else {
            None
        };

        Ok(SelectBlock {
            select,
            from,
            join,
            conditions,
            group_by,
            order_by,
            limit,
            span: start.join(self.prev_span()),
        })
    }

    fn select_list(&mut self) -> Result<SelectList> {
        if self.peek().kind == TokenKind::Star {
            let token = self.advance();
            return Ok(SelectList::Star(token.span));
        }
        let mut columns = vec![self.column()?];
        while self.peek().kind == TokenKind::Comma {
            self.advance();
            columns.push(self.column()?);
        }
        Ok(SelectList::Columns(columns))
    }

    fn parse_from_item(&mut self) -> Result<FromItem> {
        match &self.peek().kind {
            TokenKind::LParen => {
                let start = self.advance().span;
                let query = self.query()?;
                let end = self.expect(&TokenKind::RParen, "`)`")?.span;
                Ok(FromItem::Derived {
                    query: Box::new(query),
                    span: start.join(end),
                })
            }
            TokenKind::Ident => {
                let (name, span) = self.ident("a table name")?;
                Ok(FromItem::Table { name, span })
            }
            _ => Err(self.error_here("a table name or `(`")),
        }
    }

    fn column(&mut self) -> Result<ColumnRef> {
        let (first, first_span) = self.ident("a column name")?;
        if self.peek().kind == TokenKind::Dot {
            self.advance();
            let (name, name_span) = self.ident("a column name")?;
            Ok(ColumnRef {
                qualifier: Some((first, first_span)),
                name,
                span: first_span.join(name_span),
                resolved: None,
            })
        } else {
            Ok(ColumnRef {
                qualifier: None,
                name: first,
                span: first_span,
                resolved: None,
            })
        }
    }

    fn condition(&mut self) -> Result<Condition> {
        // A value on the left means a flipped comparison.
        if matches!(
            self.peek().kind,
            TokenKind::Number(_) | TokenKind::Minus | TokenKind::Question
        ) {
            let value = self.value()?;
            let op = self.cmp_op()?;
            let column = self.column()?;
            let span = value.span().join(column.span);
            return Ok(Condition::Cmp(CmpCond {
                column,
                op,
                value,
                flipped: true,
                span,
            }));
        }
        let column = self.column()?;
        if self.eat_keyword("BETWEEN") {
            let low = self.value()?;
            self.expect_keyword("AND")?;
            let high = self.value()?;
            let span = column.span.join(high.span());
            return Ok(Condition::Between(BetweenCond {
                column,
                low,
                high,
                span,
            }));
        }
        let op = self.cmp_op()?;
        let value = self.value()?;
        let span = column.span.join(value.span());
        Ok(Condition::Cmp(CmpCond {
            column,
            op,
            value,
            flipped: false,
            span,
        }))
    }

    fn cmp_op(&mut self) -> Result<CmpOp> {
        let op = match self.peek().kind {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            TokenKind::Ne => CmpOp::Ne,
            _ => return Err(self.error_here("a comparison operator")),
        };
        self.advance();
        Ok(op)
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek().kind {
            TokenKind::Question => {
                let token = self.advance();
                let index = self.next_param;
                self.next_param += 1;
                Ok(Value::Param {
                    index,
                    span: token.span,
                    bound: None,
                })
            }
            TokenKind::Minus => {
                let minus = self.advance();
                match self.peek().kind {
                    TokenKind::Number(magnitude) => {
                        let token = self.advance();
                        let span = minus.span.join(token.span);
                        if magnitude > i64::MIN.unsigned_abs() {
                            return Err(SqlError::new(ErrorKind::NumberTooLarge, span));
                        }
                        Ok(Value::Literal {
                            value: (magnitude as i128).wrapping_neg() as i64,
                            span,
                        })
                    }
                    _ => Err(self.error_here("a number")),
                }
            }
            TokenKind::Number(magnitude) => {
                let token = self.advance();
                if magnitude > i64::MAX as u64 {
                    return Err(SqlError::new(ErrorKind::NumberTooLarge, token.span));
                }
                Ok(Value::Literal {
                    value: magnitude as i64,
                    span: token.span,
                })
            }
            _ => Err(self.error_here("a value (number or `?`)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_block() {
        let q = parse(
            "SELECT user_id, region_id FROM events JOIN users ON events.user_id = users.user_id \
             WHERE event_type = 7 AND ts_hour BETWEEN 1 AND ? GROUP BY region_id \
             ORDER BY user_id DESC LIMIT 10",
        )
        .unwrap();
        let QueryExpr::Select(block) = q else {
            panic!("expected a select block")
        };
        assert!(matches!(block.select, SelectList::Columns(ref c) if c.len() == 2));
        assert!(block.join.is_some());
        assert_eq!(block.conditions.len(), 2);
        assert!(matches!(block.conditions[1], Condition::Between(_)));
        assert_eq!(block.group_by.len(), 1);
        assert_eq!(block.order_by.len(), 1);
        assert!(block.order_by[0].desc);
        assert_eq!(block.limit.unwrap().rows, 10);
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            parse("select * from events where user_id = 1").unwrap(),
            parse("SELECT * FROM events WHERE user_id = 1").unwrap()
        );
    }

    #[test]
    fn unions_are_left_associative() {
        let q =
            parse("SELECT * FROM a UNION ALL SELECT * FROM b UNION ALL SELECT * FROM c").unwrap();
        let QueryExpr::Union { left, right, .. } = q else {
            panic!("expected a union")
        };
        assert!(matches!(*left, QueryExpr::Union { .. }));
        assert!(matches!(*right, QueryExpr::Select(_)));
        // Parenthesized right operand nests the other way.
        let q =
            parse("SELECT * FROM a UNION ALL (SELECT * FROM b UNION ALL SELECT * FROM c)").unwrap();
        let QueryExpr::Union { left, right, .. } = q else {
            panic!("expected a union")
        };
        assert!(matches!(*left, QueryExpr::Select(_)));
        assert!(matches!(*right, QueryExpr::Union { .. }));
    }

    #[test]
    fn params_number_lexically() {
        let q = parse("SELECT * FROM (SELECT * FROM t WHERE a = ?) WHERE b = ? AND c = ?").unwrap();
        let mut indices = Vec::new();
        q.for_each_block(&mut |block| {
            for cond in &block.conditions {
                if let Condition::Cmp(c) = cond {
                    if let Value::Param { index, .. } = c.value {
                        indices.push(index);
                    }
                }
            }
        });
        indices.sort_unstable();
        assert_eq!(indices, vec![0, 1, 2]);
    }

    #[test]
    fn flipped_comparisons_are_marked() {
        let q = parse("SELECT * FROM t WHERE 5 < a").unwrap();
        let QueryExpr::Select(block) = q else {
            panic!("expected a select block")
        };
        let Condition::Cmp(c) = &block.conditions[0] else {
            panic!("expected a comparison")
        };
        assert!(c.flipped);
        assert_eq!(c.op, CmpOp::Lt);
    }

    #[test]
    fn negative_and_extreme_literals() {
        let q = parse(&format!("SELECT * FROM t WHERE a = -{}", 1u128 << 63)).unwrap();
        let QueryExpr::Select(block) = q else {
            panic!("expected a select block")
        };
        let Condition::Cmp(c) = &block.conditions[0] else {
            panic!("expected a comparison")
        };
        assert_eq!(c.value.concrete(), Some(i64::MIN));
        assert!(parse(&format!("SELECT * FROM t WHERE a = {}", 1u64 << 63)).is_err());
    }

    #[test]
    fn trailing_input_is_rejected() {
        let err = parse("SELECT * FROM t SELECT").unwrap_err();
        assert!(matches!(err.kind, ErrorKind::TrailingInput { .. }));
    }
}
