//! The phased rewrite pipeline: `analyze → canonicalize → optimize → lower`.
//!
//! Rewrites are organized as a registry of [`QueryRule`]s, each pinned to
//! one [`RewritePhase`]. The driver walks the phases in order; within a
//! phase it consults [`QueryRule::matches_context`] against an
//! [`AnalysisContext`] recomputed at the phase boundary, and every rule
//! reports one of three [`RuleOutcome`]s:
//!
//! * `NotApplicable` — the context gate said the rule had nothing to do, so
//!   it never ran.
//! * `NoChange` — the rule ran (validation, resolution already done, …)
//!   but left the query untouched.
//! * `Changed` — the rule mutated the query.
//!
//! The pipeline is **idempotent**: re-running the rewrite phases on their
//! own output produces no `Changed` outcome. It is also **order-invariant
//! within a phase**: the rules of one phase touch disjoint parts of the
//! AST, so any permutation (see [`PhaseOrders`]) lowers to the same plan.
//! Determinism rules: rule arrays are `const` and walked in order, context
//! sets are `BTreeSet`s, and nothing iterates a hash map.
//!
//! The lower phase's single rule, [`QueryRule::PlanEmit`], consumes the
//! rewritten AST and emits a [`LogicalPlan`] for the existing engine
//! optimizer, signature hashing, and reuse stack.
//!
//! Every phase runs under an `obs` span (component `sql.frontend`) with a
//! deterministic logical-tick extent — one tick per phase dispatch plus one
//! per executed rule — so `watchtower`'s critical-path profiler can
//! attribute front-end time, and per-rule outcomes are exported as the
//! `rule_outcome` counter.

use crate::ast::{ColumnRef, Condition, FromItem, QueryExpr, SelectBlock, SelectList, Span, Value};
use crate::diag::{ErrorKind, Result, SqlError};
use crate::parser::parse;
use adas_obs::Obs;
use adas_workload::catalog::{Catalog, TableMeta};
use adas_workload::plan::LogicalPlan;
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Name → table-metadata index built once per [`Frontend`], so resolution
/// never pays the catalog's linear table scan per reference (generated
/// catalogs carry thousands of ad-hoc tables).
type TableIndex<'a> = BTreeMap<&'a str, &'a TableMeta>;

/// Obs component name for every front-end span and counter.
pub const COMPONENT: &str = "sql.frontend";

/// The pipeline's phases, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RewritePhase {
    /// Validation and annotation: tables exist, parameters bind, columns
    /// resolve to ordinals.
    Analyze,
    /// Shape normalization: desugar `BETWEEN`, mirror flipped comparisons.
    Canonicalize,
    /// Plan-preserving simplification: collapse pass-through derived
    /// tables, elide `ORDER BY`/`LIMIT` (the IR has bag semantics).
    Optimize,
    /// Emit the [`LogicalPlan`].
    Lower,
}

impl RewritePhase {
    /// All phases, in execution order.
    pub const ALL: [RewritePhase; 4] = [
        RewritePhase::Analyze,
        RewritePhase::Canonicalize,
        RewritePhase::Optimize,
        RewritePhase::Lower,
    ];

    /// Stable lowercase name (span names and counter labels).
    pub fn name(self) -> &'static str {
        match self {
            Self::Analyze => "analyze",
            Self::Canonicalize => "canonicalize",
            Self::Optimize => "optimize",
            Self::Lower => "lower",
        }
    }
}

/// What a rule did when the driver reached it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleOutcome {
    /// The context gate rejected the rule; it never ran.
    NotApplicable,
    /// The rule ran and left the query unchanged.
    NoChange,
    /// The rule mutated the query.
    Changed,
}

impl RuleOutcome {
    /// Stable lowercase name (counter label).
    pub fn name(self) -> &'static str {
        match self {
            Self::NotApplicable => "not_applicable",
            Self::NoChange => "no_change",
            Self::Changed => "changed",
        }
    }
}

/// The rewrite-rule registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum QueryRule {
    /// Analyze: every referenced table exists in the catalog.
    RelationDiscovery,
    /// Analyze: bind `?` placeholders to the supplied values.
    ParamBind,
    /// Analyze: resolve column names to base-table ordinals.
    ColumnResolution,
    /// Canonicalize: `a BETWEEN x AND y` → `a >= x AND a <= y`.
    BetweenDesugar,
    /// Canonicalize: `5 < a` → `a > 5` (mirror the operator).
    ComparisonFlip,
    /// Optimize: `FROM (SELECT * FROM x)` → `FROM x`.
    DerivedTableCollapse,
    /// Optimize: drop `ORDER BY` / `LIMIT` — the plan IR is bag-semantic.
    OrderLimitElision,
    /// Lower: emit the logical plan (terminal; always `Changed`).
    PlanEmit,
}

/// Analyze-phase rules, in canonical order.
pub const ANALYZE_RULES: &[QueryRule] = &[
    QueryRule::RelationDiscovery,
    QueryRule::ParamBind,
    QueryRule::ColumnResolution,
];
/// Canonicalize-phase rules, in canonical order.
pub const CANONICALIZE_RULES: &[QueryRule] =
    &[QueryRule::BetweenDesugar, QueryRule::ComparisonFlip];
/// Optimize-phase rules, in canonical order.
pub const OPTIMIZE_RULES: &[QueryRule] = &[
    QueryRule::DerivedTableCollapse,
    QueryRule::OrderLimitElision,
];
/// Lower-phase rules (the terminal plan emission).
pub const LOWER_RULES: &[QueryRule] = &[QueryRule::PlanEmit];

/// The canonical rule list of one phase.
pub fn rules_for_phase(phase: RewritePhase) -> &'static [QueryRule] {
    match phase {
        RewritePhase::Analyze => ANALYZE_RULES,
        RewritePhase::Canonicalize => CANONICALIZE_RULES,
        RewritePhase::Optimize => OPTIMIZE_RULES,
        RewritePhase::Lower => LOWER_RULES,
    }
}

impl QueryRule {
    /// Every rule, grouped by phase in canonical order.
    pub const ALL: [QueryRule; 8] = [
        QueryRule::RelationDiscovery,
        QueryRule::ParamBind,
        QueryRule::ColumnResolution,
        QueryRule::BetweenDesugar,
        QueryRule::ComparisonFlip,
        QueryRule::DerivedTableCollapse,
        QueryRule::OrderLimitElision,
        QueryRule::PlanEmit,
    ];

    /// Stable snake_case name (counter label, reports).
    pub fn name(self) -> &'static str {
        match self {
            Self::RelationDiscovery => "relation_discovery",
            Self::ParamBind => "param_bind",
            Self::ColumnResolution => "column_resolution",
            Self::BetweenDesugar => "between_desugar",
            Self::ComparisonFlip => "comparison_flip",
            Self::DerivedTableCollapse => "derived_table_collapse",
            Self::OrderLimitElision => "order_limit_elision",
            Self::PlanEmit => "plan_emit",
        }
    }

    /// The phase this rule belongs to.
    pub fn phase(self) -> RewritePhase {
        match self {
            Self::RelationDiscovery | Self::ParamBind | Self::ColumnResolution => {
                RewritePhase::Analyze
            }
            Self::BetweenDesugar | Self::ComparisonFlip => RewritePhase::Canonicalize,
            Self::DerivedTableCollapse | Self::OrderLimitElision => RewritePhase::Optimize,
            Self::PlanEmit => RewritePhase::Lower,
        }
    }

    /// Context gate: should this rule run at all? Gated-out rules report
    /// [`RuleOutcome::NotApplicable`] without executing.
    pub fn matches_context(self, cx: &AnalysisContext) -> bool {
        match self {
            Self::RelationDiscovery | Self::ColumnResolution | Self::PlanEmit => true,
            Self::ParamBind => cx.unbound_params > 0,
            Self::BetweenDesugar => cx.has_between,
            Self::ComparisonFlip => cx.has_flipped,
            Self::DerivedTableCollapse => cx.has_passthrough_derived,
            Self::OrderLimitElision => cx.has_order_by || cx.has_limit,
        }
    }

    /// Executes the rule against the query. [`QueryRule::PlanEmit`] is
    /// driven separately (it produces a plan, not a mutation) and returns
    /// `NoChange` here.
    fn apply(
        self,
        query: &mut QueryExpr,
        tables: &TableIndex<'_>,
        params: &[i64],
    ) -> Result<RuleOutcome> {
        match self {
            Self::RelationDiscovery => relation_discovery(query, tables),
            Self::ParamBind => param_bind(query, params),
            Self::ColumnResolution => column_resolution(query, tables),
            Self::BetweenDesugar => between_desugar(query),
            Self::ComparisonFlip => comparison_flip(query),
            Self::DerivedTableCollapse => derived_table_collapse(query),
            Self::OrderLimitElision => order_limit_elision(query),
            Self::PlanEmit => Ok(RuleOutcome::NoChange),
        }
    }
}

/// Facts about the query, recomputed by the driver at every phase
/// boundary; [`QueryRule::matches_context`] gates on them. Collections are
/// ordered so iteration is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnalysisContext {
    /// Number of `?` placeholders not yet bound to a value.
    pub unbound_params: usize,
    /// Span of the first unbound placeholder, for arity diagnostics.
    pub first_unbound: Option<Span>,
    /// Number of column references not yet resolved to ordinals.
    pub unresolved_columns: usize,
    /// Any block still carries an `ORDER BY`.
    pub has_order_by: bool,
    /// Any block still carries a `LIMIT`.
    pub has_limit: bool,
    /// Any condition is still a `BETWEEN`.
    pub has_between: bool,
    /// Any comparison still has its value on the left.
    pub has_flipped: bool,
    /// Any FROM item is a pass-through `(SELECT * FROM x)` derived table.
    pub has_passthrough_derived: bool,
}

impl AnalysisContext {
    /// Scans the query.
    pub fn scan(query: &QueryExpr) -> Self {
        let mut cx = Self::default();
        query.for_each_block(&mut |block| {
            for item in block_items(block) {
                if is_passthrough_derived(item) {
                    cx.has_passthrough_derived = true;
                }
            }
            for cond in &block.conditions {
                match cond {
                    Condition::Between(b) => {
                        cx.has_between = true;
                        for value in [&b.low, &b.high] {
                            cx.note_value(value);
                        }
                        cx.note_column(&b.column);
                    }
                    Condition::Cmp(c) => {
                        cx.has_flipped |= c.flipped;
                        cx.note_value(&c.value);
                        cx.note_column(&c.column);
                    }
                }
            }
            cx.has_order_by |= !block.order_by.is_empty();
            cx.has_limit |= block.limit.is_some();
            if let SelectList::Columns(columns) = &block.select {
                columns.iter().for_each(|c| cx.note_column(c));
            }
            block.group_by.iter().for_each(|c| cx.note_column(c));
            block
                .order_by
                .iter()
                .for_each(|k| cx.note_column(&k.column));
            if let Some(join) = &block.join {
                cx.note_column(&join.left_key);
                cx.note_column(&join.right_key);
            }
        });
        cx
    }

    fn note_value(&mut self, value: &Value) {
        if let Value::Param {
            bound: None, span, ..
        } = value
        {
            self.unbound_params += 1;
            // Blocks are visited pre-order left-to-right, and so are a
            // block's values, so the first sighting is the lexically first.
            if self.first_unbound.is_none() {
                self.first_unbound = Some(*span);
            }
        }
    }

    fn note_column(&mut self, column: &ColumnRef) {
        if column.resolved.is_none() {
            self.unresolved_columns += 1;
        }
    }
}

/// The FROM items of one block (left item, then join right item).
fn block_items(block: &SelectBlock) -> impl Iterator<Item = &FromItem> {
    std::iter::once(&block.from).chain(block.join.as_ref().map(|j| &j.right))
}

fn is_passthrough_derived(item: &FromItem) -> bool {
    match item {
        FromItem::Derived { query, .. } => match query.as_ref() {
            QueryExpr::Select(b) => is_passthrough(b),
            QueryExpr::Union { .. } => false,
        },
        FromItem::Table { .. } => false,
    }
}

// `ORDER BY`/`LIMIT` do not block pass-through: the IR has bag semantics
// and `OrderLimitElision` discards them unconditionally, so a derived table
// whose only decorations are ordering clauses collapses in the same phase
// pass regardless of which of the two optimize rules runs first (keeping
// the phase idempotent and order-invariant).
fn is_passthrough(block: &SelectBlock) -> bool {
    matches!(block.select, SelectList::Star(_))
        && block.join.is_none()
        && block.conditions.is_empty()
        && block.group_by.is_empty()
}

// ---------------------------------------------------------------------------
// Rule bodies.
// ---------------------------------------------------------------------------

fn relation_discovery(query: &mut QueryExpr, tables: &TableIndex<'_>) -> Result<RuleOutcome> {
    let mut missing: Option<(String, Span)> = None;
    query.for_each_block(&mut |block| {
        for item in block_items(block) {
            if let FromItem::Table { name, span } = item {
                if missing.is_none() && !tables.contains_key(name.as_str()) {
                    missing = Some((name.clone(), *span));
                }
            }
        }
    });
    match missing {
        Some((name, span)) => Err(SqlError::new(ErrorKind::UnknownTable { name }, span)),
        None => Ok(RuleOutcome::NoChange),
    }
}

fn param_bind(query: &mut QueryExpr, params: &[i64]) -> Result<RuleOutcome> {
    fn bind(value: &mut Value, params: &[i64], bound: &mut usize, error: &mut Option<SqlError>) {
        if let Value::Param {
            index,
            span,
            bound: slot,
        } = value
        {
            if slot.is_some() {
                return;
            }
            match params.get(*index) {
                Some(v) => {
                    *slot = Some(*v);
                    *bound += 1;
                }
                None => {
                    if error.is_none() {
                        *error = Some(SqlError::new(
                            ErrorKind::ParamArity {
                                placeholders: *index + 1,
                                bound: params.len(),
                            },
                            *span,
                        ));
                    }
                }
            }
        }
    }
    let mut bound = 0usize;
    let mut error: Option<SqlError> = None;
    query.for_each_block_mut(&mut |block| {
        for cond in &mut block.conditions {
            match cond {
                Condition::Cmp(c) => bind(&mut c.value, params, &mut bound, &mut error),
                Condition::Between(b) => {
                    bind(&mut b.low, params, &mut bound, &mut error);
                    bind(&mut b.high, params, &mut bound, &mut error);
                }
            }
        }
    });
    if let Some(err) = error {
        return Err(err);
    }
    Ok(if bound > 0 {
        RuleOutcome::Changed
    } else {
        RuleOutcome::NoChange
    })
}

fn column_resolution(query: &mut QueryExpr, tables: &TableIndex<'_>) -> Result<RuleOutcome> {
    let mut resolved = 0usize;
    let mut error: Option<SqlError> = None;
    query.for_each_block_mut(&mut |block| {
        let base = block.from.base_table().0;
        let base_meta = tables.get(base).copied();
        let mut resolve = |column: &mut ColumnRef, base: &str, table: Option<&TableMeta>| {
            if error.is_some() || column.resolved.is_some() {
                return;
            }
            if let Some((qualifier, qspan)) = &column.qualifier {
                if qualifier != base {
                    error = Some(SqlError::new(
                        ErrorKind::QualifierMismatch {
                            qualifier: qualifier.clone(),
                            expected: base.to_string(),
                        },
                        *qspan,
                    ));
                    return;
                }
            }
            let Some(table) = table else {
                error = Some(SqlError::new(
                    ErrorKind::UnknownTable {
                        name: base.to_string(),
                    },
                    column.span,
                ));
                return;
            };
            match table.columns.iter().position(|c| c.name == column.name) {
                Some(ordinal) => {
                    column.resolved = Some(ordinal);
                    resolved += 1;
                }
                None => {
                    error = Some(SqlError::new(
                        ErrorKind::UnknownColumn {
                            table: base.to_string(),
                            column: column.name.clone(),
                        },
                        column.span,
                    ));
                }
            }
        };
        if let SelectList::Columns(columns) = &mut block.select {
            columns.iter_mut().for_each(|c| resolve(c, base, base_meta));
        }
        for cond in &mut block.conditions {
            match cond {
                Condition::Cmp(c) => resolve(&mut c.column, base, base_meta),
                Condition::Between(b) => resolve(&mut b.column, base, base_meta),
            }
        }
        block
            .group_by
            .iter_mut()
            .for_each(|c| resolve(c, base, base_meta));
        block
            .order_by
            .iter_mut()
            .for_each(|k| resolve(&mut k.column, base, base_meta));
        if let Some(join) = &mut block.join {
            let right_base = join.right.base_table().0;
            let right_meta = tables.get(right_base).copied();
            resolve(&mut join.left_key, base, base_meta);
            resolve(&mut join.right_key, right_base, right_meta);
        }
    });
    if let Some(err) = error {
        return Err(err);
    }
    Ok(if resolved > 0 {
        RuleOutcome::Changed
    } else {
        RuleOutcome::NoChange
    })
}

fn between_desugar(query: &mut QueryExpr) -> Result<RuleOutcome> {
    use adas_workload::plan::CmpOp;
    let mut changed = false;
    query.for_each_block_mut(&mut |block| {
        if !block
            .conditions
            .iter()
            .any(|c| matches!(c, Condition::Between(_)))
        {
            return;
        }
        changed = true;
        block.conditions = block
            .conditions
            .drain(..)
            .flat_map(|cond| match cond {
                Condition::Between(b) => vec![
                    Condition::Cmp(crate::ast::CmpCond {
                        column: b.column.clone(),
                        op: CmpOp::Ge,
                        value: b.low,
                        flipped: false,
                        span: b.span,
                    }),
                    Condition::Cmp(crate::ast::CmpCond {
                        column: b.column,
                        op: CmpOp::Le,
                        value: b.high,
                        flipped: false,
                        span: b.span,
                    }),
                ],
                other => vec![other],
            })
            .collect();
    });
    Ok(outcome_of(changed))
}

fn comparison_flip(query: &mut QueryExpr) -> Result<RuleOutcome> {
    let mut changed = false;
    query.for_each_block_mut(&mut |block| {
        for cond in &mut block.conditions {
            if let Condition::Cmp(c) = cond {
                if c.flipped {
                    c.op = c.op.mirror();
                    c.flipped = false;
                    changed = true;
                }
            }
        }
    });
    Ok(outcome_of(changed))
}

fn derived_table_collapse(query: &mut QueryExpr) -> Result<RuleOutcome> {
    fn collapse_item(item: &mut FromItem) -> bool {
        let mut changed = false;
        while is_passthrough_derived(item) {
            let FromItem::Derived { query, .. } = item else {
                unreachable!("checked by is_passthrough_derived")
            };
            let QueryExpr::Select(block) = query.as_mut() else {
                unreachable!("checked by is_passthrough_derived")
            };
            *item = block.from.clone();
            changed = true;
        }
        changed
    }
    let mut changed = false;
    query.for_each_block_mut(&mut |block| {
        changed |= collapse_item(&mut block.from);
        if let Some(join) = &mut block.join {
            changed |= collapse_item(&mut join.right);
        }
    });
    Ok(outcome_of(changed))
}

fn order_limit_elision(query: &mut QueryExpr) -> Result<RuleOutcome> {
    let mut changed = false;
    query.for_each_block_mut(&mut |block| {
        if !block.order_by.is_empty() {
            block.order_by.clear();
            changed = true;
        }
        if block.limit.is_some() {
            block.limit = None;
            changed = true;
        }
    });
    Ok(outcome_of(changed))
}

fn outcome_of(changed: bool) -> RuleOutcome {
    if changed {
        RuleOutcome::Changed
    } else {
        RuleOutcome::NoChange
    }
}

// ---------------------------------------------------------------------------
// Lowering.
// ---------------------------------------------------------------------------

/// Lowers a fully rewritten query to the plan IR. Residual syntax the
/// rewrite phases should have eliminated (`BETWEEN`, flipped comparisons,
/// unbound parameters, unresolved columns, `ORDER BY`/`LIMIT`) is a typed
/// error, not a panic — it means the phases were skipped.
pub fn lower(query: &QueryExpr) -> Result<LogicalPlan> {
    use adas_workload::plan::{Comparison, Predicate};
    match query {
        QueryExpr::Union { left, right, .. } => Ok(LogicalPlan::union(lower(left)?, lower(right)?)),
        QueryExpr::Select(block) => {
            if let Some(key) = block.order_by.first() {
                return Err(SqlError::new(ErrorKind::Residual("ORDER BY"), key.span));
            }
            if let Some(limit) = block.limit {
                return Err(SqlError::new(ErrorKind::Residual("LIMIT"), limit.span));
            }
            let mut plan = lower_item(&block.from)?;
            if let Some(join) = &block.join {
                let right = lower_item(&join.right)?;
                plan = LogicalPlan::join(
                    plan,
                    right,
                    resolved(&join.left_key)?,
                    resolved(&join.right_key)?,
                );
            }
            if !block.conditions.is_empty() {
                let mut clauses = Vec::with_capacity(block.conditions.len());
                for cond in &block.conditions {
                    let c = match cond {
                        Condition::Cmp(c) => c,
                        Condition::Between(b) => {
                            return Err(SqlError::new(ErrorKind::Residual("BETWEEN"), b.span))
                        }
                    };
                    if c.flipped {
                        return Err(SqlError::new(
                            ErrorKind::Residual("flipped comparison"),
                            c.span,
                        ));
                    }
                    let value = c.value.concrete().ok_or_else(|| {
                        SqlError::new(ErrorKind::Residual("unbound parameter"), c.value.span())
                    })?;
                    clauses.push(Comparison::new(resolved(&c.column)?, c.op, value));
                }
                plan = plan.filter(Predicate::new(clauses));
            }
            if !block.group_by.is_empty() {
                let mut group = Vec::with_capacity(block.group_by.len());
                for column in &block.group_by {
                    group.push(resolved(column)?);
                }
                plan = plan.aggregate(group);
            }
            if let SelectList::Columns(columns) = &block.select {
                let mut ordinals = Vec::with_capacity(columns.len());
                for column in columns {
                    ordinals.push(resolved(column)?);
                }
                plan = plan.project(ordinals);
            }
            Ok(plan)
        }
    }
}

fn lower_item(item: &FromItem) -> Result<LogicalPlan> {
    match item {
        FromItem::Table { name, .. } => Ok(LogicalPlan::scan(name)),
        FromItem::Derived { query, .. } => lower(query),
    }
}

fn resolved(column: &ColumnRef) -> Result<usize> {
    column
        .resolved
        .ok_or_else(|| SqlError::new(ErrorKind::Residual("unresolved column"), column.span))
}

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

/// One rule's outcome at its position in the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleApplication {
    /// The phase the rule ran in.
    pub phase: RewritePhase,
    /// The rule.
    pub rule: QueryRule,
    /// What it did.
    pub outcome: RuleOutcome,
}

/// The per-rule outcome log of one compilation, in execution order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompileReport {
    /// Every rule application, in execution order.
    pub applications: Vec<RuleApplication>,
}

impl CompileReport {
    /// The outcome of a rule's (last) application, if it ran.
    pub fn outcome(&self, rule: QueryRule) -> Option<RuleOutcome> {
        self.applications
            .iter()
            .rev()
            .find(|a| a.rule == rule)
            .map(|a| a.outcome)
    }

    /// The rules that reported [`RuleOutcome::Changed`], in order.
    pub fn changed(&self) -> Vec<QueryRule> {
        self.applications
            .iter()
            .filter(|a| a.outcome == RuleOutcome::Changed)
            .map(|a| a.rule)
            .collect()
    }

    /// True when any rewrite rule (excluding the terminal plan emission)
    /// reported `Changed`.
    pub fn any_rewrite_changed(&self) -> bool {
        self.applications
            .iter()
            .any(|a| a.rule != QueryRule::PlanEmit && a.outcome == RuleOutcome::Changed)
    }
}

/// A successful compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct Compiled {
    /// The rewritten AST (post-pipeline, pre-lowering).
    pub query: QueryExpr,
    /// The emitted plan.
    pub plan: LogicalPlan,
    /// Per-rule outcomes.
    pub report: CompileReport,
}

/// Per-phase rule orderings for [`Frontend::compile_with_order`]. Each list
/// must be a permutation of that phase's canonical rules; the property
/// tests use this to check order invariance within a phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseOrders {
    /// Analyze-phase order.
    pub analyze: Vec<QueryRule>,
    /// Canonicalize-phase order.
    pub canonicalize: Vec<QueryRule>,
    /// Optimize-phase order.
    pub optimize: Vec<QueryRule>,
}

impl PhaseOrders {
    /// The canonical orders (what [`Frontend::compile`] uses).
    pub fn canonical() -> Self {
        Self {
            analyze: ANALYZE_RULES.to_vec(),
            canonicalize: CANONICALIZE_RULES.to_vec(),
            optimize: OPTIMIZE_RULES.to_vec(),
        }
    }

    /// A `'static` canonical instance, so the hot compile path allocates
    /// no order vectors per query.
    fn canonical_static() -> &'static Self {
        static CANONICAL: OnceLock<PhaseOrders> = OnceLock::new();
        CANONICAL.get_or_init(Self::canonical)
    }

    fn validate(&self) -> Result<()> {
        // Hot path: the canonical orders validate by slice equality alone.
        if self.analyze == ANALYZE_RULES
            && self.canonicalize == CANONICALIZE_RULES
            && self.optimize == OPTIMIZE_RULES
        {
            return Ok(());
        }
        for (phase, order) in [
            (RewritePhase::Analyze, &self.analyze),
            (RewritePhase::Canonicalize, &self.canonicalize),
            (RewritePhase::Optimize, &self.optimize),
        ] {
            let mut canonical = rules_for_phase(phase).to_vec();
            let mut given = order.clone();
            canonical.sort_unstable();
            given.sort_unstable();
            if canonical != given {
                return Err(SqlError::new(
                    ErrorKind::InvalidRuleOrder {
                        phase: phase.name(),
                    },
                    Span::new(0, 0),
                ));
            }
        }
        Ok(())
    }

    fn order_for(&self, phase: RewritePhase) -> &[QueryRule] {
        match phase {
            RewritePhase::Analyze => &self.analyze,
            RewritePhase::Canonicalize => &self.canonicalize,
            RewritePhase::Optimize => &self.optimize,
            RewritePhase::Lower => LOWER_RULES,
        }
    }
}

/// The SQL front-end: parse → analyze → canonicalize → optimize → lower
/// against a fixed catalog.
#[derive(Debug, Clone)]
pub struct Frontend<'a> {
    catalog: &'a Catalog,
    tables: TableIndex<'a>,
}

impl<'a> Frontend<'a> {
    /// Creates a front-end resolving names against `catalog`. Builds a
    /// name → table index once so per-query resolution is logarithmic in
    /// the catalog size.
    pub fn new(catalog: &'a Catalog) -> Self {
        let tables = catalog
            .tables()
            .iter()
            .map(|t| (t.name.as_str(), t))
            .collect();
        Self { catalog, tables }
    }

    /// The catalog this front-end resolves against.
    pub fn catalog(&self) -> &'a Catalog {
        self.catalog
    }

    /// Compiles `sql` with `params` bound to its `?` placeholders, without
    /// observability.
    pub fn compile(&self, sql: &str, params: &[i64]) -> Result<Compiled> {
        self.compile_observed(sql, params, &Obs::disabled(), 0.0)
    }

    /// Compiles with every phase instrumented through `obs` starting at
    /// logical time `at`. Span extents are deterministic logical ticks —
    /// one per phase dispatch plus one per executed rule — so the spans
    /// survive critical-path analysis (zero-extent spans would be dropped).
    pub fn compile_observed(
        &self,
        sql: &str,
        params: &[i64],
        obs: &Obs,
        at: f64,
    ) -> Result<Compiled> {
        self.compile_full(sql, params, PhaseOrders::canonical_static(), obs, at)
    }

    /// Compiles with explicit per-phase rule orders (each a permutation of
    /// the canonical order). Exists to let tests prove order invariance.
    pub fn compile_with_order(
        &self,
        sql: &str,
        params: &[i64],
        orders: &PhaseOrders,
    ) -> Result<Compiled> {
        self.compile_full(sql, params, orders, &Obs::disabled(), 0.0)
    }

    fn compile_full(
        &self,
        sql: &str,
        params: &[i64],
        orders: &PhaseOrders,
        obs: &Obs,
        at: f64,
    ) -> Result<Compiled> {
        orders.validate()?;
        let mut tick = at;
        let compile_span = obs.span_enter(COMPONENT, "compile", tick);
        let result = (|| {
            let parse_span = obs.span_enter(COMPONENT, "parse", tick);
            let parsed = parse(sql);
            tick += 1.0;
            obs.span_exit(parse_span, tick);
            let mut query = parsed?;

            let mut report = CompileReport::default();
            self.rewrite_inner(&mut query, params, orders, obs, &mut tick, &mut report)?;

            // Lower phase: the terminal PlanEmit rule consumes the AST.
            let lower_span = obs.span_enter(COMPONENT, RewritePhase::Lower.name(), tick);
            let plan_result = lower(&query);
            tick += 1.0; // the PlanEmit rule's execution tick
            let outcome = if plan_result.is_ok() {
                RuleOutcome::Changed
            } else {
                RuleOutcome::NotApplicable
            };
            obs.counter_add(
                COMPONENT,
                "rule_outcome",
                &[
                    ("phase", RewritePhase::Lower.name()),
                    ("rule", QueryRule::PlanEmit.name()),
                    ("outcome", outcome.name()),
                ],
                1,
            );
            tick += 1.0; // phase dispatch tick
            obs.span_exit(lower_span, tick);
            let plan = plan_result?;
            report.applications.push(RuleApplication {
                phase: RewritePhase::Lower,
                rule: QueryRule::PlanEmit,
                outcome: RuleOutcome::Changed,
            });
            obs.counter_add(COMPONENT, "queries_compiled", &[], 1);
            Ok(Compiled {
                query,
                plan,
                report,
            })
        })();
        tick += 1.0; // the compile span's own dispatch tick
        obs.span_exit(compile_span, tick);
        result
    }

    /// Runs the three rewrite phases (no parse, no lower) on `query`,
    /// mutating it in place. Re-running on a previously rewritten query
    /// with `params = &[]` must produce no `Changed` outcome — the
    /// idempotence contract the property tests pin.
    pub fn rewrite(&self, query: &mut QueryExpr, params: &[i64]) -> Result<CompileReport> {
        let mut report = CompileReport::default();
        let mut tick = 0.0;
        self.rewrite_inner(
            query,
            params,
            PhaseOrders::canonical_static(),
            &Obs::disabled(),
            &mut tick,
            &mut report,
        )?;
        Ok(report)
    }

    fn rewrite_inner(
        &self,
        query: &mut QueryExpr,
        params: &[i64],
        orders: &PhaseOrders,
        obs: &Obs,
        tick: &mut f64,
        report: &mut CompileReport,
    ) -> Result<()> {
        // Parameter arity is a whole-query contract, checked before any
        // rule runs so it fails even when ParamBind is gated out.
        let cx = AnalysisContext::scan(query);
        if cx.unbound_params != params.len() {
            let span = cx.first_unbound.unwrap_or_else(|| query.span());
            return Err(SqlError::new(
                ErrorKind::ParamArity {
                    placeholders: cx.unbound_params,
                    bound: params.len(),
                },
                span,
            ));
        }
        // The arity scan doubles as the analyze phase's boundary context
        // (nothing has mutated the query in between).
        let mut boundary_cx = Some(cx);
        for phase in [
            RewritePhase::Analyze,
            RewritePhase::Canonicalize,
            RewritePhase::Optimize,
        ] {
            let span = obs.span_enter(COMPONENT, phase.name(), *tick);
            let result = (|| {
                let cx = boundary_cx
                    .take()
                    .unwrap_or_else(|| AnalysisContext::scan(query));
                for &rule in orders.order_for(phase) {
                    let outcome = if rule.matches_context(&cx) {
                        *tick += 1.0;
                        rule.apply(query, &self.tables, params)?
                    } else {
                        RuleOutcome::NotApplicable
                    };
                    obs.counter_add(
                        COMPONENT,
                        "rule_outcome",
                        &[
                            ("phase", phase.name()),
                            ("rule", rule.name()),
                            ("outcome", outcome.name()),
                        ],
                        1,
                    );
                    report.applications.push(RuleApplication {
                        phase,
                        rule,
                        outcome,
                    });
                }
                Ok(())
            })();
            *tick += 1.0; // phase dispatch tick
            obs.span_exit(span, *tick);
            result?;
        }
        Ok(())
    }
}

/// A compile cache keyed by SQL text, exploiting template-recurring
/// workloads (the paper's Peregrine premise: most production queries are
/// instances of recurring templates).
///
/// The first sighting of a text pays the full parse → rewrite → lower
/// pipeline and caches the rewritten AST; every later instance re-binds its
/// `?` parameters into a clone of that AST and lowers — skipping the lexer,
/// parser and all rewrite phases. Correctness rests on two pipeline
/// invariants the property tests pin: the rewrite phases are idempotent,
/// and no rewrite rule inspects bound parameter *values* (only whether a
/// slot is bound), so a cached AST re-lowered under different bindings is
/// exactly what a fresh compile would produce.
#[derive(Debug)]
pub struct CachedFrontend<'a> {
    frontend: Frontend<'a>,
    entries: std::cell::RefCell<BTreeMap<String, CacheEntry>>,
    hits: std::cell::Cell<u64>,
    misses: std::cell::Cell<u64>,
}

#[derive(Debug)]
struct CacheEntry {
    /// The fully rewritten AST (parameters present, slots bound to the
    /// first instance's values — rebinding overwrites them).
    query: QueryExpr,
    /// The lowered plan of the first instance; parameter-fed comparison
    /// values are stale and patched on every hit.
    plan: LogicalPlan,
    /// Number of `?` placeholders the text carries.
    n_params: usize,
    /// Span of the first placeholder, for arity diagnostics.
    first_param: Option<Span>,
}

impl CacheEntry {
    /// Arity gate shared by both hit paths.
    fn check_arity(&self, bound: usize) -> Result<()> {
        if self.n_params == bound {
            return Ok(());
        }
        let span = self.first_param.unwrap_or_else(|| self.query.span());
        Err(SqlError::new(
            ErrorKind::ParamArity {
                placeholders: self.n_params,
                bound,
            },
            span,
        ))
    }
}

impl<'a> CachedFrontend<'a> {
    /// Wraps a front-end with an empty template cache.
    pub fn new(frontend: Frontend<'a>) -> Self {
        Self {
            frontend,
            entries: std::cell::RefCell::new(BTreeMap::new()),
            hits: std::cell::Cell::new(0),
            misses: std::cell::Cell::new(0),
        }
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }

    /// Compiles `sql`, serving repeated texts from the template cache.
    ///
    /// Cache hits return an empty [`CompileReport`] (no rule ran); misses
    /// return the full report of the underlying compile.
    pub fn compile(&self, sql: &str, params: &[i64]) -> Result<Compiled> {
        if let Some(entry) = self.entries.borrow().get(sql) {
            entry.check_arity(params.len())?;
            let mut query = entry.query.clone();
            rebind_params(&mut query, params);
            let plan = lower(&query)?;
            self.hits.set(self.hits.get() + 1);
            return Ok(Compiled {
                query,
                plan,
                report: CompileReport::default(),
            });
        }
        let compiled = self.frontend.compile(sql, params)?;
        let mut first_param = None;
        compiled.query.for_each_block(&mut |block| {
            for cond in &block.conditions {
                let values: [&Value; 2] = match cond {
                    Condition::Cmp(c) => [&c.value, &c.value],
                    Condition::Between(b) => [&b.low, &b.high],
                };
                for value in values {
                    if let Value::Param { span, .. } = value {
                        if first_param.is_none() {
                            first_param = Some(*span);
                        }
                    }
                }
            }
        });
        self.entries.borrow_mut().insert(
            sql.to_string(),
            CacheEntry {
                query: compiled.query.clone(),
                plan: compiled.plan.clone(),
                n_params: params.len(),
                first_param,
            },
        );
        self.misses.set(self.misses.get() + 1);
        Ok(compiled)
    }

    /// Compiles `sql` to just its [`LogicalPlan`] — the steady-state fast
    /// path. A hit clones the cached lowered plan and patches the
    /// parameter-fed comparison values in place, skipping the AST clone and
    /// re-lowering that [`compile`](Self::compile) hits pay; a miss falls
    /// through to the full pipeline and populates the cache.
    pub fn compile_plan(&self, sql: &str, params: &[i64]) -> Result<LogicalPlan> {
        if let Some(entry) = self.entries.borrow().get(sql) {
            entry.check_arity(params.len())?;
            let mut plan = entry.plan.clone();
            patch_params(&entry.query, &mut plan, params);
            self.hits.set(self.hits.get() + 1);
            return Ok(plan);
        }
        self.compile(sql, params).map(|compiled| compiled.plan)
    }
}

/// Walks a cached AST and its lowered plan in lockstep (mirroring
/// [`lower`]'s emission order) and overwrites every comparison value that a
/// `?` parameter feeds. The AST is post-rewrite, so every condition is a
/// plain comparison and block decorations map 1:1 onto plan nodes.
fn patch_params(query: &QueryExpr, plan: &mut LogicalPlan, params: &[i64]) {
    use adas_workload::plan::PlanKind;
    match query {
        QueryExpr::Union { left, right, .. } => {
            let (l, r) = plan.children.split_at_mut(1);
            patch_params(left, &mut l[0], params);
            patch_params(right, &mut r[0], params);
        }
        QueryExpr::Select(block) => {
            let mut node = plan;
            if matches!(block.select, SelectList::Columns(_)) {
                node = &mut node.children[0];
            }
            if !block.group_by.is_empty() {
                node = &mut node.children[0];
            }
            if !block.conditions.is_empty() {
                if let PlanKind::Filter { predicate } = &mut node.kind {
                    for (clause, cond) in predicate.clauses.iter_mut().zip(&block.conditions) {
                        if let Condition::Cmp(c) = cond {
                            if let Value::Param { index, .. } = c.value {
                                clause.value = params[index];
                            }
                        }
                    }
                }
                node = &mut node.children[0];
            }
            if let Some(join) = &block.join {
                let (l, r) = node.children.split_at_mut(1);
                patch_item(&block.from, &mut l[0], params);
                patch_item(&join.right, &mut r[0], params);
            } else {
                patch_item(&block.from, node, params);
            }
        }
    }
}

/// Recurses [`patch_params`] into derived tables; base-table scans carry no
/// parameters.
fn patch_item(item: &FromItem, plan: &mut LogicalPlan, params: &[i64]) {
    if let FromItem::Derived { query, .. } = item {
        patch_params(query, plan, params);
    }
}

/// Overwrites every parameter slot with its value from `params` (indices
/// were assigned lexically at parse time and survive all rewrites).
fn rebind_params(query: &mut QueryExpr, params: &[i64]) {
    query.for_each_block_mut(&mut |block| {
        for cond in &mut block.conditions {
            let values: [&mut Value; 2] = match cond {
                Condition::Cmp(c) => {
                    if let Value::Param { index, bound, .. } = &mut c.value {
                        *bound = Some(params[*index]);
                    }
                    continue;
                }
                Condition::Between(b) => [&mut b.low, &mut b.high],
            };
            for value in values {
                if let Value::Param { index, bound, .. } = value {
                    *bound = Some(params[*index]);
                }
            }
        }
    });
}
