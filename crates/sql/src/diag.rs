//! Errors and caret diagnostics.
//!
//! Every lexer, parser, and rewrite-pipeline error carries the byte span of
//! the offending source text; [`SqlError::render`] turns it into a
//! caret-underlined snippet. The rendered format is pinned by unit tests —
//! treat it as a stable output contract.

use crate::ast::Span;
use std::fmt;

/// What went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorKind {
    /// The lexer hit a character outside the grammar's alphabet.
    UnexpectedChar(char),
    /// An integer literal does not fit in 64 bits.
    NumberTooLarge,
    /// The parser found the wrong token.
    UnexpectedToken {
        /// What the grammar allowed here.
        expected: String,
        /// What was found, as written.
        found: String,
    },
    /// The input ended mid-production.
    UnexpectedEof {
        /// What the grammar allowed here.
        expected: String,
    },
    /// A complete query was parsed but input remains.
    TrailingInput {
        /// The first leftover token, as written.
        found: String,
    },
    /// A FROM item names a table the catalog does not have.
    UnknownTable {
        /// The name as written.
        name: String,
    },
    /// A column reference does not resolve against its base table.
    UnknownColumn {
        /// The resolving base table.
        table: String,
        /// The column name as written.
        column: String,
    },
    /// A `table.` qualifier names a different table than the one resolving
    /// this reference.
    QualifierMismatch {
        /// The qualifier as written.
        qualifier: String,
        /// The base table that resolves columns in this position.
        expected: String,
    },
    /// The number of bound values does not match the number of `?`
    /// placeholders.
    ParamArity {
        /// Placeholders in the query.
        placeholders: usize,
        /// Values supplied.
        bound: usize,
    },
    /// Lowering found syntax the rewrite phases should have eliminated —
    /// the pipeline was invoked out of order.
    Residual(&'static str),
    /// A custom rule order is not a permutation of the phase's rules.
    InvalidRuleOrder {
        /// The phase whose order was rejected.
        phase: &'static str,
    },
}

/// A front-end error: a kind plus the source span it points at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    /// What went wrong.
    pub kind: ErrorKind,
    /// Byte span of the offending source text.
    pub span: Span,
}

impl SqlError {
    /// Creates an error.
    pub fn new(kind: ErrorKind, span: Span) -> Self {
        Self { kind, span }
    }

    /// Renders the error as a caret-underlined snippet of `source`:
    ///
    /// ```text
    /// error: unknown table `evnts`
    ///   |
    /// 1 | SELECT * FROM evnts
    ///   |               ^^^^^
    /// ```
    pub fn render(&self, source: &str) -> String {
        let start = self.span.start.min(source.len());
        // Locate the line containing the span start.
        let line_start = source[..start].rfind('\n').map_or(0, |i| i + 1);
        let line_end = source[line_start..]
            .find('\n')
            .map_or(source.len(), |i| line_start + i);
        let line_no = source[..line_start].matches('\n').count() + 1;
        let line = &source[line_start..line_end];
        let col = start - line_start;
        // Caret run: the span clipped to this line, at least one caret
        // (EOF errors point one past the end).
        let carets = (self.span.end.min(line_end).saturating_sub(start)).max(1);
        let gutter = line_no.to_string();
        let pad = " ".repeat(gutter.len());
        let caret = format!("{}{}", " ".repeat(col), "^".repeat(carets));
        format!("error: {self}\n{pad} |\n{gutter} | {line}\n{pad} | {caret}")
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ErrorKind::UnexpectedChar(c) => write!(f, "unexpected character `{c}`"),
            ErrorKind::NumberTooLarge => write!(f, "integer literal does not fit in 64 bits"),
            ErrorKind::UnexpectedToken { expected, found } => {
                write!(f, "expected {expected}, found `{found}`")
            }
            ErrorKind::UnexpectedEof { expected } => {
                write!(f, "expected {expected}, found end of input")
            }
            ErrorKind::TrailingInput { found } => {
                write!(f, "unexpected `{found}` after the end of the query")
            }
            ErrorKind::UnknownTable { name } => write!(f, "unknown table `{name}`"),
            ErrorKind::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
            ErrorKind::QualifierMismatch {
                qualifier,
                expected,
            } => write!(
                f,
                "qualifier `{qualifier}` does not match the base table `{expected}` \
                 resolving this position"
            ),
            ErrorKind::ParamArity {
                placeholders,
                bound,
            } => write!(
                f,
                "query has {placeholders} parameter placeholder(s) but {bound} value(s) \
                 were bound"
            ),
            ErrorKind::Residual(what) => write!(
                f,
                "lowering found residual {what}; run the rewrite phases first"
            ),
            ErrorKind::InvalidRuleOrder { phase } => write!(
                f,
                "rule order for the {phase} phase is not a permutation of its rules"
            ),
        }
    }
}

impl std::error::Error for SqlError {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SqlError>;
