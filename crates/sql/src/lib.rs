//! SQL subset front-end for the autonomous-data-services workspace.
//!
//! The paper's autonomy loop (Peregrine workload analysis, recurring-job
//! detection, CloudViews computation reuse) operates on real customer
//! queries; this crate gives the workspace a textual query surface so those
//! components can run on parsed SQL rather than only on hand-built
//! [`LogicalPlan`](adas_workload::plan::LogicalPlan) structures.
//!
//! The pipeline is `parse → analyze → canonicalize → optimize → lower`:
//!
//! * [`parser`] — a hand-written lexer and recursive-descent parser for the
//!   subset grammar (SELECT / FROM with one equi-join per block / WHERE
//!   conjunctions / GROUP BY / ORDER BY / LIMIT / `UNION ALL` /
//!   `?`-template parameters), producing a typed AST ([`ast`]) with
//!   byte-offset spans.
//! * [`pipeline`] — a phased rewrite registry of [`QueryRule`]s with
//!   [`matches_context`](QueryRule::matches_context) gating and
//!   `NotApplicable / NoChange / Changed` outcomes; the lower phase emits a
//!   `LogicalPlan`, so the existing engine optimizer, signature hashing,
//!   recurring-job detection and cloud-views run unchanged on SQL-born
//!   plans.
//! * [`diag`] — every error carries a source span and renders as a
//!   caret-underlined snippet.
//!
//! The front-end is the exact inverse of
//! [`adas_workload::sqltext`](adas_workload::sqltext): compiling
//! `sqltext::to_sql(plan)` reproduces `plan` node for node, so strict and
//! template signatures survive the SQL round trip byte-identically.
//!
//! # Example
//!
//! ```
//! use adas_sql::Frontend;
//! use adas_workload::catalog::Catalog;
//! use adas_workload::signature::strict_signature;
//! use adas_workload::sqltext::to_sql;
//!
//! let catalog = Catalog::standard();
//! let frontend = Frontend::new(&catalog);
//! let compiled = frontend
//!     .compile(
//!         "SELECT user_id FROM events WHERE event_type BETWEEN 3 AND ? GROUP BY user_id",
//!         &[9],
//!     )
//!     .unwrap();
//! // The plan round-trips through canonical SQL text.
//! let rendered = to_sql(&compiled.plan, &catalog).unwrap();
//! let again = frontend.compile(&rendered, &[]).unwrap();
//! assert_eq!(
//!     strict_signature(&compiled.plan),
//!     strict_signature(&again.plan)
//! );
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod pipeline;

pub use diag::{ErrorKind, Result, SqlError};
pub use parser::parse;
pub use pipeline::{
    lower, rules_for_phase, AnalysisContext, CachedFrontend, CompileReport, Compiled, Frontend,
    PhaseOrders, QueryRule, RewritePhase, RuleApplication, RuleOutcome, ANALYZE_RULES,
    CANONICALIZE_RULES, COMPONENT, LOWER_RULES, OPTIMIZE_RULES,
};

#[cfg(test)]
mod tests {
    use super::*;
    use adas_obs::Obs;
    use adas_workload::catalog::Catalog;
    use adas_workload::plan::{CmpOp, Comparison, LogicalPlan, Predicate};
    use adas_workload::signature::strict_signature;

    fn frontend_catalog() -> Catalog {
        Catalog::standard()
    }

    #[test]
    fn compiles_to_the_expected_plan() {
        let catalog = frontend_catalog();
        let compiled = Frontend::new(&catalog)
            .compile(
                "SELECT user_id, region_id FROM events JOIN users \
                 ON events.user_id = users.user_id \
                 WHERE event_type = 7 AND ts_hour != 100 GROUP BY region_id",
                &[],
            )
            .unwrap();
        let expected = LogicalPlan::join(
            LogicalPlan::scan("events"),
            LogicalPlan::scan("users"),
            0,
            0,
        )
        .filter(Predicate::new(vec![
            Comparison::new(1, CmpOp::Eq, 7),
            Comparison::new(2, CmpOp::Ne, 100),
        ]))
        .aggregate(vec![3])
        .project(vec![0, 3]);
        assert_eq!(compiled.plan, expected);
    }

    #[test]
    fn canonicalize_normalizes_between_flip_and_ne_spellings() {
        let catalog = frontend_catalog();
        let frontend = Frontend::new(&catalog);
        let a = frontend
            .compile(
                "SELECT * FROM events WHERE ts_hour BETWEEN 5 AND 10 AND event_type <> 3",
                &[],
            )
            .unwrap();
        let b = frontend
            .compile(
                "SELECT * FROM events WHERE 5 <= ts_hour AND 10 >= ts_hour AND event_type != 3",
                &[],
            )
            .unwrap();
        assert_eq!(strict_signature(&a.plan), strict_signature(&b.plan));
        assert_eq!(
            a.report.outcome(QueryRule::BetweenDesugar),
            Some(RuleOutcome::Changed)
        );
        assert_eq!(
            a.report.outcome(QueryRule::ComparisonFlip),
            Some(RuleOutcome::NotApplicable)
        );
        assert_eq!(
            b.report.outcome(QueryRule::ComparisonFlip),
            Some(RuleOutcome::Changed)
        );
    }

    #[test]
    fn params_bind_in_lexical_order() {
        let catalog = frontend_catalog();
        let compiled = Frontend::new(&catalog)
            .compile(
                "SELECT * FROM events WHERE user_id >= ? AND user_id <= ? AND event_type = ?",
                &[10, 20, 3],
            )
            .unwrap();
        let expected = LogicalPlan::scan("events").filter(Predicate::new(vec![
            Comparison::new(0, CmpOp::Ge, 10),
            Comparison::new(0, CmpOp::Le, 20),
            Comparison::new(1, CmpOp::Eq, 3),
        ]));
        assert_eq!(compiled.plan, expected);
        assert_eq!(
            compiled.report.outcome(QueryRule::ParamBind),
            Some(RuleOutcome::Changed)
        );
    }

    #[test]
    fn param_arity_is_checked_both_ways() {
        let catalog = frontend_catalog();
        let frontend = Frontend::new(&catalog);
        let err = frontend
            .compile("SELECT * FROM events WHERE user_id = ?", &[])
            .unwrap_err();
        assert!(matches!(
            err.kind,
            ErrorKind::ParamArity {
                placeholders: 1,
                bound: 0
            }
        ));
        let err = frontend
            .compile("SELECT * FROM events WHERE user_id = 1", &[5])
            .unwrap_err();
        assert!(matches!(
            err.kind,
            ErrorKind::ParamArity {
                placeholders: 0,
                bound: 1
            }
        ));
    }

    #[test]
    fn derived_table_collapse_is_plan_preserving() {
        let catalog = frontend_catalog();
        let frontend = Frontend::new(&catalog);
        let collapsed = frontend
            .compile(
                "SELECT * FROM ((SELECT * FROM events)) WHERE user_id = 1",
                &[],
            )
            .unwrap();
        let direct = frontend
            .compile("SELECT * FROM events WHERE user_id = 1", &[])
            .unwrap();
        assert_eq!(collapsed.plan, direct.plan);
        assert_eq!(
            collapsed.report.outcome(QueryRule::DerivedTableCollapse),
            Some(RuleOutcome::Changed)
        );
    }

    #[test]
    fn order_by_and_limit_are_elided() {
        let catalog = frontend_catalog();
        let compiled = Frontend::new(&catalog)
            .compile(
                "SELECT * FROM events WHERE user_id = 1 ORDER BY ts_hour DESC, user_id LIMIT 50",
                &[],
            )
            .unwrap();
        assert_eq!(
            compiled.plan,
            LogicalPlan::scan("events").filter(Predicate::single(0, CmpOp::Eq, 1))
        );
        assert_eq!(
            compiled.report.outcome(QueryRule::OrderLimitElision),
            Some(RuleOutcome::Changed)
        );
    }

    #[test]
    fn rewrite_is_idempotent_on_its_own_output() {
        let catalog = frontend_catalog();
        let frontend = Frontend::new(&catalog);
        let compiled = frontend
            .compile(
                "SELECT user_id FROM events WHERE ts_hour BETWEEN ? AND ? AND 3 = event_type \
                 ORDER BY user_id LIMIT 5",
                &[1, 2],
            )
            .unwrap();
        assert!(compiled.report.any_rewrite_changed());
        let mut again = compiled.query.clone();
        let report = frontend.rewrite(&mut again, &[]).unwrap();
        assert!(!report.any_rewrite_changed(), "re-run changed: {report:?}");
        assert_eq!(again, compiled.query);
    }

    #[test]
    fn phases_emit_spans_with_nonzero_extent() {
        let catalog = frontend_catalog();
        let obs = Obs::recording();
        Frontend::new(&catalog)
            .compile_observed(
                "SELECT * FROM events WHERE user_id BETWEEN 1 AND 2 ORDER BY ts_hour LIMIT 3",
                &[],
                &obs,
                100.0,
            )
            .unwrap();
        let trace = obs.snapshot();
        let mut seen = std::collections::BTreeMap::new();
        for span in &trace.spans {
            assert_eq!(span.component, COMPONENT);
            let extent = span.end - span.start;
            assert!(extent > 0.0, "zero-extent span {}", span.name);
            seen.insert(span.name.clone(), extent);
        }
        for name in [
            "compile",
            "parse",
            "analyze",
            "canonicalize",
            "optimize",
            "lower",
        ] {
            assert!(seen.contains_key(name), "missing span {name}");
        }
        // Executed rules lengthen their phase: analyze ran 2 of 3 rules
        // (param_bind gated out) → extent 3; canonicalize ran 1 (desugar).
        assert_eq!(seen["analyze"], 3.0);
        assert_eq!(seen["canonicalize"], 2.0);
    }

    #[test]
    fn rule_outcome_counters_are_exported() {
        let catalog = frontend_catalog();
        let obs = Obs::recording();
        Frontend::new(&catalog)
            .compile_observed("SELECT * FROM events WHERE 1 < user_id", &[], &obs, 0.0)
            .unwrap();
        let trace = obs.snapshot();
        let counter = |rule: &str, phase: &str, outcome: &str| {
            trace.metrics.counter(
                COMPONENT,
                "rule_outcome",
                &[("phase", phase), ("rule", rule), ("outcome", outcome)],
            )
        };
        assert_eq!(counter("comparison_flip", "canonicalize", "changed"), 1);
        assert_eq!(counter("relation_discovery", "analyze", "no_change"), 1);
        assert_eq!(counter("param_bind", "analyze", "not_applicable"), 1);
        assert_eq!(counter("column_resolution", "analyze", "changed"), 1);
        assert_eq!(counter("plan_emit", "lower", "changed"), 1);
        assert_eq!(trace.metrics.counter(COMPONENT, "queries_compiled", &[]), 1);
    }

    #[test]
    fn rule_order_permutations_are_validated() {
        let catalog = frontend_catalog();
        let frontend = Frontend::new(&catalog);
        let mut orders = PhaseOrders::canonical();
        orders.analyze.pop();
        let err = frontend
            .compile_with_order("SELECT * FROM events", &[], &orders)
            .unwrap_err();
        assert!(matches!(
            err.kind,
            ErrorKind::InvalidRuleOrder { phase: "analyze" }
        ));
        let mut reversed = PhaseOrders::canonical();
        reversed.analyze.reverse();
        reversed.canonicalize.reverse();
        reversed.optimize.reverse();
        let a = frontend
            .compile_with_order(
                "SELECT * FROM events WHERE 1 < user_id AND ts_hour BETWEEN 2 AND 3",
                &[],
                &reversed,
            )
            .unwrap();
        let b = frontend
            .compile(
                "SELECT * FROM events WHERE 1 < user_id AND ts_hour BETWEEN 2 AND 3",
                &[],
            )
            .unwrap();
        assert_eq!(a.plan, b.plan);
    }

    // ------------------------------------------------------------------
    // Pinned diagnostics: the exact rendered text for five representative
    // bad queries. Treat these strings as a stable output contract.
    // ------------------------------------------------------------------

    #[test]
    fn cached_compile_matches_fresh_compile() {
        let catalog = frontend_catalog();
        let frontend = Frontend::new(&catalog);
        let cached = CachedFrontend::new(frontend.clone());
        let sql = "SELECT * FROM events WHERE user_id BETWEEN ? AND ? AND event_type = ?";
        for params in [[10, 20, 3], [1, 9, 7], [100, 200, 42]] {
            let fresh = frontend.compile(sql, &params).unwrap();
            let hit = cached.compile(sql, &params).unwrap();
            assert_eq!(hit.plan, fresh.plan);
            assert_eq!(strict_signature(&hit.plan), strict_signature(&fresh.plan));
            let patched = cached.compile_plan(sql, &params).unwrap();
            assert_eq!(patched, fresh.plan);
        }
        assert_eq!(cached.stats(), (5, 1));
    }

    #[test]
    fn cached_plan_patching_handles_nested_shapes() {
        let catalog = frontend_catalog();
        let frontend = Frontend::new(&catalog);
        let cached = CachedFrontend::new(frontend.clone());
        let sql = "SELECT user_id FROM \
                   (SELECT * FROM events WHERE ts_hour < ? AND event_type = ?) \
                   JOIN users ON user_id = user_id WHERE user_id > ? GROUP BY user_id \
                   UNION ALL SELECT * FROM sessions WHERE duration_s BETWEEN ? AND ?";
        for params in [[5, 2, 100, 60, 600], [9, 4, 7, 1, 2]] {
            let fresh = frontend.compile(sql, &params).unwrap();
            assert_eq!(cached.compile_plan(sql, &params).unwrap(), fresh.plan);
        }
    }

    #[test]
    fn cached_hit_checks_param_arity() {
        let catalog = frontend_catalog();
        let cached = CachedFrontend::new(Frontend::new(&catalog));
        let sql = "SELECT * FROM events WHERE user_id = ? AND ts_hour < ?";
        cached.compile(sql, &[4, 5]).unwrap();
        let err = cached.compile(sql, &[4]).unwrap_err();
        assert!(matches!(
            err.kind,
            ErrorKind::ParamArity {
                placeholders: 2,
                bound: 1
            }
        ));
        assert!(err.span.start < err.span.end, "arity error keeps a span");
    }

    fn render_err(sql: &str) -> String {
        let catalog = frontend_catalog();
        Frontend::new(&catalog)
            .compile(sql, &[])
            .unwrap_err()
            .render(sql)
    }

    #[test]
    fn diagnostic_unknown_table() {
        let expected = [
            "error: unknown table `evnts`",
            "  |",
            "1 | SELECT * FROM evnts",
            "  |               ^^^^^",
        ]
        .join("\n");
        assert_eq!(render_err("SELECT * FROM evnts"), expected);
    }

    #[test]
    fn diagnostic_unknown_column() {
        let expected = [
            "error: unknown column `usr_id` in table `events`",
            "  |",
            "1 | SELECT * FROM events WHERE usr_id = 3",
            "  |                            ^^^^^^",
        ]
        .join("\n");
        assert_eq!(
            render_err("SELECT * FROM events WHERE usr_id = 3"),
            expected
        );
    }

    #[test]
    fn diagnostic_syntax_error() {
        let expected = [
            "error: expected a value (number or `?`), found `=`",
            "  |",
            "1 | SELECT * FROM events WHERE user_id = = 3",
            "  |                                      ^",
        ]
        .join("\n");
        assert_eq!(
            render_err("SELECT * FROM events WHERE user_id = = 3"),
            expected
        );
    }

    #[test]
    fn diagnostic_unexpected_eof() {
        let expected = [
            "error: expected `)`, found end of input",
            "  |",
            "1 | SELECT * FROM (SELECT * FROM events",
            "  |                                    ^",
        ]
        .join("\n");
        assert_eq!(render_err("SELECT * FROM (SELECT * FROM events"), expected);
    }

    #[test]
    fn diagnostic_qualifier_mismatch() {
        let expected = [
            "error: qualifier `users` does not match the base table `events` resolving this \
             position",
            "  |",
            "1 | SELECT * FROM events WHERE users.user_id = 3",
            "  |                            ^^^^^",
        ]
        .join("\n");
        assert_eq!(
            render_err("SELECT * FROM events WHERE users.user_id = 3"),
            expected
        );
    }
}
