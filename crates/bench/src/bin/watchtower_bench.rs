//! Analysis-cost baseline for the watchtower layer.
//!
//! Runs the full autonomy chaos drill (poisoned promotion → guard trips →
//! automatic rollback → recovery, 2000 simulated ticks) as the "production"
//! workload, then times the complete watchtower analysis — SLO evaluation,
//! incident reconstruction, and critical-path profiling — over the trace it
//! produced. The contract: post-hoc analysis must cost **< 5%** of the
//! production run that generated the trace, so watchtower can run after
//! every drill (and in CI) without meaningfully extending the cycle.
//! Results land in `BENCH_watchtower.json` at the repo root.

use std::sync::Arc;
use std::time::Instant;

use adas_core::feedback::LoopConfig;
use adas_faultsim::{ModelFaults, PoisonProfile};
use adas_obs::{Obs, Trace};
use adas_serve::{
    AutonomyAction, AutonomyConfig, AutonomyController, CanaryConfig, FnModel, Gateway,
    GatewayConfig, PoisonScope, ServableModel, SloPolicy,
};
use adas_watchtower::{analyze, default_specs};
use serde::Serialize;

#[derive(Serialize)]
struct WatchtowerBench {
    drill_ticks: u64,
    trace_spans: usize,
    trace_events: usize,
    trace_decisions: usize,
    trace_deployments: usize,
    rounds: usize,
    produce_secs: f64,
    analyze_secs: f64,
    /// `analyze_secs / produce_secs`, best-of-rounds. Must stay < 0.05.
    analysis_cost_ratio: f64,
    analysis_cost_ok: bool,
    incidents_reconstructed: usize,
}

fn timed(f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}

const DRILL_TICKS: u64 = 2000;

/// The autonomy chaos drill from `tests/autonomy_chaos.rs`, compacted.
fn run_drill(seed: u64) -> Trace {
    let obs = Obs::recording();
    let mut config = GatewayConfig::standard();
    config.cache_capacity = 0;
    config.breaker.guard_factor = 2.0;
    config.breaker.failure_threshold = 4;
    config.breaker.cooldown_ticks = 8.0;
    config.breaker.backoff_factor = 2.0;
    config.breaker.max_cooldown_ticks = 64.0;
    let gateway = Gateway::with_obs(config, obs.clone());
    let handle = gateway.register("card/drill", |f: &[f64]| f[0]);
    let mut ctl = AutonomyController::new(gateway.clone(), obs.clone());
    ctl.supervise(
        handle,
        AutonomyConfig {
            monitor: LoopConfig {
                window: 20,
                retrain_factor: 1.5,
                rollback_factor: 8.0,
            },
            canary: CanaryConfig {
                traffic_pct: 30,
                shadow_first: true,
                min_decisions: 10,
                promote_streak: 2,
                demote_streak: 2,
                promote_error_factor: 1.2,
                demote_error_factor: 2.0,
                restage_backoff_ticks: 16.0,
                max_restage_backoff_ticks: 128.0,
            },
            slo: SloPolicy::default(),
            guarded_streak: 4,
            breaker_open_streak: 10,
            retrain_cooldown_ticks: 8.0,
            min_retrain_observations: 20,
        },
        Box::new(|history: &[(Vec<f64>, f64)]| {
            let (num, den) = history
                .iter()
                .fold((0.0, 0.0), |(n, d), (f, y)| (n + f[0] * y, d + f[0] * f[0]));
            let a = num / den.max(1e-12);
            Some((
                Arc::new(FnModel(move |f: &[f64]| a * f[0])) as Arc<dyn ServableModel>,
                0.01,
            ))
        }),
    );
    ctl.install(handle, Arc::new(FnModel(|f: &[f64]| 1.05 * f[0])), 0.2, 0.0)
        .expect("bootstrap install");

    let mut promoted_version = None;
    let mut poisoned = false;
    for t in 0..DRILL_TICKS {
        let sim_time = t as f64;
        let features = [1.0 + (t % 5) as f64];
        let p = gateway
            .predict(handle, &features, sim_time)
            .expect("serves");
        let actual = 1.3 * features[0];
        let step = ctl
            .observe(handle, &features, &p, actual, sim_time)
            .expect("observes");
        for a in &step {
            if let AutonomyAction::Promoted { version } = a {
                if promoted_version.is_none() {
                    promoted_version = Some(*version);
                }
            }
        }
        if !poisoned {
            if let Some(v) = promoted_version {
                gateway
                    .inject_faults_at(
                        handle,
                        ModelFaults::with_profile(seed, 0.05, 0.05, 4.0, PoisonProfile::Constant),
                        sim_time,
                    )
                    .expect("injects");
                gateway
                    .set_poison_scope_at(handle, PoisonScope::Version(v), sim_time)
                    .expect("scopes");
                poisoned = true;
            }
        }
    }
    obs.snapshot()
}

fn main() {
    const ROUNDS: usize = 9;
    let specs = default_specs();

    // Warm-up: one full drill + analysis so allocators settle.
    let warm_trace = run_drill(7);
    let warm_report = analyze(&warm_trace, &specs);
    let incidents = warm_report.incidents.incidents.len();

    // Interleave production and analysis rounds so background-load drift
    // hits both sides of the ratio roughly equally.
    let mut produce_secs = f64::INFINITY;
    let mut analyze_secs = f64::INFINITY;
    let mut trace = warm_trace;
    for _ in 0..ROUNDS {
        let mut fresh = None;
        produce_secs = produce_secs.min(timed(|| {
            fresh = Some(run_drill(7));
        }));
        trace = fresh.expect("drill ran");
        analyze_secs = analyze_secs.min(timed(|| {
            std::hint::black_box(analyze(std::hint::black_box(&trace), &specs));
        }));
    }

    let ratio = analyze_secs / produce_secs;
    let report = WatchtowerBench {
        drill_ticks: DRILL_TICKS,
        trace_spans: trace.spans.len(),
        trace_events: trace.events.len(),
        trace_decisions: trace.decisions.len(),
        trace_deployments: trace.deployments.len(),
        rounds: ROUNDS,
        produce_secs,
        analyze_secs,
        analysis_cost_ratio: ratio,
        analysis_cost_ok: ratio < 0.05,
        incidents_reconstructed: incidents,
    };

    let json = serde_json::to_string_pretty(&report).expect("serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_watchtower.json");
    std::fs::write(path, format!("{json}\n")).expect("writes baseline");
    println!("{json}");
    if !report.analysis_cost_ok {
        eprintln!("watchtower analysis ratio {ratio:.4} exceeds the 5% budget");
        std::process::exit(1);
    }
}
