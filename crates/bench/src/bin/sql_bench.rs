//! Front-end cost baseline for the SQL subset compiler.
//!
//! Renders the generator's recurring workload to SQL (a ~10k-query corpus
//! over 64 templates), then times the front end — parse → rewrite → lower —
//! over the whole corpus, best of rounds. Two regimes are measured:
//!
//! * **cold**: every query pays the full pipeline from text, and
//! * **steady-state**: a [`CachedFrontend`] serves repeated template texts
//!   from its compile cache (patching a clone of the lowered plan), the regime
//!   the paper's recurring workloads actually run in — after the first
//!   sighting of each template, all later instances are cache hits.
//!
//! The contract: steady-state front-end time must cost **< 5%** of what the
//! engine then spends optimizing and executing those plans, so the textual
//! front door never becomes the bottleneck of the pipeline it feeds. The
//! cold ratio is reported alongside for attribution. Results land in
//! `BENCH_sql.json` at the repo root.

use std::time::Instant;

use adas_engine::cardinality::DefaultEstimator;
use adas_engine::cost::CostModel;
use adas_engine::exec::{ClusterConfig, SimOptions, Simulator};
use adas_engine::physical::StageDag;
use adas_engine::rules::{Optimizer, RuleSet};
use adas_sql::{CachedFrontend, Frontend};
use adas_workload::gen::{GeneratorConfig, SqlJob, WorkloadGenerator};
use serde::Serialize;

#[derive(Serialize)]
struct SqlBench {
    corpus_queries: usize,
    corpus_templates: usize,
    rounds: usize,
    /// Full-corpus parse-only wall time, best of rounds.
    parse_secs: f64,
    /// Full-corpus cold parse → rewrite → lower wall time, best of rounds.
    compile_secs: f64,
    compile_queries_per_sec: f64,
    /// Full-corpus steady-state (template-cached) wall time, best of rounds.
    cached_compile_secs: f64,
    cached_compile_queries_per_sec: f64,
    /// Template-cache hits / misses after the timed corpus passes.
    cache_hits: u64,
    cache_misses: u64,
    sample_queries: usize,
    /// Cold front-end time over the sample, best of rounds.
    frontend_secs: f64,
    /// Steady-state front-end time over the sample, best of rounds.
    cached_frontend_secs: f64,
    /// Optimize + stage-compile + execute time over the sample, best of rounds.
    backend_secs: f64,
    /// `frontend_secs / backend_secs` — every query from cold text.
    cold_overhead_ratio: f64,
    /// `cached_frontend_secs / backend_secs`. Must stay < 0.05.
    frontend_overhead_ratio: f64,
    overhead_ok: bool,
}

fn timed(f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}

fn main() {
    const ROUNDS: usize = 5;
    const SAMPLE: usize = 200;

    let workload = WorkloadGenerator::new(GeneratorConfig {
        days: 10,
        jobs_per_day: 1000,
        n_templates: 64,
        ..Default::default()
    })
    .expect("valid config")
    .generate()
    .expect("generation succeeds");
    let corpus: Vec<SqlJob> = workload.sql_jobs().expect("every plan renders");
    let templates = workload.sql_templates().expect("renders").len();
    let frontend = Frontend::new(&workload.catalog);
    let cached = CachedFrontend::new(frontend.clone());

    // Warm-up + correctness guard: the whole corpus must compile back to
    // the exact generated plans — through both the cold and the cached
    // path — before we time anything.
    for (job, sql_job) in workload.trace.jobs().iter().zip(&corpus) {
        let compiled = frontend
            .compile(&sql_job.sql, &sql_job.params)
            .unwrap_or_else(|e| panic!("{}", e.render(&sql_job.sql)));
        assert_eq!(compiled.plan, job.plan, "{} round trip drifted", job.id);
        let hit = cached
            .compile_plan(&sql_job.sql, &sql_job.params)
            .unwrap_or_else(|e| panic!("{}", e.render(&sql_job.sql)));
        assert_eq!(hit, job.plan, "{} cached round trip drifted", job.id);
    }

    // Parse-only throughput, to attribute front-end cost between the
    // parser and the rewrite/lower phases.
    let mut parse_secs = f64::INFINITY;
    for _ in 0..ROUNDS {
        parse_secs = parse_secs.min(timed(|| {
            for sql_job in &corpus {
                std::hint::black_box(
                    adas_sql::parse(std::hint::black_box(&sql_job.sql)).expect("parses"),
                );
            }
        }));
    }

    // Full-corpus cold compile throughput.
    let mut compile_secs = f64::INFINITY;
    for _ in 0..ROUNDS {
        compile_secs = compile_secs.min(timed(|| {
            for sql_job in &corpus {
                std::hint::black_box(
                    frontend
                        .compile(std::hint::black_box(&sql_job.sql), &sql_job.params)
                        .expect("compiles"),
                );
            }
        }));
    }

    // Full-corpus steady-state throughput (the cache is already warm from
    // the correctness pass, so every query is a template hit).
    let mut cached_compile_secs = f64::INFINITY;
    for _ in 0..ROUNDS {
        cached_compile_secs = cached_compile_secs.min(timed(|| {
            for sql_job in &corpus {
                std::hint::black_box(
                    cached
                        .compile_plan(std::hint::black_box(&sql_job.sql), &sql_job.params)
                        .expect("compiles"),
                );
            }
        }));
    }
    let (cache_hits, cache_misses) = cached.stats();

    // Front-end overhead vs the engine work the plan feeds into. The
    // backend side is what every query pays anyway: cost-guided logical
    // optimization, stage compilation and simulated execution.
    let sample: Vec<&SqlJob> = corpus.iter().take(SAMPLE).collect();
    let plans: Vec<_> = workload
        .trace
        .jobs()
        .iter()
        .take(SAMPLE)
        .map(|j| j.plan.clone())
        .collect();
    let cards = DefaultEstimator::new(&workload.catalog);
    let cost_model = CostModel::default();
    let optimizer = Optimizer::new(cost_model, 8);
    let cluster = Simulator::new(ClusterConfig::default()).expect("cluster builds");
    let options = SimOptions::default();

    let mut frontend_secs = f64::INFINITY;
    let mut cached_frontend_secs = f64::INFINITY;
    let mut backend_secs = f64::INFINITY;
    for _ in 0..ROUNDS {
        frontend_secs = frontend_secs.min(timed(|| {
            for sql_job in &sample {
                std::hint::black_box(
                    frontend
                        .compile(std::hint::black_box(&sql_job.sql), &sql_job.params)
                        .expect("compiles"),
                );
            }
        }));
        cached_frontend_secs = cached_frontend_secs.min(timed(|| {
            for sql_job in &sample {
                std::hint::black_box(
                    cached
                        .compile_plan(std::hint::black_box(&sql_job.sql), &sql_job.params)
                        .expect("compiles"),
                );
            }
        }));
        backend_secs = backend_secs.min(timed(|| {
            for plan in &plans {
                let optimized = optimizer
                    .optimize(std::hint::black_box(plan), RuleSet::all(), &cards)
                    .expect("optimizes");
                let dag = StageDag::compile(&optimized.plan, &workload.catalog, &cost_model)
                    .expect("compiles to stages");
                std::hint::black_box(cluster.run_unobserved(&dag, &options).expect("executes"));
            }
        }));
    }

    let cold_ratio = frontend_secs / backend_secs;
    let ratio = cached_frontend_secs / backend_secs;
    let report = SqlBench {
        corpus_queries: corpus.len(),
        corpus_templates: templates,
        rounds: ROUNDS,
        parse_secs,
        compile_secs,
        compile_queries_per_sec: corpus.len() as f64 / compile_secs,
        cached_compile_secs,
        cached_compile_queries_per_sec: corpus.len() as f64 / cached_compile_secs,
        cache_hits,
        cache_misses,
        sample_queries: sample.len(),
        frontend_secs,
        cached_frontend_secs,
        backend_secs,
        cold_overhead_ratio: cold_ratio,
        frontend_overhead_ratio: ratio,
        overhead_ok: ratio < 0.05,
    };

    let json = serde_json::to_string_pretty(&report).expect("serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sql.json");
    std::fs::write(path, format!("{json}\n")).expect("writes baseline");
    println!("{json}");
    if !report.overhead_ok {
        eprintln!("SQL front-end steady-state overhead ratio {ratio:.4} exceeds the 5% budget");
        std::process::exit(1);
    }
}
