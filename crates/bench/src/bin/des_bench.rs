//! Discrete-event kernel benchmarks and gates (ISSUE 9).
//!
//! Three numbers, recorded into `BENCH_des.json` at the repo root:
//!
//! 1. **Kernel throughput** — events/second driving a synthetic
//!    10k-machine fleet through 100k job arrival/finish events on a raw
//!    [`Simulation`]. Recorded, not gated: it is the scale headline the
//!    refactor exists for (one event loop instead of four blocking loops).
//! 2. **Pipelined speedup** — makespan ratio of [`OptimizerMode::Serial`]
//!    (the legacy one-loop shape where optimization and execution never
//!    overlap) to [`OptimizerMode::Pipelined`] on a backlog replay of a
//!    generated multi-job workload. Gated ≥ 1.3×.
//! 3. **Kernel dispatch overhead** — the kernel-backed
//!    `engine::exec::Simulator::run` versus the legacy blocking loop
//!    (`run_legacy`) on a single job. Gated < 5%.

use std::time::Instant;

use adas_engine::cost::CostModel;
use adas_engine::exec::{ClusterConfig, SimOptions, Simulator};
use adas_engine::physical::StageDag;
use adas_obs::Obs;
use adas_pipeline::{schedule_pipelined, OptimizerMode, Policy};
use adas_simkern::{Component, Ctx, Simulation};
use adas_workload::gen::{GeneratorConfig, WorkloadGenerator};
use adas_workload::job::{Job, Trace};
use serde::Serialize;
use std::cell::RefCell;
use std::rc::Rc;

#[derive(Serialize)]
struct DesBench {
    /// Fleet scenario size.
    fleet_machines: usize,
    fleet_jobs: usize,
    fleet_events: u64,
    /// Kernel events dispatched per second on the fleet scenario.
    events_per_sec: f64,
    /// Backlog scenario size for the pipelining gate.
    pipeline_jobs: usize,
    serial_makespan: f64,
    pipelined_makespan: f64,
    /// `serial_makespan / pipelined_makespan`. Must stay ≥ 1.3.
    pipelined_speedup: f64,
    pipelined_speedup_ok: bool,
    /// Single-job runs per second through the legacy blocking loop.
    legacy_runs_per_sec: f64,
    /// Single-job runs per second through the kernel-backed path.
    kernel_runs_per_sec: f64,
    /// Relative cost of the kernel-backed exec path vs. the legacy loop
    /// (`kernel_time / legacy_time - 1`, best-of-rounds). Must stay < 0.05.
    kernel_overhead: f64,
    kernel_overhead_ok: bool,
}

/// Best-of-rounds over two alternating measurements, so clock-frequency
/// drift between "all of A" and "all of B" cannot masquerade as overhead.
fn best_secs_pair(rounds: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    let mut best_a = f64::INFINITY;
    let mut best_b = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        a();
        best_a = best_a.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        b();
        best_b = best_b.min(start.elapsed().as_secs_f64());
    }
    (best_a, best_b)
}

// ------------------------------------------------------- fleet throughput

const FLEET_MACHINES: usize = 10_000;
const FLEET_JOBS: usize = 100_000;

enum FleetEvent {
    Arrive(u32),
    Finish,
}

/// A deliberately minimal fleet model: each arriving job queues on a
/// machine (round-robin) for a seeded service time and fires a finish
/// event. Two events per job; the benchmark measures raw kernel dispatch,
/// not modeling fidelity.
struct Fleet {
    machine_free: Vec<f64>,
    completed: u64,
}

impl Component<FleetEvent> for Fleet {
    fn on_event(&mut self, event: &FleetEvent, ctx: &mut Ctx<'_, FleetEvent>) {
        match *event {
            FleetEvent::Arrive(job) => {
                let m = job as usize % self.machine_free.len();
                let service = ctx.rng(0xF1EE7).range_f64(0.5, 4.0);
                let finish = self.machine_free[m].max(ctx.time()) + service;
                self.machine_free[m] = finish;
                ctx.emit_self_at(FleetEvent::Finish, finish);
            }
            FleetEvent::Finish => self.completed += 1,
        }
    }
}

/// One timed fleet run; returns (events dispatched, seconds).
fn fleet_run() -> (u64, f64) {
    let start = Instant::now();
    let fleet = Rc::new(RefCell::new(Fleet {
        machine_free: vec![0.0; FLEET_MACHINES],
        completed: 0,
    }));
    let mut sim: Simulation<FleetEvent> = Simulation::new(42);
    let id = sim.add_component(fleet.clone());
    for job in 0..FLEET_JOBS as u32 {
        // Arrivals staggered so the queue holds a realistic mixed horizon.
        sim.schedule_at(job as f64 * 0.01, id, FleetEvent::Arrive(job));
    }
    let processed = sim.run();
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(fleet.borrow().completed as usize, FLEET_JOBS);
    (processed, secs)
}

// --------------------------------------------------------------- scenarios

fn main() {
    // 1. Fleet throughput: best events/sec over a few rounds.
    const FLEET_ROUNDS: usize = 3;
    let mut events = 0u64;
    let mut best_fleet = f64::INFINITY;
    for _ in 0..FLEET_ROUNDS {
        let (processed, secs) = fleet_run();
        events = processed;
        best_fleet = best_fleet.min(secs);
    }
    let events_per_sec = events as f64 / best_fleet;

    // 2. Pipelined vs serial makespan on a backlog replay: every job of a
    // generated workload resubmitted at time zero (a queued backlog), one
    // optimizer resource, four execution slots.
    let workload = WorkloadGenerator::new(GeneratorConfig {
        days: 2,
        jobs_per_day: 60,
        ..Default::default()
    })
    .expect("valid config")
    .generate()
    .expect("generates");
    let backlog: Vec<Job> = workload
        .trace
        .jobs()
        .iter()
        .map(|j| Job {
            submit_time: 0,
            ..j.clone()
        })
        .collect();
    let n_jobs = backlog.len();
    let trace = Trace::new(backlog);
    let wps = 1e7;
    // Baseline: with one slot and a zero-cost optimizer the makespan is
    // the total execution time; price optimization at half the mean job.
    let serial_exec = schedule_pipelined(
        &trace,
        &workload.catalog,
        1,
        wps,
        0.0,
        Policy::Fifo,
        OptimizerMode::Pipelined,
        &Obs::disabled(),
    )
    .expect("schedules")
    .makespan;
    let optimize_seconds = serial_exec / n_jobs as f64 * 0.5;
    let run_mode = |mode: OptimizerMode| {
        schedule_pipelined(
            &trace,
            &workload.catalog,
            4,
            wps,
            optimize_seconds,
            Policy::CriticalPath,
            mode,
            &Obs::disabled(),
        )
        .expect("schedules")
        .makespan
    };
    let serial_makespan = run_mode(OptimizerMode::Serial);
    let pipelined_makespan = run_mode(OptimizerMode::Pipelined);
    let speedup = serial_makespan / pipelined_makespan;

    // 3. Kernel dispatch overhead vs the legacy exec loop on a single job
    // — the workload's largest DAG, so the measurement is dominated by
    // dispatch work rather than the fixed per-run setup.
    let cost_model = CostModel::default();
    let dag = workload
        .trace
        .jobs()
        .iter()
        .map(|j| StageDag::compile(&j.plan, &workload.catalog, &cost_model).expect("compiles"))
        .max_by_key(|d| (d.len(), d.stages().iter().map(|s| s.tasks).sum::<usize>()))
        .expect("non-empty workload");
    let sim = Simulator::new(ClusterConfig::default()).expect("valid cluster");
    const ROUNDS: usize = 11;
    const PASSES_PER_ROUND: usize = 5_000;
    // Warm-up so allocators and caches settle before timing.
    for _ in 0..PASSES_PER_ROUND {
        sim.run(&dag, &SimOptions::default()).expect("simulates");
        sim.run_legacy(&dag, &SimOptions::default())
            .expect("simulates");
    }
    let (legacy_secs, kernel_secs) = best_secs_pair(
        ROUNDS,
        || {
            for _ in 0..PASSES_PER_ROUND {
                sim.run_legacy(&dag, &SimOptions::default())
                    .expect("simulates");
            }
        },
        || {
            for _ in 0..PASSES_PER_ROUND {
                sim.run(&dag, &SimOptions::default()).expect("simulates");
            }
        },
    );
    let overhead = kernel_secs / legacy_secs - 1.0;

    let report = DesBench {
        fleet_machines: FLEET_MACHINES,
        fleet_jobs: FLEET_JOBS,
        fleet_events: events,
        events_per_sec,
        pipeline_jobs: n_jobs,
        serial_makespan,
        pipelined_makespan,
        pipelined_speedup: speedup,
        pipelined_speedup_ok: speedup >= 1.3,
        legacy_runs_per_sec: PASSES_PER_ROUND as f64 / legacy_secs,
        kernel_runs_per_sec: PASSES_PER_ROUND as f64 / kernel_secs,
        kernel_overhead: overhead,
        kernel_overhead_ok: overhead < 0.05,
    };
    let json = serde_json::to_string_pretty(&report).expect("serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_des.json");
    std::fs::write(path, format!("{json}\n")).expect("writes baseline");
    println!("{json}");
    if !report.pipelined_speedup_ok {
        eprintln!("pipelined speedup {speedup:.3}x is below the 1.3x gate");
        std::process::exit(1);
    }
    if !report.kernel_overhead_ok {
        eprintln!("kernel dispatch overhead {overhead:.4} exceeds the 5% budget");
        std::process::exit(1);
    }
}
