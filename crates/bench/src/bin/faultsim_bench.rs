//! Executor-throughput overhead of the fault-injection layer (ISSUE 2).
//!
//! Replays a generated workload through the execution simulator three ways —
//! directly (no faultsim anywhere), through [`ChaosRunner`] with
//! [`FaultConfig::disabled`] (empty schedules, the always-on production
//! configuration), and with [`FaultConfig::standard`] (faults firing) — and
//! records jobs/second for each into `BENCH_faultsim.json` at the repo root.
//! The contract this baseline tracks: the disabled path must cost < 5%
//! versus running the simulator directly.

use std::collections::HashSet;
use std::time::Instant;

use adas_engine::cost::CostModel;
use adas_engine::exec::{ClusterConfig, SimOptions, Simulator};
use adas_engine::physical::{StageDag, StageId};
use adas_faultsim::{ChaosRunner, FaultConfig, FaultInjector, FaultSchedule};
use serde::Serialize;

#[derive(Serialize)]
struct FaultsimBench {
    jobs: usize,
    rounds: usize,
    plain_jobs_per_sec: f64,
    disabled_jobs_per_sec: f64,
    standard_jobs_per_sec: f64,
    /// Relative cost of the disabled injection path vs. the plain simulator
    /// (`plain_time / disabled_time - 1`, best-of-rounds). Must stay < 0.05.
    disabled_overhead: f64,
    disabled_overhead_ok: bool,
}

/// Best-of-`rounds` wall time for three configurations measured
/// *interleaved*: each round times all three back to back, so slow drift in
/// clock frequency or background load hits every configuration equally
/// instead of masquerading as overhead of whichever block ran last.
fn best_secs_triple(
    rounds: usize,
    mut a: impl FnMut(),
    mut b: impl FnMut(),
    mut c: impl FnMut(),
) -> (f64, f64, f64) {
    let mut best = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..rounds {
        let start = Instant::now();
        a();
        best.0 = best.0.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        b();
        best.1 = best.1.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        c();
        best.2 = best.2.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let workload =
        adas_workload::gen::WorkloadGenerator::new(adas_workload::gen::GeneratorConfig {
            days: 2,
            jobs_per_day: 60,
            ..Default::default()
        })
        .expect("valid config")
        .generate()
        .expect("generates");
    let cost_model = CostModel::default();
    let dags: Vec<StageDag> = workload
        .trace
        .jobs()
        .iter()
        .map(|j| StageDag::compile(&j.plan, &workload.catalog, &cost_model).expect("compiles"))
        .collect();

    let cluster = ClusterConfig::default();
    let sim = Simulator::new(cluster).expect("valid cluster");
    let runner = ChaosRunner::new(cluster, f64::INFINITY).expect("valid cluster");
    let disabled = FaultInjector::new(42, FaultConfig::disabled());
    let standard = FaultInjector::new(42, FaultConfig::standard());
    let no_checkpoints: HashSet<StageId> = HashSet::new();
    let disabled_schedules: Vec<FaultSchedule> = (0..dags.len())
        .map(|i| disabled.schedule_for(i as u64, cluster.machines))
        .collect();
    let standard_schedules: Vec<FaultSchedule> = (0..dags.len())
        .map(|i| standard.schedule_for(i as u64, cluster.machines))
        .collect();

    const ROUNDS: usize = 21;
    // Replay the whole job set this many times per timed round so each
    // measurement spans tens of milliseconds; a single pass is ~1ms and
    // best-of-rounds over that is dominated by scheduler noise.
    const PASSES_PER_ROUND: usize = 50;
    // Warm-up pass so allocators and caches settle before timing.
    for dag in &dags {
        sim.run(dag, &SimOptions::default()).expect("simulates");
    }

    let (plain, disabled_secs, standard_secs) = best_secs_triple(
        ROUNDS,
        || {
            for _ in 0..PASSES_PER_ROUND {
                for dag in &dags {
                    sim.run(dag, &SimOptions::default()).expect("simulates");
                }
            }
        },
        || {
            for _ in 0..PASSES_PER_ROUND {
                for (dag, schedule) in dags.iter().zip(&disabled_schedules) {
                    runner
                        .run_job(dag, &no_checkpoints, schedule)
                        .expect("runs");
                }
            }
        },
        || {
            for _ in 0..PASSES_PER_ROUND {
                for (dag, schedule) in dags.iter().zip(&standard_schedules) {
                    runner
                        .run_job(dag, &no_checkpoints, schedule)
                        .expect("runs");
                }
            }
        },
    );

    let n = (dags.len() * PASSES_PER_ROUND) as f64;
    let overhead = disabled_secs / plain - 1.0;
    let report = FaultsimBench {
        jobs: dags.len(),
        rounds: ROUNDS,
        plain_jobs_per_sec: n / plain,
        disabled_jobs_per_sec: n / disabled_secs,
        standard_jobs_per_sec: n / standard_secs,
        disabled_overhead: overhead,
        disabled_overhead_ok: overhead < 0.05,
    };

    let json = serde_json::to_string_pretty(&report).expect("serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_faultsim.json");
    std::fs::write(path, format!("{json}\n")).expect("writes baseline");
    println!("{json}");
    if !report.disabled_overhead_ok {
        eprintln!("disabled-path overhead {overhead:.4} exceeds the 5% budget");
        std::process::exit(1);
    }
}
