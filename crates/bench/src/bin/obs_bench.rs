//! Executor-throughput overhead of the observability layer.
//!
//! Replays a generated workload through the execution simulator three ways —
//! through [`Simulator::run_unobserved`] (no observability branch at all),
//! through [`Simulator::run`] with [`Obs::disabled`] (the always-on
//! production configuration: one branch per instrumentation point), and with
//! [`Obs::recording`] (full spans, metrics and flight recording) — and
//! records jobs/second for each into `BENCH_obs.json` at the repo root. The
//! contract this baseline tracks: the disabled path must cost < 5% versus
//! the raw simulator.

use std::time::Instant;

use adas_engine::cost::CostModel;
use adas_engine::exec::{ClusterConfig, SimOptions, Simulator};
use adas_engine::physical::StageDag;
use adas_obs::Obs;
use serde::Serialize;

#[derive(Serialize)]
struct ObsBench {
    jobs: usize,
    rounds: usize,
    plain_jobs_per_sec: f64,
    disabled_jobs_per_sec: f64,
    recording_jobs_per_sec: f64,
    /// Relative cost of the disabled-obs path vs. the unobserved simulator
    /// (`disabled_time / plain_time - 1`, best-of-rounds). Must stay < 0.05.
    disabled_overhead: f64,
    disabled_overhead_ok: bool,
    /// Relative cost of full recording vs. the unobserved simulator
    /// (informational; recording is expected to cost real time).
    recording_overhead: f64,
}

fn best_secs(rounds: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let workload =
        adas_workload::gen::WorkloadGenerator::new(adas_workload::gen::GeneratorConfig {
            days: 2,
            jobs_per_day: 60,
            ..Default::default()
        })
        .expect("valid config")
        .generate()
        .expect("generates");
    let cost_model = CostModel::default();
    let dags: Vec<StageDag> = workload
        .trace
        .jobs()
        .iter()
        .map(|j| StageDag::compile(&j.plan, &workload.catalog, &cost_model).expect("compiles"))
        .collect();

    let cluster = ClusterConfig::default();
    let disabled_sim = Simulator::new(cluster).expect("valid cluster");

    const ROUNDS: usize = 7;
    // Replay the whole job set this many times per timed round so each
    // measurement spans tens of milliseconds; a single pass is ~1ms and
    // best-of-rounds over that is dominated by scheduler noise.
    const PASSES_PER_ROUND: usize = 50;
    // Warm-up pass so allocators and caches settle before timing.
    for dag in &dags {
        disabled_sim
            .run_unobserved(dag, &SimOptions::default())
            .expect("simulates");
    }

    let plain = best_secs(ROUNDS, || {
        for _ in 0..PASSES_PER_ROUND {
            for dag in &dags {
                disabled_sim
                    .run_unobserved(dag, &SimOptions::default())
                    .expect("simulates");
            }
        }
    });
    let disabled_secs = best_secs(ROUNDS, || {
        for _ in 0..PASSES_PER_ROUND {
            for dag in &dags {
                disabled_sim
                    .run(dag, &SimOptions::default())
                    .expect("simulates");
            }
        }
    });
    // A fresh recorder per round keeps the trace from growing unboundedly
    // across rounds while still amortizing allocation over a full pass set.
    let recording_secs = best_secs(ROUNDS, || {
        let sim = Simulator::with_obs(cluster, Obs::recording()).expect("valid cluster");
        for _ in 0..PASSES_PER_ROUND {
            for dag in &dags {
                sim.run(dag, &SimOptions::default()).expect("simulates");
            }
        }
    });

    let n = (dags.len() * PASSES_PER_ROUND) as f64;
    let overhead = disabled_secs / plain - 1.0;
    let report = ObsBench {
        jobs: dags.len(),
        rounds: ROUNDS,
        plain_jobs_per_sec: n / plain,
        disabled_jobs_per_sec: n / disabled_secs,
        recording_jobs_per_sec: n / recording_secs,
        disabled_overhead: overhead,
        disabled_overhead_ok: overhead < 0.05,
        recording_overhead: recording_secs / plain - 1.0,
    };

    let json = serde_json::to_string_pretty(&report).expect("serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    std::fs::write(path, format!("{json}\n")).expect("writes baseline");
    println!("{json}");
    if !report.disabled_overhead_ok {
        eprintln!("disabled-path overhead {overhead:.4} exceeds the 5% budget");
        std::process::exit(1);
    }
}
