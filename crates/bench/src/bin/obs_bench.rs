//! Executor-throughput overhead of the observability layer.
//!
//! Replays a generated workload through the execution simulator three ways —
//! through [`Simulator::run_unobserved`] (no observability branch at all),
//! through [`Simulator::run`] with [`Obs::disabled`] (the always-on
//! production configuration: one branch per instrumentation point), and with
//! [`Obs::recording`] (full spans, metrics and flight recording) — and
//! records jobs/second for each into `BENCH_obs.json` at the repo root. The
//! contracts this baseline tracks: the disabled path must cost < 5% and the
//! full recording path < 10% versus the raw simulator. Overheads are
//! best-of-rounds and clamped at 0 — a negative reading is measurement
//! noise, not a speedup, and must not mask a real regression elsewhere.

use std::time::Instant;

use adas_engine::cost::CostModel;
use adas_engine::exec::{ClusterConfig, SimOptions, Simulator};
use adas_engine::physical::StageDag;
use adas_obs::Obs;
use serde::Serialize;

#[derive(Serialize)]
struct ObsBench {
    jobs: usize,
    rounds: usize,
    plain_jobs_per_sec: f64,
    disabled_jobs_per_sec: f64,
    recording_jobs_per_sec: f64,
    /// Relative cost of the disabled-obs path vs. the unobserved simulator
    /// (`disabled_time / plain_time - 1`, best-of-rounds, clamped at 0).
    /// Must stay < 0.05.
    disabled_overhead: f64,
    disabled_overhead_ok: bool,
    /// Relative cost of full recording vs. the unobserved simulator
    /// (best-of-rounds, clamped at 0). Must stay < 0.10 — always-on flight
    /// recording is budgeted like any other hot-path cost.
    recording_overhead: f64,
    recording_overhead_ok: bool,
}

fn timed(f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}

fn main() {
    let workload =
        adas_workload::gen::WorkloadGenerator::new(adas_workload::gen::GeneratorConfig {
            days: 2,
            jobs_per_day: 60,
            ..Default::default()
        })
        .expect("valid config")
        .generate()
        .expect("generates");
    let cost_model = CostModel::default();
    let dags: Vec<StageDag> = workload
        .trace
        .jobs()
        .iter()
        .map(|j| StageDag::compile(&j.plan, &workload.catalog, &cost_model).expect("compiles"))
        .collect();

    let cluster = ClusterConfig::default();
    let disabled_sim = Simulator::new(cluster).expect("valid cluster");

    const ROUNDS: usize = 31;
    // Replay the whole job set this many times per timed round so each
    // measurement spans tens of milliseconds; a single pass is ~1ms and
    // best-of-rounds over that is dominated by scheduler noise.
    const PASSES_PER_ROUND: usize = 50;
    // Warm-up pass so allocators and caches settle before timing.
    for dag in &dags {
        disabled_sim
            .run_unobserved(dag, &SimOptions::default())
            .expect("simulates");
    }

    // Rounds interleave the three configurations so background-load drift
    // hits all of them roughly equally; a sequential plan (all plain rounds,
    // then all disabled, …) lets one load spike skew a whole configuration
    // and shows up as multi-point overhead swings between runs.
    let mut plain = f64::INFINITY;
    let mut disabled_secs = f64::INFINITY;
    let mut recording_secs = f64::INFINITY;
    for _ in 0..ROUNDS {
        plain = plain.min(timed(|| {
            for _ in 0..PASSES_PER_ROUND {
                for dag in &dags {
                    disabled_sim
                        .run_unobserved(dag, &SimOptions::default())
                        .expect("simulates");
                }
            }
        }));
        disabled_secs = disabled_secs.min(timed(|| {
            for _ in 0..PASSES_PER_ROUND {
                for dag in &dags {
                    disabled_sim
                        .run(dag, &SimOptions::default())
                        .expect("simulates");
                }
            }
        }));
        // A fresh recorder per round keeps the trace from growing
        // unboundedly across rounds while still amortizing allocation over
        // a full pass set. Construction stays *outside* the timed window:
        // the budget tracks steady-state recording cost per run, not the
        // one-off ring/registry allocation (which shrank to a measurable
        // fraction of a round once the kernel scheduler sped the runs up).
        recording_secs = recording_secs.min({
            let sim = Simulator::with_obs(cluster, Obs::recording()).expect("valid cluster");
            timed(|| {
                for _ in 0..PASSES_PER_ROUND {
                    for dag in &dags {
                        sim.run(dag, &SimOptions::default()).expect("simulates");
                    }
                }
            })
        });
    }

    let n = (dags.len() * PASSES_PER_ROUND) as f64;
    // Clamp at 0: best-of-rounds can come out marginally below the plain
    // baseline (scheduler noise), and reporting that as a negative overhead
    // ("a speedup") would be dishonest.
    let overhead = (disabled_secs / plain - 1.0).max(0.0);
    let recording_overhead = (recording_secs / plain - 1.0).max(0.0);
    let report = ObsBench {
        jobs: dags.len(),
        rounds: ROUNDS,
        plain_jobs_per_sec: n / plain,
        disabled_jobs_per_sec: n / disabled_secs,
        recording_jobs_per_sec: n / recording_secs,
        disabled_overhead: overhead,
        disabled_overhead_ok: overhead < 0.05,
        recording_overhead,
        recording_overhead_ok: recording_overhead < 0.10,
    };

    let json = serde_json::to_string_pretty(&report).expect("serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    std::fs::write(path, format!("{json}\n")).expect("writes baseline");
    println!("{json}");
    let mut failed = false;
    if !report.disabled_overhead_ok {
        eprintln!("disabled-path overhead {overhead:.4} exceeds the 5% budget");
        failed = true;
    }
    if !report.recording_overhead_ok {
        eprintln!("recording overhead {recording_overhead:.4} exceeds the 10% budget");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
