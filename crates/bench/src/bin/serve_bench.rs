//! Throughput and overhead baseline for the model-serving gateway.
//!
//! Serves one synthetic inference-heavy model four ways and records the
//! results into `BENCH_serve.json` at the repo root:
//!
//! * **direct** — single-threaded calls straight into the model function
//!   (the pre-gateway baseline every consumer used to take).
//! * **disabled gateway** — [`GatewayConfig::disabled`] pass-through. The
//!   contract this tracks: the always-on gateway envelope must cost < 5%
//!   versus direct calls.
//! * **concurrent gateway** — [`GatewayConfig::concurrent`] with 8 workers,
//!   cache and micro-batching on, served through chunked
//!   [`Gateway::predict_many`]. Must deliver ≥ 2× the direct path's
//!   aggregate throughput on a recurring workload.
//! * **batching isolation** — 8 workers, cache off, unique requests only:
//!   batch size 32 vs. batch size 1, isolating what micro-batching buys
//!   over per-row pool dispatch.
//! * **canary overhead** — single-threaded serving with a 20% canary
//!   candidate staged vs. the same gateway without one. The routing layer
//!   (arrival ticket + candidate snapshot read) must cost < 5%.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use adas_serve::{
    DeployPhase, FnModel, Gateway, GatewayConfig, GatewayStats, ModelHandle, Request, ServableModel,
};
use serde::Serialize;

/// Feature-vector width.
const FEATURES: usize = 8;
/// Distinct feature vectors in the workload.
const UNIQUE: usize = 2048;
/// How many times each distinct vector recurs (recurring-job workloads of
/// the paper: the same templates arrive again and again).
const REPEATS: usize = 4;
/// Requests per `predict_many` call; recurrences land in later chunks so
/// the prediction cache (not just in-flight dedup) absorbs them.
const CHUNK: usize = 512;
/// Synthetic per-row inference cost (fused multiply-add chain length) —
/// roughly a small gradient-boosting forest's worth of work.
const WORK: usize = 4000;
const ROUNDS: usize = 5;
const WORKERS: usize = 8;

/// Deterministic synthetic model: a serial FMA chain over the features.
fn infer(features: &[f64]) -> f64 {
    let mut acc = 1.0f64;
    for i in 0..WORK {
        acc = acc.mul_add(0.999_999, features[i % FEATURES] * 1e-6);
    }
    acc
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unique_features(seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed;
    (0..UNIQUE)
        .map(|_| {
            (0..FEATURES)
                .map(|_| (splitmix(&mut state) >> 11) as f64 / (1u64 << 53) as f64)
                .collect()
        })
        .collect()
}

fn gateway_with(config: GatewayConfig) -> (Gateway, ModelHandle) {
    let gateway = Gateway::new(config);
    let handle = gateway.register("bench/synthetic", |f: &[f64]| f[0]);
    gateway
        .publish(handle, Arc::new(FnModel(|f: &[f64]| infer(f))), 0.0)
        .expect("freshly registered handle");
    (gateway, handle)
}

fn best_secs(rounds: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

#[derive(Serialize)]
struct ServeBench {
    unique_requests: usize,
    repeats: usize,
    total_requests: usize,
    rounds: usize,
    workers: usize,
    direct_rps: f64,
    disabled_rps: f64,
    /// Relative cost of the pass-through gateway vs. direct model calls
    /// (`disabled_time / direct_time - 1`, best-of-rounds). Must stay < 0.05.
    disabled_overhead: f64,
    disabled_overhead_ok: bool,
    concurrent_rps: f64,
    /// Aggregate-throughput ratio of the 8-worker cached+batched gateway
    /// over the direct single-threaded path. Must stay ≥ 2.
    concurrent_speedup: f64,
    concurrent_speedup_ok: bool,
    cache_hit_rate: f64,
    batch1_rps: f64,
    batch32_rps: f64,
    /// Batch-32 over batch-1 throughput, 8 workers, cache off, unique rows.
    batching_speedup: f64,
    canary_baseline_rps: f64,
    canary_rps: f64,
    /// Relative cost of serving with a 20% canary candidate staged vs. the
    /// same gateway with no candidate (`canary_time / baseline_time - 1`,
    /// best-of-rounds, cache off so every request takes the routed path).
    /// Must stay < 0.05.
    canary_overhead: f64,
    canary_overhead_ok: bool,
}

fn main() {
    let features = unique_features(0x5E27_E_BE7C);
    // Recurring arrival order: a full pass over the unique set, repeated.
    // The first pass warms the cache; later passes hit it.
    let order: Vec<usize> = (0..REPEATS).flat_map(|_| 0..UNIQUE).collect();
    let total = order.len();

    // The direct baseline calls the same boxed model object the gateway
    // serves, so the comparison isolates the gateway envelope rather than
    // inlining differences in the model body.
    let model: Arc<dyn ServableModel> = Arc::new(FnModel(|f: &[f64]| infer(f)));

    // Warm-up so allocators settle before timing.
    let mut sink = 0.0f64;
    for row in &features {
        sink += model.predict(row);
    }
    black_box(sink);

    let direct_secs = best_secs(ROUNDS, || {
        let mut acc = 0.0f64;
        for &i in &order {
            acc += model.predict(&features[i]);
        }
        black_box(acc);
    });

    let (disabled_gateway, disabled_handle) = gateway_with(GatewayConfig::disabled());
    let disabled_secs = best_secs(ROUNDS, || {
        let mut acc = 0.0f64;
        for (t, &i) in order.iter().enumerate() {
            acc += disabled_gateway
                .predict(disabled_handle, &features[i], t as f64)
                .expect("registered handle")
                .value;
        }
        black_box(acc);
    });

    // Concurrent path: fresh gateway per round so every round replays the
    // same cold-cache-then-warm-cache trajectory.
    let mut concurrent_stats: Option<GatewayStats> = None;
    let concurrent_secs = best_secs(ROUNDS, || {
        let mut config = GatewayConfig::concurrent(WORKERS);
        config.batch_size = 32;
        let (gateway, handle) = gateway_with(config);
        let mut acc = 0.0f64;
        for chunk in order.chunks(CHUNK) {
            let requests: Vec<Request> = chunk
                .iter()
                .enumerate()
                .map(|(t, &i)| Request::new(handle, features[i].clone(), t as f64 * 0.25))
                .collect();
            for p in gateway.predict_many(&requests).expect("registered handle") {
                acc += p.value;
            }
        }
        black_box(acc);
        concurrent_stats = Some(gateway.stats());
    });
    let concurrent_stats = concurrent_stats.expect("at least one round ran");

    // Batching isolation: unique rows only (no dedup, no cache) so the only
    // difference between the two runs is rows-per-pool-job.
    let batch_secs = |batch_size: usize| {
        let (gateway, handle) = {
            let mut config = GatewayConfig::concurrent(WORKERS);
            config.batch_size = batch_size;
            config.cache_capacity = 0;
            gateway_with(config)
        };
        best_secs(ROUNDS, || {
            let mut acc = 0.0f64;
            for chunk in (0..UNIQUE).collect::<Vec<_>>().chunks(CHUNK) {
                let requests: Vec<Request> = chunk
                    .iter()
                    .enumerate()
                    .map(|(t, &i)| Request::new(handle, features[i].clone(), t as f64 * 0.25))
                    .collect();
                for p in gateway.predict_many(&requests).expect("registered handle") {
                    acc += p.value;
                }
            }
            black_box(acc);
        })
    };
    let batch1_secs = batch_secs(1);
    let batch32_secs = batch_secs(32);

    // Canary routing overhead: the same single-threaded serve loop with and
    // without a 20% canary candidate staged. Cache off so every request
    // pays the routing decision; the candidate runs the identical model, so
    // the delta is purely the routing machinery (ticket + candidate read).
    let canary_gateway = |staged: bool| {
        let mut config = GatewayConfig::standard();
        config.cache_capacity = 0;
        let (gateway, handle) = gateway_with(config);
        if staged {
            gateway
                .stage_candidate(
                    handle,
                    Arc::new(FnModel(|f: &[f64]| infer(f))),
                    0.0,
                    DeployPhase::Canary,
                    20,
                    "bench",
                    0.0,
                )
                .expect("registered handle");
        }
        (gateway, handle)
    };
    let canary_secs_for = |staged: bool| {
        let (gateway, handle) = canary_gateway(staged);
        best_secs(ROUNDS, || {
            let mut acc = 0.0f64;
            for (t, &i) in order.iter().enumerate() {
                acc += gateway
                    .predict(handle, &features[i], t as f64)
                    .expect("registered handle")
                    .value;
            }
            black_box(acc);
        })
    };
    let canary_baseline_secs = canary_secs_for(false);
    let canary_secs = canary_secs_for(true);
    let canary_overhead = canary_secs / canary_baseline_secs - 1.0;

    let overhead = disabled_secs / direct_secs - 1.0;
    let speedup = direct_secs / concurrent_secs;
    let report = ServeBench {
        unique_requests: UNIQUE,
        repeats: REPEATS,
        total_requests: total,
        rounds: ROUNDS,
        workers: WORKERS,
        direct_rps: total as f64 / direct_secs,
        disabled_rps: total as f64 / disabled_secs,
        disabled_overhead: overhead,
        disabled_overhead_ok: overhead < 0.05,
        concurrent_rps: total as f64 / concurrent_secs,
        concurrent_speedup: speedup,
        concurrent_speedup_ok: speedup >= 2.0,
        cache_hit_rate: concurrent_stats.cache_hit_rate,
        batch1_rps: UNIQUE as f64 / batch1_secs,
        batch32_rps: UNIQUE as f64 / batch32_secs,
        batching_speedup: batch1_secs / batch32_secs,
        canary_baseline_rps: total as f64 / canary_baseline_secs,
        canary_rps: total as f64 / canary_secs,
        canary_overhead,
        canary_overhead_ok: canary_overhead < 0.05,
    };

    let json = serde_json::to_string_pretty(&report).expect("serializes");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, format!("{json}\n")).expect("writes baseline");
    println!("{json}");
    if !report.disabled_overhead_ok {
        eprintln!("pass-through gateway overhead {overhead:.4} exceeds the 5% budget");
        std::process::exit(1);
    }
    if !report.concurrent_speedup_ok {
        eprintln!("concurrent gateway speedup {speedup:.2}x is below the 2x floor");
        std::process::exit(1);
    }
    if !report.canary_overhead_ok {
        eprintln!("canary routing overhead {canary_overhead:.4} exceeds the 5% budget");
        std::process::exit(1);
    }
}
