//! Experiment runner: regenerates every figure and quantitative claim.
//!
//! ```text
//! experiments                # run everything
//! experiments list           # list experiment names
//! experiments phoebe seagull # run a subset
//! experiments --json out.json …  # also dump rows as JSON
//! ```

use adas_bench::experiments::registry;
use adas_bench::{render_table, Row};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut selected: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => {
                json_path = iter.next();
                if json_path.is_none() {
                    eprintln!("--json requires a path");
                    std::process::exit(2);
                }
            }
            other => selected.push(other.to_string()),
        }
    }

    let registry = registry();
    if selected.first().map(String::as_str) == Some("list") {
        for (name, _) in &registry {
            println!("{name}");
        }
        return;
    }

    let runs: Vec<_> = registry
        .iter()
        .filter(|(name, _)| selected.is_empty() || selected.iter().any(|s| s == name))
        .collect();
    if runs.is_empty() {
        eprintln!("no experiment matches {selected:?}; try `experiments list`");
        std::process::exit(2);
    }

    let mut all_rows: Vec<Row> = Vec::new();
    for (name, runner) in runs {
        let start = Instant::now();
        let rows = runner();
        let elapsed = start.elapsed();
        println!("== {name} ({elapsed:.2?}) ==");
        println!("{}", render_table(&rows));
        all_rows.extend(rows);
    }

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&all_rows).expect("rows serialize");
        std::fs::write(&path, json).unwrap_or_else(|e| {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {} rows to {path}", all_rows.len());
    }
}
