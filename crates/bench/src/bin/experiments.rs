//! Experiment runner: regenerates every figure and quantitative claim.
//!
//! ```text
//! experiments                # run everything, streaming JSON lines
//! experiments list           # list experiment names
//! experiments phoebe seagull # run a subset
//! experiments --table …      # human-readable aligned tables instead
//! experiments --json out.json …  # also dump rows as JSON
//! experiments --trace out.trace.json …  # stream the full flight record
//! ```
//!
//! Progress and results stream as machine-parseable JSON lines through the
//! obs exporter: one `experiment_started` / `experiment_finished` event per
//! experiment plus every [`Row`] as JSON. `--table` restores the aligned
//! text tables recorded in `EXPERIMENTS.md`.

use adas_bench::experiments::registry;
use adas_bench::{render_table, Row};
use adas_obs::{Obs, DEFAULT_EXPORT_CHUNK};
use std::io::Write as _;
use std::time::Instant;

fn emit(obs: &Obs, name: &str, fields: &[(&str, &str)]) {
    obs.event("bench.experiments", name, 0.0, fields);
    println!("{}", obs.last_event_json().expect("recording"));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut table = false;
    let mut selected: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => {
                json_path = iter.next();
                if json_path.is_none() {
                    eprintln!("--json requires a path");
                    std::process::exit(2);
                }
            }
            "--trace" => {
                trace_path = iter.next();
                if trace_path.is_none() {
                    eprintln!("--trace requires a path");
                    std::process::exit(2);
                }
            }
            "--table" => table = true,
            other => selected.push(other.to_string()),
        }
    }

    let registry = registry();
    if selected.first().map(String::as_str) == Some("list") {
        for (name, _) in &registry {
            println!("{name}");
        }
        return;
    }

    let runs: Vec<_> = registry
        .iter()
        .filter(|(name, _)| selected.is_empty() || selected.iter().any(|s| s == name))
        .collect();
    if runs.is_empty() {
        eprintln!("no experiment matches {selected:?}; try `experiments list`");
        std::process::exit(2);
    }

    let obs = Obs::recording();
    let mut all_rows: Vec<Row> = Vec::new();
    for (name, runner) in runs {
        if !table {
            emit(&obs, "experiment_started", &[("experiment", name)]);
        }
        let start = Instant::now();
        let rows = runner();
        let elapsed = start.elapsed();
        if table {
            println!("== {name} ({elapsed:.2?}) ==");
            println!("{}", render_table(&rows));
        } else {
            for row in &rows {
                println!("{}", serde_json::to_string(row).expect("rows serialize"));
            }
            emit(
                &obs,
                "experiment_finished",
                &[
                    ("experiment", name),
                    ("rows", &rows.len().to_string()),
                    ("elapsed_ms", &elapsed.as_millis().to_string()),
                ],
            );
        }
        all_rows.extend(rows);
    }

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&all_rows).expect("rows serialize");
        std::fs::write(&path, json).unwrap_or_else(|e| {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        });
        if table {
            println!("wrote {} rows to {path}", all_rows.len());
        } else {
            emit(
                &obs,
                "rows_written",
                &[("rows", &all_rows.len().to_string()), ("path", &path)],
            );
        }
    }

    if let Some(path) = trace_path {
        // Stream the flight record chunk by chunk — the full export string
        // is never materialized, so arbitrarily long campaigns stay flat in
        // memory.
        let file = std::fs::File::create(&path).unwrap_or_else(|e| {
            eprintln!("failed to create {path}: {e}");
            std::process::exit(1);
        });
        let mut writer = std::io::BufWriter::new(file);
        let mut failed = None;
        obs.export_stream(DEFAULT_EXPORT_CHUNK, |chunk| {
            if failed.is_none() {
                if let Err(e) = writer.write_all(chunk.as_bytes()) {
                    failed = Some(e);
                }
            }
        });
        let result = failed
            .map(Err)
            .unwrap_or_else(|| writer.flush())
            .map_err(|e| e.to_string());
        if let Err(e) = result {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        if table {
            println!("wrote flight record to {path}");
        } else {
            emit(&obs, "trace_written", &[("path", &path)]);
        }
    }
}
