//! Experiment harness for the paper reproduction.
//!
//! Every figure and quantitative claim in the paper's Sections 4-5 has a
//! module under [`experiments`] that regenerates it against the simulated
//! substrates and returns [`Row`]s comparing the paper's reported value with
//! the measured one. The `experiments` binary
//! (`cargo run -p adas-bench --bin experiments --release`) runs them and
//! prints the tables recorded in `EXPERIMENTS.md`.
//!
//! Criterion micro-benchmarks for the performance-sensitive primitives live
//! in `benches/microbench.rs`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;

use serde::Serialize;

/// One paper-vs-measured comparison row.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Experiment id (`F1`, `C5`, `A2`, …).
    pub experiment: &'static str,
    /// Metric name.
    pub metric: String,
    /// The paper's reported value, when it reports one.
    pub paper: Option<f64>,
    /// Value measured in this reproduction.
    pub measured: f64,
    /// Unit/shape note (`fraction`, `seconds`, `q-error`, …).
    pub unit: &'static str,
}

impl Row {
    /// Creates a row with a paper reference value.
    pub fn with_paper(
        experiment: &'static str,
        metric: impl Into<String>,
        paper: f64,
        measured: f64,
        unit: &'static str,
    ) -> Self {
        Self {
            experiment,
            metric: metric.into(),
            paper: Some(paper),
            measured,
            unit,
        }
    }

    /// Creates a row the paper has no direct number for (shape-only).
    pub fn measured_only(
        experiment: &'static str,
        metric: impl Into<String>,
        measured: f64,
        unit: &'static str,
    ) -> Self {
        Self {
            experiment,
            metric: metric.into(),
            paper: None,
            measured,
            unit,
        }
    }
}

/// Renders rows as an aligned text table.
pub fn render_table(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<6} {:<52} {:>12} {:>12}  {}\n",
        "id", "metric", "paper", "measured", "unit"
    ));
    out.push_str(&"-".repeat(96));
    out.push('\n');
    for row in rows {
        let paper = row.paper.map_or("-".to_string(), |p| format!("{p:.4}"));
        out.push_str(&format!(
            "{:<6} {:<52} {:>12} {:>12.4}  {}\n",
            row.experiment, row.metric, paper, row.measured, row.unit
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_both_row_kinds() {
        let rows = vec![
            Row::with_paper("C6", "latency improvement", 0.34, 0.31, "fraction"),
            Row::measured_only("F1", "gen3 cpu-vs-containers R2", 0.98, "r2"),
        ];
        let table = render_table(&rows);
        assert!(table.contains("C6"));
        assert!(table.contains("0.3400"));
        assert!(table.contains('-'));
        assert!(table.lines().count() >= 4);
    }
}
