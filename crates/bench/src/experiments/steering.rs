//! C4 — rule-hint steering in production style (Sec 4.2, \[35, 51\]).
//!
//! The controller explores the Hamming-1 neighbourhood of each recurring
//! template's deployed rule configuration, promotes only validated
//! improvements, and must end with **zero deployed regressions** — the
//! production bar that forced the paper's "small incremental steps" and
//! "validation model" adaptations. Improvement comes from templates where
//! the default cost model misleads the optimizer into harmful rewrites.

use crate::Row;
use adas_engine::cardinality::{DefaultEstimator, TrueCardinality};
use adas_engine::cost::CostModel;
use adas_engine::rules::{Optimizer, RuleSet};
use adas_learned::steering::{SteeringConfig, SteeringController};
use adas_workload::gen::{GeneratorConfig, WorkloadGenerator};
use adas_workload::plan::LogicalPlan;
use adas_workload::signature::template_signature;
use std::collections::HashMap;

/// Drives the controller for `epochs` passes over the recurring templates
/// and returns `(controller stats, deployed-vs-default improvement,
/// deployed regression count)` plus the evaluation rows.
pub fn run_with(epochs: usize, config: SteeringConfig) -> Vec<Row> {
    let gen_config = GeneratorConfig {
        days: 8,
        jobs_per_day: 250,
        n_templates: 25,
        ..Default::default()
    };
    let workload = WorkloadGenerator::new(gen_config)
        .expect("valid config")
        .generate()
        .expect("generation succeeds");
    let catalog = workload.catalog;
    let est = DefaultEstimator::new(&catalog);
    let truth = TrueCardinality::new(&catalog);
    let cost_model = CostModel::default();
    let optimizer = Optimizer::default();

    // Group recurring instances by template signature.
    let mut by_template: HashMap<_, Vec<&LogicalPlan>> = HashMap::new();
    for job in workload.trace.jobs() {
        by_template
            .entry(template_signature(&job.plan))
            .or_default()
            .push(&job.plan);
    }
    by_template.retain(|_, v| v.len() >= 10);

    let true_cost = |plan: &LogicalPlan, rules: RuleSet| -> f64 {
        let optimized = optimizer
            .optimize(plan, rules, &est)
            .expect("plans validate");
        cost_model
            .total_cost(&optimized.plan, &truth)
            .expect("plans validate")
    };

    let mut controller = SteeringController::new(RuleSet::all(), config);
    for epoch in 0..epochs {
        for (&sig, plans) in &by_template {
            let plan = plans[epoch % plans.len()];
            let chosen = controller.choose(sig);
            let deployed = controller.deployed(sig);
            let chosen_cost = true_cost(plan, chosen);
            let deployed_cost = if chosen == deployed {
                chosen_cost
            } else {
                true_cost(plan, deployed)
            };
            controller.observe(sig, chosen, chosen_cost, deployed_cost);
        }
    }

    // Final evaluation: deployed config vs the engine default (all rules),
    // averaged over each template's instances.
    let mut improvements = Vec::new();
    let mut regressions = 0usize;
    for (&sig, plans) in &by_template {
        let deployed = controller.deployed(sig);
        if deployed == RuleSet::all() {
            continue; // unsteered template: identical to default by definition
        }
        let deployed_cost: f64 = plans.iter().map(|p| true_cost(p, deployed)).sum();
        let default_cost: f64 = plans.iter().map(|p| true_cost(p, RuleSet::all())).sum();
        let rel = (default_cost - deployed_cost) / default_cost;
        improvements.push(rel);
        if rel < -0.01 {
            regressions += 1;
        }
    }
    let stats = controller.stats();
    let mean_improvement = if improvements.is_empty() {
        0.0
    } else {
        improvements.iter().sum::<f64>() / improvements.len() as f64
    };

    vec![
        Row::measured_only(
            "C4",
            "recurring templates managed",
            stats.templates as f64,
            "templates",
        ),
        Row::measured_only(
            "C4",
            "templates steered off default",
            stats.templates_steered as f64,
            "templates",
        ),
        Row::measured_only(
            "C4",
            "promotions (incremental steps)",
            stats.promotions as f64,
            "steps",
        ),
        Row::measured_only(
            "C4",
            "candidates blocked by validation model",
            stats.rejected_by_validation as f64,
            "arms",
        ),
        Row::measured_only(
            "C4",
            "mean true-cost improvement of steered templates",
            mean_improvement,
            "fraction",
        ),
        Row::with_paper(
            "C4",
            "deployed regressions (paper bar: 0)",
            0.0,
            regressions as f64,
            "templates",
        ),
    ]
}

/// Runs the experiment with default settings.
pub fn run() -> Vec<Row> {
    run_with(60, SteeringConfig::default())
}

#[cfg(test)]
mod tests {
    #[test]
    fn c4_steering_improves_without_regressions() {
        let rows = super::run();
        let get = |m: &str| {
            rows.iter()
                .find(|r| r.metric.starts_with(m))
                .unwrap()
                .measured
        };
        assert_eq!(get("deployed regressions"), 0.0);
        assert!(get("recurring templates managed") >= 10.0);
        // Steering should find at least one template to improve, and the
        // improvement must be real.
        if get("templates steered off default") > 0.0 {
            assert!(get("mean true-cost improvement") > 0.0);
        }
    }
}
