//! A1-A4 — ablations of the design choices DESIGN.md calls out.

use crate::Row;
use adas_learned::cardinality::{LearnedCardinality, TrainConfig};
use adas_learned::cost::{CostEnsemble, CostTrainConfig};
use adas_learned::steering::SteeringConfig;
use adas_reuse::{replay, MatchPolicy, ReplayConfig};
use adas_workload::gen::{GeneratorConfig, WorkloadGenerator};

fn workload(days: usize, jobs: usize, templates: usize) -> adas_workload::gen::GeneratedWorkload {
    WorkloadGenerator::new(GeneratorConfig {
        days,
        jobs_per_day: jobs,
        n_templates: templates,
        ..Default::default()
    })
    .expect("valid config")
    .generate()
    .expect("generation succeeds")
}

/// A1 — micromodel pruning on/off: pruning cuts the deployed model count
/// substantially while keeping (or improving) the learned q-error, because
/// only templates where learning actually beats the default keep a model.
pub fn pruning() -> Vec<Row> {
    let w = workload(10, 400, 60);
    let plans: Vec<_> = w.trace.jobs().iter().map(|j| j.plan.clone()).collect();
    let (_, pruned) = LearnedCardinality::train(&w.catalog, &plans, TrainConfig::default());
    let (_, unpruned) = LearnedCardinality::train(
        &w.catalog,
        &plans,
        TrainConfig {
            prune_ratio: f64::INFINITY,
            ..Default::default()
        },
    );
    vec![
        Row::measured_only(
            "A1",
            "models kept (pruning on)",
            pruned.models_kept as f64,
            "models",
        ),
        Row::measured_only(
            "A1",
            "models kept (pruning off)",
            unpruned.models_kept as f64,
            "models",
        ),
        Row::measured_only(
            "A1",
            "learned q-error (pruning on)",
            pruned.learned_q_error,
            "q-error",
        ),
        Row::measured_only(
            "A1",
            "learned q-error (pruning off)",
            unpruned.learned_q_error,
            "q-error",
        ),
        Row::measured_only(
            "A1",
            "model-count reduction",
            1.0 - pruned.models_kept as f64 / unpruned.models_kept.max(1) as f64,
            "fraction",
        ),
    ]
}

/// A2 — meta-ensemble on/off: without the global fallback, coverage stops
/// at the recurring templates; the ensemble reaches 100% coverage at lower
/// error than the default.
pub fn ensemble() -> Vec<Row> {
    let w = workload(10, 300, 40);
    let plans: Vec<_> = w.trace.jobs().iter().map(|j| j.plan.clone()).collect();
    let (_, report) = CostEnsemble::train(&w.catalog, &plans, CostTrainConfig::default());
    vec![
        Row::measured_only(
            "A2",
            "micromodel coverage (no ensemble)",
            report.micromodel_coverage,
            "fraction",
        ),
        Row::measured_only("A2", "ensemble coverage", 1.0, "fraction"),
        Row::measured_only("A2", "micro-only MAPE", report.micro_only_mape, "mape"),
        Row::measured_only("A2", "ensemble MAPE", report.ensemble_mape, "mape"),
        Row::measured_only("A2", "default MAPE", report.default_mape, "mape"),
    ]
}

/// A3 — steering validation on/off: disabling the validation model (win
/// rate bar at 0) lets noisy arms promote, trading regressions for speed —
/// exactly the production risk the paper guards against.
pub fn steering() -> Vec<Row> {
    let guarded = super::steering::run_with(40, SteeringConfig::default());
    let unguarded = super::steering::run_with(
        40,
        SteeringConfig {
            validation_win_rate: 0.0,
            improvement_margin: 0.0,
            ..Default::default()
        },
    );
    let pick = |rows: &[Row], name: &str| -> f64 {
        rows.iter()
            .find(|r| r.metric.starts_with(name))
            .expect("metric present")
            .measured
    };
    vec![
        Row::measured_only(
            "A3",
            "promotions (validation on)",
            pick(&guarded, "promotions"),
            "steps",
        ),
        Row::measured_only(
            "A3",
            "promotions (validation off)",
            pick(&unguarded, "promotions"),
            "steps",
        ),
        Row::measured_only(
            "A3",
            "deployed regressions (validation on)",
            pick(&guarded, "deployed regressions"),
            "templates",
        ),
        Row::measured_only(
            "A3",
            "deployed regressions (validation off)",
            pick(&unguarded, "deployed regressions"),
            "templates",
        ),
        Row::measured_only(
            "A3",
            "blocked candidates (validation on)",
            pick(&guarded, "candidates blocked"),
            "arms",
        ),
    ]
}

/// A4 — reuse matching policy: syntactic-only vs semantic + containment.
pub fn reuse() -> Vec<Row> {
    let w = WorkloadGenerator::new(GeneratorConfig {
        days: 6,
        jobs_per_day: 120,
        n_templates: 24,
        shared_template_fraction: 0.7,
        ..Default::default()
    })
    .expect("valid config")
    .generate()
    .expect("generation succeeds");
    let syntactic = replay(
        &w.trace,
        &w.catalog,
        &ReplayConfig {
            policy: MatchPolicy::syntactic_only(),
            ..Default::default()
        },
    )
    .expect("replay runs");
    let full = replay(&w.trace, &w.catalog, &ReplayConfig::default()).expect("replay runs");
    vec![
        Row::measured_only(
            "A4",
            "view hits (syntactic)",
            syntactic.total_hits as f64,
            "hits",
        ),
        Row::measured_only(
            "A4",
            "view hits (semantic+containment)",
            full.total_hits as f64,
            "hits",
        ),
        Row::measured_only(
            "A4",
            "containment hits",
            full.containment_hits as f64,
            "hits",
        ),
        Row::measured_only(
            "A4",
            "latency improvement (syntactic)",
            syntactic.latency_improvement,
            "fraction",
        ),
        Row::measured_only(
            "A4",
            "latency improvement (full)",
            full.latency_improvement,
            "fraction",
        ),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn a1_pruning_cuts_models() {
        let rows = super::pruning();
        let get = |m: &str| rows.iter().find(|r| r.metric == m).unwrap().measured;
        assert!(get("models kept (pruning on)") <= get("models kept (pruning off)"));
        assert!(get("model-count reduction") >= 0.0);
    }

    #[test]
    fn a2_ensemble_extends_coverage() {
        let rows = super::ensemble();
        let get = |m: &str| rows.iter().find(|r| r.metric == m).unwrap().measured;
        assert!(get("micromodel coverage (no ensemble)") < 1.0);
        assert!(get("ensemble MAPE") < get("default MAPE"));
    }

    #[test]
    fn a4_full_policy_is_superset() {
        let rows = super::reuse();
        let get = |m: &str| rows.iter().find(|r| r.metric == m).unwrap().measured;
        assert!(get("view hits (semantic+containment)") >= get("view hits (syntactic)"));
    }
}
