//! One module per reproduced figure/claim. See DESIGN.md's experiment index.

pub mod ablations;
pub mod cardinality;
pub mod cloudviews;
pub mod costmodel;
pub mod doppler;
pub mod fig1;
pub mod fig2;
pub mod initsim;
pub mod kea;
pub mod moneyball;
pub mod phoebe;
pub mod pipemizer;
pub mod power;
pub mod seagull;
pub mod sparktune;
pub mod steering;
pub mod vmtune;
pub mod workload_stats;

use crate::Row;

/// One experiment's runner function.
pub type Runner = fn() -> Vec<Row>;

/// Name → runner for every experiment (deterministic order).
pub fn registry() -> Vec<(&'static str, Runner)> {
    vec![
        ("fig1", fig1::run as Runner),
        ("fig2", fig2::run),
        ("workload-stats", workload_stats::run),
        ("cardinality", cardinality::run),
        ("costmodel", costmodel::run),
        ("steering", steering::run),
        ("phoebe", phoebe::run),
        ("cloudviews", cloudviews::run),
        ("pipemizer", pipemizer::run),
        ("moneyball", moneyball::run),
        ("seagull", seagull::run),
        ("doppler", doppler::run),
        ("sparktune", sparktune::run),
        ("kea", kea::run),
        ("initsim", initsim::run),
        ("vmtune", vmtune::run),
        ("power", power::run),
        ("ablate-pruning", ablations::pruning),
        ("ablate-ensemble", ablations::ensemble),
        ("ablate-steering", ablations::steering),
        ("ablate-reuse", ablations::reuse),
    ]
}
