//! C13 — cluster-initialization tail latency (Sec 4.1).
//!
//! "For Azure Synapse Spark, we developed a simulator to mimic the cluster
//! initialization process and derived the optimal policy for sending
//! requests, reducing its tail latency." The simulator compares
//! single-request, retry, and hedged policies; the derived hedge delay is
//! the policy that minimizes p99.

use crate::Row;
use adas_infra::initsim::{derive_optimal_hedge, simulate_inits, InitModel, RequestPolicy};

/// Runs the experiment.
pub fn run() -> Vec<Row> {
    let model = InitModel::default();
    let n = 20_000;
    let single = simulate_inits(&model, RequestPolicy::Single, n, 77);
    let retry = simulate_inits(
        &model,
        RequestPolicy::RetryAfter {
            timeout_s: single.p50 * 2.0,
        },
        n,
        77,
    );
    let (hedge_delay, hedged) = derive_optimal_hedge(&model, n, 77);
    vec![
        Row::measured_only("C13", "single-request p50", single.p50, "seconds"),
        Row::measured_only("C13", "single-request p99", single.p99, "seconds"),
        Row::measured_only("C13", "retry p99", retry.p99, "seconds"),
        Row::measured_only(
            "C13",
            "retry attempts/request",
            retry.attempts_per_request,
            "attempts",
        ),
        Row::measured_only("C13", "derived hedge delay", hedge_delay, "seconds"),
        Row::measured_only("C13", "hedged p99", hedged.p99, "seconds"),
        Row::measured_only(
            "C13",
            "hedged attempts/request",
            hedged.attempts_per_request,
            "attempts",
        ),
        Row::measured_only(
            "C13",
            "tail latency reduction (p99)",
            (single.p99 - hedged.p99) / single.p99,
            "fraction",
        ),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn c13_hedging_reduces_tail() {
        let rows = super::run();
        let get = |m: &str| rows.iter().find(|r| r.metric == m).unwrap().measured;
        assert!(get("tail latency reduction (p99)") > 0.25);
        assert!(get("hedged attempts/request") < 1.6);
        assert!(get("hedged p99") < get("retry p99") * 1.2);
    }
}
