//! F2 — Figure 2: the QoS-vs-cost Pareto curve.
//!
//! Static pool sizes sweep out the frontier (better wait ⇔ more idle
//! cluster-hours); the forecast-driven proactive policy lands inside it,
//! dominating static points — the "globally optimized" Pareto the paper
//! draws. Rows list each policy's `(mean wait, idle hours)` point and a
//! final dominance indicator.

use crate::Row;
use adas_infra::provision::{simulate_provisioning, DemandModel, PoolPolicy, ProvisionConfig};

/// Runs the experiment.
pub fn run() -> Vec<Row> {
    let demand = DemandModel::default();
    let config = ProvisionConfig::default();
    let mut rows = Vec::new();

    let mut static_points = Vec::new();
    for size in [0usize, 5, 10, 20, 30, 40, 60] {
        let report = simulate_provisioning(&demand, PoolPolicy::Static { size }, &config);
        rows.push(Row::measured_only(
            "F2",
            format!("static pool={size}: mean wait"),
            report.mean_wait,
            "seconds",
        ));
        rows.push(Row::measured_only(
            "F2",
            format!("static pool={size}: idle cost"),
            report.idle_cluster_hours,
            "cluster-hours",
        ));
        static_points.push(report);
    }

    let forecast = simulate_provisioning(&demand, PoolPolicy::Forecast { headroom: 1.2 }, &config);
    rows.push(Row::measured_only(
        "F2",
        "forecast: mean wait",
        forecast.mean_wait,
        "seconds",
    ));
    rows.push(Row::measured_only(
        "F2",
        "forecast: idle cost",
        forecast.idle_cluster_hours,
        "cluster-hours",
    ));
    rows.push(Row::measured_only(
        "F2",
        "forecast: warm fraction",
        forecast.warm_fraction,
        "fraction",
    ));

    // Dominance: some static point is beaten on *both* axes.
    let dominated = static_points.iter().any(|s| {
        s.mean_wait >= forecast.mean_wait && s.idle_cluster_hours > forecast.idle_cluster_hours
    });
    rows.push(Row::with_paper(
        "F2",
        "forecast dominates a static point (1 = yes)",
        1.0,
        f64::from(u8::from(dominated)),
        "bool",
    ));
    rows
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig2_forecast_dominates() {
        let rows = super::run();
        let dom = rows
            .iter()
            .find(|r| r.metric.contains("dominates"))
            .expect("dominance row");
        assert_eq!(dom.measured, 1.0);
        // The static frontier is monotone: larger pools → lower wait.
        let waits: Vec<f64> = rows
            .iter()
            .filter(|r| r.metric.starts_with("static") && r.metric.contains("wait"))
            .map(|r| r.measured)
            .collect();
        assert!(waits.windows(2).all(|w| w[1] <= w[0] + 1e-9));
    }
}
