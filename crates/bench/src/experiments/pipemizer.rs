//! C7 — Pipemizer pipeline optimization + Wing dependency-aware scheduling
//! (Sec 4.2, \[8, 14\]).
//!
//! Shape: pushing common subexpressions from consumers into their producer
//! cuts total pipeline work, and dependency-aware (critical-path) job
//! ordering cuts makespan against dependency-blind FIFO on a contended
//! cluster.

use crate::Row;
use adas_pipeline::{optimize_pipelines, schedule, PipelineGraph, Policy};
use adas_workload::catalog::Catalog;
use adas_workload::job::{Job, Trace};
use adas_workload::plan::{CmpOp, LogicalPlan, Predicate};
use adas_workload::{DatasetId, JobId, TemplateId};

/// Builds a trace of `n_pipelines` fan-out pipelines: one producer feeding
/// `consumers` jobs that all embed one shared subexpression.
pub fn pipeline_trace(n_pipelines: usize, consumers: usize) -> Trace {
    let mut jobs = Vec::new();
    let mut next_id = 0u64;
    for p in 0..n_pipelines {
        let ds = DatasetId(p as u64);
        let literal = 100 + (p as i64 % 6) * 90;
        jobs.push(Job {
            id: JobId(next_id),
            template: TemplateId(next_id),
            plan: LogicalPlan::scan("sessions")
                .filter(Predicate::single(2, CmpOp::Le, literal))
                .aggregate(vec![1]),
            submit_time: p as u64 * 2,
            inputs: vec![],
            outputs: vec![ds],
        });
        next_id += 1;
        let shared = LogicalPlan::join(
            LogicalPlan::scan("events").filter(Predicate::single(2, CmpOp::Le, literal)),
            LogicalPlan::scan("users"),
            0,
            0,
        );
        for c in 0..consumers {
            jobs.push(Job {
                id: JobId(next_id),
                template: TemplateId(next_id),
                plan: shared.clone().aggregate(vec![c % 3]),
                submit_time: p as u64 * 2 + 1,
                inputs: vec![ds],
                outputs: vec![],
            });
            next_id += 1;
        }
    }
    Trace::new(jobs)
}

/// Runs the experiment.
pub fn run() -> Vec<Row> {
    let catalog = Catalog::standard();
    let trace = pipeline_trace(30, 3);
    let graph = PipelineGraph::build(&trace);
    let stats = graph.stats(&trace);

    let (optimized_jobs, extended, push) =
        optimize_pipelines(&trace, &catalog).expect("optimization runs");

    // Scheduling: baseline trace, FIFO vs critical-path; then the optimized
    // trace under critical-path.
    let slots = 8;
    let speed = 5e6;
    let fifo = schedule(&trace, &catalog, slots, speed, Policy::Fifo).expect("schedules");
    let cp = schedule(&trace, &catalog, slots, speed, Policy::CriticalPath).expect("schedules");
    let optimized_trace = Trace::new(optimized_jobs);
    let optimized_cp = schedule(
        &optimized_trace,
        &extended,
        slots,
        speed,
        Policy::CriticalPath,
    )
    .expect("schedules");

    vec![
        Row::measured_only(
            "C7",
            "pipelines in trace",
            stats.pipeline_count as f64,
            "pipelines",
        ),
        Row::measured_only(
            "C7",
            "jobs in pipelines",
            stats.pipelined_fraction,
            "fraction",
        ),
        Row::measured_only(
            "C7",
            "subexpressions pushed",
            push.subexpressions_pushed as f64,
            "subexprs",
        ),
        Row::measured_only(
            "C7",
            "consumer rewrites",
            push.consumer_rewrites as f64,
            "rewrites",
        ),
        Row::measured_only(
            "C7",
            "pipeline work reduction",
            push.work_reduction,
            "fraction",
        ),
        Row::measured_only("C7", "FIFO makespan", fifo.makespan, "seconds"),
        Row::measured_only("C7", "critical-path makespan", cp.makespan, "seconds"),
        Row::measured_only(
            "C7",
            "dependency-aware scheduling gain",
            (fifo.makespan - cp.makespan) / fifo.makespan,
            "fraction",
        ),
        Row::measured_only(
            "C7",
            "optimized pipeline makespan",
            optimized_cp.makespan,
            "seconds",
        ),
        Row::measured_only(
            "C7",
            "end-to-end makespan reduction",
            (fifo.makespan - optimized_cp.makespan) / fifo.makespan,
            "fraction",
        ),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn c7_pipeline_optimization_pays_off() {
        let rows = super::run();
        let get = |m: &str| rows.iter().find(|r| r.metric == m).unwrap().measured;
        assert!(get("subexpressions pushed") >= 20.0);
        assert!(
            get("pipeline work reduction") > 0.2,
            "{}",
            get("pipeline work reduction")
        );
        assert!(get("end-to-end makespan reduction") > 0.1);
        assert!(get("critical-path makespan") <= get("FIFO makespan") + 1e-9);
    }
}
