//! C5 — Phoebe's checkpoint optimizer (Sec 4.2, \[52\]).
//!
//! Paper numbers: ">70%" hotspot temp-storage freed, "68% faster" restarts,
//! "minimal impact" on performance. The evaluation workload is a large
//! multi-branch DAG (hundreds of stages — the paper notes production jobs
//! reach thousands) with the stage predictor trained on smaller historical
//! runs.

use crate::Row;
use adas_checkpoint::{evaluate, plan_checkpoints, PhoebeConfig, StagePredictor};
use adas_engine::cost::CostModel;
use adas_engine::exec::{ClusterConfig, ExecReport, SimOptions, Simulator};
use adas_engine::physical::StageDag;
use adas_workload::catalog::Catalog;
use adas_workload::plan::{CmpOp, LogicalPlan, Predicate};

/// A wide multi-branch analytics job: `branches` join/filter pipelines fed
/// into a union-and-aggregate spine. `node ≈ 6 * branches` stages.
pub fn big_job(branches: usize, literal: i64) -> LogicalPlan {
    let tables = ["events", "sessions", "telemetry"];
    let branch = |i: usize| {
        let t = tables[i % tables.len()];
        LogicalPlan::join(
            LogicalPlan::scan(t).filter(Predicate::single(2, CmpOp::Le, literal + i as i64 * 7)),
            LogicalPlan::scan("users"),
            0,
            0,
        )
        .aggregate(vec![1])
    };
    let mut plan = branch(0);
    for i in 1..branches {
        plan = LogicalPlan::union(plan, branch(i));
    }
    plan.aggregate(vec![1])
}

/// Runs the experiment.
pub fn run() -> Vec<Row> {
    let catalog = Catalog::standard();
    let cost_model = CostModel::default();
    let cluster = ClusterConfig {
        machines: 32,
        ..Default::default()
    };
    let sim = Simulator::new(cluster).expect("valid cluster");

    // History: smaller jobs with varying literals.
    let history: Vec<(StageDag, ExecReport)> = [(8usize, 100i64), (10, 250), (12, 400), (8, 550)]
        .iter()
        .map(|&(b, v)| {
            let dag =
                StageDag::compile(&big_job(b, v), &catalog, &cost_model).expect("plan validates");
            let report = sim
                .run(&dag, &SimOptions::default())
                .expect("simulation succeeds");
            (dag, report)
        })
        .collect();
    let refs: Vec<(&StageDag, &ExecReport)> = history.iter().map(|(d, r)| (d, r)).collect();
    let predictor = StagePredictor::train(&refs).expect("enough stages");

    // Evaluation job: 40 branches ≈ 240 stages.
    let dag = StageDag::compile(&big_job(40, 320), &catalog, &cost_model).expect("plan validates");
    let forecast = predictor.forecast(&dag);
    let config = PhoebeConfig {
        max_cuts: 3,
        hotspot_threshold: 0.05,
        ..Default::default()
    };
    let plan = plan_checkpoints(&dag, &forecast, &config);
    let report = evaluate(&dag, &plan, cluster, 0.85).expect("simulation succeeds");

    vec![
        Row::measured_only("C5", "evaluation DAG stages", dag.len() as f64, "stages"),
        Row::measured_only(
            "C5",
            "stages checkpointed",
            plan.stages.len() as f64,
            "stages",
        ),
        Row::with_paper(
            "C5",
            "hotspot temp freed",
            0.70,
            report.hotspot_reduction,
            "fraction (paper: >0.70)",
        ),
        Row::with_paper(
            "C5",
            "restart speedup",
            0.68,
            report.restart_speedup,
            "fraction",
        ),
        Row::with_paper(
            "C5",
            "runtime slowdown (paper: minimal)",
            0.0,
            report.slowdown,
            "fraction",
        ),
        Row::measured_only(
            "C5",
            "baseline hotspot",
            report.baseline_hotspot / 1e9,
            "GB",
        ),
        Row::measured_only(
            "C5",
            "checkpointed hotspot",
            report.ckpt_hotspot / 1e9,
            "GB",
        ),
        Row::measured_only(
            "C5",
            "baseline recovery",
            report.baseline_recovery,
            "seconds",
        ),
        Row::measured_only(
            "C5",
            "checkpointed recovery",
            report.ckpt_recovery,
            "seconds",
        ),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn c5_phoebe_shape_holds() {
        let rows = super::run();
        let get = |m: &str| {
            rows.iter()
                .find(|r| r.metric.starts_with(m))
                .unwrap()
                .measured
        };
        assert!(get("evaluation DAG stages") >= 200.0);
        assert!(
            get("hotspot temp freed") > 0.5,
            "hotspot freed {}",
            get("hotspot temp freed")
        );
        assert!(
            get("restart speedup") > 0.4,
            "restart speedup {}",
            get("restart speedup")
        );
        assert!(get("runtime slowdown") < 0.1);
    }
}
