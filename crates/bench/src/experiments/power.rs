//! C15 — rack power capping (Sec 4.1, \[53\]).
//!
//! "Similar methods were used … to set power limits on Cosmos racks." The
//! fitted power model drives the cap allocator; model-driven caps serve
//! the full fleet demand that uniform caps throttle.

use crate::Row;
use adas_infra::power::{allocate_power, CapPolicy, PowerModel, PowerProfile, Rack};

/// Runs the experiment.
pub fn run() -> Vec<Row> {
    let profile = PowerProfile::standard();
    let model = PowerModel::fit(&profile.observe(500, 0.04, 91)).expect("fits");
    let racks = vec![
        Rack {
            machines: 24,
            expected_cpu: 0.92,
        },
        Rack {
            machines: 24,
            expected_cpu: 0.75,
        },
        Rack {
            machines: 24,
            expected_cpu: 0.45,
        },
        Rack {
            machines: 24,
            expected_cpu: 0.20,
        },
    ];
    // Budget sized to total true need + 2% headroom: feasible overall,
    // infeasible under an even split.
    let budget: f64 = racks
        .iter()
        .map(|r| r.machines as f64 * profile.draw(r.expected_cpu))
        .sum::<f64>()
        * 1.02;
    let uniform = allocate_power(&racks, &model, &profile, budget, CapPolicy::Uniform);
    let driven = allocate_power(&racks, &model, &profile, budget, CapPolicy::ModelDriven);
    vec![
        Row::measured_only("C15", "fitted idle watts", model.idle_watts, "watts"),
        Row::measured_only("C15", "fitted span watts", model.span_watts, "watts"),
        Row::measured_only("C15", "fleet power budget", budget / 1000.0, "kW"),
        Row::measured_only(
            "C15",
            "throttled racks (uniform caps)",
            uniform.throttled_racks as f64,
            "racks",
        ),
        Row::measured_only(
            "C15",
            "throttled racks (model caps)",
            driven.throttled_racks as f64,
            "racks",
        ),
        Row::measured_only(
            "C15",
            "demand served (uniform caps)",
            uniform.demand_served,
            "fraction",
        ),
        Row::measured_only(
            "C15",
            "demand served (model caps)",
            driven.demand_served,
            "fraction",
        ),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn c15_model_caps_serve_full_demand() {
        let rows = super::run();
        let get = |m: &str| rows.iter().find(|r| r.metric == m).unwrap().measured;
        assert!(get("throttled racks (uniform caps)") >= 1.0);
        assert_eq!(get("throttled racks (model caps)"), 0.0);
        assert!(get("demand served (model caps)") > get("demand served (uniform caps)"));
        assert!((get("demand served (model caps)") - 1.0).abs() < 1e-9);
    }
}
