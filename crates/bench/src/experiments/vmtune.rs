//! C14 — MLOS-style VM parameter tuning (Sec 4.1, \[9\]).
//!
//! "By using ML to predict the throughput and latency of benchmark
//! workloads on VMs with various kernel parameters, developed on MLOS, we
//! refined the parameters of the Azure VM that runs Redis workloads." The
//! surrogate-model loop must approach the exhaustive-search optimum with a
//! fraction of the benchmark runs, beating random search at equal budget.

use crate::Row;
use adas_infra::vmtune::{mlos_tune, random_tune, RedisBenchmark, VmConfig};

/// Runs the experiment.
pub fn run() -> Vec<Row> {
    let bench = RedisBenchmark::new(0.03, 7);
    let grid_size = VmConfig::grid().len();
    let mlos = mlos_tune(&bench, 10, 15, 21).expect("tuning succeeds");
    let random = random_tune(&bench, mlos.runs_spent, 21);
    vec![
        Row::measured_only(
            "C14",
            "configuration grid size",
            grid_size as f64,
            "configs",
        ),
        Row::measured_only(
            "C14",
            "benchmark runs spent (MLOS)",
            mlos.runs_spent as f64,
            "runs",
        ),
        Row::measured_only(
            "C14",
            "MLOS throughput vs oracle",
            mlos.fraction_of_oracle,
            "fraction",
        ),
        Row::measured_only(
            "C14",
            "random search vs oracle (equal budget)",
            random.fraction_of_oracle,
            "fraction",
        ),
        Row::measured_only(
            "C14",
            "run-budget saving vs exhaustive",
            1.0 - mlos.runs_spent as f64 / grid_size as f64,
            "fraction",
        ),
        Row::measured_only(
            "C14",
            "tuned backlog",
            mlos.best.backlog as f64,
            "connections",
        ),
        Row::measured_only(
            "C14",
            "tuned dirty ratio",
            mlos.best.dirty_ratio as f64,
            "percent",
        ),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn c14_mlos_is_sample_efficient() {
        let rows = super::run();
        let get = |m: &str| rows.iter().find(|r| r.metric == m).unwrap().measured;
        assert!(get("MLOS throughput vs oracle") > 0.95);
        assert!(get("run-budget saving vs exhaustive") > 0.7);
        assert!(
            get("MLOS throughput vs oracle")
                >= get("random search vs oracle (equal budget)") - 0.02
        );
    }
}
