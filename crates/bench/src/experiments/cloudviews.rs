//! C6 — CloudViews computation reuse (Sec 4.2, \[21\]).
//!
//! Paper numbers (Cosmos deployment): 34% cumulative-latency improvement,
//! 37% total-processing-time reduction. The replay trains a view catalog on
//! the first half of a shared-subexpression-heavy trace and replays the
//! second half with and without rewriting.

use crate::Row;
use adas_reuse::{replay, ReplayConfig};
use adas_workload::gen::{GeneratorConfig, WorkloadGenerator};

/// Runs the experiment.
pub fn run() -> Vec<Row> {
    let gen_config = GeneratorConfig {
        days: 10,
        jobs_per_day: 150,
        n_templates: 24,
        shared_template_fraction: 0.8,
        ..Default::default()
    };
    let workload = WorkloadGenerator::new(gen_config)
        .expect("valid config")
        .generate()
        .expect("generation succeeds");
    let report = replay(
        &workload.trace,
        &workload.catalog,
        &ReplayConfig {
            train_fraction: 0.3,
            ..Default::default()
        },
    )
    .expect("replay runs");
    vec![
        Row::measured_only(
            "C6",
            "views selected",
            report.views_selected as f64,
            "views",
        ),
        Row::measured_only("C6", "jobs evaluated", report.jobs_evaluated as f64, "jobs"),
        Row::measured_only(
            "C6",
            "jobs with a view hit",
            report.jobs_with_hits as f64 / report.jobs_evaluated.max(1) as f64,
            "fraction",
        ),
        Row::with_paper(
            "C6",
            "cumulative latency improvement",
            0.34,
            report.latency_improvement,
            "fraction",
        ),
        Row::with_paper(
            "C6",
            "total processing time reduction",
            0.37,
            report.cpu_reduction,
            "fraction",
        ),
        Row::measured_only(
            "C6",
            "mean hit-job latency improvement",
            report.mean_hit_latency_improvement,
            "fraction",
        ),
        Row::measured_only(
            "C6",
            "mean hit-job processing reduction",
            report.mean_hit_cpu_reduction,
            "fraction",
        ),
        Row::measured_only(
            "C6",
            "containment hits",
            report.containment_hits as f64,
            "hits",
        ),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn c6_reuse_pays_off() {
        let rows = super::run();
        let get = |m: &str| rows.iter().find(|r| r.metric == m).unwrap().measured;
        // ISSUE 2: view scans now expand to their defining plans inside
        // `TrueCardinality` (`Catalog::register_view`), making "true" costs
        // invariant under exact-match rewrites. The previous >0.1 cumulative
        // bound was an artifact of rewritten plans drawing *different*
        // correlation factors than their baselines; with invariant truth the
        // cumulative numbers are dominated by a few join-blowup jobs whose
        // subtrees views cannot cover (literals vary per instance). Assert
        // the honest properties instead: reuse still wins in the aggregate
        // net of materialization, and the per-job *mean* over hit jobs —
        // robust to the heavy tail — improves substantially.
        assert!(get("cumulative latency improvement") > 0.0);
        assert!(get("total processing time reduction") > 0.0);
        assert!(get("mean hit-job latency improvement") > 0.05);
        assert!(get("mean hit-job processing reduction") > 0.1);
        assert!(get("views selected") >= 1.0);
    }
}
