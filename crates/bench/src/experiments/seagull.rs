//! C9 — Seagull backup-window scheduling (Sec 4.3 / Insight 1, \[40\]).
//!
//! Paper numbers: the ML forecaster identifies low-load windows with 99%
//! accuracy; the previous-day heuristic reaches 96% on servers with stable
//! patterns — the flagship "simplicity rules" example.

use crate::Row;
use adas_service::seagull::{generate_fleet, schedule_fleet, BackupForecaster};

/// Runs the experiment.
pub fn run() -> Vec<Row> {
    // 500 servers, 4 weeks of history; mixture dominated by stable patterns
    // as the paper observes for PostgreSQL/MySQL fleets.
    let fleet = generate_fleet(500, 28, 0.6, 0.3, 77);
    let ml = schedule_fleet(&fleet, BackupForecaster::MlModel, 2, 0.25);
    let heuristic = schedule_fleet(&fleet, BackupForecaster::PreviousDay, 2, 0.25);

    // The heuristic on stable-pattern servers only (the paper's 96% claim
    // is scoped to "servers that follow a stable daily or a weekly pattern").
    let stable = generate_fleet(500, 28, 0.67, 0.33, 78);
    let heuristic_stable = schedule_fleet(&stable, BackupForecaster::PreviousDay, 2, 0.25);

    vec![
        Row::with_paper(
            "C9",
            "ML low-load window accuracy",
            0.99,
            ml.accuracy,
            "fraction",
        ),
        Row::measured_only(
            "C9",
            "ML mean chosen/optimal load ratio",
            ml.mean_load_ratio,
            "ratio",
        ),
        Row::measured_only(
            "C9",
            "previous-day heuristic accuracy (mixed fleet)",
            heuristic.accuracy,
            "fraction",
        ),
        Row::with_paper(
            "C9",
            "previous-day heuristic accuracy (stable servers)",
            0.96,
            heuristic_stable.accuracy,
            "fraction",
        ),
        Row::measured_only("C9", "servers scheduled", ml.servers as f64, "servers"),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn c9_seagull_shape_holds() {
        let rows = super::run();
        let get = |m: &str| rows.iter().find(|r| r.metric == m).unwrap().measured;
        assert!(get("ML low-load window accuracy") >= 0.97);
        assert!(get("previous-day heuristic accuracy (stable servers)") >= 0.93);
        // ML >= heuristic, matching the paper's ordering.
        assert!(
            get("ML low-load window accuracy")
                >= get("previous-day heuristic accuracy (mixed fleet)") - 0.01
        );
    }
}
