//! C2 — learned cardinality micromodels (Sec 4.2, \[49\]).
//!
//! The paper reports no single number ("more precise cardinalities"); the
//! reproduced shape is the one \[49\] documents: per-template micromodels cut
//! the median q-error by an order of magnitude on covered templates while
//! the default estimator serves the rest.

use crate::Row;
use adas_learned::cardinality::{LearnedCardinality, TrainConfig};
use adas_workload::gen::{GeneratorConfig, WorkloadGenerator};

/// Runs the experiment.
pub fn run() -> Vec<Row> {
    let config = GeneratorConfig {
        days: 10,
        jobs_per_day: 400,
        n_templates: 60,
        ..Default::default()
    };
    let workload = WorkloadGenerator::new(config)
        .expect("valid config")
        .generate()
        .expect("generation succeeds");
    let plans: Vec<_> = workload
        .trace
        .jobs()
        .iter()
        .map(|j| j.plan.clone())
        .collect();
    let (model, report) =
        LearnedCardinality::train(&workload.catalog, &plans, TrainConfig::default());
    vec![
        Row::measured_only(
            "C2",
            "templates seen",
            report.templates_seen as f64,
            "templates",
        ),
        Row::measured_only(
            "C2",
            "templates trained",
            report.templates_trained as f64,
            "templates",
        ),
        Row::measured_only(
            "C2",
            "micromodels kept after pruning",
            report.models_kept as f64,
            "models",
        ),
        Row::measured_only(
            "C2",
            "default median q-error",
            report.default_q_error,
            "q-error",
        ),
        Row::measured_only(
            "C2",
            "learned median q-error",
            report.learned_q_error,
            "q-error",
        ),
        Row::measured_only(
            "C2",
            "q-error improvement factor",
            report.default_q_error / report.learned_q_error.max(1.0),
            "x",
        ),
        Row::measured_only(
            "C2",
            "deployed model count",
            model.model_count() as f64,
            "models",
        ),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn c2_learned_beats_default() {
        let rows = super::run();
        let get = |m: &str| rows.iter().find(|r| r.metric == m).unwrap().measured;
        assert!(get("learned median q-error") < get("default median q-error"));
        assert!(get("micromodels kept after pruning") >= 1.0);
        assert!(get("q-error improvement factor") > 1.2);
    }
}
