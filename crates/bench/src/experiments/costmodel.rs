//! C3 — learned cost micromodels with the meta ensemble (Sec 4.2, \[46\]).
//!
//! Shape: micromodels are accurate but cover only recurring templates; the
//! meta ensemble extends coverage to everything via the corrected global
//! model, ending below the analytic default's error at 100% coverage.

use crate::Row;
use adas_learned::cost::{CostEnsemble, CostTrainConfig};
use adas_workload::gen::{GeneratorConfig, WorkloadGenerator};

/// Runs the experiment.
pub fn run() -> Vec<Row> {
    let config = GeneratorConfig {
        days: 10,
        jobs_per_day: 300,
        n_templates: 40,
        ..Default::default()
    };
    let workload = WorkloadGenerator::new(config)
        .expect("valid config")
        .generate()
        .expect("generation succeeds");
    let plans: Vec<_> = workload
        .trace
        .jobs()
        .iter()
        .map(|j| j.plan.clone())
        .collect();
    let (ensemble, report) =
        CostEnsemble::train(&workload.catalog, &plans, CostTrainConfig::default());
    vec![
        Row::measured_only(
            "C3",
            "micromodel coverage",
            report.micromodel_coverage,
            "fraction",
        ),
        Row::measured_only("C3", "default cost MAPE", report.default_mape, "mape"),
        Row::measured_only(
            "C3",
            "micromodels-only MAPE",
            report.micro_only_mape,
            "mape",
        ),
        Row::measured_only("C3", "meta-ensemble MAPE", report.ensemble_mape, "mape"),
        Row::measured_only(
            "C3",
            "micromodel count",
            ensemble.micromodel_count() as f64,
            "models",
        ),
        Row::measured_only(
            "C3",
            "ensemble coverage",
            1.0, // by construction: global fallback answers everything
            "fraction",
        ),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn c3_ensemble_improves_on_default() {
        let rows = super::run();
        let get = |m: &str| rows.iter().find(|r| r.metric == m).unwrap().measured;
        assert!(get("meta-ensemble MAPE") < get("default cost MAPE"));
        assert!(get("micromodel coverage") > 0.3);
        assert!(get("micromodel coverage") < 1.0);
    }
}
