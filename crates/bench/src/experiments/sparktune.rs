//! C11 — Spark configuration auto-tuning (Sec 4.3, \[45\]).
//!
//! Shape: the global model "serves as a reasonable starting point and is
//! fine-tuned for each application as more observational data becomes
//! available" — the global-start tuner converges faster than a cold start,
//! and both approach the oracle with iterations.

use crate::Row;
use adas_service::sparktune::{compare_starts, GlobalModel, SparkApp};

/// Runs the experiment.
pub fn run() -> Vec<Row> {
    let benchmarks = SparkApp::generate(80, 1);
    let model = GlobalModel::train(&benchmarks).expect("benchmark population is regular");
    let apps = SparkApp::generate(50, 2);

    let mut rows = Vec::new();
    for iters in [1usize, 3, 10, 30] {
        let report = compare_starts(&apps, &model, iters);
        rows.push(Row::measured_only(
            "C11",
            format!("cold-start regret @ {iters} runs"),
            report.cold_regret,
            "fraction over oracle",
        ));
        rows.push(Row::measured_only(
            "C11",
            format!("global-start regret @ {iters} runs"),
            report.global_regret,
            "fraction over oracle",
        ));
    }
    let untouched = compare_starts(&apps, &model, 1);
    rows.push(Row::measured_only(
        "C11",
        "global suggestion regret (no tuning)",
        untouched.global_start_regret,
        "fraction over oracle",
    ));
    rows.push(Row::measured_only(
        "C11",
        "applications tuned",
        apps.len() as f64,
        "apps",
    ));
    rows
}

#[cfg(test)]
mod tests {
    #[test]
    fn c11_global_start_converges_faster() {
        let rows = super::run();
        let get = |m: &str| rows.iter().find(|r| r.metric == m).unwrap().measured;
        // At a small run budget the global start wins.
        assert!(get("global-start regret @ 3 runs") <= get("cold-start regret @ 3 runs"));
        // Iterating reduces regret for both.
        assert!(get("cold-start regret @ 30 runs") <= get("cold-start regret @ 1 runs"));
        assert!(get("global-start regret @ 30 runs") < 0.3);
    }
}
