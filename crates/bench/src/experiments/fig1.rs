//! F1 — Figure 1: linear models predicting machine behaviour.
//!
//! The paper's figure plots CPU utilization vs running containers and task
//! execution time vs CPU, with fitted lines. We regenerate both fits per
//! SKU from 4 weeks of simulated fleet telemetry and report slopes,
//! intercepts and R². The paper prints no numbers on the figure; the
//! reproduced *shape* is "strongly linear" (R² near 1 under moderate
//! noise), with per-SKU slopes separating the hardware generations.

use crate::Row;
use adas_infra::behavior::fit_behavior_models;
use adas_infra::machine::{MachineFleet, SkuSpec};

/// Runs the experiment.
pub fn run() -> Vec<Row> {
    let fleet = MachineFleet::new(SkuSpec::standard_fleet(), 10);
    let telemetry = fleet.generate_telemetry(24 * 28, 0.08, 101);
    let models = fit_behavior_models(&telemetry).expect("telemetry is non-empty");
    let mut rows = Vec::new();
    for m in &models {
        let sku = &fleet.skus()[m.sku].name;
        rows.push(Row::measured_only(
            "F1",
            format!("{sku}: cpu-vs-containers slope"),
            m.cpu_vs_containers.slope,
            "cpu/container",
        ));
        rows.push(Row::measured_only(
            "F1",
            format!("{sku}: cpu-vs-containers R^2"),
            m.cpu_vs_containers.r_squared,
            "r2",
        ));
        rows.push(Row::measured_only(
            "F1",
            format!("{sku}: tasktime-vs-cpu slope"),
            m.task_time_vs_cpu.slope,
            "s/cpu",
        ));
        rows.push(Row::measured_only(
            "F1",
            format!("{sku}: tasktime-vs-cpu R^2"),
            m.task_time_vs_cpu.r_squared,
            "r2",
        ));
    }
    rows
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig1_models_are_strongly_linear() {
        let rows = super::run();
        assert_eq!(rows.len(), 8);
        for row in rows.iter().filter(|r| r.metric.contains("R^2")) {
            assert!(row.measured > 0.9, "{}: {}", row.metric, row.measured);
        }
    }
}
