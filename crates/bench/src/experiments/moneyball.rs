//! C8 — Moneyball: proactive serverless pause/resume (Sec 4.1, \[41\]).
//!
//! Paper number: "77% of Azure SQL Database Serverless usage is
//! predictable". The generator plants exactly that mixture; the classifier
//! must recover it from telemetry alone, and the proactive policy must cut
//! cold resumes versus reactive pausing at comparable cost.

use crate::Row;
use adas_service::moneyball::{generate_usage, simulate_policy, PausePolicy};

/// Runs the experiment.
pub fn run() -> Vec<Row> {
    let fleet = generate_usage(1000, 21, 0.77, 71);
    let always_on = simulate_policy(&fleet, PausePolicy::AlwaysOn);
    let reactive = simulate_policy(&fleet, PausePolicy::Reactive { idle_hours: 2 });
    let proactive = simulate_policy(
        &fleet,
        PausePolicy::Proactive {
            idle_hours: 2,
            threshold: 0.4,
        },
    );

    vec![
        Row::with_paper(
            "C8",
            "usage classified predictable",
            0.77,
            proactive.predictable_fraction,
            "fraction",
        ),
        Row::measured_only(
            "C8",
            "classifier accuracy",
            proactive.classifier_accuracy,
            "fraction",
        ),
        Row::measured_only(
            "C8",
            "always-on idle hours/db-day",
            always_on.idle_hours_per_db,
            "hours",
        ),
        Row::measured_only(
            "C8",
            "reactive cold resumes/db-day",
            reactive.cold_resumes_per_db,
            "resumes",
        ),
        Row::measured_only(
            "C8",
            "reactive idle hours/db-day",
            reactive.idle_hours_per_db,
            "hours",
        ),
        Row::measured_only(
            "C8",
            "proactive cold resumes/db-day",
            proactive.cold_resumes_per_db,
            "resumes",
        ),
        Row::measured_only(
            "C8",
            "proactive idle hours/db-day",
            proactive.idle_hours_per_db,
            "hours",
        ),
        Row::measured_only(
            "C8",
            "cold-resume reduction vs reactive",
            (reactive.cold_resumes_per_db - proactive.cold_resumes_per_db)
                / reactive.cold_resumes_per_db.max(1e-9),
            "fraction",
        ),
        Row::measured_only(
            "C8",
            "compute saved vs always-on",
            (always_on.idle_hours_per_db - proactive.idle_hours_per_db)
                / always_on.idle_hours_per_db.max(1e-9),
            "fraction",
        ),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn c8_moneyball_shape_holds() {
        let rows = super::run();
        let get = |m: &str| rows.iter().find(|r| r.metric == m).unwrap().measured;
        assert!((get("usage classified predictable") - 0.77).abs() < 0.06);
        assert!(get("cold-resume reduction vs reactive") > 0.3);
        assert!(get("compute saved vs always-on") > 0.3);
    }
}
