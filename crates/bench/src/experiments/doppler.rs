//! C10 — Doppler SKU recommendation (Sec 4.3, \[6\]).
//!
//! Paper number: "recommendation accuracy of over 95% by combining the
//! segment-wise knowledge with a per-customer price-performance curve".

use crate::Row;
use adas_service::doppler::{evaluate, generate_customers, standard_skus, Doppler};

/// Runs the experiment.
pub fn run() -> Vec<Row> {
    let train = generate_customers(1600, 8, 0.12, 3);
    let test = generate_customers(400, 8, 0.12, 4);
    let doppler = Doppler::train(&train, standard_skus(), 8, 7).expect("k <= population");
    let report = evaluate(&doppler, &test);
    vec![
        Row::with_paper(
            "C10",
            "Doppler recommendation accuracy",
            0.95,
            report.doppler_accuracy,
            "fraction (paper: >0.95)",
        ),
        Row::measured_only(
            "C10",
            "naive cheapest-covering accuracy",
            report.naive_accuracy,
            "fraction",
        ),
        Row::measured_only(
            "C10",
            "accuracy lift over naive",
            report.doppler_accuracy - report.naive_accuracy,
            "fraction",
        ),
        Row::measured_only(
            "C10",
            "customers evaluated",
            report.customers as f64,
            "customers",
        ),
        Row::measured_only("C10", "SKUs ranked", standard_skus().len() as f64, "skus"),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn c10_doppler_beats_paper_bar() {
        let rows = super::run();
        let get = |m: &str| rows.iter().find(|r| r.metric == m).unwrap().measured;
        assert!(get("Doppler recommendation accuracy") > 0.95);
        assert!(get("accuracy lift over naive") > 0.0);
    }
}
