//! C1 — the paper's SCOPE workload statistics.
//!
//! "over 60% of jobs are recurring", "nearly 40% of daily jobs share common
//! subexpressions with at least one other job", "70% of daily SCOPE jobs
//! have inter-job dependencies". The analyzer re-derives all three from a
//! generated 10k-job trace using plans and datasets alone (no generator
//! ground truth).

use crate::Row;
use adas_workload::analyze::WorkloadAnalysis;
use adas_workload::gen::{GeneratorConfig, WorkloadGenerator};

/// Runs the experiment.
pub fn run() -> Vec<Row> {
    let config = GeneratorConfig {
        days: 10,
        jobs_per_day: 1000,
        ..Default::default()
    };
    let workload = WorkloadGenerator::new(config)
        .expect("default-based config is valid")
        .generate()
        .expect("generation succeeds");
    let analysis = WorkloadAnalysis::analyze(&workload.trace);
    let stats = analysis.stats();
    vec![
        Row::with_paper(
            "C1",
            "recurring job fraction",
            0.60,
            stats.recurring_fraction,
            "fraction (paper: >0.60)",
        ),
        Row::with_paper(
            "C1",
            "jobs sharing a subexpression",
            0.40,
            stats.shared_subexpression_fraction,
            "fraction (paper: ~0.40)",
        ),
        Row::with_paper(
            "C1",
            "jobs with inter-job dependencies",
            0.70,
            stats.dependent_fraction,
            "fraction",
        ),
        Row::measured_only("C1", "total jobs", stats.total_jobs as f64, "jobs"),
        Row::measured_only(
            "C1",
            "distinct templates",
            stats.distinct_templates as f64,
            "templates",
        ),
        Row::measured_only(
            "C1",
            "recurring templates forecastable",
            analysis.forecast_next_day().len() as f64,
            "templates",
        ),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn c1_matches_paper_bands() {
        let rows = super::run();
        let get = |m: &str| rows.iter().find(|r| r.metric == m).unwrap().measured;
        assert!(get("recurring job fraction") > 0.60);
        assert!((get("jobs sharing a subexpression") - 0.40).abs() < 0.12);
        assert!((get("jobs with inter-job dependencies") - 0.70).abs() < 0.08);
    }
}
