//! C12 — KEA: model-driven scheduler configuration tuning (Sec 4.1, \[53\]).
//!
//! Shape: per-SKU container caps derived from the fitted behaviour models
//! remove the hotspot that a uniform cap creates on the weaker hardware
//! generation, balancing CPU across the fleet.

use crate::Row;
use adas_infra::behavior::fit_behavior_models;
use adas_infra::kea::{evaluate_caps, tune_caps};
use adas_infra::machine::{MachineFleet, SkuSpec};

/// Runs the experiment.
pub fn run() -> Vec<Row> {
    let fleet = MachineFleet::new(SkuSpec::standard_fleet(), 50);
    let telemetry = fleet.generate_telemetry(24 * 14, 0.06, 55);
    let models = fit_behavior_models(&telemetry).expect("telemetry non-empty");

    let demand = 2000usize;
    let uniform = vec![24usize, 24];
    let naive = evaluate_caps(&fleet, &uniform, demand);
    let caps = tune_caps(&models, &fleet, 0.75);
    let tuned = evaluate_caps(&fleet, &caps, demand);

    vec![
        Row::measured_only("C12", "machines", fleet.machine_count() as f64, "machines"),
        Row::measured_only(
            "C12",
            "demand placed (uniform)",
            naive.placed as f64,
            "containers",
        ),
        Row::measured_only(
            "C12",
            "demand placed (tuned)",
            tuned.placed as f64,
            "containers",
        ),
        Row::measured_only("C12", "gen3 tuned cap", caps[0] as f64, "containers"),
        Row::measured_only("C12", "gen4 tuned cap", caps[1] as f64, "containers"),
        Row::measured_only(
            "C12",
            "hotspot CPU (uniform caps)",
            naive.hotspot_cpu,
            "utilization",
        ),
        Row::measured_only(
            "C12",
            "hotspot CPU (tuned caps)",
            tuned.hotspot_cpu,
            "utilization",
        ),
        Row::measured_only(
            "C12",
            "CPU imbalance std (uniform)",
            naive.cpu_std,
            "utilization",
        ),
        Row::measured_only(
            "C12",
            "CPU imbalance std (tuned)",
            tuned.cpu_std,
            "utilization",
        ),
        Row::measured_only(
            "C12",
            "hotspot reduction",
            (naive.hotspot_cpu - tuned.hotspot_cpu) / naive.hotspot_cpu,
            "fraction",
        ),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn c12_tuned_caps_balance_load() {
        let rows = super::run();
        let get = |m: &str| rows.iter().find(|r| r.metric == m).unwrap().measured;
        assert_eq!(get("demand placed (uniform)"), get("demand placed (tuned)"));
        assert!(get("hotspot CPU (tuned caps)") < get("hotspot CPU (uniform caps)"));
        assert!(get("CPU imbalance std (tuned)") <= get("CPU imbalance std (uniform)"));
        assert!(get("gen3 tuned cap") < get("gen4 tuned cap"));
    }
}
