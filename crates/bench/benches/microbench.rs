//! Criterion micro-benchmarks for the performance-sensitive primitives:
//! the operations that sit on hot paths in a production deployment
//! (signature hashing at plan-compile time, view matching per query,
//! optimizer passes, bandit updates, forecaster fits, checkpoint planning,
//! and workload templatization).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use std::collections::HashSet;

use adas_checkpoint::{plan_checkpoints, PhoebeConfig, StagePredictor};
use adas_engine::cardinality::DefaultEstimator;
use adas_engine::cost::CostModel;
use adas_engine::exec::{ClusterConfig, SimOptions, Simulator};
use adas_engine::physical::StageDag;
use adas_engine::rules::{Optimizer, RuleSet};
use adas_faultsim::{ChaosRunner, FaultConfig, FaultInjector};
use adas_ml::bandit::{BanditPolicy, EpsilonGreedy, LinUcb};
use adas_ml::forecast::{HoltWinters, HwConfig, SeasonalNaive};
use adas_reuse::{rewrite_plan, MatchPolicy, SelectionConfig, ViewCatalog};
use adas_workload::analyze::WorkloadAnalysis;
use adas_workload::catalog::Catalog;
use adas_workload::gen::{GeneratorConfig, WorkloadGenerator};
use adas_workload::plan::{CmpOp, LogicalPlan, Predicate};
use adas_workload::signature::{strict_signature, template_signature};

fn deep_plan(depth: usize) -> LogicalPlan {
    let mut plan = LogicalPlan::join(
        LogicalPlan::scan("events").filter(Predicate::single(2, CmpOp::Le, 100)),
        LogicalPlan::scan("users"),
        0,
        0,
    );
    for i in 0..depth {
        plan = plan
            .filter(Predicate::single(1, CmpOp::Le, i as i64))
            .project(vec![0, 1]);
    }
    plan.aggregate(vec![1])
}

fn bench_signatures(c: &mut Criterion) {
    let mut group = c.benchmark_group("signature");
    for depth in [4usize, 16, 64] {
        let plan = deep_plan(depth);
        group.bench_with_input(BenchmarkId::new("strict", depth), &plan, |b, p| {
            b.iter(|| strict_signature(black_box(p)))
        });
        group.bench_with_input(BenchmarkId::new("template", depth), &plan, |b, p| {
            b.iter(|| template_signature(black_box(p)))
        });
    }
    group.finish();
}

fn bench_optimizer(c: &mut Criterion) {
    let catalog = Catalog::standard();
    let est = DefaultEstimator::new(&catalog);
    let optimizer = Optimizer::default();
    let plan = deep_plan(8);
    c.bench_function("optimizer/full_ruleset_pass", |b| {
        b.iter(|| {
            optimizer
                .optimize(black_box(&plan), RuleSet::all(), &est)
                .unwrap()
        })
    });
}

fn bench_view_matching(c: &mut Criterion) {
    let catalog = Catalog::standard();
    let shared = LogicalPlan::join(
        LogicalPlan::scan("events").filter(Predicate::single(1, CmpOp::Eq, 3)),
        LogicalPlan::scan("users"),
        0,
        0,
    );
    let training: Vec<LogicalPlan> = (0..64)
        .map(|i| shared.clone().aggregate(vec![i % 3]))
        .collect();
    let views = ViewCatalog::select(&training, &catalog, &SelectionConfig::default());
    let query = shared.aggregate(vec![0, 1]);
    c.bench_function("reuse/rewrite_full_policy", |b| {
        b.iter(|| rewrite_plan(black_box(&query), &views, MatchPolicy::full()))
    });
}

fn bench_bandits(c: &mut Criterion) {
    c.bench_function("bandit/epsilon_greedy_round", |b| {
        let mut policy = EpsilonGreedy::new(13, 0.2, 1).unwrap();
        b.iter(|| {
            let arm = policy.choose(&[]);
            policy.update(arm, &[], 1.0);
            arm
        })
    });
    c.bench_function("bandit/linucb_round_d8", |b| {
        let mut policy = LinUcb::new(13, 8, 0.5).unwrap();
        let ctx = [0.4; 8];
        b.iter(|| {
            let arm = policy.choose(&ctx);
            policy.update(arm, &ctx, 1.0);
            arm
        })
    });
}

fn bench_forecasters(c: &mut Criterion) {
    let values: Vec<f64> = (0..24 * 28)
        .map(|i| {
            if (8..18).contains(&(i % 24)) {
                10.0
            } else {
                2.0
            }
        })
        .collect();
    c.bench_function("forecast/seasonal_naive_fit", |b| {
        b.iter(|| SeasonalNaive::fit(black_box(&values), 24).unwrap())
    });
    c.bench_function("forecast/holt_winters_fit", |b| {
        b.iter(|| HoltWinters::fit(black_box(&values), 24, HwConfig::default()).unwrap())
    });
}

fn bench_checkpoint_planning(c: &mut Criterion) {
    let catalog = Catalog::standard();
    let cost_model = CostModel::default();
    let sim = Simulator::new(ClusterConfig::default()).unwrap();
    let mk = |v: i64| {
        let mut plan = LogicalPlan::join(
            LogicalPlan::scan("events").filter(Predicate::single(2, CmpOp::Le, v)),
            LogicalPlan::scan("users"),
            0,
            0,
        )
        .aggregate(vec![1]);
        for i in 0..8 {
            plan = LogicalPlan::union(
                plan,
                LogicalPlan::scan("sessions")
                    .filter(Predicate::single(2, CmpOp::Le, v + i))
                    .aggregate(vec![1]),
            );
        }
        plan
    };
    let history: Vec<(StageDag, _)> = [100i64, 300, 500]
        .iter()
        .map(|&v| {
            let dag = StageDag::compile(&mk(v), &catalog, &cost_model).unwrap();
            let report = sim.run(&dag, &SimOptions::default()).unwrap();
            (dag, report)
        })
        .collect();
    let refs: Vec<_> = history.iter().map(|(d, r)| (d, r)).collect();
    let predictor = StagePredictor::train(&refs).unwrap();
    let dag = StageDag::compile(&mk(400), &catalog, &cost_model).unwrap();
    let forecast = predictor.forecast(&dag);
    c.bench_function("checkpoint/plan_cuts", |b| {
        b.iter(|| plan_checkpoints(black_box(&dag), &forecast, &PhoebeConfig::default()))
    });
    c.bench_function("exec/simulate_dag", |b| {
        b.iter(|| sim.run(black_box(&dag), &SimOptions::default()).unwrap())
    });

    // Disabled-path fault injection: must track exec/simulate_dag within 5%.
    let runner = ChaosRunner::new(ClusterConfig::default(), f64::INFINITY).unwrap();
    let injector = FaultInjector::new(42, FaultConfig::disabled());
    let schedule = injector.schedule_for(0, ClusterConfig::default().machines);
    let no_checkpoints: HashSet<adas_engine::physical::StageId> = HashSet::new();
    c.bench_function("faultsim/chaos_run_disabled", |b| {
        b.iter(|| {
            runner
                .run_job(black_box(&dag), &no_checkpoints, &schedule)
                .unwrap()
        })
    });
}

fn bench_workload_analysis(c: &mut Criterion) {
    let workload = WorkloadGenerator::new(GeneratorConfig {
        days: 3,
        jobs_per_day: 200,
        ..Default::default()
    })
    .unwrap()
    .generate()
    .unwrap();
    c.bench_function("workload/analyze_600_jobs", |b| {
        b.iter(|| WorkloadAnalysis::analyze(black_box(&workload.trace)))
    });
}

criterion_group!(
    benches,
    bench_signatures,
    bench_optimizer,
    bench_view_matching,
    bench_bandits,
    bench_forecasters,
    bench_checkpoint_planning,
    bench_workload_analysis,
);
criterion_main!(benches);
