//! Model adapters: anything the gateway can serve.

use adas_ml::Regressor;

/// A model the gateway can serve: a pure function from a feature vector to a
/// scalar prediction.
///
/// Implementations must be pure (no interior mutability observable through
/// `predict`) — the gateway relies on this to keep batched inference on
/// worker threads deterministic.
pub trait ServableModel: Send + Sync {
    /// Predict a single feature row.
    fn predict(&self, features: &[f64]) -> f64;

    /// Predict a batch of rows. The default loops over [`Self::predict`];
    /// models with a cheaper vectorised path may override it, as long as the
    /// per-row results are bitwise identical to the scalar path.
    fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|row| self.predict(row)).collect()
    }
}

/// Serve any [`Regressor`] from the `ml` crate.
#[derive(Debug, Clone)]
pub struct RegressorModel<R>(pub R);

impl<R: Regressor + Send + Sync> ServableModel for RegressorModel<R> {
    fn predict(&self, features: &[f64]) -> f64 {
        self.0.predict(features)
    }

    fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        self.0.predict_batch(rows)
    }
}

/// Serve a closure — used for heuristics and for models whose inference is a
/// thin wrapper around existing crate logic (e.g. Seagull's window picker).
pub struct FnModel<F>(pub F);

impl<F: Fn(&[f64]) -> f64 + Send + Sync> ServableModel for FnModel<F> {
    fn predict(&self, features: &[f64]) -> f64 {
        (self.0)(features)
    }
}

/// Opaque identifier for a model registered with the gateway.
///
/// Handles are cheap to copy and remain valid for the lifetime of the
/// gateway; republishing a model version does not invalidate them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelHandle(pub(crate) usize);

impl ModelHandle {
    /// Stable integer id of this model within its gateway (also the `model`
    /// component of the prediction-cache key).
    pub fn index(self) -> usize {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adas_ml::dataset::Dataset;
    use adas_ml::linear::LinearRegression;

    #[test]
    fn regressor_adapter_matches_direct_call() {
        let data = Dataset::from_xy(&[(0.0, 1.0), (1.0, 3.0), (2.0, 5.0), (3.0, 7.0)]).unwrap();
        let lr = LinearRegression::fit(&data).unwrap();
        let direct = lr.predict(&[4.0]);
        let served = RegressorModel(lr).predict(&[4.0]);
        assert_eq!(direct.to_bits(), served.to_bits());
    }

    #[test]
    fn batch_default_matches_scalar() {
        let model = FnModel(|f: &[f64]| f.iter().sum::<f64>() * 2.0);
        let rows = vec![vec![1.0, 2.0], vec![0.5, 0.25]];
        let batched = model.predict_batch(&rows);
        for (row, got) in rows.iter().zip(&batched) {
            assert_eq!(model.predict(row).to_bits(), got.to_bits());
        }
    }
}
