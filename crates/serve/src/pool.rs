//! Bounded worker pool and batch result cells.
//!
//! The pool provides *physical* parallelism only: jobs submitted to it are
//! pure batched inference closures whose results land in a [`BatchPromise`].
//! All observable state mutation stays on the caller thread (see the crate
//! docs), so the pool affects wall-clock timing but never results. Uses
//! `std::sync::{Mutex, Condvar}` — the vendored `parking_lot` shim has no
//! condition variables.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

/// Fixed-size thread pool with a bounded job queue.
///
/// [`WorkerPool::submit`] blocks the producer while the queue is full — this
/// is the gateway's physical backpressure. Dropping the pool drains
/// outstanding jobs and joins every worker.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (min 1) behind a queue of `queue_capacity`
    /// jobs (min 1).
    pub fn new(workers: usize, queue_capacity: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: queue_capacity.max(1),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn serve worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job, blocking while the queue is at capacity
    /// (backpressure). Jobs submitted after shutdown are dropped.
    pub fn submit(&self, job: Job) {
        let mut state = self.shared.state.lock().expect("pool lock");
        while state.queue.len() >= self.shared.capacity && !state.shutdown {
            state = self.shared.not_full.wait(state).expect("pool lock");
        }
        if state.shutdown {
            return;
        }
        state.queue.push_back(job);
        drop(state);
        self.shared.not_empty.notify_one();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool lock");
            state.shutdown = true;
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool lock");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    shared.not_full.notify_one();
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared.not_empty.wait(state).expect("pool lock");
            }
        };
        job();
    }
}

/// One-shot cell a batched inference result is published into.
///
/// The worker calls [`BatchPromise::fill`] exactly once; callers block in
/// [`BatchPromise::get`] until the batch is ready. When the gateway runs
/// with zero workers the promise is filled inline before anyone waits.
pub struct BatchPromise {
    slot: Mutex<Option<Vec<f64>>>,
    ready: Condvar,
}

impl BatchPromise {
    /// Creates an unfilled promise.
    pub fn new() -> Self {
        Self {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    /// Publishes the batch results (first fill wins).
    pub fn fill(&self, values: Vec<f64>) {
        let mut slot = self.slot.lock().expect("promise lock");
        if slot.is_none() {
            *slot = Some(values);
        }
        drop(slot);
        self.ready.notify_all();
    }

    /// Blocks until the batch is filled, then returns row `index`.
    pub fn get(&self, index: usize) -> f64 {
        let mut slot = self.slot.lock().expect("promise lock");
        while slot.is_none() {
            slot = self.ready.wait(slot).expect("promise lock");
        }
        slot.as_ref().expect("filled")[index]
    }
}

impl Default for BatchPromise {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_runs_all_jobs() {
        let pool = WorkerPool::new(4, 8);
        let counter = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(BatchPromise::new());
        let total = 64;
        for i in 0..total {
            let counter = Arc::clone(&counter);
            let done = Arc::clone(&done);
            pool.submit(Box::new(move || {
                if counter.fetch_add(1, Ordering::SeqCst) + 1 == total {
                    done.fill(vec![i as f64]);
                }
            }));
        }
        done.get(0);
        assert_eq!(counter.load(Ordering::SeqCst), total);
    }

    #[test]
    fn promise_blocks_until_filled() {
        let promise = Arc::new(BatchPromise::new());
        let writer = Arc::clone(&promise);
        let handle = std::thread::spawn(move || writer.fill(vec![2.5, 7.5]));
        assert_eq!(promise.get(1), 7.5);
        handle.join().unwrap();
    }

    #[test]
    fn drop_joins_workers() {
        let pool = WorkerPool::new(2, 2);
        pool.submit(Box::new(|| {}));
        drop(pool); // must not hang
    }
}
