//! The autonomy controller: closes the feedback loop end to end.
//!
//! The paper's deployability thesis (Zhu et al., §3–4) is that a learned
//! component ships *because* drift detection, guarded serving, and
//! rollback are wired into one unattended cycle. The pieces have existed in
//! this repo for several PRs — `core::feedback::FeedbackLoop` detects
//! drift, the gateway guards and breaks, `ModelRegistry` rolls back — but
//! something still had to call `publish` and `rollback`. This module is
//! that something:
//!
//! ```text
//!            drift / guard trip / breaker streak
//!   Stable ────────────────────────────────────▶ retrain
//!     ▲                                            │ stage
//!     │ promote (promote_streak                    ▼
//!     │  healthy windows)                       Shadow ── 1 healthy window ──▶ Canary
//!     │                                            │                            │
//!     └────────────────────────────────────────────┴──── demote (demote_streak ─┘
//!                                                         unhealthy windows,
//!                                                         doubling restage backoff)
//! ```
//!
//! Hysteresis is the load-bearing part: promotion requires
//! `promote_streak` *consecutive* healthy evaluation windows of at least
//! `min_decisions` observations each, and any unhealthy window resets the
//! streak — so a flapping candidate (healthy window, poisoned window, …)
//! can never accumulate the streak, while a genuinely healthy one promotes
//! after a bounded delay. Every transition is recorded as a typed
//! deployment record with its triggering cause, and all state is driven by
//! simulated time and caller-order observations, so same-seed runs replay
//! byte-identical traces.

use crate::canary::DeployPhase;
use crate::gateway::{FallbackCause, Gateway, Prediction, Source};
use crate::model::{ModelHandle, ServableModel};
use crate::{BreakerState, Result};
use adas_core::feedback::{FeedbackLoop, LoopConfig, MonitorVerdict};
use adas_obs::{digest_f64, Obs, Provenance};
use adas_simkern::{Cooldown, CountWindow};
use serde::Serialize;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

const COMPONENT: &str = "serve.autonomy";

/// Canary/shadow evaluation policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CanaryConfig {
    /// Percentage of live traffic a canary-phase candidate serves (0–100).
    pub traffic_pct: u8,
    /// Stage candidates in shadow phase first; one healthy window advances
    /// them to canary. When false, candidates start directly in canary.
    pub shadow_first: bool,
    /// Minimum candidate observations per evaluation window. Promotion can
    /// never happen from fewer observed decisions than this.
    pub min_decisions: usize,
    /// Consecutive healthy windows required to promote (hysteresis).
    pub promote_streak: u32,
    /// Consecutive unhealthy windows required to demote.
    pub demote_streak: u32,
    /// A window is *healthy* when the candidate's mean absolute error is at
    /// most this factor times the baseline (primary's windowed error, floored
    /// by its deployment-time claim).
    pub promote_error_factor: f64,
    /// A window is *unhealthy* when the candidate's mean absolute error
    /// exceeds this factor times the baseline. Between the two factors the
    /// window is inconclusive: it resets the promote streak but does not
    /// count toward demotion.
    pub demote_error_factor: f64,
    /// Simulated ticks to wait after a demotion before staging the next
    /// candidate.
    pub restage_backoff_ticks: f64,
    /// Cap on the restage backoff (it doubles per consecutive demotion).
    pub max_restage_backoff_ticks: f64,
}

impl Default for CanaryConfig {
    fn default() -> Self {
        Self {
            traffic_pct: 20,
            shadow_first: true,
            min_decisions: 8,
            promote_streak: 2,
            demote_streak: 2,
            promote_error_factor: 1.1,
            demote_error_factor: 2.0,
            restage_backoff_ticks: 32.0,
            max_restage_backoff_ticks: 512.0,
        }
    }
}

/// Aggregate service-health input derived from SLO burn-rate analysis —
/// produced by `watchtower`'s SLO engine over flight-recorder windows (or
/// any other monitor) and fed to [`AutonomyController::ingest_health`].
///
/// A burn rate of 1.0 means the service is consuming its error budget
/// exactly as fast as the SLO allows; 10.0 means the budget burns ten
/// times too fast. The two windows implement the classic multi-window
/// alert: the *fast* window catches a fresh regression quickly, the
/// *slow* window keeps a short blip from triggering, and an action fires
/// only when both agree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct HealthSignal {
    /// Error-budget burn rate averaged over the short alert window.
    pub fast_burn: f64,
    /// Error-budget burn rate averaged over the long alert window.
    pub slow_burn: f64,
    /// Complete tumbling windows that informed the signal; signals below
    /// [`SloPolicy::min_windows`] are ignored as warm-up noise.
    pub windows: u32,
}

impl HealthSignal {
    /// The burn rate both alert windows agree on (their minimum) — the
    /// value [`SloPolicy`] thresholds are compared against.
    pub fn sustained_burn(&self) -> f64 {
        self.fast_burn.min(self.slow_burn)
    }
}

/// Maps SLO burn rates to autonomy actions: how hot the error budget must
/// burn before the controller rolls back or schedules a retrain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SloPolicy {
    /// Sustained burn at or above this rolls back the serving version (or
    /// demotes a staged candidate) with cause `slo_burn`.
    pub rollback_burn: f64,
    /// Sustained burn at or above this (but below `rollback_burn`)
    /// schedules a retrain with cause `slo_burn`.
    pub retrain_burn: f64,
    /// Minimum complete SLO windows before a signal is actionable.
    pub min_windows: u32,
    /// Simulated ticks to ignore further health signals after an
    /// SLO-triggered action — trailing windows still contain pre-action
    /// bad events, and acting on them again would thrash the registry.
    pub action_cooldown_ticks: f64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        Self {
            rollback_burn: 8.0,
            retrain_burn: 2.0,
            min_windows: 2,
            action_cooldown_ticks: 32.0,
        }
    }
}

/// Controller tuning for one supervised model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct AutonomyConfig {
    /// Drift monitor over primary-served observations.
    pub monitor: LoopConfig,
    /// Candidate evaluation policy.
    pub canary: CanaryConfig,
    /// SLO burn-rate thresholds for [`AutonomyController::ingest_health`].
    pub slo: SloPolicy,
    /// Consecutive poison-guard fallbacks that trigger an automatic
    /// rollback (or candidate demotion when one is staged).
    pub guarded_streak: u32,
    /// Consecutive observations with the breaker open that trigger an
    /// automatic rollback.
    pub breaker_open_streak: u32,
    /// Minimum simulated ticks between retrain attempts.
    pub retrain_cooldown_ticks: f64,
    /// Minimum buffered `(features, actual)` pairs before the retrainer is
    /// invoked.
    pub min_retrain_observations: usize,
}

impl Default for AutonomyConfig {
    fn default() -> Self {
        Self {
            monitor: LoopConfig::default(),
            canary: CanaryConfig::default(),
            slo: SloPolicy::default(),
            guarded_streak: 6,
            breaker_open_streak: 12,
            retrain_cooldown_ticks: 16.0,
            min_retrain_observations: 16,
        }
    }
}

/// One action the controller took autonomously, returned from
/// [`AutonomyController::observe`] so callers (and tests) can audit the
/// loop without reading the trace.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum AutonomyAction {
    /// Serving was rolled back to an earlier version.
    RolledBack {
        /// The new serving version (the redeployed earlier model).
        version: u64,
        /// What triggered it (`monitor_rollback`, `guard_trip_streak`,
        /// `breaker_open_streak`).
        cause: String,
    },
    /// A retrain was scheduled (drift detected, or recovery after an
    /// incident); the retrainer runs once enough observations accumulate
    /// and cooldowns elapse.
    RetrainScheduled {
        /// What triggered it.
        cause: String,
    },
    /// The retrainer produced a model and it was staged as a candidate.
    CandidateStaged {
        /// The candidate's provisional version.
        version: u64,
        /// Phase it was staged in.
        phase: DeployPhase,
    },
    /// A shadow-phase candidate advanced to canary traffic.
    CanaryStarted {
        /// The candidate's provisional version.
        version: u64,
    },
    /// The candidate passed evaluation and is now the serving version.
    Promoted {
        /// The deployed version.
        version: u64,
    },
    /// The candidate failed evaluation and was discarded.
    Demoted {
        /// The discarded candidate's provisional version.
        version: u64,
        /// What triggered it.
        cause: String,
    },
}

/// Produces a fresh model from recent `(features, actual)` observations,
/// with its claimed deployment error. `None` means "not enough signal yet"
/// — the retrain stays scheduled and is retried after the cooldown.
pub type Retrainer = Box<dyn FnMut(&[(Vec<f64>, f64)]) -> Option<(Arc<dyn ServableModel>, f64)>>;

/// Per-model supervision state.
struct Supervised {
    config: AutonomyConfig,
    retrainer: Retrainer,
    monitor: FeedbackLoop,
    /// Recent `(features, actual)` pairs, the retrainer's training set.
    history: VecDeque<(Vec<f64>, f64)>,
    /// Consecutive poison-guard fallbacks.
    guarded_streak: u32,
    /// Consecutive observations with the breaker open.
    breaker_open_streak: u32,
    /// A retrain is wanted but has not produced a staged candidate yet.
    retrain_pending: Option<String>,
    /// No retrain before this tick (cooldown / restage backoff).
    retrain_cooldown: Cooldown,
    /// Current restage backoff (doubles per consecutive demotion).
    restage_backoff: f64,
    /// Candidate absolute errors in the current tumbling window.
    cand_window: CountWindow,
    /// Primary absolute errors (bounded, for the evaluation baseline).
    prim_recent: VecDeque<f64>,
    /// Consecutive healthy candidate windows.
    healthy_windows: u32,
    /// Consecutive unhealthy candidate windows.
    unhealthy_windows: u32,
    /// Shadow samples drained from the gateway, awaiting their actuals.
    pending_shadow: VecDeque<(u64, f64)>,
    /// No SLO-triggered action before this tick (post-action cooldown,
    /// so trailing bad windows don't double-fire).
    slo_action_cooldown: Cooldown,
}

impl Supervised {
    fn new(config: AutonomyConfig, retrainer: Retrainer, obs: Obs) -> Self {
        Self {
            monitor: FeedbackLoop::with_obs(config.monitor, obs),
            retrainer,
            history: VecDeque::new(),
            guarded_streak: 0,
            breaker_open_streak: 0,
            retrain_pending: None,
            retrain_cooldown: Cooldown::ready_now(),
            restage_backoff: config.canary.restage_backoff_ticks,
            cand_window: CountWindow::new(),
            prim_recent: VecDeque::new(),
            healthy_windows: 0,
            unhealthy_windows: 0,
            pending_shadow: VecDeque::new(),
            slo_action_cooldown: Cooldown::ready_now(),
            config,
        }
    }

    /// Resets all serving-quality state after a deployment change — the new
    /// version starts with a clean slate.
    fn reset_after_swap(&mut self) {
        self.monitor.reset();
        self.guarded_streak = 0;
        self.breaker_open_streak = 0;
        self.cand_window.clear();
        self.prim_recent.clear();
        self.healthy_windows = 0;
        self.unhealthy_windows = 0;
        self.pending_shadow.clear();
    }

    fn history_cap(&self) -> usize {
        (2 * self.config.monitor.window).max(self.config.min_retrain_observations)
    }
}

/// Closes the loop for any set of gateway-served models: feed it every
/// `(request, prediction, actual)` triple and it drives drift-triggered
/// retrains, shadow/canary evaluation, hysteretic promotion, and automatic
/// rollbacks — no manual `publish`/`rollback` anywhere.
///
/// All decisions are pure functions of the observation sequence and
/// simulated time, so the whole loop replays byte-identically under one
/// seed.
pub struct AutonomyController {
    gateway: Gateway,
    obs: Obs,
    supervised: HashMap<usize, Supervised>,
}

impl AutonomyController {
    /// Creates a controller over `gateway`, recording its decisions into
    /// `obs`.
    pub fn new(gateway: Gateway, obs: Obs) -> Self {
        Self {
            gateway,
            obs,
            supervised: HashMap::new(),
        }
    }

    /// The supervised gateway.
    pub fn gateway(&self) -> &Gateway {
        &self.gateway
    }

    /// Streams the autonomy loop's flight record as chunked canonical JSON
    /// (see [`Obs::export_stream`]) — the full decision/deployment audit
    /// trail without ever materializing the whole export in memory.
    pub fn export_trace_stream(&self, chunk_size: usize, sink: impl FnMut(&str)) {
        self.obs.export_stream(chunk_size, sink);
    }

    /// Puts a model under supervision with `config`, using `retrainer` to
    /// produce replacement models when drift or incidents demand one.
    pub fn supervise(&mut self, handle: ModelHandle, config: AutonomyConfig, retrainer: Retrainer) {
        self.supervised.insert(
            handle.index(),
            Supervised::new(config, retrainer, self.obs.clone()),
        );
    }

    /// Bootstrap publish: installs the first version of a supervised model
    /// (cause `bootstrap`). Subsequent versions only arrive through the
    /// loop itself.
    pub fn install(
        &mut self,
        handle: ModelHandle,
        model: Arc<dyn ServableModel>,
        deployment_error: f64,
        sim_time: f64,
    ) -> Result<u64> {
        let version = self.gateway.publish_with_cause(
            handle,
            model,
            deployment_error,
            "bootstrap",
            sim_time,
        )?;
        if let Some(state) = self.supervised.get_mut(&handle.index()) {
            state.reset_after_swap();
        }
        Ok(version)
    }

    /// Feeds one observed outcome through the loop: the request's features,
    /// the prediction the gateway served, and the later-observed actual.
    /// Returns every autonomous action the observation triggered, in order.
    ///
    /// Must be called in request order (the same discipline the gateway's
    /// own determinism contract requires).
    pub fn observe(
        &mut self,
        handle: ModelHandle,
        features: &[f64],
        prediction: &Prediction,
        actual: f64,
        sim_time: f64,
    ) -> Result<Vec<AutonomyAction>> {
        let mut actions = Vec::new();
        if !self.supervised.contains_key(&handle.index()) {
            return Ok(actions);
        }
        let candidate = self.gateway.candidate_status(handle)?;
        let primary_version = self.gateway.current_version(handle)?.unwrap_or(0);
        let deployment_error = self
            .gateway
            .current_deployment_error(handle)?
            .unwrap_or(f64::INFINITY);
        let breaker_open = self.gateway.breaker_state(handle)? == BreakerState::Open;
        let shadow = self.gateway.drain_shadow(handle)?;
        let state = self
            .supervised
            .get_mut(&handle.index())
            .expect("checked above");

        // 1. Bookkeeping: training history, shadow sample pairing.
        state.history.push_back((features.to_vec(), actual));
        while state.history.len() > state.history_cap() {
            state.history.pop_front();
        }
        for s in shadow {
            if state.pending_shadow.len() >= 256 {
                state.pending_shadow.pop_front();
            }
            state.pending_shadow.push_back((s.features_digest, s.value));
        }

        // 2. Incident streaks: guard trips and breaker-open persistence.
        match prediction.source {
            Source::Fallback(FallbackCause::Guarded) => state.guarded_streak += 1,
            Source::Model => state.guarded_streak = 0,
            _ => {}
        }
        if breaker_open {
            state.breaker_open_streak += 1;
        } else {
            state.breaker_open_streak = 0;
        }
        let incident = if state.guarded_streak >= state.config.guarded_streak.max(1) {
            Some("guard_trip_streak")
        } else if state.breaker_open_streak >= state.config.breaker_open_streak.max(1) {
            Some("breaker_open_streak")
        } else {
            None
        };
        if let Some(cause) = incident {
            self.record_loop_decision(handle, prediction, Some(actual), cause, true, sim_time)?;
            if candidate.is_some() {
                let version = self.gateway.demote_candidate(handle, cause, sim_time)?;
                let state = self.state_mut(handle);
                state.schedule_demote_backoff(sim_time);
                state.retrain_pending = Some(cause.to_string());
                actions.push(AutonomyAction::Demoted {
                    version,
                    cause: cause.to_string(),
                });
            } else if let Some(version) =
                self.gateway.rollback_with_cause(handle, cause, sim_time)?
            {
                let state = self.state_mut(handle);
                state.reset_after_swap();
                state.retrain_pending = Some(cause.to_string());
                actions.push(AutonomyAction::RolledBack {
                    version,
                    cause: cause.to_string(),
                });
                actions.push(AutonomyAction::RetrainScheduled {
                    cause: cause.to_string(),
                });
                return Ok(actions); // fresh slate: nothing else to evaluate
            } else {
                // Nothing to roll back to — retraining is the only way out.
                let state = self.state_mut(handle);
                state.guarded_streak = 0;
                state.breaker_open_streak = 0;
                if state.retrain_pending.is_none() {
                    state.retrain_pending = Some(cause.to_string());
                    actions.push(AutonomyAction::RetrainScheduled {
                        cause: cause.to_string(),
                    });
                }
            }
        }

        // 3. Drift monitor over primary-served model-path outcomes. Stale
        // serves are excluded: a stale value is the fault channel's doing
        // and the breaker's job; counting it against the model would let
        // injected staleness thrash an otherwise healthy deployment.
        let candidate_version = candidate.map(|(v, _)| v);
        let model_path = matches!(prediction.source, Source::Model | Source::Cache);
        let served_by_candidate = model_path && Some(prediction.version) == candidate_version;
        if model_path && prediction.version == primary_version {
            let state = self.state_mut(handle);
            state
                .prim_recent
                .push_back((prediction.value - actual).abs());
            while state.prim_recent.len() > state.config.monitor.window.max(1) {
                state.prim_recent.pop_front();
            }
            match state
                .monitor
                .observe(prediction.value, actual, deployment_error)
            {
                MonitorVerdict::Rollback => {
                    let cause = "monitor_rollback";
                    self.record_loop_decision(
                        handle,
                        prediction,
                        Some(actual),
                        cause,
                        true,
                        sim_time,
                    )?;
                    if let Some(version) =
                        self.gateway.rollback_with_cause(handle, cause, sim_time)?
                    {
                        let state = self.state_mut(handle);
                        state.reset_after_swap();
                        state.retrain_pending = Some(cause.to_string());
                        actions.push(AutonomyAction::RolledBack {
                            version,
                            cause: cause.to_string(),
                        });
                        actions.push(AutonomyAction::RetrainScheduled {
                            cause: cause.to_string(),
                        });
                        return Ok(actions);
                    }
                    let state = self.state_mut(handle);
                    state.monitor.reset();
                    if state.retrain_pending.is_none() {
                        state.retrain_pending = Some(cause.to_string());
                        actions.push(AutonomyAction::RetrainScheduled {
                            cause: cause.to_string(),
                        });
                    }
                }
                MonitorVerdict::Retrain => {
                    let state = self.state_mut(handle);
                    if state.retrain_pending.is_none() && candidate_version.is_none() {
                        state.retrain_pending = Some("drift".to_string());
                        actions.push(AutonomyAction::RetrainScheduled {
                            cause: "drift".to_string(),
                        });
                    }
                }
                MonitorVerdict::Healthy | MonitorVerdict::Warming => {}
            }
        }

        // 4. Candidate evaluation on tumbling windows.
        if let Some((cand_version, phase)) = candidate {
            let state = self.state_mut(handle);
            if served_by_candidate {
                state.cand_window.push((prediction.value - actual).abs());
            } else if phase == DeployPhase::Shadow {
                // Pair the mirrored answer for this request by feature
                // digest, computed here because the serving path skips the
                // digest when the cache is off.
                let request_digest = digest_f64(features.iter().copied());
                if let Some(pos) = state
                    .pending_shadow
                    .iter()
                    .position(|&(digest, _)| digest == request_digest)
                {
                    let (_, value) = state.pending_shadow.remove(pos).expect("position exists");
                    state.cand_window.push((value - actual).abs());
                }
            }
            if state.cand_window.is_full(state.config.canary.min_decisions) {
                actions.extend(self.evaluate_candidate_window(
                    handle,
                    cand_version,
                    phase,
                    deployment_error,
                    sim_time,
                )?);
            }
        }

        // 5. Execute a pending retrain once cooldowns allow.
        actions.extend(self.maybe_retrain(handle, sim_time)?);
        Ok(actions)
    }

    /// Feeds an SLO burn-rate signal through the loop: sustained burn at or
    /// above [`SloPolicy::rollback_burn`] rolls back (or demotes a staged
    /// candidate), at or above [`SloPolicy::retrain_burn`] schedules a
    /// retrain — so the controller reacts to aggregate service health, not
    /// just raw guard/breaker streaks. Signals with fewer complete windows
    /// than [`SloPolicy::min_windows`], and signals arriving inside the
    /// post-action cooldown, are ignored.
    ///
    /// Like [`AutonomyController::observe`], calls must arrive in
    /// simulated-time order for replays to stay byte-identical.
    pub fn ingest_health(
        &mut self,
        handle: ModelHandle,
        signal: &HealthSignal,
        sim_time: f64,
    ) -> Result<Vec<AutonomyAction>> {
        let mut actions = Vec::new();
        let Some(state) = self.supervised.get_mut(&handle.index()) else {
            return Ok(actions);
        };
        let policy = state.config.slo;
        if signal.windows < policy.min_windows || !state.slo_action_cooldown.ready(sim_time) {
            return Ok(actions);
        }
        let burn = signal.sustained_burn();
        if burn < policy.retrain_burn {
            return Ok(actions);
        }
        let candidate = self.gateway.candidate_status(handle)?;
        let version = self.gateway.current_version(handle)?.unwrap_or(0);
        let cause = "slo_burn";
        if burn >= policy.rollback_burn {
            self.record_health_decision(handle, version, burn, cause, true, sim_time)?;
            if candidate.is_some() {
                let demoted = self.gateway.demote_candidate(handle, cause, sim_time)?;
                let state = self.state_mut(handle);
                state.schedule_demote_backoff(sim_time);
                state.retrain_pending = Some(cause.to_string());
                state
                    .slo_action_cooldown
                    .arm(sim_time, policy.action_cooldown_ticks);
                actions.push(AutonomyAction::Demoted {
                    version: demoted,
                    cause: cause.to_string(),
                });
            } else if let Some(landed) =
                self.gateway.rollback_with_cause(handle, cause, sim_time)?
            {
                let state = self.state_mut(handle);
                state.reset_after_swap();
                state.retrain_pending = Some(cause.to_string());
                state
                    .slo_action_cooldown
                    .arm(sim_time, policy.action_cooldown_ticks);
                actions.push(AutonomyAction::RolledBack {
                    version: landed,
                    cause: cause.to_string(),
                });
                actions.push(AutonomyAction::RetrainScheduled {
                    cause: cause.to_string(),
                });
                return Ok(actions); // fresh slate, same as a streak rollback
            } else {
                // Nothing to roll back to — retraining is the only way out.
                let state = self.state_mut(handle);
                state
                    .slo_action_cooldown
                    .arm(sim_time, policy.action_cooldown_ticks);
                if state.retrain_pending.is_none() {
                    state.retrain_pending = Some(cause.to_string());
                    actions.push(AutonomyAction::RetrainScheduled {
                        cause: cause.to_string(),
                    });
                }
            }
        } else {
            self.record_health_decision(handle, version, burn, cause, false, sim_time)?;
            let state = self.state_mut(handle);
            if state.retrain_pending.is_none() && candidate.is_none() {
                state.retrain_pending = Some(cause.to_string());
                state
                    .slo_action_cooldown
                    .arm(sim_time, policy.action_cooldown_ticks);
                actions.push(AutonomyAction::RetrainScheduled {
                    cause: cause.to_string(),
                });
            }
        }
        actions.extend(self.maybe_retrain(handle, sim_time)?);
        Ok(actions)
    }

    /// Records an SLO-burn incident decision: `predicted` carries the burn
    /// rate so the trace preserves how hot the budget was burning.
    fn record_health_decision(
        &self,
        handle: ModelHandle,
        version: u64,
        burn: f64,
        verdict: &str,
        vetoed: bool,
        sim_time: f64,
    ) -> Result<()> {
        let name = self.gateway.model_name(handle)?;
        self.obs.record_decision(
            COMPONENT,
            "autonomy_incident",
            &Provenance::new(&name, version, 0),
            burn,
            None,
            verdict,
            vetoed,
            0,
            sim_time,
        );
        Ok(())
    }

    /// Evaluates one full candidate window: healthy / unhealthy /
    /// inconclusive, hysteresis streaks, and the resulting phase change.
    fn evaluate_candidate_window(
        &mut self,
        handle: ModelHandle,
        cand_version: u64,
        phase: DeployPhase,
        deployment_error: f64,
        sim_time: f64,
    ) -> Result<Vec<AutonomyAction>> {
        let mut actions = Vec::new();
        let state = self.state_mut(handle);
        let cand_err = state
            .cand_window
            .drain_mean()
            .expect("window evaluated only when full");
        let prim_err = if state.prim_recent.is_empty() {
            deployment_error
        } else {
            state.prim_recent.iter().sum::<f64>() / state.prim_recent.len() as f64
        };
        let baseline = prim_err.max(deployment_error).max(1e-9);
        let healthy = cand_err <= state.config.canary.promote_error_factor * baseline;
        let unhealthy = cand_err > state.config.canary.demote_error_factor * baseline;
        let verdict = if healthy {
            state.healthy_windows += 1;
            state.unhealthy_windows = 0;
            "healthy"
        } else if unhealthy {
            state.unhealthy_windows += 1;
            state.healthy_windows = 0;
            "unhealthy"
        } else {
            state.healthy_windows = 0;
            "inconclusive"
        };
        let promote = healthy
            && phase == DeployPhase::Canary
            && state.healthy_windows >= state.config.canary.promote_streak.max(1);
        let advance = healthy && phase == DeployPhase::Shadow;
        let demote = state.unhealthy_windows >= state.config.canary.demote_streak.max(1);
        let name = self.gateway.model_name(handle)?;
        self.obs.record_decision(
            COMPONENT,
            "canary_outcome",
            &Provenance::new(&name, cand_version, 0),
            cand_err,
            Some(baseline),
            verdict,
            demote,
            0,
            sim_time,
        );
        if demote {
            let cause = "canary_unhealthy";
            let version = self.gateway.demote_candidate(handle, cause, sim_time)?;
            let state = self.state_mut(handle);
            state.schedule_demote_backoff(sim_time);
            state.retrain_pending = Some(cause.to_string());
            state.healthy_windows = 0;
            state.unhealthy_windows = 0;
            actions.push(AutonomyAction::Demoted {
                version,
                cause: cause.to_string(),
            });
        } else if promote {
            // Deploy with the *worse* of measured and claimed error: an
            // exact-fit candidate measuring ~0 would otherwise hand the
            // monitor a baseline so tight that any later noise reads as a
            // rollback-grade regression.
            let claimed = self
                .gateway
                .candidate_deployment_error(handle)?
                .unwrap_or(cand_err);
            let version = self.gateway.promote_candidate(
                handle,
                cand_err.max(claimed),
                "canary_healthy",
                sim_time,
            )?;
            let state = self.state_mut(handle);
            state.reset_after_swap();
            state.restage_backoff = state.config.canary.restage_backoff_ticks;
            actions.push(AutonomyAction::Promoted { version });
        } else if advance {
            let pct = self.state_mut(handle).config.canary.traffic_pct;
            let version =
                self.gateway
                    .advance_candidate(handle, pct, "shadow_healthy", sim_time)?;
            let state = self.state_mut(handle);
            state.healthy_windows = 0; // canary phase earns its own streak
            actions.push(AutonomyAction::CanaryStarted { version });
        }
        Ok(actions)
    }

    /// Runs the retrainer when a retrain is pending, no candidate is
    /// staged, and the cooldown/backoff clock allows it.
    fn maybe_retrain(&mut self, handle: ModelHandle, sim_time: f64) -> Result<Vec<AutonomyAction>> {
        let mut actions = Vec::new();
        if self.gateway.candidate_status(handle)?.is_some() {
            return Ok(actions);
        }
        let state = self.state_mut(handle);
        let Some(cause) = state.retrain_pending.clone() else {
            return Ok(actions);
        };
        if !state.retrain_cooldown.ready(sim_time)
            || state.history.len() < state.config.min_retrain_observations.max(1)
        {
            return Ok(actions);
        }
        state.history.make_contiguous();
        let trained = (state.retrainer)(state.history.as_slices().0);
        state
            .retrain_cooldown
            .arm(sim_time, state.config.retrain_cooldown_ticks);
        let Some((model, claimed_error)) = trained else {
            return Ok(actions); // retry after the cooldown
        };
        let (phase, pct) = if state.config.canary.shadow_first {
            (DeployPhase::Shadow, 0)
        } else {
            (DeployPhase::Canary, state.config.canary.traffic_pct)
        };
        let stage_cause = format!("retrain:{cause}");
        let version = self.gateway.stage_candidate(
            handle,
            model,
            claimed_error,
            phase,
            pct,
            &stage_cause,
            sim_time,
        )?;
        let state = self.state_mut(handle);
        state.retrain_pending = None;
        state.cand_window.clear();
        state.pending_shadow.clear();
        state.healthy_windows = 0;
        state.unhealthy_windows = 0;
        actions.push(AutonomyAction::CandidateStaged { version, phase });
        Ok(actions)
    }

    fn state_mut(&mut self, handle: ModelHandle) -> &mut Supervised {
        self.supervised
            .get_mut(&handle.index())
            .expect("handle is supervised")
    }

    /// Records a loop-level decision (incident or rollback trigger) into
    /// the flight recorder.
    fn record_loop_decision(
        &self,
        handle: ModelHandle,
        prediction: &Prediction,
        observed: Option<f64>,
        verdict: &str,
        vetoed: bool,
        sim_time: f64,
    ) -> Result<()> {
        let name = self.gateway.model_name(handle)?;
        self.obs.record_decision(
            COMPONENT,
            "autonomy_incident",
            &Provenance::new(&name, prediction.version, prediction.features_digest),
            prediction.value,
            observed,
            verdict,
            vetoed,
            0,
            sim_time,
        );
        Ok(())
    }
}

impl Supervised {
    /// After a demotion: push the next restage out by the current backoff,
    /// then double it (capped).
    fn schedule_demote_backoff(&mut self, sim_time: f64) {
        self.retrain_cooldown.arm(sim_time, self.restage_backoff);
        self.restage_backoff = (self.restage_backoff * 2.0).min(
            self.config
                .canary
                .max_restage_backoff_ticks
                .max(self.config.canary.restage_backoff_ticks),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gateway::{GatewayConfig, PoisonScope};
    use crate::model::FnModel;
    use adas_faultsim::ModelFaults;
    use adas_obs::DeploymentKind;

    fn loop_config() -> AutonomyConfig {
        AutonomyConfig {
            monitor: LoopConfig {
                window: 10,
                retrain_factor: 1.5,
                rollback_factor: 8.0,
            },
            canary: CanaryConfig {
                traffic_pct: 50,
                shadow_first: true,
                min_decisions: 5,
                promote_streak: 2,
                demote_streak: 2,
                promote_error_factor: 1.2,
                demote_error_factor: 2.0,
                restage_backoff_ticks: 8.0,
                max_restage_backoff_ticks: 64.0,
            },
            slo: SloPolicy::default(),
            guarded_streak: 3,
            breaker_open_streak: 8,
            retrain_cooldown_ticks: 4.0,
            min_retrain_observations: 10,
        }
    }

    /// Fits a scalar `a` (actual = a * features[0]) from the history — the
    /// simplest honest retrainer.
    fn scalar_retrainer() -> Retrainer {
        Box::new(|history: &[(Vec<f64>, f64)]| {
            let (num, den) = history
                .iter()
                .fold((0.0, 0.0), |(n, d), (f, y)| (n + f[0] * y, d + f[0] * f[0]));
            let a = num / den.max(1e-12);
            Some((
                Arc::new(FnModel(move |f: &[f64]| a * f[0])) as Arc<dyn ServableModel>,
                0.01,
            ))
        })
    }

    fn controller() -> (AutonomyController, ModelHandle, Obs) {
        let obs = Obs::recording();
        let mut config = GatewayConfig::standard();
        config.cache_capacity = 0;
        let gateway = Gateway::with_obs(config, obs.clone());
        let handle = gateway.register("m", |f: &[f64]| f[0]);
        let ctl = AutonomyController::new(gateway, obs.clone());
        (ctl, handle, obs)
    }

    #[test]
    fn drift_retrains_shadows_canaries_and_promotes() {
        let (mut ctl, handle, obs) = controller();
        ctl.supervise(handle, loop_config(), scalar_retrainer());
        ctl.install(handle, Arc::new(FnModel(|f: &[f64]| 1.05 * f[0])), 0.2, 0.0)
            .unwrap();
        // The world has drifted: actual = 1.3 * f[0]. v1's error ≈ 0.25·f[0],
        // above retrain_factor · 0.2 for the larger features.
        let mut all = Vec::new();
        for t in 0..400u64 {
            let sim_time = t as f64;
            let features = [1.0 + (t % 5) as f64 * 2.0];
            let p = ctl.gateway().predict(handle, &features, sim_time).unwrap();
            let actual = 1.3 * features[0];
            all.extend(
                ctl.observe(handle, &features, &p, actual, sim_time)
                    .unwrap(),
            );
        }
        let promoted = all
            .iter()
            .any(|a| matches!(a, AutonomyAction::Promoted { .. }));
        assert!(
            all.iter()
                .any(|a| matches!(a, AutonomyAction::RetrainScheduled { .. })),
            "drift must schedule a retrain: {all:?}"
        );
        assert!(promoted, "healthy candidate must promote: {all:?}");
        // The promoted model actually fixed the drift.
        let p = ctl.gateway().predict(handle, &[4.0], 1000.0).unwrap();
        assert!((p.value - 5.2).abs() < 0.05, "got {}", p.value);
        // Full lifecycle appears in the typed deployment trace, and nothing
        // after the bootstrap publish is manual.
        let trace = obs.snapshot();
        let kinds: Vec<DeploymentKind> = trace.deployments.iter().map(|d| d.kind).collect();
        assert!(kinds.contains(&DeploymentKind::ShadowStart));
        assert!(kinds.contains(&DeploymentKind::CanaryStart));
        assert!(kinds.contains(&DeploymentKind::Promote));
        assert!(trace.deployments.iter().all(|d| d.cause != "manual"));
    }

    #[test]
    fn bad_candidate_demotes_with_backoff_and_never_promotes() {
        let (mut ctl, handle, _obs) = controller();
        let mut config = loop_config();
        config.canary.shadow_first = false; // straight to canary: harsher
        ctl.supervise(
            handle,
            config,
            // A retrainer that keeps producing a terrible model.
            Box::new(|_: &[(Vec<f64>, f64)]| {
                Some((
                    Arc::new(FnModel(|f: &[f64]| 40.0 * f[0])) as Arc<dyn ServableModel>,
                    0.01,
                ))
            }),
        );
        ctl.install(handle, Arc::new(FnModel(|f: &[f64]| 1.05 * f[0])), 0.2, 0.0)
            .unwrap();
        let mut all = Vec::new();
        for t in 0..600u64 {
            let sim_time = t as f64;
            let features = [1.0 + (t % 5) as f64 * 2.0];
            let p = ctl.gateway().predict(handle, &features, sim_time).unwrap();
            let actual = 1.3 * features[0]; // drifted ⇒ retrains keep firing
            all.extend(
                ctl.observe(handle, &features, &p, actual, sim_time)
                    .unwrap(),
            );
        }
        assert!(
            !all.iter()
                .any(|a| matches!(a, AutonomyAction::Promoted { .. })),
            "a bad candidate must never promote: {all:?}"
        );
        let demotions = all
            .iter()
            .filter(|a| matches!(a, AutonomyAction::Demoted { .. }))
            .count();
        assert!(demotions >= 2, "bad candidates demote repeatedly: {all:?}");
        // Doubling backoff: consecutive demotions spread further apart, so
        // over 600 ticks the count stays small.
        assert!(
            demotions <= 10,
            "restage backoff must throttle: {demotions}"
        );
        assert_eq!(
            ctl.gateway().current_version(handle).unwrap(),
            Some(1),
            "primary never changed"
        );
    }

    #[test]
    fn slo_burn_signal_rolls_back_and_schedules_retrain() {
        let (mut ctl, handle, obs) = controller();
        ctl.supervise(handle, loop_config(), scalar_retrainer());
        ctl.install(handle, Arc::new(FnModel(|f: &[f64]| f[0])), 0.05, 0.0)
            .unwrap();
        ctl.install(handle, Arc::new(FnModel(|f: &[f64]| f[0])), 0.06, 1.0)
            .unwrap();
        // Warm-up: below min_windows the signal is ignored however hot.
        let warmup = HealthSignal {
            fast_burn: 100.0,
            slow_burn: 100.0,
            windows: 1,
        };
        assert!(ctl.ingest_health(handle, &warmup, 2.0).unwrap().is_empty());
        // Healthy burn is ignored.
        let ok = HealthSignal {
            fast_burn: 0.5,
            slow_burn: 0.4,
            windows: 5,
        };
        assert!(ctl.ingest_health(handle, &ok, 3.0).unwrap().is_empty());
        // A fast-only spike is not sustained: the slow window vetoes it.
        let spike = HealthSignal {
            fast_burn: 50.0,
            slow_burn: 0.2,
            windows: 5,
        };
        assert!(ctl.ingest_health(handle, &spike, 3.5).unwrap().is_empty());
        // Sustained burn over the rollback line rolls back with slo_burn.
        let hot = HealthSignal {
            fast_burn: 20.0,
            slow_burn: 12.0,
            windows: 5,
        };
        let acts = ctl.ingest_health(handle, &hot, 4.0).unwrap();
        assert!(
            acts.iter().any(|a| matches!(
                a,
                AutonomyAction::RolledBack { cause, .. } if cause == "slo_burn"
            )),
            "sustained burn must roll back: {acts:?}"
        );
        assert!(acts
            .iter()
            .any(|a| matches!(a, AutonomyAction::RetrainScheduled { .. })));
        // Post-action cooldown mutes the trailing hot windows.
        assert!(ctl.ingest_health(handle, &hot, 5.0).unwrap().is_empty());
        let trace = obs.snapshot();
        let rb = trace
            .deployments
            .iter()
            .find(|d| d.kind == DeploymentKind::Rollback)
            .expect("typed rollback record");
        assert_eq!(rb.cause, "slo_burn");
    }

    #[test]
    fn guard_trip_streak_rolls_back_automatically() {
        let obs = Obs::recording();
        let mut config = GatewayConfig::standard();
        config.cache_capacity = 0;
        config.breaker.guard_factor = 1.5;
        let gateway = Gateway::with_obs(config, obs.clone());
        let handle = gateway.register("m", |f: &[f64]| f[0]);
        let mut ctl = AutonomyController::new(gateway, obs.clone());
        ctl.supervise(handle, loop_config(), scalar_retrainer());
        ctl.install(handle, Arc::new(FnModel(|f: &[f64]| f[0])), 0.05, 0.0)
            .unwrap();
        let v2 = ctl
            .install(handle, Arc::new(FnModel(|f: &[f64]| f[0])), 0.06, 1.0)
            .unwrap();
        assert_eq!(v2, 2);
        // Poison only v2: the guard trips on every request.
        ctl.gateway()
            .inject_faults(handle, ModelFaults::new(7, 0.0, 0.0, 4.0))
            .unwrap();
        ctl.gateway()
            .set_poison_scope(handle, PoisonScope::Version(2))
            .unwrap();
        let mut rolled = None;
        for t in 0..20u64 {
            let sim_time = 2.0 + t as f64;
            let p = ctl.gateway().predict(handle, &[3.0], sim_time).unwrap();
            let acts = ctl.observe(handle, &[3.0], &p, 3.0, sim_time).unwrap();
            if let Some(AutonomyAction::RolledBack { version, cause }) = acts
                .iter()
                .find(|a| matches!(a, AutonomyAction::RolledBack { .. }))
            {
                rolled = Some((*version, cause.clone()));
                break;
            }
        }
        let (version, cause) = rolled.expect("guard streak must trigger rollback");
        assert_eq!(version, 3, "v1 redeployed as v3");
        assert_eq!(cause, "guard_trip_streak");
        // The redeployed artifact is v1's (unpoisoned): serving heals.
        let p = ctl.gateway().predict(handle, &[3.0], 50.0).unwrap();
        assert_eq!(p.value, 3.0);
        assert_eq!(p.source, Source::Model);
        let trace = obs.snapshot();
        let rb = trace
            .deployments
            .iter()
            .find(|d| d.kind == DeploymentKind::Rollback)
            .expect("typed rollback record");
        assert_eq!(rb.cause, "guard_trip_streak");
    }
}
