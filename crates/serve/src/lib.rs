//! Concurrent model-serving gateway for the autonomy loop.
//!
//! The paper's model hierarchy (Zhu et al., SIGMOD 2023, §4) only works in
//! production because every learned model sits behind shared serving
//! machinery: versioned deployment, bounded inference latency, and automatic
//! fallback to engine defaults when a model misbehaves. This crate is that
//! layer for the reproduction — a [`Gateway`] that fronts every learned
//! model and owns:
//!
//! * a **worker pool** (std threads only) with a bounded request queue and
//!   admission control / backpressure,
//! * **micro-batching**: requests for the same `(model, version)` are
//!   coalesced into batched inference calls with a deterministic flush
//!   policy (batch size or simulated-time deadline), so same-seed runs stay
//!   byte-identical regardless of thread scheduling,
//! * a **sharded prediction cache** keyed by
//!   `(model id, version, feature digest)` with LRU eviction and hit/miss
//!   counters in `obs`,
//! * **per-model circuit breakers** driven by `faultsim`'s model
//!   timeout/staleness/poisoning channels: after N consecutive failures the
//!   breaker opens and the gateway serves the registered heuristic fallback
//!   (the engine's default estimate) while recording a degraded-mode
//!   `DecisionRecord`, closing again via half-open probes,
//! * **versioned hot-swap**: publishing through `core`'s `ModelRegistry`
//!   atomically swaps the serving snapshot under concurrent readers, with no
//!   lock held during inference.
//!
//! # Determinism
//!
//! Worker threads compute *pure* batched predictions only. Every piece of
//! mutable state — fault-channel RNG draws, breaker transitions, cache
//! fills, obs records — is touched on the **caller** thread in request
//! order. Same seed, same requests ⇒ byte-identical trace, at any worker
//! count.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod autonomy;
mod breaker;
mod cache;
mod canary;
mod gateway;
mod model;
mod pool;

pub use autonomy::{
    AutonomyAction, AutonomyConfig, AutonomyController, CanaryConfig, HealthSignal, Retrainer,
    SloPolicy,
};
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker, Transition};
pub use cache::{CacheKey, PredictionCache};
pub use canary::{DeployPhase, ShadowSample};
pub use gateway::{
    FallbackCause, Gateway, GatewayConfig, GatewayStats, PoisonScope, Prediction, Request,
    ServingSnapshot, Source,
};
pub use model::{FnModel, ModelHandle, RegressorModel, ServableModel};
pub use pool::{BatchPromise, WorkerPool};

use std::fmt;

/// Errors surfaced by the serving layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A [`ModelHandle`] did not resolve to a registered model.
    UnknownModel(String),
    /// A candidate operation (advance/promote/demote) found no staged
    /// candidate for the named model.
    NoCandidate(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownModel(which) => write!(f, "unknown model: {which}"),
            ServeError::NoCandidate(which) => {
                write!(f, "no staged candidate for model: {which}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Convenience alias for serving-layer results.
pub type Result<T> = std::result::Result<T, ServeError>;
