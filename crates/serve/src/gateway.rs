//! The gateway: one front door for every learned model.

use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker, Transition};
use crate::cache::{CacheKey, PredictionCache};
use crate::canary::{DeployPhase, ShadowSample};
use crate::model::{ModelHandle, ServableModel};
use crate::pool::{BatchPromise, WorkerPool};
use crate::{Result, ServeError};
use adas_core::feedback::ModelRegistry;
use adas_faultsim::{ModelFaults, Served};
use adas_obs::{digest_f64, DeploymentKind, Obs, Provenance};
use parking_lot::{Mutex, RwLock};
use serde::Serialize;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

const COMPONENT: &str = "serve.gateway";

/// Bounded length of each model's shadow-sample log; the oldest samples are
/// dropped first once a slow consumer lets it fill up.
const SHADOW_LOG_CAP: usize = 256;

/// Gateway tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct GatewayConfig {
    /// Worker threads for batched inference. `0` runs inference inline on
    /// the caller thread (results are identical either way).
    pub workers: usize,
    /// Bounded job-queue depth behind the worker pool; producers block when
    /// it is full (physical backpressure, affects timing only).
    pub queue_capacity: usize,
    /// Micro-batch flush size: a batch is dispatched as soon as it holds
    /// this many rows. `1` disables coalescing.
    pub batch_size: usize,
    /// Micro-batch flush deadline in simulated ticks: when a newly arriving
    /// request observes an open batch older than this, the batch is flushed
    /// first. `f64::INFINITY` disables deadline flushes.
    pub batch_deadline_ticks: f64,
    /// Total prediction-cache entries across all shards. `0` disables the
    /// cache.
    pub cache_capacity: usize,
    /// Prediction-cache shard count.
    pub cache_shards: usize,
    /// Admission control: at most this many rows may be logically in flight
    /// within one [`Gateway::predict_many`] call; excess requests are shed
    /// to the heuristic fallback deterministically.
    pub max_in_flight: usize,
    /// Per-model circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Use the pre-simkern O(open groups) deadline scan instead of the
    /// timer wheel. Flushes are identical either way (the equivalence
    /// suite pins this); the flag exists so that proof stays executable.
    pub legacy_deadline_scan: bool,
}

impl GatewayConfig {
    /// Production-shaped defaults: batching, cache and breaker on.
    pub fn standard() -> Self {
        Self {
            workers: 0,
            queue_capacity: 64,
            batch_size: 16,
            batch_deadline_ticks: 8.0,
            cache_capacity: 4096,
            cache_shards: 8,
            max_in_flight: 1 << 20,
            breaker: BreakerConfig::default(),
            legacy_deadline_scan: false,
        }
    }

    /// Pass-through mode: no cache, no batching, no breaker. Used to bound
    /// the gateway's overhead over direct model calls.
    pub fn disabled() -> Self {
        Self {
            workers: 0,
            queue_capacity: 1,
            batch_size: 1,
            batch_deadline_ticks: f64::INFINITY,
            cache_capacity: 0,
            cache_shards: 1,
            max_in_flight: usize::MAX,
            breaker: BreakerConfig::disabled(),
            legacy_deadline_scan: false,
        }
    }

    /// Standard config with `workers` threads.
    pub fn concurrent(workers: usize) -> Self {
        Self {
            workers,
            ..Self::standard()
        }
    }
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self::standard()
    }
}

/// Why a request was answered by the heuristic fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FallbackCause {
    /// The model's circuit breaker is open.
    BreakerOpen,
    /// The (simulated) model call timed out.
    Timeout,
    /// The poison guard rejected a fresh prediction.
    Guarded,
    /// Admission control shed the request.
    Shed,
    /// No model version has been published yet.
    NoModel,
}

impl FallbackCause {
    /// Stable lowercase name used in obs labels and traces.
    pub fn name(self) -> &'static str {
        match self {
            FallbackCause::BreakerOpen => "breaker_open",
            FallbackCause::Timeout => "timeout",
            FallbackCause::Guarded => "guarded",
            FallbackCause::Shed => "shed",
            FallbackCause::NoModel => "no_model",
        }
    }
}

/// Where a prediction's value came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Source {
    /// Sharded prediction cache.
    Cache,
    /// A fresh model inference.
    Model,
    /// The fault channel served a stale (previous-input) prediction.
    Stale,
    /// The registered heuristic fallback (degraded mode).
    Fallback(FallbackCause),
}

impl Source {
    /// True when the value came from the degraded-mode fallback.
    pub fn is_fallback(self) -> bool {
        matches!(self, Source::Fallback(_))
    }
}

/// One answered request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Prediction {
    /// The scalar prediction (model output space — consumers exponentiate
    /// ln-space values themselves).
    pub value: f64,
    /// Model version that answered (0 when none is published).
    pub version: u64,
    /// Where the value came from.
    pub source: Source,
    /// Digest of the feature vector (0 when neither cache nor obs needed
    /// it).
    pub features_digest: u64,
}

/// One request for [`Gateway::predict_many`].
#[derive(Debug, Clone)]
pub struct Request {
    /// Which model to ask.
    pub handle: ModelHandle,
    /// Feature vector.
    pub features: Vec<f64>,
    /// Simulated arrival time (drives deadline flushes and breaker
    /// cooldowns).
    pub sim_time: f64,
}

impl Request {
    /// Convenience constructor.
    pub fn new(handle: ModelHandle, features: Vec<f64>, sim_time: f64) -> Self {
        Self {
            handle,
            features,
            sim_time,
        }
    }
}

/// Aggregate gateway counters (process-wide, monotonic).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct GatewayStats {
    /// Requests admitted (all outcomes).
    pub requests: u64,
    /// Answered from the prediction cache.
    pub cache_hits: u64,
    /// Cache probes that missed.
    pub cache_misses: u64,
    /// Rows sent through model inference.
    pub model_calls: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Rows across all dispatched batches.
    pub batched_rows: u64,
    /// Requests answered by the heuristic fallback.
    pub fallbacks: u64,
    /// Requests shed by admission control (subset of `fallbacks`).
    pub shed: u64,
    /// Requests served a stale prediction by the fault channel.
    pub stale: u64,
    /// Requests routed to a canary candidate.
    pub canary_routed: u64,
    /// Requests mirrored through a shadow candidate.
    pub shadow_serves: u64,
    /// `cache_hits / (cache_hits + cache_misses)`, 0 when no probes.
    pub cache_hit_rate: f64,
}

#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    model_calls: AtomicU64,
    batches: AtomicU64,
    batched_rows: AtomicU64,
    fallbacks: AtomicU64,
    shed: AtomicU64,
    stale: AtomicU64,
    canary_routed: AtomicU64,
    shadow_serves: AtomicU64,
}

/// Immutable serving snapshot: what `predict` reads. Swapped atomically by
/// [`Gateway::publish`]; readers clone the `Arc` under a brief read lock and
/// run inference with no lock held.
pub struct ServingSnapshot {
    version: u64,
    model: Arc<dyn ServableModel>,
}

impl ServingSnapshot {
    /// Deployed version serving this snapshot.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The model behind this snapshot.
    pub fn model(&self) -> &Arc<dyn ServableModel> {
        &self.model
    }
}

/// Which serving versions a poison injection biases.
///
/// Version-scoped poisoning models a corrupted *artifact*: one bad version
/// misbehaves while every other version of the same model stays healthy, so
/// an automatic rollback actually lands somewhere clean. `All` is the
/// legacy whole-serving-path poisoning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub enum PoisonScope {
    /// No poisoning (the default).
    #[default]
    None,
    /// Every version served through this entry is biased.
    All,
    /// Only the named version's predictions are biased.
    Version(u64),
}

impl PoisonScope {
    /// True when the scope covers `version`.
    pub fn covers(self, version: u64) -> bool {
        match self {
            PoisonScope::None => false,
            PoisonScope::All => true,
            PoisonScope::Version(v) => v == version,
        }
    }
}

#[derive(Default)]
struct FaultChannel {
    source: Option<ModelFaults>,
    poisoned: PoisonScope,
}

/// A staged candidate version: the model, its claimed error, and how much
/// traffic it sees.
struct CandidateState {
    snapshot: Arc<ServingSnapshot>,
    deployment_error: f64,
    phase: DeployPhase,
    traffic_pct: u8,
}

/// Boxed degraded-mode heuristic registered alongside each model.
type Fallback = Box<dyn Fn(&[f64]) -> f64 + Send + Sync>;

struct ModelEntry {
    name: String,
    id: usize,
    registry: Mutex<ModelRegistry<Arc<dyn ServableModel>>>,
    snapshot: RwLock<Option<Arc<ServingSnapshot>>>,
    candidate: RwLock<Option<CandidateState>>,
    /// Arrival ticket for deterministic canary routing: request `t` goes to
    /// the candidate iff `t % 100 < traffic_pct`. Reset on every stage.
    canary_ticket: AtomicU64,
    shadow_log: Mutex<VecDeque<ShadowSample>>,
    breaker: Mutex<CircuitBreaker>,
    faults: Mutex<FaultChannel>,
    fallback: Fallback,
}

struct Inner {
    config: GatewayConfig,
    entries: RwLock<Vec<Arc<ModelEntry>>>,
    names: Mutex<HashMap<String, ModelHandle>>,
    cache: Option<PredictionCache>,
    pool: Option<WorkerPool>,
    obs: Obs,
    counters: Counters,
}

/// The model-serving gateway. Cheap to clone (an `Arc` handle); clones share
/// all state, so one gateway can front the optimizer, checkpointing and
/// Seagull at once.
#[derive(Clone)]
pub struct Gateway {
    inner: Arc<Inner>,
}

impl Gateway {
    /// Creates a gateway with no flight recorder attached.
    pub fn new(config: GatewayConfig) -> Self {
        Self::with_obs(config, Obs::disabled())
    }

    /// Creates a gateway that records every serving decision into `obs`.
    pub fn with_obs(config: GatewayConfig, obs: Obs) -> Self {
        let cache = (config.cache_capacity > 0)
            .then(|| PredictionCache::new(config.cache_capacity, config.cache_shards));
        let pool =
            (config.workers > 0).then(|| WorkerPool::new(config.workers, config.queue_capacity));
        Self {
            inner: Arc::new(Inner {
                config,
                entries: RwLock::new(Vec::new()),
                names: Mutex::new(HashMap::new()),
                cache,
                pool,
                obs,
                counters: Counters::default(),
            }),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &GatewayConfig {
        &self.inner.config
    }

    /// Streams the gateway's flight record as chunked canonical JSON (see
    /// [`Obs::export_stream`]): the concatenated chunks match the full
    /// export byte-for-byte without the whole trace ever being held in
    /// memory — the shape a long-lived serving process needs.
    pub fn export_trace_stream(&self, chunk_size: usize, sink: impl FnMut(&str)) {
        self.inner.obs.export_stream(chunk_size, sink);
    }

    /// Registers a model by name with its degraded-mode heuristic fallback
    /// (e.g. the engine's default cardinality estimate). Idempotent: a
    /// second registration under the same name returns the existing handle
    /// and keeps the original fallback.
    pub fn register(
        &self,
        name: &str,
        fallback: impl Fn(&[f64]) -> f64 + Send + Sync + 'static,
    ) -> ModelHandle {
        let mut names = self.inner.names.lock();
        if let Some(&handle) = names.get(name) {
            return handle;
        }
        let mut entries = self.inner.entries.write();
        let id = entries.len();
        entries.push(Arc::new(ModelEntry {
            name: name.to_string(),
            id,
            registry: Mutex::new(ModelRegistry::with_obs(self.inner.obs.clone())),
            snapshot: RwLock::new(None),
            candidate: RwLock::new(None),
            canary_ticket: AtomicU64::new(0),
            shadow_log: Mutex::new(VecDeque::new()),
            breaker: Mutex::new(CircuitBreaker::new(self.inner.config.breaker)),
            faults: Mutex::new(FaultChannel::default()),
            fallback: Box::new(fallback),
        }));
        drop(entries);
        let handle = ModelHandle(id);
        names.insert(name.to_string(), handle);
        handle
    }

    /// Resolves a registered name to its handle.
    pub fn resolve(&self, name: &str) -> Option<ModelHandle> {
        self.inner.names.lock().get(name).copied()
    }

    /// Number of registered models.
    pub fn model_count(&self) -> usize {
        self.inner.entries.read().len()
    }

    fn entry(&self, handle: ModelHandle) -> Result<Arc<ModelEntry>> {
        self.inner
            .entries
            .read()
            .get(handle.0)
            .cloned()
            .ok_or_else(|| ServeError::UnknownModel(format!("handle #{}", handle.0)))
    }

    /// Publishes a new model version through the entry's `ModelRegistry`
    /// and atomically swaps the serving snapshot. Concurrent readers see
    /// either the old or the new version, never a torn state. Returns the
    /// deployed version number.
    ///
    /// Equivalent to [`Gateway::publish_with_cause`] with cause `"manual"`
    /// at simulated time 0.
    pub fn publish(
        &self,
        handle: ModelHandle,
        model: Arc<dyn ServableModel>,
        deployment_error: f64,
    ) -> Result<u64> {
        self.publish_with_cause(handle, model, deployment_error, "manual", 0.0)
    }

    /// [`Gateway::publish`] with an explicit triggering cause and simulated
    /// time, recorded as a typed [`DeploymentKind::Publish`] trace record.
    /// Publishing discards any staged candidate (recorded as a demote) and
    /// resets the model's circuit breaker — a fresh version earns a fresh
    /// failure budget.
    pub fn publish_with_cause(
        &self,
        handle: ModelHandle,
        model: Arc<dyn ServableModel>,
        deployment_error: f64,
        cause: &str,
        sim_time: f64,
    ) -> Result<u64> {
        let entry = self.entry(handle)?;
        self.discard_candidate(&entry, "superseded_by_publish", sim_time);
        let version = entry
            .registry
            .lock()
            .deploy(model.clone(), deployment_error);
        *entry.snapshot.write() = Some(Arc::new(ServingSnapshot { version, model }));
        self.swap_epilogue(&entry, DeploymentKind::Publish, version, cause, sim_time);
        Ok(version)
    }

    /// Rolls back to the best-scoring earlier version (redeployed as a new
    /// version, per `ModelRegistry` semantics) and swaps the snapshot.
    /// Returns the new serving version, or `None` when there is no earlier
    /// version to fall back to.
    ///
    /// Equivalent to [`Gateway::rollback_with_cause`] with cause `"manual"`
    /// at simulated time 0.
    pub fn rollback(&self, handle: ModelHandle) -> Result<Option<u64>> {
        self.rollback_with_cause(handle, "manual", 0.0)
    }

    /// [`Gateway::rollback`] with an explicit triggering cause and simulated
    /// time, recorded as a typed [`DeploymentKind::Rollback`] trace record.
    /// Rolling back discards any staged candidate (recorded as a demote)
    /// and resets the model's circuit breaker.
    pub fn rollback_with_cause(
        &self,
        handle: ModelHandle,
        cause: &str,
        sim_time: f64,
    ) -> Result<Option<u64>> {
        let entry = self.entry(handle)?;
        let mut registry = entry.registry.lock();
        let Some(version) = registry.rollback() else {
            return Ok(None);
        };
        let model = registry
            .current()
            .expect("rollback deployed a version")
            .model
            .clone();
        drop(registry);
        self.discard_candidate(&entry, "superseded_by_rollback", sim_time);
        *entry.snapshot.write() = Some(Arc::new(ServingSnapshot { version, model }));
        self.swap_epilogue(&entry, DeploymentKind::Rollback, version, cause, sim_time);
        Ok(Some(version))
    }

    /// Shared tail of every snapshot swap: breaker reset, hot-swap event,
    /// typed deployment record.
    fn swap_epilogue(
        &self,
        entry: &ModelEntry,
        kind: DeploymentKind,
        version: u64,
        cause: &str,
        sim_time: f64,
    ) {
        *entry.breaker.lock() = CircuitBreaker::new(self.inner.config.breaker);
        let mut batch = self.inner.obs.batch();
        batch.event(
            COMPONENT,
            "hot_swap",
            sim_time,
            &[
                ("model", entry.name.as_str()),
                ("version", &version.to_string()),
            ],
        );
        batch.record_deployment(COMPONENT, kind, &entry.name, version, cause, sim_time);
    }

    /// Drops any staged candidate, recording the demote. No-op otherwise.
    fn discard_candidate(&self, entry: &ModelEntry, cause: &str, sim_time: f64) {
        let dropped = entry.candidate.write().take();
        if let Some(c) = dropped {
            entry.shadow_log.lock().clear();
            self.inner.obs.record_deployment(
                COMPONENT,
                DeploymentKind::Demote,
                &entry.name,
                c.snapshot.version,
                cause,
                sim_time,
            );
        }
    }

    /// Stages `model` as a candidate version in `phase`, without deploying
    /// it. The candidate is labelled with the registry's *next* version
    /// number (the one it will get if promoted), which is returned.
    ///
    /// In [`DeployPhase::Shadow`], every request is mirrored through the
    /// candidate (answers logged, never served). In [`DeployPhase::Canary`],
    /// `traffic_pct`% of requests (deterministically, by arrival ticket) are
    /// answered by the candidate. Replaces any previously staged candidate
    /// (recorded as a demote).
    #[allow(clippy::too_many_arguments)]
    pub fn stage_candidate(
        &self,
        handle: ModelHandle,
        model: Arc<dyn ServableModel>,
        deployment_error: f64,
        phase: DeployPhase,
        traffic_pct: u8,
        cause: &str,
        sim_time: f64,
    ) -> Result<u64> {
        let entry = self.entry(handle)?;
        self.discard_candidate(&entry, "restaged", sim_time);
        let version = entry.registry.lock().next_version();
        let kind = match phase {
            DeployPhase::Shadow => DeploymentKind::ShadowStart,
            DeployPhase::Canary => DeploymentKind::CanaryStart,
        };
        entry.canary_ticket.store(0, Relaxed);
        *entry.candidate.write() = Some(CandidateState {
            snapshot: Arc::new(ServingSnapshot { version, model }),
            deployment_error,
            phase,
            traffic_pct: traffic_pct.min(100),
        });
        self.inner
            .obs
            .record_deployment(COMPONENT, kind, &entry.name, version, cause, sim_time);
        Ok(version)
    }

    /// Moves a shadow-phase candidate into canary phase at `traffic_pct`%
    /// of live traffic. Returns the candidate's provisional version, or an
    /// error when no candidate is staged.
    pub fn advance_candidate(
        &self,
        handle: ModelHandle,
        traffic_pct: u8,
        cause: &str,
        sim_time: f64,
    ) -> Result<u64> {
        let entry = self.entry(handle)?;
        let mut candidate = entry.candidate.write();
        let Some(c) = candidate.as_mut() else {
            return Err(ServeError::NoCandidate(entry.name.clone()));
        };
        c.phase = DeployPhase::Canary;
        c.traffic_pct = traffic_pct.min(100);
        let version = c.snapshot.version;
        drop(candidate);
        entry.canary_ticket.store(0, Relaxed);
        self.inner.obs.record_deployment(
            COMPONENT,
            DeploymentKind::CanaryStart,
            &entry.name,
            version,
            cause,
            sim_time,
        );
        Ok(version)
    }

    /// Promotes the staged candidate: deploys it through the registry with
    /// its observed (windowed) error, swaps the serving snapshot, resets
    /// the breaker, and clears the candidate slot. Returns the deployed
    /// version.
    pub fn promote_candidate(
        &self,
        handle: ModelHandle,
        measured_error: f64,
        cause: &str,
        sim_time: f64,
    ) -> Result<u64> {
        let entry = self.entry(handle)?;
        let Some(c) = entry.candidate.write().take() else {
            return Err(ServeError::NoCandidate(entry.name.clone()));
        };
        entry.shadow_log.lock().clear();
        let model = c.snapshot.model.clone();
        let version = entry.registry.lock().deploy(model.clone(), measured_error);
        *entry.snapshot.write() = Some(Arc::new(ServingSnapshot { version, model }));
        self.swap_epilogue(&entry, DeploymentKind::Promote, version, cause, sim_time);
        Ok(version)
    }

    /// Demotes (discards) the staged candidate, recording the demote with
    /// its cause. Returns the demoted candidate's provisional version, or
    /// an error when no candidate is staged.
    pub fn demote_candidate(&self, handle: ModelHandle, cause: &str, sim_time: f64) -> Result<u64> {
        let entry = self.entry(handle)?;
        let Some(c) = entry.candidate.write().take() else {
            return Err(ServeError::NoCandidate(entry.name.clone()));
        };
        entry.shadow_log.lock().clear();
        let version = c.snapshot.version;
        self.inner.obs.record_deployment(
            COMPONENT,
            DeploymentKind::Demote,
            &entry.name,
            version,
            cause,
            sim_time,
        );
        Ok(version)
    }

    /// The staged candidate's provisional version and phase, or `None` when
    /// nothing is staged.
    pub fn candidate_status(&self, handle: ModelHandle) -> Result<Option<(u64, DeployPhase)>> {
        let entry = self.entry(handle)?;
        let candidate = entry.candidate.read();
        Ok(candidate.as_ref().map(|c| (c.snapshot.version, c.phase)))
    }

    /// The staged candidate's claimed deployment error, or `None` when
    /// nothing is staged.
    pub fn candidate_deployment_error(&self, handle: ModelHandle) -> Result<Option<f64>> {
        let entry = self.entry(handle)?;
        let candidate = entry.candidate.read();
        Ok(candidate.as_ref().map(|c| c.deployment_error))
    }

    /// Drains and returns all buffered shadow samples for a model, oldest
    /// first.
    pub fn drain_shadow(&self, handle: ModelHandle) -> Result<Vec<ShadowSample>> {
        let entry = self.entry(handle)?;
        let mut log = entry.shadow_log.lock();
        Ok(log.drain(..).collect())
    }

    /// The registered name of a model.
    pub fn model_name(&self, handle: ModelHandle) -> Result<String> {
        let entry = self.entry(handle)?;
        Ok(entry.name.clone())
    }

    /// The serving version's deployment-time error claim (`None` before the
    /// first publish).
    pub fn current_deployment_error(&self, handle: ModelHandle) -> Result<Option<f64>> {
        let entry = self.entry(handle)?;
        let registry = entry.registry.lock();
        Ok(registry.current().map(|v| v.deployment_error))
    }

    /// Currently served version (`None` before the first publish).
    pub fn current_version(&self, handle: ModelHandle) -> Result<Option<u64>> {
        let entry = self.entry(handle)?;
        let snapshot = entry.snapshot.read();
        Ok(snapshot.as_ref().map(|s| s.version))
    }

    /// Versions deployed through this entry's registry.
    pub fn version_count(&self, handle: ModelHandle) -> Result<usize> {
        let entry = self.entry(handle)?;
        let count = entry.registry.lock().version_count();
        Ok(count)
    }

    /// Current breaker state for a model.
    pub fn breaker_state(&self, handle: ModelHandle) -> Result<BreakerState> {
        let entry = self.entry(handle)?;
        let state = entry.breaker.lock().state();
        Ok(state)
    }

    /// Attaches a `faultsim` model fault channel (timeouts/staleness) to a
    /// model. Draws happen on the caller thread in request order, so traces
    /// stay deterministic.
    pub fn inject_faults(&self, handle: ModelHandle, faults: ModelFaults) -> Result<()> {
        let entry = self.entry(handle)?;
        entry.faults.lock().source = Some(faults);
        Ok(())
    }

    /// [`Gateway::inject_faults`] with an explicit simulated time, recorded
    /// as a `model_fault_injected` trace event — so downstream analysis
    /// (watchtower incident reconstruction) can blame the injection as an
    /// incident's root cause instead of its first symptom.
    pub fn inject_faults_at(
        &self,
        handle: ModelHandle,
        faults: ModelFaults,
        sim_time: f64,
    ) -> Result<()> {
        let entry = self.entry(handle)?;
        entry.faults.lock().source = Some(faults);
        self.inner.obs.event(
            COMPONENT,
            "model_fault_injected",
            sim_time,
            &[("model", entry.name.as_str()), ("kind", "channel")],
        );
        Ok(())
    }

    /// Marks the model's serving path as poisoned: fresh predictions are
    /// biased by the fault channel's poison profile before the guard sees
    /// them. `true` poisons every version ([`PoisonScope::All`]); `false`
    /// clears poisoning.
    pub fn set_poisoned(&self, handle: ModelHandle, poisoned: bool) -> Result<()> {
        self.set_poison_scope(
            handle,
            if poisoned {
                PoisonScope::All
            } else {
                PoisonScope::None
            },
        )
    }

    /// Scopes poisoning to specific versions — e.g.
    /// [`PoisonScope::Version`] models one corrupted artifact, so a
    /// rollback to an earlier version actually heals serving.
    pub fn set_poison_scope(&self, handle: ModelHandle, scope: PoisonScope) -> Result<()> {
        let entry = self.entry(handle)?;
        entry.faults.lock().poisoned = scope;
        Ok(())
    }

    /// [`Gateway::set_poison_scope`] with an explicit simulated time,
    /// recorded as a `model_fault_injected` trace event carrying the scope
    /// (and poisoned version, when scoped) — the ground-truth root cause
    /// watchtower's incident reconstruction links symptoms back to.
    pub fn set_poison_scope_at(
        &self,
        handle: ModelHandle,
        scope: PoisonScope,
        sim_time: f64,
    ) -> Result<()> {
        let entry = self.entry(handle)?;
        entry.faults.lock().poisoned = scope;
        let (scope_name, version) = match scope {
            PoisonScope::None => ("none", String::new()),
            PoisonScope::All => ("all", String::new()),
            PoisonScope::Version(v) => ("version", v.to_string()),
        };
        self.inner.obs.event(
            COMPONENT,
            "model_fault_injected",
            sim_time,
            &[
                ("model", entry.name.as_str()),
                ("kind", "poison"),
                ("scope", scope_name),
                ("version", version.as_str()),
            ],
        );
        Ok(())
    }

    /// Detaches any fault channel and clears the poison scope.
    pub fn clear_faults(&self, handle: ModelHandle) -> Result<()> {
        let entry = self.entry(handle)?;
        let mut faults = entry.faults.lock();
        faults.source = None;
        faults.poisoned = PoisonScope::None;
        Ok(())
    }

    /// [`Gateway::clear_faults`] with an explicit simulated time, recorded
    /// as a `model_faults_cleared` trace event.
    pub fn clear_faults_at(&self, handle: ModelHandle, sim_time: f64) -> Result<()> {
        self.clear_faults(handle)?;
        let entry = self.entry(handle)?;
        self.inner.obs.event(
            COMPONENT,
            "model_faults_cleared",
            sim_time,
            &[("model", entry.name.as_str())],
        );
        Ok(())
    }

    /// Serves one request synchronously on the caller thread.
    pub fn predict(
        &self,
        handle: ModelHandle,
        features: &[f64],
        sim_time: f64,
    ) -> Result<Prediction> {
        let entry = self.entry(handle)?;
        Ok(self.serve_one(&entry, features, sim_time))
    }

    /// Picks the snapshot a request is served by: the staged canary
    /// candidate for its deterministic traffic slice, the primary
    /// otherwise. A shadow-phase candidate is mirrored here (inference on
    /// the caller thread, answer logged, primary still served) — both the
    /// ticket advance and the mirror happen in request order, which is what
    /// keeps canary routing byte-identical across replays.
    fn route(
        &self,
        entry: &ModelEntry,
        primary: Arc<ServingSnapshot>,
        features: &[f64],
        sim_time: f64,
    ) -> Arc<ServingSnapshot> {
        let candidate = entry.candidate.read();
        let Some(c) = candidate.as_ref() else {
            return primary;
        };
        match c.phase {
            DeployPhase::Canary => {
                let ticket = entry.canary_ticket.fetch_add(1, Relaxed);
                if ticket % 100 < c.traffic_pct as u64 {
                    self.inner.counters.canary_routed.fetch_add(1, Relaxed);
                    self.inner.obs.counter_add(
                        COMPONENT,
                        "canary_routed",
                        &[("model", entry.name.as_str())],
                        1,
                    );
                    c.snapshot.clone()
                } else {
                    primary
                }
            }
            DeployPhase::Shadow => {
                let shadow = c.snapshot.clone();
                drop(candidate);
                let clean = shadow.model.predict(features);
                let digest = digest_f64(features.iter().copied());
                // The mirror sees version-scoped poison (a corrupted
                // candidate artifact must look corrupted in shadow), but
                // not the staleness/timeout channel — those model the
                // serving path, which shadow traffic never takes.
                let value = {
                    let mut channel = entry.faults.lock();
                    if channel.poisoned.covers(shadow.version) {
                        channel
                            .source
                            .as_mut()
                            .map_or(clean, |faults| faults.apply_poison(clean))
                    } else {
                        clean
                    }
                };
                self.inner.counters.shadow_serves.fetch_add(1, Relaxed);
                let mut batch = self.inner.obs.batch();
                batch.counter_add(
                    COMPONENT,
                    "shadow_serves",
                    &[("model", entry.name.as_str())],
                    1,
                );
                batch.record_decision(
                    COMPONENT,
                    "shadow_serve",
                    &Provenance::new(&entry.name, shadow.version, digest),
                    value,
                    None,
                    "shadow",
                    false,
                    0,
                    sim_time,
                );
                drop(batch);
                let mut log = entry.shadow_log.lock();
                if log.len() >= SHADOW_LOG_CAP {
                    log.pop_front();
                }
                log.push_back(ShadowSample {
                    features_digest: digest,
                    version: shadow.version,
                    value,
                    sim_time,
                });
                primary
            }
        }
    }

    fn serve_one(&self, entry: &ModelEntry, features: &[f64], sim_time: f64) -> Prediction {
        self.admit(entry);
        let Some(primary) = entry.snapshot.read().clone() else {
            return self.serve_fallback(entry, 0, 0, features, FallbackCause::NoModel, sim_time);
        };
        let snapshot = self.route(entry, primary, features, sim_time);
        let mut digest = 0u64;
        if let Some(hit) = self.probe_cache(entry, &snapshot, features, &mut digest) {
            return hit;
        }
        if !self.breaker_admits(entry, sim_time) {
            return self.serve_fallback(
                entry,
                snapshot.version,
                digest,
                features,
                FallbackCause::BreakerOpen,
                sim_time,
            );
        }
        self.inner.counters.model_calls.fetch_add(1, Relaxed);
        let clean = snapshot.model.predict(features);
        self.settle(entry, &snapshot, features, digest, clean, sim_time)
    }

    /// Serves a slice of requests with micro-batching. Phase A walks the
    /// requests in order on the caller thread (cache probes, breaker
    /// routing, admission, batch assembly); pure batched inference runs on
    /// the worker pool; phase B settles results — fault draws, breaker
    /// updates, cache fills, obs records — again in request order on the
    /// caller thread. Results are byte-identical at any worker count.
    pub fn predict_many(&self, requests: &[Request]) -> Result<Vec<Prediction>> {
        enum Slot {
            Ready(Prediction),
            Pending {
                entry: Arc<ModelEntry>,
                snapshot: Arc<ServingSnapshot>,
                digest: u64,
                group: usize,
                row: usize,
            },
        }

        let config = &self.inner.config;
        let mut groups: Vec<BatchGroup> = Vec::new();
        // Open (undispatched) groups in insertion order: (model id, version, group index).
        let mut open: Vec<(u64, u64, usize)> = Vec::new();
        // Deadline timers, keyed by the tick each group opened at. Groups
        // flushed early (by the size trigger) are invalidated lazily:
        // `dispatch` is a no-op on an already-dispatched group.
        let mut deadlines: adas_simkern::TimerWheel<usize> = adas_simkern::TimerWheel::new();
        // Duplicate suppression: identical pending rows share one batch slot.
        let mut inflight: HashMap<(u64, u64, u64), (usize, usize)> = HashMap::new();
        let mut slots: Vec<Slot> = Vec::with_capacity(requests.len());
        let mut pending = 0usize;

        for request in requests {
            let entry = self.entry(request.handle)?;
            let now = request.sim_time;
            // Deadline flushes happen before this request is admitted — a
            // deterministic function of the request sequence alone. The
            // wheel pops groups oldest-first while the *exact* legacy
            // comparison holds; the due-set matches the legacy scan because
            // the predicate is monotone in the open tick, and flush order
            // within one instant is unobservable (counters are sums and
            // results settle in request order).
            if config.batch_deadline_ticks.is_finite() {
                if config.legacy_deadline_scan {
                    let mut i = 0;
                    while i < open.len() {
                        let g = open[i].2;
                        if now - groups[g].oldest >= config.batch_deadline_ticks {
                            self.dispatch(&mut groups[g]);
                            open.remove(i);
                        } else {
                            i += 1;
                        }
                    }
                } else {
                    while let Some((_, g)) =
                        deadlines.pop_due(|oldest| now - oldest >= config.batch_deadline_ticks)
                    {
                        self.dispatch(&mut groups[g]);
                        open.retain(|&(_, _, gg)| gg != g);
                    }
                }
            }
            self.admit(&entry);
            let Some(primary) = entry.snapshot.read().clone() else {
                slots.push(Slot::Ready(self.serve_fallback(
                    &entry,
                    0,
                    0,
                    &request.features,
                    FallbackCause::NoModel,
                    now,
                )));
                continue;
            };
            let snapshot = self.route(&entry, primary, &request.features, now);
            let mut digest = digest_f64(request.features.iter().copied());
            if let Some(hit) = self.probe_cache(&entry, &snapshot, &request.features, &mut digest) {
                slots.push(Slot::Ready(hit));
                continue;
            }
            if !self.breaker_admits(&entry, now) {
                slots.push(Slot::Ready(self.serve_fallback(
                    &entry,
                    snapshot.version,
                    digest,
                    &request.features,
                    FallbackCause::BreakerOpen,
                    now,
                )));
                continue;
            }
            if pending >= config.max_in_flight {
                self.inner.counters.shed.fetch_add(1, Relaxed);
                slots.push(Slot::Ready(self.serve_fallback(
                    &entry,
                    snapshot.version,
                    digest,
                    &request.features,
                    FallbackCause::Shed,
                    now,
                )));
                continue;
            }
            let dedup_key = (entry.id as u64, snapshot.version, digest);
            if let Some(&(group, row)) = inflight.get(&dedup_key) {
                slots.push(Slot::Pending {
                    entry,
                    snapshot,
                    digest,
                    group,
                    row,
                });
                pending += 1;
                continue;
            }
            let group = match open
                .iter()
                .find(|(m, v, _)| *m == entry.id as u64 && *v == snapshot.version)
            {
                Some(&(_, _, g)) => g,
                None => {
                    groups.push(BatchGroup {
                        snapshot: snapshot.clone(),
                        rows: Vec::new(),
                        oldest: now,
                        promise: None,
                    });
                    let g = groups.len() - 1;
                    open.push((entry.id as u64, snapshot.version, g));
                    if config.batch_deadline_ticks.is_finite()
                        && !config.legacy_deadline_scan
                        && now.is_finite()
                    {
                        deadlines.schedule(now, g);
                    }
                    g
                }
            };
            let row = groups[group].rows.len();
            groups[group].rows.push(request.features.clone());
            inflight.insert(dedup_key, (group, row));
            slots.push(Slot::Pending {
                entry,
                snapshot,
                digest,
                group,
                row,
            });
            pending += 1;
            if groups[group].rows.len() >= config.batch_size.max(1) {
                self.dispatch(&mut groups[group]);
                open.retain(|&(_, _, g)| g != group);
            }
        }
        for (_, _, g) in open {
            self.dispatch(&mut groups[g]);
        }

        let mut out = Vec::with_capacity(slots.len());
        for (i, slot) in slots.into_iter().enumerate() {
            match slot {
                Slot::Ready(prediction) => out.push(prediction),
                Slot::Pending {
                    entry,
                    snapshot,
                    digest,
                    group,
                    row,
                } => {
                    let clean = groups[group]
                        .promise
                        .as_ref()
                        .expect("group was dispatched")
                        .get(row);
                    out.push(self.settle(
                        &entry,
                        &snapshot,
                        &requests[i].features,
                        digest,
                        clean,
                        requests[i].sim_time,
                    ));
                }
            }
        }
        Ok(out)
    }

    fn dispatch(&self, group: &mut BatchGroup) {
        if group.rows.is_empty() || group.promise.is_some() {
            return;
        }
        let rows = std::mem::take(&mut group.rows);
        self.inner.counters.batches.fetch_add(1, Relaxed);
        self.inner
            .counters
            .batched_rows
            .fetch_add(rows.len() as u64, Relaxed);
        self.inner
            .counters
            .model_calls
            .fetch_add(rows.len() as u64, Relaxed);
        let promise = Arc::new(BatchPromise::new());
        group.promise = Some(Arc::clone(&promise));
        let model = Arc::clone(&group.snapshot.model);
        match &self.inner.pool {
            Some(pool) => pool.submit(Box::new(move || promise.fill(model.predict_batch(&rows)))),
            None => promise.fill(model.predict_batch(&rows)),
        }
    }

    fn admit(&self, entry: &ModelEntry) {
        self.inner.counters.requests.fetch_add(1, Relaxed);
        self.inner
            .obs
            .counter_add(COMPONENT, "requests", &[("model", entry.name.as_str())], 1);
    }

    /// Per-model SLO bookkeeping: every answer either meets the objective
    /// (fresh model/cache serves) or consumes error budget (stale values,
    /// fallbacks of any cause). Watchtower's SLO engine and the Prometheus
    /// export aggregate these.
    fn record_slo(&self, entry: &ModelEntry, good: bool) {
        let name = if good { "slo_good" } else { "slo_bad" };
        self.inner
            .obs
            .counter_add(COMPONENT, name, &[("model", entry.name.as_str())], 1);
    }

    fn probe_cache(
        &self,
        entry: &ModelEntry,
        snapshot: &ServingSnapshot,
        features: &[f64],
        digest: &mut u64,
    ) -> Option<Prediction> {
        let cache = self.inner.cache.as_ref()?;
        if *digest == 0 {
            *digest = digest_f64(features.iter().copied());
        }
        let key = CacheKey {
            model: entry.id as u64,
            version: snapshot.version,
            digest: *digest,
        };
        match cache.get(&key) {
            Some(value) => {
                self.inner.counters.cache_hits.fetch_add(1, Relaxed);
                self.inner.obs.counter_add(
                    COMPONENT,
                    "cache_hits",
                    &[("model", entry.name.as_str())],
                    1,
                );
                self.record_slo(entry, true);
                Some(Prediction {
                    value,
                    version: snapshot.version,
                    source: Source::Cache,
                    features_digest: *digest,
                })
            }
            None => {
                self.inner.counters.cache_misses.fetch_add(1, Relaxed);
                self.inner.obs.counter_add(
                    COMPONENT,
                    "cache_misses",
                    &[("model", entry.name.as_str())],
                    1,
                );
                None
            }
        }
    }

    fn breaker_admits(&self, entry: &ModelEntry, sim_time: f64) -> bool {
        if !self.inner.config.breaker.enabled {
            return true;
        }
        let (allowed, transition) = entry.breaker.lock().allow(sim_time);
        if let Some(t) = transition {
            self.record_transition(entry, t, sim_time);
        }
        allowed
    }

    /// Applies fault channels, the poison guard, breaker accounting and the
    /// cache fill to a freshly computed `clean` prediction — all on the
    /// caller thread, in request order.
    fn settle(
        &self,
        entry: &ModelEntry,
        snapshot: &ServingSnapshot,
        features: &[f64],
        digest: u64,
        clean: f64,
        sim_time: f64,
    ) -> Prediction {
        let served = {
            let mut channel = entry.faults.lock();
            let biased = if channel.poisoned.covers(snapshot.version) {
                channel
                    .source
                    .as_mut()
                    .map_or(clean, |faults| faults.apply_poison(clean))
            } else {
                clean
            };
            match channel.source.as_mut() {
                Some(faults) => faults.serve(biased),
                None => Served::Fresh(biased),
            }
        };
        match served {
            Served::Timeout => {
                self.breaker_failure(entry, sim_time);
                self.serve_fallback(
                    entry,
                    snapshot.version,
                    digest,
                    features,
                    FallbackCause::Timeout,
                    sim_time,
                )
            }
            Served::Stale(previous) => {
                self.inner.counters.stale.fetch_add(1, Relaxed);
                self.inner.obs.counter_add(
                    COMPONENT,
                    "stale_served",
                    &[("model", entry.name.as_str())],
                    1,
                );
                self.breaker_failure(entry, sim_time);
                self.record_slo(entry, false);
                Prediction {
                    value: previous,
                    version: snapshot.version,
                    source: Source::Stale,
                    features_digest: digest,
                }
            }
            Served::Fresh(value) => {
                let guard = self.inner.config.breaker.guard_factor;
                if self.inner.config.breaker.enabled && guard.is_finite() {
                    let heuristic = (entry.fallback)(features);
                    let ratio = value.abs().max(1e-12) / heuristic.abs().max(1e-12);
                    if ratio > guard || ratio < 1.0 / guard {
                        self.inner.obs.counter_add(
                            COMPONENT,
                            "guard_trips",
                            &[("model", entry.name.as_str())],
                            1,
                        );
                        self.breaker_failure(entry, sim_time);
                        return self.serve_fallback(
                            entry,
                            snapshot.version,
                            digest,
                            features,
                            FallbackCause::Guarded,
                            sim_time,
                        );
                    }
                }
                if self.inner.config.breaker.enabled {
                    if let Some(t) = entry.breaker.lock().on_success() {
                        self.record_transition(entry, t, sim_time);
                    }
                }
                if let Some(cache) = &self.inner.cache {
                    cache.insert(
                        CacheKey {
                            model: entry.id as u64,
                            version: snapshot.version,
                            digest,
                        },
                        value,
                    );
                }
                self.record_slo(entry, true);
                Prediction {
                    value,
                    version: snapshot.version,
                    source: Source::Model,
                    features_digest: digest,
                }
            }
        }
    }

    fn breaker_failure(&self, entry: &ModelEntry, sim_time: f64) {
        if !self.inner.config.breaker.enabled {
            return;
        }
        if let Some(t) = entry.breaker.lock().on_failure(sim_time) {
            self.record_transition(entry, t, sim_time);
        }
    }

    fn record_transition(&self, entry: &ModelEntry, transition: Transition, sim_time: f64) {
        let mut batch = self.inner.obs.batch();
        batch.event(
            COMPONENT,
            "breaker_transition",
            sim_time,
            &[
                ("model", entry.name.as_str()),
                ("from", transition.from.name()),
                ("to", transition.to.name()),
            ],
        );
        batch.counter_add(
            COMPONENT,
            "breaker_transitions",
            &[("model", entry.name.as_str()), ("to", transition.to.name())],
            1,
        );
    }

    fn serve_fallback(
        &self,
        entry: &ModelEntry,
        version: u64,
        digest: u64,
        features: &[f64],
        cause: FallbackCause,
        sim_time: f64,
    ) -> Prediction {
        let value = (entry.fallback)(features);
        self.inner.counters.fallbacks.fetch_add(1, Relaxed);
        self.record_slo(entry, false);
        let mut digest = digest;
        if self.inner.obs.is_enabled() {
            if digest == 0 {
                digest = digest_f64(features.iter().copied());
            }
            let mut batch = self.inner.obs.batch();
            batch.counter_add(
                COMPONENT,
                "fallbacks",
                &[("model", entry.name.as_str()), ("cause", cause.name())],
                1,
            );
            batch.record_decision(
                COMPONENT,
                "degraded_serve",
                &Provenance::new(&entry.name, version, digest),
                value,
                None,
                cause.name(),
                true,
                0,
                sim_time,
            );
        }
        Prediction {
            value,
            version,
            source: Source::Fallback(cause),
            features_digest: digest,
        }
    }

    /// Aggregate counters.
    pub fn stats(&self) -> GatewayStats {
        let c = &self.inner.counters;
        let hits = c.cache_hits.load(Relaxed);
        let misses = c.cache_misses.load(Relaxed);
        let probes = hits + misses;
        GatewayStats {
            requests: c.requests.load(Relaxed),
            cache_hits: hits,
            cache_misses: misses,
            model_calls: c.model_calls.load(Relaxed),
            batches: c.batches.load(Relaxed),
            batched_rows: c.batched_rows.load(Relaxed),
            fallbacks: c.fallbacks.load(Relaxed),
            shed: c.shed.load(Relaxed),
            stale: c.stale.load(Relaxed),
            canary_routed: c.canary_routed.load(Relaxed),
            shadow_serves: c.shadow_serves.load(Relaxed),
            cache_hit_rate: if probes == 0 {
                0.0
            } else {
                hits as f64 / probes as f64
            },
        }
    }

    /// Entries currently held by the prediction cache (0 when disabled).
    pub fn cache_len(&self) -> usize {
        self.inner.cache.as_ref().map_or(0, PredictionCache::len)
    }
}

struct BatchGroup {
    snapshot: Arc<ServingSnapshot>,
    rows: Vec<Vec<f64>>,
    oldest: f64,
    promise: Option<Arc<BatchPromise>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FnModel;
    use adas_faultsim::ModelFaults;

    fn identity_gateway(config: GatewayConfig) -> (Gateway, ModelHandle) {
        let gateway = Gateway::new(config);
        let handle = gateway.register("test/identity", |f: &[f64]| f[0] * 10.0);
        gateway
            .publish(handle, Arc::new(FnModel(|f: &[f64]| f[0] + 1.0)), 0.05)
            .unwrap();
        (gateway, handle)
    }

    #[test]
    fn unregistered_handle_errors() {
        let gateway = Gateway::new(GatewayConfig::standard());
        let err = gateway.predict(ModelHandle(3), &[1.0], 0.0).unwrap_err();
        assert!(matches!(err, ServeError::UnknownModel(_)));
    }

    #[test]
    fn register_is_idempotent() {
        let gateway = Gateway::new(GatewayConfig::standard());
        let a = gateway.register("m", |_| 0.0);
        let b = gateway.register("m", |_| 1.0);
        assert_eq!(a, b);
        assert_eq!(gateway.model_count(), 1);
        assert_eq!(gateway.resolve("m"), Some(a));
    }

    #[test]
    fn unpublished_model_serves_fallback() {
        let gateway = Gateway::new(GatewayConfig::standard());
        let handle = gateway.register("m", |f: &[f64]| f[0] * 2.0);
        let p = gateway.predict(handle, &[3.0], 0.0).unwrap();
        assert_eq!(p.value, 6.0);
        assert_eq!(p.source, Source::Fallback(FallbackCause::NoModel));
        assert_eq!(p.version, 0);
    }

    #[test]
    fn model_path_and_cache_hit() {
        let (gateway, handle) = identity_gateway(GatewayConfig::standard());
        let first = gateway.predict(handle, &[2.0], 0.0).unwrap();
        assert_eq!(first.value, 3.0);
        assert_eq!(first.source, Source::Model);
        let second = gateway.predict(handle, &[2.0], 1.0).unwrap();
        assert_eq!(second.source, Source::Cache);
        assert_eq!(second.value.to_bits(), first.value.to_bits());
        assert_eq!(gateway.stats().cache_hits, 1);
    }

    #[test]
    fn hot_swap_bumps_version_and_misses_cache() {
        let (gateway, handle) = identity_gateway(GatewayConfig::standard());
        assert_eq!(gateway.current_version(handle).unwrap(), Some(1));
        gateway.predict(handle, &[2.0], 0.0).unwrap();
        let v2 = gateway
            .publish(handle, Arc::new(FnModel(|f: &[f64]| f[0] + 100.0)), 0.01)
            .unwrap();
        assert_eq!(v2, 2);
        // Same features, new version ⇒ cache key differs ⇒ fresh inference.
        let p = gateway.predict(handle, &[2.0], 1.0).unwrap();
        assert_eq!(p.value, 102.0);
        assert_eq!(p.source, Source::Model);
        assert_eq!(p.version, 2);
    }

    #[test]
    fn rollback_restores_earlier_model() {
        let (gateway, handle) = identity_gateway(GatewayConfig::standard());
        gateway
            .publish(handle, Arc::new(FnModel(|f: &[f64]| f[0] + 100.0)), 0.9)
            .unwrap();
        let rolled = gateway.rollback(handle).unwrap().unwrap();
        assert_eq!(rolled, 3, "rollback redeploys as a new version");
        let p = gateway.predict(handle, &[2.0], 0.0).unwrap();
        assert_eq!(p.value, 3.0, "v1 (error 0.05) beat v2 (error 0.9)");
    }

    #[test]
    fn breaker_opens_on_timeouts_and_recovers() {
        let mut config = GatewayConfig::standard();
        config.cache_capacity = 0; // cache off: every request reaches the model
        config.breaker.failure_threshold = 2;
        config.breaker.cooldown_ticks = 10.0;
        config.breaker.probe_successes = 1;
        let (gateway, handle) = identity_gateway(config);
        gateway
            .inject_faults(handle, ModelFaults::new(7, 0.0, 1.0, 1.0))
            .unwrap();
        let a = gateway.predict(handle, &[1.0], 0.0).unwrap();
        assert_eq!(a.source, Source::Fallback(FallbackCause::Timeout));
        assert_eq!(gateway.breaker_state(handle).unwrap(), BreakerState::Closed);
        let b = gateway.predict(handle, &[1.0], 1.0).unwrap();
        assert_eq!(b.source, Source::Fallback(FallbackCause::Timeout));
        assert_eq!(gateway.breaker_state(handle).unwrap(), BreakerState::Open);
        // While open: fallback without touching the model.
        let c = gateway.predict(handle, &[1.0], 2.0).unwrap();
        assert_eq!(c.source, Source::Fallback(FallbackCause::BreakerOpen));
        assert_eq!(c.value, 10.0);
        // After the cooldown, a clean probe closes the breaker.
        gateway.clear_faults(handle).unwrap();
        let d = gateway.predict(handle, &[1.0], 11.0).unwrap();
        assert_eq!(d.source, Source::Model);
        assert_eq!(gateway.breaker_state(handle).unwrap(), BreakerState::Closed);
    }

    #[test]
    fn poison_guard_trips_to_fallback() {
        let mut config = GatewayConfig::standard();
        config.cache_capacity = 0;
        config.breaker.guard_factor = 1.5;
        let gateway = Gateway::new(config);
        // Fallback heuristic ≈ model output, so an unpoisoned model passes.
        let handle = gateway.register("m", |f: &[f64]| f[0] + 1.0);
        gateway
            .publish(handle, Arc::new(FnModel(|f: &[f64]| f[0] + 1.0)), 0.0)
            .unwrap();
        assert_eq!(
            gateway.predict(handle, &[4.0], 0.0).unwrap().source,
            Source::Model
        );
        // Poison factor 2.0 pushes the ratio past the 1.5 guard.
        gateway
            .inject_faults(handle, ModelFaults::new(7, 0.0, 0.0, 2.0))
            .unwrap();
        gateway.set_poisoned(handle, true).unwrap();
        let p = gateway.predict(handle, &[4.0], 1.0).unwrap();
        assert_eq!(p.source, Source::Fallback(FallbackCause::Guarded));
        assert_eq!(p.value, 5.0, "served the heuristic, not the poisoned value");
    }

    #[test]
    fn predict_many_matches_predict_one() {
        let mut config = GatewayConfig::standard();
        config.batch_size = 3;
        let (gateway, handle) = identity_gateway(config);
        let requests: Vec<Request> = (0..10)
            .map(|i| Request::new(handle, vec![i as f64], i as f64))
            .collect();
        let batched = gateway.predict_many(&requests).unwrap();
        let (solo_gateway, solo_handle) = identity_gateway(GatewayConfig::standard());
        for (request, got) in requests.iter().zip(&batched) {
            let solo = solo_gateway
                .predict(solo_handle, &request.features, request.sim_time)
                .unwrap();
            assert_eq!(solo.value.to_bits(), got.value.to_bits());
        }
    }

    #[test]
    fn predict_many_dedups_identical_rows() {
        let mut config = GatewayConfig::standard();
        config.cache_capacity = 0; // dedup still applies without the cache
        config.batch_size = 8;
        let (gateway, handle) = identity_gateway(config);
        let requests: Vec<Request> = (0..6)
            .map(|_| Request::new(handle, vec![5.0], 0.0))
            .collect();
        let out = gateway.predict_many(&requests).unwrap();
        assert!(out.iter().all(|p| p.value == 6.0));
        assert_eq!(gateway.stats().batched_rows, 1, "six requests, one row");
    }

    #[test]
    fn admission_control_sheds_to_fallback() {
        let mut config = GatewayConfig::standard();
        config.cache_capacity = 0;
        config.max_in_flight = 2;
        let (gateway, handle) = identity_gateway(config);
        let requests: Vec<Request> = (0..5)
            .map(|i| Request::new(handle, vec![i as f64], 0.0))
            .collect();
        let out = gateway.predict_many(&requests).unwrap();
        let shed = out
            .iter()
            .filter(|p| p.source == Source::Fallback(FallbackCause::Shed))
            .count();
        assert_eq!(shed, 3);
        assert_eq!(gateway.stats().shed, 3);
    }

    #[test]
    fn worker_pool_results_match_inline() {
        let mut inline_config = GatewayConfig::standard();
        inline_config.batch_size = 4;
        let mut pooled_config = inline_config;
        pooled_config.workers = 4;
        let (inline, ih) = identity_gateway(inline_config);
        let (pooled, ph) = identity_gateway(pooled_config);
        let requests: Vec<(f64, f64)> = (0..64).map(|i| (i as f64 % 7.0, i as f64)).collect();
        let inline_out = inline
            .predict_many(
                &requests
                    .iter()
                    .map(|&(x, t)| Request::new(ih, vec![x], t))
                    .collect::<Vec<_>>(),
            )
            .unwrap();
        let pooled_out = pooled
            .predict_many(
                &requests
                    .iter()
                    .map(|&(x, t)| Request::new(ph, vec![x], t))
                    .collect::<Vec<_>>(),
            )
            .unwrap();
        for (a, b) in inline_out.iter().zip(&pooled_out) {
            assert_eq!(a.value.to_bits(), b.value.to_bits());
            assert_eq!(a.source, b.source);
        }
    }

    #[test]
    fn deadline_flush_dispatches_old_batches() {
        let mut config = GatewayConfig::standard();
        config.cache_capacity = 0;
        config.batch_size = 100; // size flush never fires
        config.batch_deadline_ticks = 5.0;
        let (gateway, handle) = identity_gateway(config);
        let requests = vec![
            Request::new(handle, vec![1.0], 0.0),
            Request::new(handle, vec![2.0], 1.0),
            Request::new(handle, vec![3.0], 6.0), // 6.0 - 0.0 ≥ 5.0 ⇒ flush first two
        ];
        gateway.predict_many(&requests).unwrap();
        assert_eq!(gateway.stats().batches, 2);
    }

    #[test]
    fn timer_wheel_flushes_match_legacy_scan() {
        // Same request sequence through the wheel-backed and legacy
        // deadline paths: identical predictions (bit-for-bit) and stats.
        let mk = |legacy: bool| {
            let mut config = GatewayConfig::standard();
            config.cache_capacity = 0;
            config.batch_size = 3;
            config.batch_deadline_ticks = 4.0;
            config.legacy_deadline_scan = legacy;
            identity_gateway(config)
        };
        let times = [0.0, 1.0, 2.5, 5.0, 5.0, 9.5, 12.0, 12.0, 20.0];
        let build = |handle| {
            times
                .iter()
                .enumerate()
                .map(|(i, &t)| Request::new(handle, vec![i as f64], t))
                .collect::<Vec<_>>()
        };
        let (wheel_gw, wheel_handle) = mk(false);
        let (legacy_gw, legacy_handle) = mk(true);
        let wheel_out = wheel_gw.predict_many(&build(wheel_handle)).unwrap();
        let legacy_out = legacy_gw.predict_many(&build(legacy_handle)).unwrap();
        for (a, b) in wheel_out.iter().zip(&legacy_out) {
            assert_eq!(a.value.to_bits(), b.value.to_bits());
            assert_eq!(a.source, b.source);
        }
        let (ws, ls) = (wheel_gw.stats(), legacy_gw.stats());
        assert_eq!(ws.batches, ls.batches);
        assert_eq!(ws.batched_rows, ls.batched_rows);
        assert_eq!(ws.model_calls, ls.model_calls);
    }

    #[test]
    fn disabled_gateway_is_pass_through() {
        let (gateway, handle) = identity_gateway(GatewayConfig::disabled());
        let p = gateway.predict(handle, &[9.0], 0.0).unwrap();
        assert_eq!(p.value, 10.0);
        assert_eq!(p.source, Source::Model);
        assert_eq!(p.features_digest, 0, "no digest computed on the fast path");
        let stats = gateway.stats();
        assert_eq!(stats.cache_hits + stats.cache_misses, 0);
    }

    #[test]
    fn obs_records_degraded_serve() {
        let obs = Obs::recording();
        let gateway = Gateway::with_obs(GatewayConfig::standard(), obs.clone());
        let handle = gateway.register("m", |f: &[f64]| f[0]);
        gateway.predict(handle, &[2.0], 3.0).unwrap();
        let trace = obs.snapshot();
        assert_eq!(trace.decisions.len(), 1);
        let d = &trace.decisions[0];
        assert_eq!(d.decision, "degraded_serve");
        assert_eq!(d.verdict, "no_model");
        assert!(d.vetoed);
        assert_eq!(d.sim_time, 3.0);
        assert_eq!(
            trace.metrics.counter(
                COMPONENT,
                "fallbacks",
                &[("model", "m"), ("cause", "no_model")]
            ),
            1
        );
    }

    #[test]
    fn canary_routes_deterministic_slice() {
        let mut config = GatewayConfig::standard();
        config.cache_capacity = 0;
        let (gateway, handle) = identity_gateway(config);
        gateway
            .stage_candidate(
                handle,
                Arc::new(FnModel(|f: &[f64]| f[0] + 50.0)),
                0.01,
                DeployPhase::Canary,
                20,
                "test",
                0.0,
            )
            .unwrap();
        assert_eq!(
            gateway.candidate_status(handle).unwrap(),
            Some((2, DeployPhase::Canary))
        );
        let mut canary = 0;
        for i in 0..200 {
            let p = gateway.predict(handle, &[i as f64], i as f64).unwrap();
            if p.version == 2 {
                canary += 1;
                assert_eq!(p.value, i as f64 + 50.0);
            } else {
                assert_eq!(p.version, 1);
                assert_eq!(p.value, i as f64 + 1.0);
            }
        }
        // Ticket counter: tickets 0–19 of every 100 go to the candidate.
        assert_eq!(canary, 40);
        assert_eq!(gateway.stats().canary_routed, 40);
    }

    #[test]
    fn shadow_mirrors_without_serving() {
        let mut config = GatewayConfig::standard();
        config.cache_capacity = 0;
        let (gateway, handle) = identity_gateway(config);
        gateway
            .stage_candidate(
                handle,
                Arc::new(FnModel(|f: &[f64]| f[0] * 2.0)),
                0.01,
                DeployPhase::Shadow,
                0,
                "test",
                0.0,
            )
            .unwrap();
        for i in 0..5 {
            let p = gateway.predict(handle, &[i as f64], i as f64).unwrap();
            assert_eq!(p.version, 1, "shadow answers are never served");
            assert_eq!(p.value, i as f64 + 1.0);
        }
        let samples = gateway.drain_shadow(handle).unwrap();
        assert_eq!(samples.len(), 5);
        assert_eq!(samples[2].value, 4.0);
        assert_eq!(samples[2].version, 2);
        assert_eq!(samples[2].sim_time, 2.0);
        assert_eq!(gateway.stats().shadow_serves, 5);
        assert!(gateway.drain_shadow(handle).unwrap().is_empty());
    }

    #[test]
    fn candidate_lifecycle_records_typed_deployments() {
        let obs = Obs::recording();
        let gateway = Gateway::with_obs(GatewayConfig::standard(), obs.clone());
        let handle = gateway.register("m", |f: &[f64]| f[0]);
        gateway
            .publish(handle, Arc::new(FnModel(|f: &[f64]| f[0] + 1.0)), 0.05)
            .unwrap();
        let staged = gateway
            .stage_candidate(
                handle,
                Arc::new(FnModel(|f: &[f64]| f[0] + 2.0)),
                0.02,
                DeployPhase::Shadow,
                0,
                "retrain:drift",
                1.0,
            )
            .unwrap();
        assert_eq!(staged, 2);
        gateway
            .advance_candidate(handle, 25, "shadow_healthy", 2.0)
            .unwrap();
        assert_eq!(
            gateway.candidate_status(handle).unwrap(),
            Some((2, DeployPhase::Canary))
        );
        let promoted = gateway
            .promote_candidate(handle, 0.02, "canary_healthy", 3.0)
            .unwrap();
        assert_eq!(promoted, 2);
        assert_eq!(gateway.candidate_status(handle).unwrap(), None);
        assert_eq!(gateway.current_version(handle).unwrap(), Some(2));
        let p = gateway.predict(handle, &[1.0], 4.0).unwrap();
        assert_eq!(p.value, 3.0, "promoted candidate now serves");
        // A failed candidate: stage then demote.
        gateway
            .stage_candidate(
                handle,
                Arc::new(FnModel(|f: &[f64]| f[0] + 9.0)),
                0.02,
                DeployPhase::Canary,
                10,
                "retrain:drift",
                5.0,
            )
            .unwrap();
        gateway
            .demote_candidate(handle, "canary_unhealthy", 6.0)
            .unwrap();
        assert_eq!(gateway.candidate_status(handle).unwrap(), None);
        let trace = obs.snapshot();
        let got: Vec<(DeploymentKind, String, u64)> = trace
            .deployments
            .iter()
            .map(|d| (d.kind, d.cause.clone(), d.version))
            .collect();
        assert_eq!(
            got,
            vec![
                (DeploymentKind::Publish, "manual".to_string(), 1),
                (DeploymentKind::ShadowStart, "retrain:drift".to_string(), 2),
                (DeploymentKind::CanaryStart, "shadow_healthy".to_string(), 2),
                (DeploymentKind::Promote, "canary_healthy".to_string(), 2),
                (DeploymentKind::CanaryStart, "retrain:drift".to_string(), 3),
                (DeploymentKind::Demote, "canary_unhealthy".to_string(), 3),
            ]
        );
        assert!(trace.deployments.iter().all(|d| d.model_id == "m"));
    }

    #[test]
    fn publish_discards_staged_candidate() {
        let obs = Obs::recording();
        let gateway = Gateway::with_obs(GatewayConfig::standard(), obs.clone());
        let handle = gateway.register("m", |f: &[f64]| f[0]);
        gateway
            .publish(handle, Arc::new(FnModel(|f: &[f64]| f[0] + 1.0)), 0.05)
            .unwrap();
        gateway
            .stage_candidate(
                handle,
                Arc::new(FnModel(|f: &[f64]| f[0] + 2.0)),
                0.02,
                DeployPhase::Shadow,
                0,
                "test",
                1.0,
            )
            .unwrap();
        gateway
            .publish(handle, Arc::new(FnModel(|f: &[f64]| f[0] + 3.0)), 0.01)
            .unwrap();
        assert_eq!(gateway.candidate_status(handle).unwrap(), None);
        let trace = obs.snapshot();
        let demote = trace
            .deployments
            .iter()
            .find(|d| d.kind == DeploymentKind::Demote)
            .expect("implicit demote recorded");
        assert_eq!(demote.cause, "superseded_by_publish");
    }

    #[test]
    fn version_scoped_poison_spares_other_versions() {
        let mut config = GatewayConfig::standard();
        config.cache_capacity = 0;
        let (gateway, handle) = identity_gateway(config);
        gateway
            .inject_faults(handle, ModelFaults::new(7, 0.0, 0.0, 4.0))
            .unwrap();
        gateway
            .set_poison_scope(handle, PoisonScope::Version(2))
            .unwrap();
        gateway
            .stage_candidate(
                handle,
                Arc::new(FnModel(|f: &[f64]| f[0] + 1.0)),
                0.05,
                DeployPhase::Shadow,
                0,
                "test",
                0.0,
            )
            .unwrap();
        let p = gateway.predict(handle, &[1.0], 0.0).unwrap();
        assert_eq!(p.value, 2.0, "primary v1 is outside the poison scope");
        let samples = gateway.drain_shadow(handle).unwrap();
        assert_eq!(samples[0].value, 8.0, "candidate v2 output is poisoned 4x");
        // Widen to all versions: the primary is now hit too.
        gateway.set_poison_scope(handle, PoisonScope::All).unwrap();
        let p = gateway.predict(handle, &[1.0], 1.0).unwrap();
        assert_eq!(p.value, 8.0);
    }
}
