//! Sharded LRU prediction cache.
//!
//! Predictions are pure functions of `(model id, version, feature digest)`,
//! so a recurring plan signature (the paper's "recurrent jobs" workload,
//! Zhu et al. §3) can skip inference entirely. The cache is sharded to keep
//! lock contention off the multi-threaded serving path; each shard runs an
//! exact LRU over its own slice of the capacity.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Key identifying one cached prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Gateway-stable model id ([`crate::ModelHandle::index`]).
    pub model: u64,
    /// Deployed model version the prediction came from.
    pub version: u64,
    /// FNV-1a digest of the feature vector bits (`obs::digest_f64`).
    pub digest: u64,
}

impl CacheKey {
    fn shard_hash(&self) -> u64 {
        // SplitMix64 finalizer over the mixed key — spreads sequential
        // digests evenly across shards.
        let mut x = self
            .model
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(17)
            ^ self.version.wrapping_mul(0xBF58_476D_1CE4_E5B9)
            ^ self.digest;
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
}

#[derive(Debug, Default)]
struct Shard {
    /// key → (value, last-touch tick).
    map: HashMap<CacheKey, (f64, u64)>,
    /// Monotonic per-shard recency clock.
    tick: u64,
}

impl Shard {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

/// Sharded LRU cache of scalar predictions.
#[derive(Debug)]
pub struct PredictionCache {
    shards: Vec<Mutex<Shard>>,
    per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PredictionCache {
    /// Creates a cache holding roughly `capacity` entries across `shards`
    /// shards (each shard holds `ceil(capacity / shards)`, min 1).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.div_ceil(shards).max(1);
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &CacheKey) -> usize {
        (key.shard_hash() % self.shards.len() as u64) as usize
    }

    /// Looks up a prediction, bumping its recency and the hit/miss counters.
    pub fn get(&self, key: &CacheKey) -> Option<f64> {
        let mut shard = self.shards[self.shard_of(key)].lock();
        let tick = shard.touch();
        match shard.map.get_mut(key) {
            Some((value, last)) => {
                *last = tick;
                let value = *value;
                drop(shard);
                self.hits.fetch_add(1, Relaxed);
                Some(value)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Relaxed);
                None
            }
        }
    }

    /// Looks up a prediction without touching recency or counters.
    pub fn peek(&self, key: &CacheKey) -> Option<f64> {
        let shard = self.shards[self.shard_of(key)].lock();
        shard.map.get(key).map(|&(value, _)| value)
    }

    /// Inserts (or refreshes) a prediction, evicting the least-recently-used
    /// entry of the target shard if it is full.
    pub fn insert(&self, key: CacheKey, value: f64) {
        let mut shard = self.shards[self.shard_of(&key)].lock();
        let tick = shard.touch();
        if shard.map.len() >= self.per_shard && !shard.map.contains_key(&key) {
            if let Some(victim) = shard
                .map
                .iter()
                .min_by_key(|(_, &(_, last))| last)
                .map(|(k, _)| *k)
            {
                shard.map.remove(&victim);
                self.evictions.fetch_add(1, Relaxed);
            }
        }
        shard.map.insert(key, (value, tick));
    }

    /// Total entries currently cached.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard entry budget.
    pub fn per_shard_capacity(&self) -> usize {
        self.per_shard
    }

    /// All cached keys of one shard, most recent first (test/diagnostic
    /// helper; takes the shard lock).
    pub fn shard_keys_by_recency(&self, shard: usize) -> Vec<CacheKey> {
        let guard = self.shards[shard].lock();
        let mut entries: Vec<(CacheKey, u64)> =
            guard.map.iter().map(|(k, &(_, last))| (*k, last)).collect();
        drop(guard);
        entries.sort_by_key(|&(_, last)| std::cmp::Reverse(last));
        entries.into_iter().map(|(k, _)| k).collect()
    }

    /// Shard index a key maps to (test/diagnostic helper).
    pub fn shard_index(&self, key: &CacheKey) -> usize {
        self.shard_of(key)
    }

    /// Cache hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Relaxed)
    }

    /// Cache misses since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Relaxed)
    }

    /// Evictions since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(d: u64) -> CacheKey {
        CacheKey {
            model: 0,
            version: 1,
            digest: d,
        }
    }

    #[test]
    fn hit_returns_inserted_value_bitwise() {
        let cache = PredictionCache::new(8, 2);
        cache.insert(key(42), 1.5e-3);
        assert_eq!(cache.get(&key(42)).unwrap().to_bits(), 1.5e-3f64.to_bits());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 0);
    }

    #[test]
    fn miss_counts_and_returns_none() {
        let cache = PredictionCache::new(8, 2);
        assert!(cache.get(&key(7)).is_none());
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent_within_shard() {
        // Single shard, capacity 2: inserting a third key evicts the least
        // recently used of the first two.
        let cache = PredictionCache::new(2, 1);
        cache.insert(key(1), 1.0);
        cache.insert(key(2), 2.0);
        assert!(cache.get(&key(1)).is_some()); // key 1 now most recent
        cache.insert(key(3), 3.0); // evicts key 2
        assert!(cache.peek(&key(1)).is_some());
        assert!(cache.peek(&key(2)).is_none());
        assert!(cache.peek(&key(3)).is_some());
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let cache = PredictionCache::new(2, 1);
        cache.insert(key(1), 1.0);
        cache.insert(key(2), 2.0);
        cache.insert(key(1), 10.0); // refresh, not an eviction
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.peek(&key(1)), Some(10.0));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn capacity_is_per_shard() {
        let cache = PredictionCache::new(16, 4);
        assert_eq!(cache.shard_count(), 4);
        assert_eq!(cache.per_shard_capacity(), 4);
    }
}
