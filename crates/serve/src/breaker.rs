//! Per-model circuit breaker.
//!
//! The paper's guardrails demote a misbehaving model to the engine default
//! rather than letting it poison query plans (Zhu et al. §4). The breaker is
//! the serving-side half of that contract: a classic three-state machine
//! (Closed → Open → HalfOpen) driven by *simulated* time, so same-seed runs
//! replay the exact same transition sequence.
//!
//! ```text
//!            N consecutive failures
//!   Closed ───────────────────────────▶ Open
//!     ▲                                  │ cooldown elapses
//!     │  probe_successes in a row        ▼
//!     └────────────────────────────── HalfOpen
//!                 (any probe failure reopens)
//! ```
//!
//! Each reopen from a failed half-open probe multiplies the cooldown by
//! `backoff_factor` (capped at `max_cooldown_ticks`), so a persistently
//! broken model is probed exponentially less often; closing fully resets
//! the backoff. An optional fractional jitter decorrelates probe times
//! across breakers, drawn from a SplitMix64 stream seeded by
//! `BreakerConfig::seed` — deterministic, so same-seed replays stay
//! byte-identical.

use adas_faultsim::seed::derive;
use serde::Serialize;

/// Breaker tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BreakerConfig {
    /// Master switch; when false the breaker never trips and routing always
    /// goes to the model.
    pub enabled: bool,
    /// Consecutive failures (timeouts, stale serves, guard trips) that open
    /// the breaker. Minimum 1.
    pub failure_threshold: u32,
    /// Simulated ticks the breaker stays open before admitting a half-open
    /// probe, for the first open after a closed period.
    pub cooldown_ticks: f64,
    /// Multiplier applied to the cooldown on every consecutive reopen (a
    /// half-open probe failing). Values below 1 are treated as 1 (no
    /// backoff). Fully closing resets the backoff.
    pub backoff_factor: f64,
    /// Upper bound on the pre-jitter cooldown, so backoff can never push
    /// the next probe out indefinitely.
    pub max_cooldown_ticks: f64,
    /// Deterministic jitter: each cooldown is stretched by a factor drawn
    /// uniformly from `[1, 1 + jitter_frac)` on a seeded SplitMix64 stream.
    /// `0.0` (the default) disables jitter entirely.
    pub jitter_frac: f64,
    /// Seed for the jitter stream. Same seed ⇒ same jitter sequence ⇒
    /// byte-identical replays.
    pub seed: u64,
    /// Consecutive half-open probe successes required to close again.
    /// Minimum 1.
    pub probe_successes: u32,
    /// Poison guard: a fresh prediction whose magnitude differs from the
    /// registered heuristic fallback by more than this factor counts as a
    /// failure and is served from the fallback instead. `f64::INFINITY`
    /// disables the guard (the default). Intended for the repo's
    /// non-negative prediction spaces (ln-cardinality, ln-cost, durations).
    pub guard_factor: f64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            failure_threshold: 4,
            cooldown_ticks: 32.0,
            backoff_factor: 2.0,
            max_cooldown_ticks: 256.0,
            jitter_frac: 0.0,
            seed: 0,
            probe_successes: 2,
            guard_factor: f64::INFINITY,
        }
    }
}

impl BreakerConfig {
    /// A breaker that never trips.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }
}

/// Breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum BreakerState {
    /// Normal operation: requests route to the model.
    Closed,
    /// Tripped: requests route to the heuristic fallback until the cooldown
    /// elapses.
    Open,
    /// Probing: requests route to the model; successes close the breaker,
    /// any failure reopens it.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name used in obs labels and traces.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// One observed state change, surfaced so the gateway can record it in the
/// flight recorder in caller order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// State before the change.
    pub from: BreakerState,
    /// State after the change.
    pub to: BreakerState,
}

/// The per-model breaker state machine. All methods are synchronous and are
/// only ever called from the gateway's caller thread, in request order.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    probes_succeeded: u32,
    open_until: f64,
    transitions: u64,
    /// Consecutive opens since the last full close (drives the backoff).
    reopens: u32,
    /// Monotone count of every open ever — the jitter stream index, so
    /// repeated open/close cycles draw fresh (but reproducible) jitter.
    total_opens: u64,
}

impl CircuitBreaker {
    /// Creates a closed breaker.
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            probes_succeeded: 0,
            open_until: 0.0,
            transitions: 0,
            reopens: 0,
            total_opens: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Total state changes since construction.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Consecutive opens since the breaker last fully closed (0 while it
    /// has stayed closed). Each additional open in the streak multiplies
    /// the next cooldown by `backoff_factor`.
    pub fn open_streak(&self) -> u32 {
        self.reopens
    }

    /// The cooldown the *next* open would impose, after backoff, cap, and
    /// deterministic jitter.
    fn next_cooldown(&self) -> f64 {
        let factor = self.config.backoff_factor.max(1.0);
        // Exponent is clamped so pathological configs can't overflow powi
        // into infinity before the cap applies.
        let backed_off = self.config.cooldown_ticks * factor.powi(self.reopens.min(64) as i32);
        let capped = backed_off.min(
            self.config
                .max_cooldown_ticks
                .max(self.config.cooldown_ticks),
        );
        if self.config.jitter_frac > 0.0 {
            // 53 high-quality mantissa bits of the SplitMix64 draw → [0, 1).
            let unit =
                (derive(self.config.seed, self.total_opens) >> 11) as f64 / (1u64 << 53) as f64;
            capped * (1.0 + self.config.jitter_frac * unit)
        } else {
            capped
        }
    }

    /// Opens the breaker at `sim_time`, advancing the backoff counters.
    fn open(&mut self, sim_time: f64) -> Option<Transition> {
        self.open_until = sim_time + self.next_cooldown();
        self.reopens = self.reopens.saturating_add(1);
        self.total_opens += 1;
        self.shift(BreakerState::Open)
    }

    fn shift(&mut self, to: BreakerState) -> Option<Transition> {
        let from = self.state;
        if from == to {
            return None;
        }
        self.state = to;
        self.transitions += 1;
        Some(Transition { from, to })
    }

    /// Routing decision for a request arriving at `sim_time`: `true` sends
    /// it to the model, `false` to the fallback. Performs the
    /// Open → HalfOpen transition when the cooldown has elapsed (the
    /// admitted request becomes the first probe).
    pub fn allow(&mut self, sim_time: f64) -> (bool, Option<Transition>) {
        if !self.config.enabled {
            return (true, None);
        }
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => (true, None),
            BreakerState::Open => {
                if sim_time >= self.open_until {
                    self.probes_succeeded = 0;
                    (true, self.shift(BreakerState::HalfOpen))
                } else {
                    (false, None)
                }
            }
        }
    }

    /// Records a successful model serve.
    pub fn on_success(&mut self) -> Option<Transition> {
        if !self.config.enabled {
            return None;
        }
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures = 0;
                None
            }
            BreakerState::HalfOpen => {
                self.probes_succeeded += 1;
                if self.probes_succeeded >= self.config.probe_successes.max(1) {
                    self.consecutive_failures = 0;
                    self.reopens = 0; // full close resets the backoff
                    self.shift(BreakerState::Closed)
                } else {
                    None
                }
            }
            // A success can land while Open when the request was admitted
            // before the breaker tripped (in-flight at trip time); ignore it.
            BreakerState::Open => None,
        }
    }

    /// Records a failed model serve (timeout, stale, or guard trip) at
    /// `sim_time`.
    pub fn on_failure(&mut self, sim_time: f64) -> Option<Transition> {
        if !self.config.enabled {
            return None;
        }
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold.max(1) {
                    self.open(sim_time)
                } else {
                    None
                }
            }
            BreakerState::HalfOpen => self.open(sim_time),
            BreakerState::Open => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(threshold: u32, cooldown: f64, probes: u32) -> BreakerConfig {
        BreakerConfig {
            enabled: true,
            failure_threshold: threshold,
            cooldown_ticks: cooldown,
            backoff_factor: 2.0,
            max_cooldown_ticks: 8.0 * cooldown,
            jitter_frac: 0.0,
            seed: 0,
            probe_successes: probes,
            guard_factor: f64::INFINITY,
        }
    }

    #[test]
    fn opens_after_threshold_failures() {
        let mut b = CircuitBreaker::new(config(3, 10.0, 1));
        assert!(b.on_failure(0.0).is_none());
        assert!(b.on_failure(1.0).is_none());
        let t = b.on_failure(2.0).unwrap();
        assert_eq!(t.from, BreakerState::Closed);
        assert_eq!(t.to, BreakerState::Open);
        assert!(!b.allow(3.0).0);
    }

    #[test]
    fn success_resets_failure_streak() {
        let mut b = CircuitBreaker::new(config(2, 10.0, 1));
        b.on_failure(0.0);
        b.on_success();
        assert!(b.on_failure(1.0).is_none(), "streak was reset");
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_after_cooldown_then_closes_on_probes() {
        let mut b = CircuitBreaker::new(config(1, 10.0, 2));
        b.on_failure(5.0); // opens, cooldown until 15.0
        assert!(!b.allow(14.9).0);
        let (allowed, t) = b.allow(15.0);
        assert!(allowed);
        assert_eq!(t.unwrap().to, BreakerState::HalfOpen);
        assert!(b.on_success().is_none(), "needs two probes");
        let t = b.on_success().unwrap();
        assert_eq!(t.to, BreakerState::Closed);
    }

    #[test]
    fn probe_failure_reopens_with_backed_off_cooldown() {
        let mut b = CircuitBreaker::new(config(1, 10.0, 2));
        b.on_failure(0.0); // first open: cooldown 10
        b.allow(10.0); // half-open
        let t = b.on_failure(10.0).unwrap();
        assert_eq!(t.from, BreakerState::HalfOpen);
        assert_eq!(t.to, BreakerState::Open);
        // Second open in the streak: cooldown doubles to 20.
        assert!(!b.allow(29.9).0);
        assert!(b.allow(30.0).0);
        assert_eq!(b.open_streak(), 2);
    }

    #[test]
    fn backoff_doubles_per_reopen_and_caps() {
        // cooldown 10, factor 2, cap 80: sequence 10, 20, 40, 80, 80, …
        let mut b = CircuitBreaker::new(config(1, 10.0, 2));
        let mut now = 0.0;
        let mut cooldowns = Vec::new();
        for _ in 0..6 {
            b.on_failure(now); // opens (or reopens from half-open)
            assert_eq!(b.state(), BreakerState::Open);
            cooldowns.push(b.open_until - now);
            now = b.open_until;
            let (allowed, _) = b.allow(now); // half-open probe at the boundary
            assert!(allowed);
        }
        assert_eq!(cooldowns, vec![10.0, 20.0, 40.0, 80.0, 80.0, 80.0]);
    }

    #[test]
    fn closing_resets_the_backoff() {
        let mut b = CircuitBreaker::new(config(1, 10.0, 1));
        b.on_failure(0.0); // open, cooldown 10
        b.allow(10.0); // half-open
        b.on_failure(10.0); // reopen, cooldown 20
        b.allow(30.0); // half-open
        b.on_success(); // closes (1 probe), streak resets
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.open_streak(), 0);
        b.on_failure(40.0); // fresh open: back to the base cooldown
        assert!(!b.allow(49.9).0);
        assert!(b.allow(50.0).0);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let jittered = |seed: u64| {
            let mut cfg = config(1, 10.0, 2);
            cfg.jitter_frac = 0.5;
            cfg.seed = seed;
            let mut b = CircuitBreaker::new(cfg);
            let mut now = 0.0;
            let mut cooldowns = Vec::new();
            for _ in 0..4 {
                b.on_failure(now);
                cooldowns.push(b.open_until - now);
                now = b.open_until;
                b.allow(now);
            }
            cooldowns
        };
        let a = jittered(7);
        let b = jittered(7);
        assert_eq!(a, b, "same seed must draw the same jitter");
        let c = jittered(8);
        assert_ne!(a, c, "different seeds must draw different jitter");
        // Each cooldown stays within [base, base * 1.5).
        for (i, &cd) in a.iter().enumerate() {
            let base = 10.0 * 2f64.powi(i as i32);
            assert!(cd >= base && cd < base * 1.5, "cooldown {i} = {cd}");
        }
    }

    #[test]
    fn disabled_breaker_never_trips() {
        let mut b = CircuitBreaker::new(BreakerConfig::disabled());
        for i in 0..100 {
            assert!(b.on_failure(i as f64).is_none());
        }
        assert!(b.allow(0.0).0);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.transitions(), 0);
    }
}
