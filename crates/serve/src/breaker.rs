//! Per-model circuit breaker.
//!
//! The paper's guardrails demote a misbehaving model to the engine default
//! rather than letting it poison query plans (Zhu et al. §4). The breaker is
//! the serving-side half of that contract: a classic three-state machine
//! (Closed → Open → HalfOpen) driven by *simulated* time, so same-seed runs
//! replay the exact same transition sequence.
//!
//! ```text
//!            N consecutive failures
//!   Closed ───────────────────────────▶ Open
//!     ▲                                  │ cooldown_ticks elapse
//!     │  probe_successes in a row        ▼
//!     └────────────────────────────── HalfOpen
//!                 (any probe failure reopens)
//! ```

use serde::Serialize;

/// Breaker tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BreakerConfig {
    /// Master switch; when false the breaker never trips and routing always
    /// goes to the model.
    pub enabled: bool,
    /// Consecutive failures (timeouts, stale serves, guard trips) that open
    /// the breaker. Minimum 1.
    pub failure_threshold: u32,
    /// Simulated ticks the breaker stays open before admitting a half-open
    /// probe.
    pub cooldown_ticks: f64,
    /// Consecutive half-open probe successes required to close again.
    /// Minimum 1.
    pub probe_successes: u32,
    /// Poison guard: a fresh prediction whose magnitude differs from the
    /// registered heuristic fallback by more than this factor counts as a
    /// failure and is served from the fallback instead. `f64::INFINITY`
    /// disables the guard (the default). Intended for the repo's
    /// non-negative prediction spaces (ln-cardinality, ln-cost, durations).
    pub guard_factor: f64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            failure_threshold: 4,
            cooldown_ticks: 32.0,
            probe_successes: 2,
            guard_factor: f64::INFINITY,
        }
    }
}

impl BreakerConfig {
    /// A breaker that never trips.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }
}

/// Breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum BreakerState {
    /// Normal operation: requests route to the model.
    Closed,
    /// Tripped: requests route to the heuristic fallback until the cooldown
    /// elapses.
    Open,
    /// Probing: requests route to the model; successes close the breaker,
    /// any failure reopens it.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name used in obs labels and traces.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// One observed state change, surfaced so the gateway can record it in the
/// flight recorder in caller order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// State before the change.
    pub from: BreakerState,
    /// State after the change.
    pub to: BreakerState,
}

/// The per-model breaker state machine. All methods are synchronous and are
/// only ever called from the gateway's caller thread, in request order.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    probes_succeeded: u32,
    open_until: f64,
    transitions: u64,
}

impl CircuitBreaker {
    /// Creates a closed breaker.
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            probes_succeeded: 0,
            open_until: 0.0,
            transitions: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Total state changes since construction.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    fn shift(&mut self, to: BreakerState) -> Option<Transition> {
        let from = self.state;
        if from == to {
            return None;
        }
        self.state = to;
        self.transitions += 1;
        Some(Transition { from, to })
    }

    /// Routing decision for a request arriving at `sim_time`: `true` sends
    /// it to the model, `false` to the fallback. Performs the
    /// Open → HalfOpen transition when the cooldown has elapsed (the
    /// admitted request becomes the first probe).
    pub fn allow(&mut self, sim_time: f64) -> (bool, Option<Transition>) {
        if !self.config.enabled {
            return (true, None);
        }
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => (true, None),
            BreakerState::Open => {
                if sim_time >= self.open_until {
                    self.probes_succeeded = 0;
                    (true, self.shift(BreakerState::HalfOpen))
                } else {
                    (false, None)
                }
            }
        }
    }

    /// Records a successful model serve.
    pub fn on_success(&mut self) -> Option<Transition> {
        if !self.config.enabled {
            return None;
        }
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures = 0;
                None
            }
            BreakerState::HalfOpen => {
                self.probes_succeeded += 1;
                if self.probes_succeeded >= self.config.probe_successes.max(1) {
                    self.consecutive_failures = 0;
                    self.shift(BreakerState::Closed)
                } else {
                    None
                }
            }
            // A success can land while Open when the request was admitted
            // before the breaker tripped (in-flight at trip time); ignore it.
            BreakerState::Open => None,
        }
    }

    /// Records a failed model serve (timeout, stale, or guard trip) at
    /// `sim_time`.
    pub fn on_failure(&mut self, sim_time: f64) -> Option<Transition> {
        if !self.config.enabled {
            return None;
        }
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold.max(1) {
                    self.open_until = sim_time + self.config.cooldown_ticks;
                    self.shift(BreakerState::Open)
                } else {
                    None
                }
            }
            BreakerState::HalfOpen => {
                self.open_until = sim_time + self.config.cooldown_ticks;
                self.shift(BreakerState::Open)
            }
            BreakerState::Open => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(threshold: u32, cooldown: f64, probes: u32) -> BreakerConfig {
        BreakerConfig {
            enabled: true,
            failure_threshold: threshold,
            cooldown_ticks: cooldown,
            probe_successes: probes,
            guard_factor: f64::INFINITY,
        }
    }

    #[test]
    fn opens_after_threshold_failures() {
        let mut b = CircuitBreaker::new(config(3, 10.0, 1));
        assert!(b.on_failure(0.0).is_none());
        assert!(b.on_failure(1.0).is_none());
        let t = b.on_failure(2.0).unwrap();
        assert_eq!(t.from, BreakerState::Closed);
        assert_eq!(t.to, BreakerState::Open);
        assert!(!b.allow(3.0).0);
    }

    #[test]
    fn success_resets_failure_streak() {
        let mut b = CircuitBreaker::new(config(2, 10.0, 1));
        b.on_failure(0.0);
        b.on_success();
        assert!(b.on_failure(1.0).is_none(), "streak was reset");
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_after_cooldown_then_closes_on_probes() {
        let mut b = CircuitBreaker::new(config(1, 10.0, 2));
        b.on_failure(5.0); // opens, cooldown until 15.0
        assert!(!b.allow(14.9).0);
        let (allowed, t) = b.allow(15.0);
        assert!(allowed);
        assert_eq!(t.unwrap().to, BreakerState::HalfOpen);
        assert!(b.on_success().is_none(), "needs two probes");
        let t = b.on_success().unwrap();
        assert_eq!(t.to, BreakerState::Closed);
    }

    #[test]
    fn probe_failure_reopens() {
        let mut b = CircuitBreaker::new(config(1, 10.0, 2));
        b.on_failure(0.0);
        b.allow(10.0); // half-open
        let t = b.on_failure(10.0).unwrap();
        assert_eq!(t.from, BreakerState::HalfOpen);
        assert_eq!(t.to, BreakerState::Open);
        assert!(!b.allow(19.9).0);
        assert!(b.allow(20.0).0);
    }

    #[test]
    fn disabled_breaker_never_trips() {
        let mut b = CircuitBreaker::new(BreakerConfig::disabled());
        for i in 0..100 {
            assert!(b.on_failure(i as f64).is_none());
        }
        assert!(b.allow(0.0).0);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.transitions(), 0);
    }
}
