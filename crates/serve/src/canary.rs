//! Candidate deployments: shadow and canary evaluation types.
//!
//! A *candidate* is a model version that has been staged behind the serving
//! version but not yet published. The gateway can run it in two phases:
//!
//! * **Shadow** — every request is mirrored through the candidate on the
//!   caller thread; its answers are logged (as [`ShadowSample`]s and
//!   `shadow_serve` decision records) but never served.
//! * **Canary** — a deterministic slice of live traffic (`traffic_pct` of
//!   requests, by arrival ticket) is answered by the candidate; the rest
//!   stays on the primary.
//!
//! Promotion and demotion decisions belong to the autonomy controller
//! ([`crate::AutonomyController`]); the gateway only provides the routing
//! mechanics and keeps them deterministic (the ticket counter advances on
//! the caller thread in request order, so same-seed replays route the same
//! requests to the candidate).

use serde::Serialize;

/// Phase of a staged candidate version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum DeployPhase {
    /// The candidate runs on mirrored traffic; its answers are not served.
    Shadow,
    /// The candidate serves a deterministic percentage of live traffic.
    Canary,
}

impl DeployPhase {
    /// Stable lowercase name used in obs labels and traces.
    pub fn name(self) -> &'static str {
        match self {
            DeployPhase::Shadow => "shadow",
            DeployPhase::Canary => "canary",
        }
    }
}

/// One mirrored inference by a shadow-phase candidate, as drained by
/// [`crate::Gateway::drain_shadow`]. Pairs with the primary's answer for
/// the same request via `features_digest`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ShadowSample {
    /// Digest of the request's feature vector.
    pub features_digest: u64,
    /// The candidate's provisional version.
    pub version: u64,
    /// What the candidate would have answered (poison bias included when a
    /// version-scoped poison targets the candidate).
    pub value: f64,
    /// Simulated arrival time of the mirrored request.
    pub sim_time: f64,
}
