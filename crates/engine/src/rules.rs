//! Rule-based rewrite optimizer with a per-rule enable bitmask.
//!
//! SCOPE's optimizer "has 256 rules … which leads to 2^256 rule
//! configurations" (Sec 4.2). This simulator implements a representative
//! twelve-rule rewrite set — enough for a 4096-point configuration space the
//! steering bandit must search with "small incremental steps". The optimizer
//! is cost-guided: a rewrite is accepted only if it lowers cost under the
//! supplied (typically *default*, i.e. error-prone) cardinality model. When
//! the default estimates mislead, an accepted rewrite can *regress* the true
//! cost — the regression that rule-hint steering then learns to avoid
//! per-template.

use crate::cardinality::CardinalityModel;
use crate::cost::CostModel;
use crate::Result;
use adas_obs::Obs;
use adas_workload::plan::{LogicalPlan, PlanKind, Predicate};
use serde::{Deserialize, Serialize};

/// Identifier of one rewrite rule (index into [`ALL_RULES`]).
pub type RuleId = usize;

/// A rewrite rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Rule {
    /// `Filter(Filter(x))` → single `Filter` with merged clauses.
    FilterMerge,
    /// `Filter(Join(L, R))` → `Join(Filter(L), R)`.
    FilterPushJoinLeft,
    /// `Filter(Union(A, B))` → `Union(Filter(A), Filter(B))`.
    FilterPushUnion,
    /// `Filter(Project(x))` → `Project(Filter(x))`.
    FilterPushProject,
    /// `Filter(Aggregate(x))` → `Aggregate(Filter(x))`.
    FilterPushAggregate,
    /// `Project(Project(x))` → outer `Project(x)`.
    ProjectMerge,
    /// `Project(Union(A, B))` → `Union(Project(A), Project(B))`.
    ProjectPushUnion,
    /// `Join(L, R)` → `Join(R, L)` (keys swapped).
    JoinCommute,
    /// `Union(A, B)` → `Union(B, A)`.
    UnionCommute,
    /// `Agg(Union(A, B))` → `Agg(Union(Agg(A), Agg(B)))` (partial
    /// aggregation).
    PartialAggregation,
    /// Multi-clause `Filter` → two stacked filters (first clause split out).
    FilterSplit,
    /// `Union(Filter(A, p), Filter(B, p))` → `Filter(Union(A, B), p)`.
    UnionFilterHoist,
}

/// Every rule, in bitmask order.
pub const ALL_RULES: [Rule; 12] = [
    Rule::FilterMerge,
    Rule::FilterPushJoinLeft,
    Rule::FilterPushUnion,
    Rule::FilterPushProject,
    Rule::FilterPushAggregate,
    Rule::ProjectMerge,
    Rule::ProjectPushUnion,
    Rule::JoinCommute,
    Rule::UnionCommute,
    Rule::PartialAggregation,
    Rule::FilterSplit,
    Rule::UnionFilterHoist,
];

impl Rule {
    /// Stable name for metrics labels and steering provenance.
    pub fn name(self) -> &'static str {
        match self {
            Rule::FilterMerge => "filter_merge",
            Rule::FilterPushJoinLeft => "filter_push_join_left",
            Rule::FilterPushUnion => "filter_push_union",
            Rule::FilterPushProject => "filter_push_project",
            Rule::FilterPushAggregate => "filter_push_aggregate",
            Rule::ProjectMerge => "project_merge",
            Rule::ProjectPushUnion => "project_push_union",
            Rule::JoinCommute => "join_commute",
            Rule::UnionCommute => "union_commute",
            Rule::PartialAggregation => "partial_aggregation",
            Rule::FilterSplit => "filter_split",
            Rule::UnionFilterHoist => "union_filter_hoist",
        }
    }

    /// Attempts the rewrite at this exact node.
    fn apply_here(self, plan: &LogicalPlan) -> Option<LogicalPlan> {
        match self {
            Rule::FilterMerge => match (&plan.kind, plan.children.first().map(|c| &c.kind)) {
                (
                    PlanKind::Filter { predicate: outer },
                    Some(PlanKind::Filter { predicate: inner }),
                ) => {
                    let mut clauses = inner.clauses.clone();
                    clauses.extend(outer.clauses.iter().copied());
                    Some(
                        plan.children[0].children[0]
                            .clone()
                            .filter(Predicate::new(clauses)),
                    )
                }
                _ => None,
            },
            Rule::FilterPushJoinLeft => match &plan.kind {
                PlanKind::Filter { predicate } => match &plan.children[0].kind {
                    PlanKind::Join {
                        left_key,
                        right_key,
                    } => {
                        let join = &plan.children[0];
                        Some(LogicalPlan::join(
                            join.children[0].clone().filter(predicate.clone()),
                            join.children[1].clone(),
                            *left_key,
                            *right_key,
                        ))
                    }
                    _ => None,
                },
                _ => None,
            },
            Rule::FilterPushUnion => match &plan.kind {
                PlanKind::Filter { predicate } => match &plan.children[0].kind {
                    PlanKind::Union => {
                        let u = &plan.children[0];
                        Some(LogicalPlan::union(
                            u.children[0].clone().filter(predicate.clone()),
                            u.children[1].clone().filter(predicate.clone()),
                        ))
                    }
                    _ => None,
                },
                _ => None,
            },
            Rule::FilterPushProject => match &plan.kind {
                PlanKind::Filter { predicate } => match &plan.children[0].kind {
                    PlanKind::Project { columns } => Some(
                        plan.children[0].children[0]
                            .clone()
                            .filter(predicate.clone())
                            .project(columns.clone()),
                    ),
                    _ => None,
                },
                _ => None,
            },
            Rule::FilterPushAggregate => match &plan.kind {
                PlanKind::Filter { predicate } => match &plan.children[0].kind {
                    PlanKind::Aggregate { group_by } => Some(
                        plan.children[0].children[0]
                            .clone()
                            .filter(predicate.clone())
                            .aggregate(group_by.clone()),
                    ),
                    _ => None,
                },
                _ => None,
            },
            Rule::ProjectMerge => match (&plan.kind, plan.children.first().map(|c| &c.kind)) {
                (PlanKind::Project { columns }, Some(PlanKind::Project { .. })) => Some(
                    plan.children[0].children[0]
                        .clone()
                        .project(columns.clone()),
                ),
                _ => None,
            },
            Rule::ProjectPushUnion => match &plan.kind {
                PlanKind::Project { columns } => match &plan.children[0].kind {
                    PlanKind::Union => {
                        let u = &plan.children[0];
                        Some(LogicalPlan::union(
                            u.children[0].clone().project(columns.clone()),
                            u.children[1].clone().project(columns.clone()),
                        ))
                    }
                    _ => None,
                },
                _ => None,
            },
            Rule::JoinCommute => match &plan.kind {
                PlanKind::Join {
                    left_key,
                    right_key,
                } => Some(LogicalPlan::join(
                    plan.children[1].clone(),
                    plan.children[0].clone(),
                    *right_key,
                    *left_key,
                )),
                _ => None,
            },
            Rule::UnionCommute => match &plan.kind {
                PlanKind::Union => Some(LogicalPlan::union(
                    plan.children[1].clone(),
                    plan.children[0].clone(),
                )),
                _ => None,
            },
            Rule::PartialAggregation => match &plan.kind {
                PlanKind::Aggregate { group_by } => match &plan.children[0].kind {
                    PlanKind::Union => {
                        let u = &plan.children[0];
                        // Guard against repeated application: only fire when
                        // the union inputs are not already aggregates.
                        let already = u
                            .children
                            .iter()
                            .any(|c| matches!(c.kind, PlanKind::Aggregate { .. }));
                        if already {
                            return None;
                        }
                        Some(
                            LogicalPlan::union(
                                u.children[0].clone().aggregate(group_by.clone()),
                                u.children[1].clone().aggregate(group_by.clone()),
                            )
                            .aggregate(group_by.clone()),
                        )
                    }
                    _ => None,
                },
                _ => None,
            },
            Rule::FilterSplit => match &plan.kind {
                PlanKind::Filter { predicate } if predicate.clauses.len() >= 2 => {
                    let first = Predicate::new(vec![predicate.clauses[0]]);
                    let rest = Predicate::new(predicate.clauses[1..].to_vec());
                    Some(plan.children[0].clone().filter(first).filter(rest))
                }
                _ => None,
            },
            Rule::UnionFilterHoist => match &plan.kind {
                PlanKind::Union => match (&plan.children[0].kind, &plan.children[1].kind) {
                    (PlanKind::Filter { predicate: pa }, PlanKind::Filter { predicate: pb })
                        if pa == pb =>
                    {
                        Some(
                            LogicalPlan::union(
                                plan.children[0].children[0].clone(),
                                plan.children[1].children[0].clone(),
                            )
                            .filter(pa.clone()),
                        )
                    }
                    _ => None,
                },
                _ => None,
            },
        }
    }

    /// Applies the rule at the first (pre-order) node where it fires.
    pub fn apply_once(self, plan: &LogicalPlan) -> Option<LogicalPlan> {
        if let Some(rewritten) = self.apply_here(plan) {
            return Some(rewritten);
        }
        for (i, child) in plan.children.iter().enumerate() {
            if let Some(new_child) = self.apply_once(child) {
                let mut children = plan.children.clone();
                children[i] = new_child;
                return Some(LogicalPlan {
                    kind: plan.kind.clone(),
                    children,
                });
            }
        }
        None
    }
}

/// A set of enabled rules, as a bitmask over [`ALL_RULES`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RuleSet(pub u64);

impl RuleSet {
    /// All rules enabled (the engine default).
    pub fn all() -> Self {
        Self((1u64 << ALL_RULES.len()) - 1)
    }

    /// No rules enabled.
    pub fn none() -> Self {
        Self(0)
    }

    /// Whether rule `id` is enabled.
    pub fn contains(self, id: RuleId) -> bool {
        self.0 & (1 << id) != 0
    }

    /// Returns a copy with rule `id` toggled.
    pub fn toggled(self, id: RuleId) -> Self {
        Self(self.0 ^ (1 << id))
    }

    /// Enabled rule ids in ascending order.
    pub fn enabled(self) -> Vec<RuleId> {
        (0..ALL_RULES.len()).filter(|&i| self.contains(i)).collect()
    }

    /// Hamming distance to another rule set — the "incremental step" size
    /// the production steering work bounds for interpretability.
    pub fn hamming(self, other: RuleSet) -> u32 {
        (self.0 ^ other.0).count_ones()
    }

    /// All rule sets within Hamming distance 1 (including self).
    pub fn neighbors(self) -> Vec<RuleSet> {
        let mut v = vec![self];
        v.extend((0..ALL_RULES.len()).map(|i| self.toggled(i)));
        v
    }
}

/// The cost-guided rewrite optimizer.
#[derive(Debug, Clone)]
pub struct Optimizer {
    cost_model: CostModel,
    max_passes: usize,
    obs: Obs,
}

/// Result of an optimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct Optimized {
    /// The final plan.
    pub plan: LogicalPlan,
    /// Estimated cost of the final plan (under the guiding model).
    pub estimated_cost: f64,
    /// Rules applied, in order.
    pub applied: Vec<Rule>,
}

impl Default for Optimizer {
    fn default() -> Self {
        Self {
            cost_model: CostModel::default(),
            max_passes: 32,
            obs: Obs::disabled(),
        }
    }
}

impl Optimizer {
    /// Creates an optimizer with an explicit cost model and pass budget.
    /// Observability is disabled; see [`Optimizer::with_obs`].
    pub fn new(cost_model: CostModel, max_passes: usize) -> Self {
        Self::with_obs(cost_model, max_passes, Obs::disabled())
    }

    /// Creates an optimizer that records rule firings into `obs`.
    pub fn with_obs(cost_model: CostModel, max_passes: usize, obs: Obs) -> Self {
        Self {
            cost_model,
            max_passes,
            obs,
        }
    }

    /// Greedy first-improvement rewriting: on each pass, the first enabled
    /// rule whose application strictly lowers the estimated cost is
    /// accepted; the loop ends at a fixpoint or after `max_passes`.
    pub fn optimize(
        &self,
        plan: &LogicalPlan,
        rules: RuleSet,
        cards: &dyn CardinalityModel,
    ) -> Result<Optimized> {
        let span = self.obs.span_enter("engine.rules", "optimize", 0.0);
        let mut current = plan.clone();
        let mut current_cost = self.cost_model.total_cost(&current, cards)?;
        let initial_cost = current_cost;
        let mut applied = Vec::new();
        for _ in 0..self.max_passes {
            let mut improved = false;
            for (id, rule) in ALL_RULES.iter().enumerate() {
                if !rules.contains(id) {
                    continue;
                }
                if let Some(candidate) = rule.apply_once(&current) {
                    // A rewrite can produce a plan whose column references no
                    // longer resolve (e.g. commuting a join under a filter
                    // bound to the old left side). Such candidates are
                    // semantically invalid: reject the rewrite rather than
                    // failing the whole optimization.
                    let Ok(cost) = self.cost_model.total_cost(&candidate, cards) else {
                        self.obs
                            .counter_add("engine.rules", "rewrite_invalid", &[], 1);
                        continue;
                    };
                    if cost < current_cost - 1e-9 {
                        self.obs.counter_add(
                            "engine.rules",
                            "rule_fired",
                            &[("rule", rule.name())],
                            1,
                        );
                        current = candidate;
                        current_cost = cost;
                        applied.push(*rule);
                        improved = true;
                        break;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        if self.obs.is_enabled() {
            // Only the tail is batched: the rewrite loop above calls
            // `total_cost` with a caller-supplied cardinality model that may
            // itself record into this handle (e.g. a served model), so the
            // lock must not be held across it.
            let mut batch = self.obs.batch();
            batch.gauge_set(
                "engine.rules",
                "cost_reduction_ratio",
                &[],
                if initial_cost > 0.0 {
                    current_cost / initial_cost
                } else {
                    1.0
                },
            );
            batch.span_exit(span, 0.0);
        }
        Ok(Optimized {
            plan: current,
            estimated_cost: current_cost,
            applied,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cardinality::{DefaultEstimator, TrueCardinality};
    use adas_workload::catalog::Catalog;
    use adas_workload::plan::{CmpOp, Comparison, LogicalPlan, Predicate};

    fn catalog() -> Catalog {
        Catalog::standard()
    }

    #[test]
    fn filter_merge_combines_clauses() {
        let plan = LogicalPlan::scan("events")
            .filter(Predicate::single(1, CmpOp::Eq, 3))
            .filter(Predicate::single(2, CmpOp::Le, 10));
        let merged = Rule::FilterMerge.apply_once(&plan).unwrap();
        match &merged.kind {
            PlanKind::Filter { predicate } => assert_eq!(predicate.clauses.len(), 2),
            other => panic!("expected filter, got {other:?}"),
        }
        assert_eq!(merged.node_count(), 2);
    }

    #[test]
    fn filter_pushdown_moves_below_join() {
        let plan = LogicalPlan::join(
            LogicalPlan::scan("events"),
            LogicalPlan::scan("users"),
            0,
            0,
        )
        .filter(Predicate::single(1, CmpOp::Eq, 3));
        let pushed = Rule::FilterPushJoinLeft.apply_once(&plan).unwrap();
        assert!(matches!(pushed.kind, PlanKind::Join { .. }));
        assert!(matches!(pushed.children[0].kind, PlanKind::Filter { .. }));
    }

    #[test]
    fn rules_fire_on_nested_nodes() {
        // The rewrite target sits below a project root.
        let plan = LogicalPlan::scan("events")
            .filter(Predicate::single(1, CmpOp::Eq, 3))
            .filter(Predicate::single(2, CmpOp::Le, 10))
            .project(vec![0]);
        let rewritten = Rule::FilterMerge.apply_once(&plan).unwrap();
        assert!(matches!(rewritten.kind, PlanKind::Project { .. }));
        assert_eq!(rewritten.node_count(), 3);
    }

    #[test]
    fn split_and_merge_are_inverse_in_spirit() {
        let plan = LogicalPlan::scan("events").filter(Predicate::new(vec![
            Comparison::new(1, CmpOp::Eq, 3),
            Comparison::new(2, CmpOp::Le, 10),
        ]));
        let split = Rule::FilterSplit.apply_once(&plan).unwrap();
        assert_eq!(split.node_count(), 3);
        let merged = Rule::FilterMerge.apply_once(&split).unwrap();
        assert_eq!(merged.node_count(), 2);
    }

    #[test]
    fn partial_aggregation_guard_prevents_loop() {
        let plan = LogicalPlan::union(LogicalPlan::scan("users"), LogicalPlan::scan("users"))
            .aggregate(vec![1]);
        let once = Rule::PartialAggregation.apply_once(&plan).unwrap();
        // A second application at the same node must not fire.
        assert!(Rule::PartialAggregation.apply_here_test(&once).is_none());
    }

    impl Rule {
        fn apply_here_test(self, plan: &LogicalPlan) -> Option<LogicalPlan> {
            self.apply_here(plan)
        }
    }

    #[test]
    fn ruleset_bit_operations() {
        let all = RuleSet::all();
        assert_eq!(all.enabled().len(), ALL_RULES.len());
        let none = RuleSet::none();
        assert_eq!(none.enabled().len(), 0);
        let one = none.toggled(3);
        assert!(one.contains(3));
        assert_eq!(one.hamming(none), 1);
        assert_eq!(all.hamming(none), ALL_RULES.len() as u32);
        assert_eq!(none.neighbors().len(), ALL_RULES.len() + 1);
    }

    #[test]
    fn optimizer_reduces_estimated_cost() {
        let c = catalog();
        let est = DefaultEstimator::new(&c);
        let plan = LogicalPlan::join(
            LogicalPlan::scan("events"),
            LogicalPlan::scan("users"),
            0,
            0,
        )
        .filter(Predicate::single(1, CmpOp::Eq, 3));
        let opt = Optimizer::default();
        let before = CostModel::default().total_cost(&plan, &est).unwrap();
        let result = opt.optimize(&plan, RuleSet::all(), &est).unwrap();
        assert!(result.estimated_cost < before);
        assert!(!result.applied.is_empty());
    }

    #[test]
    fn disabled_rules_do_not_fire() {
        let c = catalog();
        let est = DefaultEstimator::new(&c);
        let plan = LogicalPlan::join(
            LogicalPlan::scan("events"),
            LogicalPlan::scan("users"),
            0,
            0,
        )
        .filter(Predicate::single(1, CmpOp::Eq, 3));
        let opt = Optimizer::default();
        let result = opt.optimize(&plan, RuleSet::none(), &est).unwrap();
        assert_eq!(result.plan, plan);
        assert!(result.applied.is_empty());
    }

    #[test]
    fn optimizer_terminates_on_adversarial_plan() {
        // Deep stack of filters + unions; all rules enabled.
        let c = catalog();
        let est = DefaultEstimator::new(&c);
        let mut plan = LogicalPlan::union(
            LogicalPlan::scan("events").filter(Predicate::single(1, CmpOp::Le, 10)),
            LogicalPlan::scan("events").filter(Predicate::single(1, CmpOp::Le, 10)),
        );
        for i in 0..5 {
            plan = plan.filter(Predicate::single(2, CmpOp::Le, 100 + i));
        }
        let opt = Optimizer::default();
        let result = opt.optimize(&plan, RuleSet::all(), &est).unwrap();
        assert!(result.applied.len() <= 32);
        result.plan.validate(&c).unwrap();
    }

    #[test]
    fn rule_choice_changes_true_cost() {
        // The Bao premise: different rule configurations lead to different
        // *true* costs, and the default (all-rules) choice is not always
        // best. Verify at least that true costs vary across configurations.
        let c = catalog();
        let est = DefaultEstimator::new(&c);
        let truth = TrueCardinality::new(&c);
        let cm = CostModel::default();
        let plan = LogicalPlan::join(
            LogicalPlan::scan("events"),
            LogicalPlan::scan("users"),
            0,
            0,
        )
        .filter(Predicate::single(0, CmpOp::Le, 500_000));
        let opt = Optimizer::default();
        let mut costs = std::collections::BTreeSet::new();
        for mask in [RuleSet::none(), RuleSet::all(), RuleSet::none().toggled(1)] {
            let r = opt.optimize(&plan, mask, &est).unwrap();
            let true_cost = cm.total_cost(&r.plan, &truth).unwrap();
            costs.insert((true_cost * 1000.0) as u64);
        }
        assert!(
            costs.len() >= 2,
            "rule configs should differentiate true cost"
        );
    }
}
