//! Event-driven cluster execution simulator.
//!
//! Models the runtime behaviour the paper's Phoebe work reacts to: stage
//! tasks scheduled onto machines with bounded slots, local temp storage that
//! fills up on "machine hotspots", and job restarts that must recompute
//! everything not persisted. Checkpointed stages write to a global store
//! instead of local temp — freeing the hotspot and surviving failures.

use crate::physical::{StageDag, StageId};
use crate::{EngineError, Result};
use adas_obs::{CounterHandle, GaugeHandle, HistogramHandle, IndexedSpanKey, Obs, SpanKey};
use adas_simkern::{Component, Ctx, OrderedTick, Simulation};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::rc::Rc;
use std::sync::OnceLock;

/// Cluster parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of machines.
    pub machines: usize,
    /// Concurrent task slots per machine.
    pub slots_per_machine: usize,
    /// Work units one task completes per second.
    pub work_per_second: f64,
    /// Fixed per-task scheduling overhead, seconds.
    pub task_overhead: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            machines: 16,
            slots_per_machine: 4,
            work_per_second: 1_000_000.0,
            task_overhead: 0.5,
        }
    }
}

impl ClusterConfig {
    fn validate(&self) -> Result<()> {
        if self.machines == 0 || self.slots_per_machine == 0 {
            return Err(EngineError::InvalidCluster(
                "machines and slots_per_machine must be >= 1".into(),
            ));
        }
        if self.work_per_second <= 0.0 {
            return Err(EngineError::InvalidCluster(
                "work_per_second must be > 0".into(),
            ));
        }
        Ok(())
    }
}

/// Options controlling one simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimOptions {
    /// Stages whose output is checkpointed to the global store: their output
    /// does not occupy local temp storage, and they survive failures.
    pub checkpointed: HashSet<StageId>,
    /// Stages whose outputs already exist (from a previous run's surviving
    /// checkpoints); they complete instantly at time 0.
    pub precomputed: HashSet<StageId>,
}

/// Result of one simulated execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecReport {
    /// Wall-clock completion time of the whole DAG, seconds.
    pub latency: f64,
    /// Sum of task durations (CPU seconds actually consumed).
    pub total_cpu_seconds: f64,
    /// Per-stage start times.
    pub stage_start: Vec<f64>,
    /// Per-stage finish times.
    pub stage_finish: Vec<f64>,
    /// Per-machine peak local temp storage, bytes.
    pub machine_temp_peak: Vec<f64>,
    /// Per-stage flag: did the stage actually execute in this run (false
    /// for precomputed stages and stages fully shielded by them)? Fault
    /// harnesses assert on this to prove checkpointed work is never redone.
    pub executed: Vec<bool>,
}

impl ExecReport {
    /// Peak temp usage on the most loaded ("hotspot") machine.
    pub fn hotspot_peak(&self) -> f64 {
        self.machine_temp_peak.iter().copied().fold(0.0, f64::max)
    }
}

/// Pre-resolved metric identities for [`Simulator::record_run`] — the
/// recorder's hottest call site. Resolved once per simulator (lazily, so
/// disabled simulators never pay for it) and hash-free on every run after.
#[derive(Debug, Clone)]
struct RunMetrics {
    run_span: SpanKey,
    stage_span: IndexedSpanKey,
    stage_latency: HistogramHandle,
    stages_executed: CounterHandle,
    stages_skipped: CounterHandle,
    hotspot_peak: GaugeHandle,
}

impl RunMetrics {
    fn new(obs: &Obs) -> Self {
        Self {
            run_span: obs.span_key("engine.exec", "run"),
            stage_span: obs.indexed_span_key("engine.exec", "stage"),
            stage_latency: obs.histogram_handle("engine.exec", "stage_latency_seconds", &[], None),
            stages_executed: obs.counter_handle("engine.exec", "stages_executed", &[]),
            stages_skipped: obs.counter_handle("engine.exec", "stages_skipped", &[]),
            hotspot_peak: obs.gauge_handle("engine.exec", "hotspot_peak_bytes", &[]),
        }
    }
}

/// The execution simulator.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: ClusterConfig,
    obs: Obs,
    run_metrics: OnceLock<RunMetrics>,
}

impl Simulator {
    /// Creates a simulator after validating the cluster configuration.
    /// Observability is disabled; see [`Simulator::with_obs`].
    pub fn new(config: ClusterConfig) -> Result<Self> {
        Self::with_obs(config, Obs::disabled())
    }

    /// Creates a simulator that records spans and metrics into `obs`.
    pub fn with_obs(config: ClusterConfig, obs: Obs) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            config,
            obs,
            run_metrics: OnceLock::new(),
        })
    }

    /// The observability handle this simulator records into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Stages that actually have to execute: a stage is required when it is
    /// not precomputed and either feeds no one (a sink) or feeds a required
    /// stage. Stages fully shielded by precomputed outputs are skipped —
    /// this is what makes checkpoint-based recovery cheaper than a full
    /// re-run.
    fn required_stages(dag: &StageDag, options: &SimOptions) -> Vec<bool> {
        Self::required_stages_with(dag, options, &dag.consumers())
    }

    /// [`Simulator::required_stages`] with the consumer lists precomputed,
    /// so the kernel path computes `dag.consumers()` exactly once per run.
    fn required_stages_with(
        dag: &StageDag,
        options: &SimOptions,
        consumers: &[Vec<StageId>],
    ) -> Vec<bool> {
        let n = dag.len();
        let mut required = vec![false; n];
        // Walk sinks-to-sources; topological order means consumers have
        // higher indices, so a reverse scan settles everything in one pass.
        for idx in (0..n).rev() {
            let id = StageId(idx);
            if options.precomputed.contains(&id) {
                continue;
            }
            let is_sink = consumers[idx].is_empty();
            if is_sink || consumers[idx].iter().any(|c| required[c.0]) {
                required[idx] = true;
            }
        }
        required
    }

    /// Runs the DAG to completion and reports the schedule.
    pub fn run(&self, dag: &StageDag, options: &SimOptions) -> Result<ExecReport> {
        let report = self.schedule(dag, options)?.0;
        self.record_run(&report);
        Ok(report)
    }

    /// Raw scheduling path with no observability branch at all — the
    /// baseline `obs_bench` measures the disabled-obs [`Simulator::run`]
    /// path against. Not for production use; it skips trace recording even
    /// when a recording handle is attached.
    pub fn run_unobserved(&self, dag: &StageDag, options: &SimOptions) -> Result<ExecReport> {
        Ok(self.schedule(dag, options)?.0)
    }

    /// Replays a finished schedule into the trace: one `run` span over the
    /// whole DAG, a child span per executed stage (timestamped with the
    /// stage's simulated start/finish), plus execution counters, the
    /// hotspot gauge and a stage-latency histogram.
    ///
    /// This is the recorder's hottest call site (obs_bench measures it), so
    /// the whole replay records through a single [`Obs::batch`] — one lock
    /// acquisition per run — and stage spans use the interned indexed-name
    /// path instead of formatting `stage_{idx}` per stage.
    fn record_run(&self, report: &ExecReport) {
        if !self.obs.is_enabled() {
            return;
        }
        // Handle creation locks the recorder itself, so resolve before
        // opening the batch.
        let metrics = self.run_metrics.get_or_init(|| RunMetrics::new(&self.obs));
        let mut batch = self.obs.batch();
        let root = metrics.run_span.enter(&mut batch, 0.0);
        let mut executed = 0u64;
        let mut skipped = 0u64;
        for (idx, ran) in report.executed.iter().enumerate() {
            if !ran {
                skipped += 1;
                continue;
            }
            executed += 1;
            let span = metrics
                .stage_span
                .enter(&mut batch, idx, report.stage_start[idx]);
            batch.span_exit(span, report.stage_finish[idx]);
            metrics.stage_latency.observe(
                &mut batch,
                report.stage_finish[idx] - report.stage_start[idx],
            );
        }
        metrics.stages_executed.add(&mut batch, executed);
        metrics.stages_skipped.add(&mut batch, skipped);
        metrics.hotspot_peak.set(&mut batch, report.hotspot_peak());
        batch.span_exit(root, report.latency);
    }

    /// Internal scheduler: returns the report plus, for each stage, the
    /// machines its tasks ran on (the temp-output placement machine-failure
    /// analysis needs).
    ///
    /// The schedule is produced by a [`ClusterSim`] component on the
    /// `simkern` discrete-event kernel: stage-task completions are events,
    /// the kernel clock is the only notion of time, and earliest-free-slot
    /// selection is a heap pop instead of the old O(total_slots) scan. The
    /// result is pinned byte-identical to [`Simulator::schedule_legacy`]
    /// by `tests/simkern_equivalence.rs`.
    fn schedule(
        &self,
        dag: &StageDag,
        options: &SimOptions,
    ) -> Result<(ExecReport, Vec<Vec<usize>>)> {
        let consumers = dag.consumers();
        let required = Self::required_stages_with(dag, options, &consumers);
        let cluster = ClusterSim::new(&self.config, dag, required, &consumers);
        let mut sim = Simulation::new(0);
        let cluster = Rc::new(RefCell::new(cluster));
        let id = sim.add_component(cluster.clone());
        sim.schedule(0.0, id, ClusterEvent::Kick);
        sim.run();
        let mut cluster = cluster.borrow_mut();
        debug_assert_eq!(
            cluster.placed,
            cluster.stages.len(),
            "every stage must be placed when the event queue drains"
        );
        let (stage_start, stage_finish, stage_machines, total_cpu, required) = cluster.take();
        let latency = stage_finish.iter().copied().fold(0.0, f64::max);
        let machine_temp_peak =
            self.temp_peaks(dag, options, &stage_finish, &stage_machines, latency);
        Ok((
            ExecReport {
                latency,
                total_cpu_seconds: total_cpu,
                stage_start,
                stage_finish,
                machine_temp_peak,
                executed: required,
            },
            stage_machines,
        ))
    }

    /// The pre-kernel scheduler, kept verbatim as the reference the
    /// equivalence suite and `des_bench` compare against: a blocking loop
    /// over stages with an O(total_slots) earliest-free scan per task.
    /// Production paths go through the kernel-backed [`Simulator::run`];
    /// this one exists to *prove* the port changed nothing.
    pub fn schedule_legacy(
        &self,
        dag: &StageDag,
        options: &SimOptions,
    ) -> Result<(ExecReport, Vec<Vec<usize>>)> {
        let n = dag.len();
        let required = Self::required_stages(dag, options);
        let total_slots = self.config.machines * self.config.slots_per_machine;
        // slot_free[i]: next free time of slot i; slot i lives on machine i / slots_per_machine.
        let mut slot_free = vec![0.0f64; total_slots];
        let mut stage_start = vec![0.0f64; n];
        let mut stage_finish = vec![0.0f64; n];
        // Machines that hold each stage's temp output.
        let mut stage_machines: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut total_cpu = 0.0f64;

        for stage in dag.stages() {
            let idx = stage.id.0;
            if !required[idx] {
                stage_start[idx] = 0.0;
                stage_finish[idx] = 0.0;
                continue;
            }
            let ready = stage
                .inputs
                .iter()
                .map(|s| stage_finish[s.0])
                .fold(0.0f64, f64::max);
            let task_work = stage.work / stage.tasks as f64;
            let task_duration = task_work / self.config.work_per_second + self.config.task_overhead;
            let mut finish = ready;
            let mut start = f64::INFINITY;
            for _ in 0..stage.tasks {
                // Earliest-free slot (ties broken by index → deterministic).
                let (slot, _) = slot_free
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .expect("at least one slot");
                let task_start = slot_free[slot].max(ready);
                let task_finish = task_start + task_duration;
                slot_free[slot] = task_finish;
                total_cpu += task_duration;
                finish = finish.max(task_finish);
                start = start.min(task_start);
                stage_machines[idx].push(slot / self.config.slots_per_machine);
            }
            stage_start[idx] = if start.is_finite() { start } else { ready };
            stage_finish[idx] = finish;
        }

        let latency = stage_finish.iter().copied().fold(0.0, f64::max);
        let machine_temp_peak =
            self.temp_peaks(dag, options, &stage_finish, &stage_machines, latency);
        Ok((
            ExecReport {
                latency,
                total_cpu_seconds: total_cpu,
                stage_start,
                stage_finish,
                machine_temp_peak,
                executed: required,
            },
            stage_machines,
        ))
    }

    /// Like [`Simulator::run`] but through [`Simulator::schedule_legacy`]:
    /// the pre-kernel blocking loop, with identical trace recording. The
    /// equivalence suite pins `run` == `run_legacy` bytes.
    pub fn run_legacy(&self, dag: &StageDag, options: &SimOptions) -> Result<ExecReport> {
        let report = self.schedule_legacy(dag, options)?.0;
        self.record_run(&report);
        Ok(report)
    }

    /// Like [`Simulator::run`], additionally returning the machines each
    /// stage's tasks ran on (temp-output placement). Fault-injection
    /// harnesses use the placement to decide which outputs a machine loss
    /// destroys.
    pub fn run_with_placement(
        &self,
        dag: &StageDag,
        options: &SimOptions,
    ) -> Result<(ExecReport, Vec<Vec<usize>>)> {
        self.schedule(dag, options)
    }

    /// Simulates a *machine* failure: at `failure_at` of the baseline
    /// latency, `failed_machine` dies, losing every temp output it holds.
    /// Completed stages survive only if checkpointed (global store) or if
    /// none of their tasks ran on the failed machine; everything else
    /// re-runs. Returns `(original, recovery)` reports.
    pub fn run_with_machine_failure(
        &self,
        dag: &StageDag,
        checkpointed: &HashSet<StageId>,
        failed_machine: usize,
        failure_at: f64,
    ) -> Result<(ExecReport, ExecReport)> {
        if failed_machine >= self.config.machines {
            return Err(EngineError::InvalidCluster(format!(
                "machine {failed_machine} out of range (cluster has {})",
                self.config.machines
            )));
        }
        let options = SimOptions {
            checkpointed: checkpointed.clone(),
            precomputed: HashSet::new(),
        };
        let (original, stage_machines) = self.schedule(dag, &options)?;
        self.record_run(&original);
        let failure_time = original.latency * failure_at.clamp(0.0, 1.0);
        let surviving: HashSet<StageId> = dag
            .stages()
            .iter()
            .filter(|s| original.stage_finish[s.id.0] <= failure_time)
            .filter(|s| {
                checkpointed.contains(&s.id) || !stage_machines[s.id.0].contains(&failed_machine)
            })
            .map(|s| s.id)
            .collect();
        let mut batch = self.obs.batch();
        batch.event(
            "engine.exec",
            "machine_failure",
            failure_time,
            &[
                ("machine", &failed_machine.to_string()),
                ("surviving_stages", &surviving.len().to_string()),
            ],
        );
        batch.counter_add("engine.exec", "restarts", &[], 1);
        drop(batch);
        let recovery = self.run(
            dag,
            &SimOptions {
                checkpointed: checkpointed.clone(),
                precomputed: surviving,
            },
        )?;
        Ok((original, recovery))
    }

    /// Computes per-machine peak temp storage from alloc/free events.
    fn temp_peaks(
        &self,
        dag: &StageDag,
        options: &SimOptions,
        stage_finish: &[f64],
        stage_machines: &[Vec<usize>],
        latency: f64,
    ) -> Vec<f64> {
        let consumers = dag.consumers();
        // (time, machine, delta); allocs sorted before frees at equal times
        // via the sign of delta (positive first) for a conservative peak.
        let mut events: Vec<(f64, usize, f64)> = Vec::new();
        for stage in dag.stages() {
            let idx = stage.id.0;
            if options.checkpointed.contains(&stage.id) || options.precomputed.contains(&stage.id) {
                continue; // output lives in the global store
            }
            let machines = &stage_machines[idx];
            if machines.is_empty() {
                continue;
            }
            let per_machine = stage.output_bytes / machines.len() as f64;
            let free_time = consumers[idx]
                .iter()
                .map(|c| stage_finish[c.0])
                .fold(latency, f64::max);
            for &m in machines {
                events.push((stage_finish[idx], m, per_machine));
                events.push((free_time, m, -per_machine));
            }
        }
        events.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal))
        });
        let mut current = vec![0.0f64; self.config.machines];
        let mut peak = vec![0.0f64; self.config.machines];
        for (_, m, delta) in events {
            current[m] += delta;
            peak[m] = peak[m].max(current[m]);
        }
        peak
    }

    /// Simulates a mid-flight failure and restart.
    ///
    /// The job fails once a `failure_at` fraction of stages (by finish
    /// order) has completed. Completed *checkpointed* stages survive; the
    /// restarted run treats them as precomputed. Returns
    /// `(original_report, recovery_report)`.
    pub fn run_with_failure(
        &self,
        dag: &StageDag,
        checkpointed: &HashSet<StageId>,
        failure_at: f64,
    ) -> Result<(ExecReport, ExecReport)> {
        let original = self.run(
            dag,
            &SimOptions {
                checkpointed: checkpointed.clone(),
                precomputed: HashSet::new(),
            },
        )?;
        let mut order: Vec<usize> = (0..dag.len()).collect();
        order.sort_by(|&a, &b| {
            original.stage_finish[a]
                .partial_cmp(&original.stage_finish[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let completed_count = ((dag.len() as f64) * failure_at.clamp(0.0, 1.0)).floor() as usize;
        let surviving: HashSet<StageId> = order[..completed_count]
            .iter()
            .map(|&i| StageId(i))
            .filter(|id| checkpointed.contains(id))
            .collect();
        let mut batch = self.obs.batch();
        batch.event(
            "engine.exec",
            "job_failure",
            original.latency * failure_at.clamp(0.0, 1.0),
            &[
                ("completed_stages", &completed_count.to_string()),
                ("surviving_stages", &surviving.len().to_string()),
            ],
        );
        batch.counter_add("engine.exec", "restarts", &[], 1);
        drop(batch);
        let recovery = self.run(
            dag,
            &SimOptions {
                checkpointed: checkpointed.clone(),
                precomputed: surviving,
            },
        )?;
        Ok((original, recovery))
    }
}

/// Events of the cluster-execution simulation.
#[derive(Debug, Clone, Copy)]
enum ClusterEvent {
    /// Bootstraps the run: settles skipped stages and places the first
    /// wave of ready stages.
    Kick,
    /// Every task of `stage` has completed; its temp output exists and its
    /// consumers may become placeable.
    StageComplete(usize),
}

/// Per-stage data the component needs, copied out of the DAG because
/// `simkern` components are `'static`. Inputs and consumers are flattened
/// into one backing vector each (CSR-style offsets) — the copy costs a
/// fixed handful of allocations instead of two per stage, which is what
/// keeps the kernel path's per-run overhead inside `des_bench`'s 5% gate.
#[derive(Debug, Clone, Copy)]
struct StageMeta {
    tasks: usize,
    work: f64,
    /// End offset of this stage's inputs in `inputs_flat` (starts at the
    /// previous stage's end, 0 for the first).
    inputs_end: usize,
    /// End offset of this stage's consumers in `consumers_flat`.
    consumers_end: usize,
}

#[derive(Debug, Clone)]
struct SimStages {
    meta: Vec<StageMeta>,
    inputs_flat: Vec<usize>,
    consumers_flat: Vec<usize>,
}

impl SimStages {
    fn len(&self) -> usize {
        self.meta.len()
    }

    fn inputs(&self, idx: usize) -> &[usize] {
        let start = if idx == 0 {
            0
        } else {
            self.meta[idx - 1].inputs_end
        };
        &self.inputs_flat[start..self.meta[idx].inputs_end]
    }

    fn consumers(&self, idx: usize) -> &[usize] {
        let start = if idx == 0 {
            0
        } else {
            self.meta[idx - 1].consumers_end
        };
        &self.consumers_flat[start..self.meta[idx].consumers_end]
    }
}

/// The cluster executor as a `simkern` component.
///
/// Placement preserves the legacy list-scheduling discipline exactly: the
/// dispatch cursor walks stages in topological order, and a stage is
/// placed the moment the cursor reaches it with every input complete.
/// Task arithmetic is identical — `task_start = max(slot_free, ready)`
/// with `ready` the max input finish — so reports are byte-identical to
/// the legacy loop. What changed is the *mechanism*: stage completions
/// are kernel events (the clock advances through the schedule rather
/// than a blocking loop "owning" time), and the earliest-free slot is a
/// `BinaryHeap<Reverse<(OrderedTick, slot)>>` pop with an explicit index
/// tie-break instead of an O(total_slots) `min_by` scan that silently
/// tolerated NaN free-times.
///
/// One wrinkle: list scheduling can queue a stage's tasks on slots that
/// free *before* the current clock (the cursor held it back behind an
/// earlier stage). Its completion event then fires at `max(now, finish)`
/// — report times always come from the stored schedule, never from event
/// fire times, so clamping keeps the clock monotone without perturbing a
/// single output bit.
struct ClusterSim {
    slots_per_machine: usize,
    work_per_second: f64,
    task_overhead: f64,
    stages: SimStages,
    required: Vec<bool>,
    /// `(next free time, slot)` min-heap; slot index breaks ties.
    slot_free: BinaryHeap<Reverse<(OrderedTick, usize)>>,
    /// Incomplete-input count per stage.
    remaining_inputs: Vec<usize>,
    /// Dispatch cursor: stages below it are placed (or skipped).
    cursor: usize,
    placed: usize,
    stage_start: Vec<f64>,
    stage_finish: Vec<f64>,
    stage_machines: Vec<Vec<usize>>,
    total_cpu: f64,
}

impl ClusterSim {
    fn new(
        config: &ClusterConfig,
        dag: &StageDag,
        required: Vec<bool>,
        consumers: &[Vec<StageId>],
    ) -> Self {
        let n = dag.len();
        let total_slots = config.machines * config.slots_per_machine;
        let mut meta = Vec::with_capacity(n);
        let mut inputs_flat = Vec::new();
        let mut consumers_flat = Vec::new();
        let mut remaining_inputs = Vec::with_capacity(n);
        for (s, c) in dag.stages().iter().zip(consumers) {
            inputs_flat.extend(s.inputs.iter().map(|i| i.0));
            consumers_flat.extend(c.iter().map(|i| i.0));
            meta.push(StageMeta {
                tasks: s.tasks,
                work: s.work,
                inputs_end: inputs_flat.len(),
                consumers_end: consumers_flat.len(),
            });
            remaining_inputs.push(s.inputs.len());
        }
        Self {
            slots_per_machine: config.slots_per_machine,
            work_per_second: config.work_per_second,
            task_overhead: config.task_overhead,
            stages: SimStages {
                meta,
                inputs_flat,
                consumers_flat,
            },
            required,
            slot_free: (0..total_slots)
                .map(|slot| Reverse((OrderedTick::new(0.0), slot)))
                .collect(),
            remaining_inputs,
            cursor: 0,
            placed: 0,
            stage_start: vec![0.0; n],
            stage_finish: vec![0.0; n],
            stage_machines: vec![Vec::new(); n],
            total_cpu: 0.0,
        }
    }

    /// Marks `idx` complete and unblocks its consumers.
    fn complete(&mut self, idx: usize) {
        for c in 0..self.stages.consumers(idx).len() {
            let consumer = self.stages.consumers(idx)[c];
            self.remaining_inputs[consumer] -= 1;
        }
    }

    /// Places every stage the cursor can reach: skipped stages settle at
    /// time zero, required stages are placed once all inputs completed.
    fn advance_cursor(&mut self, ctx: &mut Ctx<'_, ClusterEvent>) {
        while self.cursor < self.stages.len() {
            let idx = self.cursor;
            if !self.required[idx] {
                // Precomputed or shielded: completes instantly at time 0,
                // exactly like the legacy loop's `continue` arm.
                self.stage_start[idx] = 0.0;
                self.stage_finish[idx] = 0.0;
                self.cursor += 1;
                self.placed += 1;
                self.complete(idx);
                continue;
            }
            if self.remaining_inputs[idx] > 0 {
                return; // wait for a StageComplete event
            }
            self.place(idx, ctx);
            self.cursor += 1;
            self.placed += 1;
        }
    }

    /// Places one required stage's tasks on the slot heap and schedules
    /// its completion event.
    fn place(&mut self, idx: usize, ctx: &mut Ctx<'_, ClusterEvent>) {
        let ready = self
            .stages
            .inputs(idx)
            .iter()
            .map(|&s| self.stage_finish[s])
            .fold(0.0f64, f64::max);
        let tasks = self.stages.meta[idx].tasks;
        let task_work = self.stages.meta[idx].work / tasks as f64;
        let task_duration = task_work / self.work_per_second + self.task_overhead;
        let mut finish = ready;
        let mut start = f64::INFINITY;
        for _ in 0..tasks {
            let Reverse((free, slot)) = self.slot_free.pop().expect("at least one slot");
            debug_assert!(free.get().is_finite(), "slot free-time must be finite");
            let task_start = free.get().max(ready);
            let task_finish = task_start + task_duration;
            self.slot_free
                .push(Reverse((OrderedTick::new(task_finish), slot)));
            self.total_cpu += task_duration;
            finish = finish.max(task_finish);
            start = start.min(task_start);
            self.stage_machines[idx].push(slot / self.slots_per_machine);
        }
        self.stage_start[idx] = if start.is_finite() { start } else { ready };
        self.stage_finish[idx] = finish;
        // Completion fires at the stage's schedule finish — clamped to the
        // clock when the cursor placed it "into the past" (see type docs).
        // Absolute-time emit: a delay round-trip (`now + (finish - now)`)
        // can land a ulp off the true finish instant.
        ctx.emit_self_at(ClusterEvent::StageComplete(idx), finish);
    }

    /// Moves the results out after the run.
    #[allow(clippy::type_complexity)]
    fn take(&mut self) -> (Vec<f64>, Vec<f64>, Vec<Vec<usize>>, f64, Vec<bool>) {
        (
            std::mem::take(&mut self.stage_start),
            std::mem::take(&mut self.stage_finish),
            std::mem::take(&mut self.stage_machines),
            self.total_cpu,
            std::mem::take(&mut self.required),
        )
    }
}

impl Component<ClusterEvent> for ClusterSim {
    fn on_event(&mut self, event: &ClusterEvent, ctx: &mut Ctx<'_, ClusterEvent>) {
        match *event {
            ClusterEvent::Kick => self.advance_cursor(ctx),
            ClusterEvent::StageComplete(idx) => {
                self.complete(idx);
                self.advance_cursor(ctx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use adas_workload::catalog::Catalog;
    use adas_workload::plan::{CmpOp, LogicalPlan, Predicate};

    fn dag_for(plan: &LogicalPlan) -> StageDag {
        let catalog = Catalog::standard();
        StageDag::compile(plan, &catalog, &CostModel::default()).unwrap()
    }

    fn big_plan() -> LogicalPlan {
        LogicalPlan::join(
            LogicalPlan::scan("events").filter(Predicate::single(2, CmpOp::Le, 300)),
            LogicalPlan::scan("users"),
            0,
            0,
        )
        .aggregate(vec![1])
    }

    #[test]
    fn kernel_schedule_matches_legacy_bit_for_bit() {
        let dag = dag_for(&big_plan());
        let sim = Simulator::new(ClusterConfig::default()).unwrap();
        for checkpoint_all in [false, true] {
            let options = SimOptions {
                checkpointed: if checkpoint_all {
                    dag.stages().iter().map(|s| s.id).collect()
                } else {
                    HashSet::new()
                },
                precomputed: HashSet::new(),
            };
            let (kernel, kernel_placement) = sim.schedule(&dag, &options).unwrap();
            let (legacy, legacy_placement) = sim.schedule_legacy(&dag, &options).unwrap();
            assert_eq!(kernel, legacy);
            assert_eq!(kernel_placement, legacy_placement);
            // Bit-level, not just PartialEq (which would call 0.0 == -0.0):
            // compare the raw bit patterns of every time.
            let bits = |r: &ExecReport| -> Vec<u64> {
                r.stage_start
                    .iter()
                    .chain(&r.stage_finish)
                    .chain(&r.machine_temp_peak)
                    .chain([r.latency, r.total_cpu_seconds].iter())
                    .map(|f| f.to_bits())
                    .collect()
            };
            assert_eq!(bits(&kernel), bits(&legacy));
        }
    }

    #[test]
    fn kernel_matches_legacy_with_precomputed_stages() {
        let dag = dag_for(&big_plan());
        let sim = Simulator::new(ClusterConfig {
            machines: 2,
            slots_per_machine: 1,
            ..Default::default()
        })
        .unwrap();
        let mut precomputed = HashSet::new();
        precomputed.insert(StageId(0));
        let options = SimOptions {
            checkpointed: HashSet::new(),
            precomputed,
        };
        let (kernel, _) = sim.schedule(&dag, &options).unwrap();
        let (legacy, _) = sim.schedule_legacy(&dag, &options).unwrap();
        assert_eq!(kernel, legacy);
    }

    #[test]
    fn simulation_is_deterministic_and_ordered() {
        let dag = dag_for(&big_plan());
        let sim = Simulator::new(ClusterConfig::default()).unwrap();
        let a = sim.run(&dag, &SimOptions::default()).unwrap();
        let b = sim.run(&dag, &SimOptions::default()).unwrap();
        assert_eq!(a, b);
        // Starts never precede input finishes.
        for stage in dag.stages() {
            for input in &stage.inputs {
                assert!(a.stage_start[stage.id.0] >= a.stage_finish[input.0] - 1e-9);
            }
        }
        assert!(a.latency > 0.0);
        assert!(a.total_cpu_seconds > 0.0);
    }

    #[test]
    fn more_machines_reduce_latency() {
        // A wide DAG (union of many branches) benefits from parallelism.
        let mut plan = LogicalPlan::scan("events").aggregate(vec![1]);
        for _ in 0..7 {
            plan = LogicalPlan::union(plan, LogicalPlan::scan("events").aggregate(vec![1]));
        }
        let dag = dag_for(&plan);
        let small = Simulator::new(ClusterConfig {
            machines: 1,
            ..Default::default()
        })
        .unwrap()
        .run(&dag, &SimOptions::default())
        .unwrap();
        let large = Simulator::new(ClusterConfig {
            machines: 32,
            ..Default::default()
        })
        .unwrap()
        .run(&dag, &SimOptions::default())
        .unwrap();
        assert!(large.latency < small.latency);
        // CPU time is conserved (same work, same overheads).
        assert!((large.total_cpu_seconds - small.total_cpu_seconds).abs() < 1e-6);
    }

    #[test]
    fn checkpointing_lowers_hotspot_temp() {
        let dag = dag_for(&big_plan());
        let sim = Simulator::new(ClusterConfig::default()).unwrap();
        let plain = sim.run(&dag, &SimOptions::default()).unwrap();
        // Checkpoint the biggest-output stage.
        let biggest = dag
            .stages()
            .iter()
            .max_by(|a, b| a.output_bytes.partial_cmp(&b.output_bytes).unwrap())
            .unwrap()
            .id;
        let mut checkpointed = HashSet::new();
        checkpointed.insert(biggest);
        let ckpt = sim
            .run(
                &dag,
                &SimOptions {
                    checkpointed,
                    precomputed: HashSet::new(),
                },
            )
            .unwrap();
        assert!(ckpt.hotspot_peak() < plain.hotspot_peak());
        // Latency is unchanged in this model (checkpoint I/O is free here;
        // the checkpoint crate charges it explicitly).
        assert!((ckpt.latency - plain.latency).abs() < 1e-9);
    }

    #[test]
    fn failure_recovery_faster_with_checkpoints() {
        let dag = dag_for(&big_plan());
        let sim = Simulator::new(ClusterConfig::default()).unwrap();
        // No checkpoints: recovery re-runs everything.
        let (orig, recovery_none) = sim.run_with_failure(&dag, &HashSet::new(), 0.8).unwrap();
        assert!((recovery_none.latency - orig.latency).abs() < 1e-9);
        // Checkpoint everything: recovery skips all completed stages.
        let all: HashSet<StageId> = dag.stages().iter().map(|s| s.id).collect();
        let (_, recovery_all) = sim.run_with_failure(&dag, &all, 0.8).unwrap();
        assert!(recovery_all.latency < orig.latency);
    }

    #[test]
    fn precomputed_stages_finish_at_zero() {
        let dag = dag_for(&big_plan());
        let sim = Simulator::new(ClusterConfig::default()).unwrap();
        let mut precomputed = HashSet::new();
        precomputed.insert(StageId(0));
        let r = sim
            .run(
                &dag,
                &SimOptions {
                    checkpointed: HashSet::new(),
                    precomputed,
                },
            )
            .unwrap();
        assert_eq!(r.stage_finish[0], 0.0);
    }

    #[test]
    fn invalid_cluster_rejected() {
        assert!(Simulator::new(ClusterConfig {
            machines: 0,
            ..Default::default()
        })
        .is_err());
        assert!(Simulator::new(ClusterConfig {
            slots_per_machine: 0,
            ..Default::default()
        })
        .is_err());
        assert!(Simulator::new(ClusterConfig {
            work_per_second: 0.0,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn temp_peak_reflects_outputs() {
        let dag = dag_for(&LogicalPlan::scan("events"));
        let sim = Simulator::new(ClusterConfig::default()).unwrap();
        let r = sim.run(&dag, &SimOptions::default()).unwrap();
        let total_temp: f64 = r.machine_temp_peak.iter().sum();
        // The scan's full output is held in temp somewhere.
        assert!((total_temp - dag.stages()[0].output_bytes).abs() < 1.0);
    }
}

#[cfg(test)]
mod machine_failure_tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::physical::StageDag;
    use adas_workload::catalog::Catalog;
    use adas_workload::plan::{CmpOp, LogicalPlan, Predicate};

    fn dag() -> StageDag {
        let catalog = Catalog::standard();
        let plan = LogicalPlan::join(
            LogicalPlan::scan("events").filter(Predicate::single(2, CmpOp::Le, 300)),
            LogicalPlan::scan("users"),
            0,
            0,
        )
        .aggregate(vec![1]);
        StageDag::compile(&plan, &catalog, &CostModel::default()).unwrap()
    }

    #[test]
    fn machine_failure_recovery_bounded_by_full_rerun() {
        let dag = dag();
        let sim = Simulator::new(ClusterConfig::default()).unwrap();
        let (orig, recovery) = sim
            .run_with_machine_failure(&dag, &HashSet::new(), 0, 0.9)
            .unwrap();
        // Recovery never exceeds a full re-run, and losing one machine of 16
        // late in the job should leave some work salvageable... unless every
        // early stage touched machine 0 — either way the bound holds.
        assert!(recovery.latency <= orig.latency + 1e-9);
    }

    #[test]
    fn checkpointed_outputs_survive_machine_loss() {
        let dag = dag();
        let sim = Simulator::new(ClusterConfig::default()).unwrap();
        let all: HashSet<StageId> = dag.stages().iter().map(|s| s.id).collect();
        let (_, ckpt_recovery) = sim.run_with_machine_failure(&dag, &all, 0, 0.9).unwrap();
        let (_, bare_recovery) = sim
            .run_with_machine_failure(&dag, &HashSet::new(), 0, 0.9)
            .unwrap();
        assert!(
            ckpt_recovery.latency <= bare_recovery.latency + 1e-9,
            "checkpoints must not hurt machine-failure recovery"
        );
        // With everything checkpointed, only unfinished work re-runs.
        let plain = sim.run(&dag, &SimOptions::default()).unwrap();
        assert!(ckpt_recovery.latency < plain.latency);
    }

    #[test]
    fn out_of_range_machine_rejected() {
        let dag = dag();
        let sim = Simulator::new(ClusterConfig::default()).unwrap();
        assert!(sim
            .run_with_machine_failure(&dag, &HashSet::new(), 999, 0.5)
            .is_err());
    }

    #[test]
    fn early_failure_loses_more_than_late_failure() {
        let dag = dag();
        let sim = Simulator::new(ClusterConfig::default()).unwrap();
        let (_, early) = sim
            .run_with_machine_failure(&dag, &HashSet::new(), 0, 0.1)
            .unwrap();
        let (_, late) = sim
            .run_with_machine_failure(&dag, &HashSet::new(), 0, 0.95)
            .unwrap();
        assert!(late.latency <= early.latency + 1e-9);
    }
}
