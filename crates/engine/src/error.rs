use adas_workload::WorkloadError;
use std::fmt;

/// Errors produced by the engine simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The underlying workload/plan layer reported an error.
    Workload(WorkloadError),
    /// A cluster configuration value was out of range.
    InvalidCluster(String),
    /// A stage DAG was malformed (cycle, dangling edge).
    MalformedDag(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Workload(e) => write!(f, "workload error: {e}"),
            Self::InvalidCluster(msg) => write!(f, "invalid cluster config: {msg}"),
            Self::MalformedDag(msg) => write!(f, "malformed stage DAG: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Workload(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WorkloadError> for EngineError {
    fn from(e: WorkloadError) -> Self {
        Self::Workload(e)
    }
}
