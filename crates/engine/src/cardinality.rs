//! Cardinality estimation: the classical default estimator and the
//! ground-truth oracle.
//!
//! The default estimator makes the textbook assumptions — uniform value
//! distributions and independent predicates. The ground truth accounts for
//! column skew and per-subplan correlation effects (derived deterministically
//! from the plan's template signature, standing in for the data correlations
//! a real execution would expose). The systematic, *template-consistent* gap
//! between the two is exactly what makes per-template micromodels (Sec 4.2,
//! \[49\]) effective: instances of one template err the same way.

use crate::Result;
use adas_workload::catalog::{Catalog, ColumnMeta};
use adas_workload::plan::{CmpOp, LogicalPlan, PlanKind, Predicate};
use adas_workload::signature::{template_signature_in, Fnv1a};

/// A model that annotates every node of a plan with an output-row estimate.
pub trait CardinalityModel {
    /// Estimated output rows of the plan root.
    fn estimate(&self, plan: &LogicalPlan) -> Result<f64> {
        Ok(*self
            .annotate(plan)?
            .first()
            .expect("annotation includes the root"))
    }

    /// Per-node estimates in *pre-order* (root first), matching
    /// [`LogicalPlan::iter`].
    fn annotate(&self, plan: &LogicalPlan) -> Result<Vec<f64>>;
}

// Forwarding impls so shared estimators (e.g. a serving-gateway adapter
// behind an `Arc`) plug into `Optimizer::optimize` without re-implementing
// the trait.
impl<T: CardinalityModel + ?Sized> CardinalityModel for &T {
    fn annotate(&self, plan: &LogicalPlan) -> Result<Vec<f64>> {
        (**self).annotate(plan)
    }
}

impl<T: CardinalityModel + ?Sized> CardinalityModel for Box<T> {
    fn annotate(&self, plan: &LogicalPlan) -> Result<Vec<f64>> {
        (**self).annotate(plan)
    }
}

impl<T: CardinalityModel + ?Sized> CardinalityModel for std::sync::Arc<T> {
    fn annotate(&self, plan: &LogicalPlan) -> Result<Vec<f64>> {
        (**self).annotate(plan)
    }
}

/// Fraction of a uniform integer range `[min, max]` selected by `op value`.
fn uniform_selectivity(meta: &ColumnMeta, op: CmpOp, value: i64) -> f64 {
    let span = (meta.max - meta.min) as f64 + 1.0;
    let clamped = value.clamp(meta.min, meta.max);
    let below = (clamped - meta.min) as f64; // values strictly below
    match op {
        CmpOp::Eq => 1.0 / meta.distinct.max(1) as f64,
        CmpOp::Ne => 1.0 - 1.0 / meta.distinct.max(1) as f64,
        CmpOp::Lt => below / span,
        CmpOp::Le => (below + 1.0) / span,
        CmpOp::Gt => (span - below - 1.0) / span,
        CmpOp::Ge => (span - below) / span,
    }
    .clamp(0.0, 1.0)
}

/// Skew-aware true selectivity. For a column with skew `s > 0`, the mass of
/// the bottom fraction `f` of the value range is `f^(1/(1+s))` — low values
/// are disproportionately popular (Zipf-flavoured). Equality selectivity is
/// amplified for low values and damped for high ones.
fn true_selectivity(meta: &ColumnMeta, op: CmpOp, value: i64) -> f64 {
    if meta.skew <= 0.0 {
        return uniform_selectivity(meta, op, value);
    }
    let span = (meta.max - meta.min) as f64 + 1.0;
    let clamped = value.clamp(meta.min, meta.max);
    let exponent = 1.0 / (1.0 + meta.skew);
    let mass_below = |frac: f64| frac.clamp(0.0, 1.0).powf(exponent);
    let frac_below = (clamped - meta.min) as f64 / span;
    let frac_below_incl = ((clamped - meta.min) as f64 + 1.0) / span;
    match op {
        CmpOp::Lt => mass_below(frac_below),
        CmpOp::Le => mass_below(frac_below_incl),
        CmpOp::Gt => 1.0 - mass_below(frac_below_incl),
        CmpOp::Ge => 1.0 - mass_below(frac_below),
        CmpOp::Eq => (mass_below(frac_below_incl) - mass_below(frac_below)).max(1e-12 / span),
        CmpOp::Ne => 1.0 - (mass_below(frac_below_incl) - mass_below(frac_below)).max(1e-12 / span),
    }
    .clamp(0.0, 1.0)
}

fn predicate_selectivity(
    catalog: &Catalog,
    table: &str,
    predicate: &Predicate,
    truth: bool,
) -> Result<f64> {
    let meta = catalog.table(table)?;
    let mut sel = 1.0;
    for clause in &predicate.clauses {
        let col = meta.column(clause.column)?;
        sel *= if truth {
            true_selectivity(col, clause.op, clause.value)
        } else {
            uniform_selectivity(col, clause.op, clause.value)
        };
    }
    Ok(sel)
}

/// Deterministic per-subplan correlation multiplier in `[1/6, 6.0]`,
/// keyed by the subplan's template signature (with view scans expanded to
/// the plans they materialize, so the factor — and hence "true" cost — is
/// invariant under view rewrites). Stands in for the data correlations
/// (cross-predicate, join-key) that break the independence assumption in
/// real workloads, while staying identical across instances of one
/// template.
fn correlation_factor(plan: &LogicalPlan, catalog: &Catalog) -> f64 {
    let sig = template_signature_in(plan, catalog).0;
    let mut h = Fnv1a::new();
    h.write_u64(sig);
    h.write(b"corr");
    // Map hash to [-1, 1], then to a multiplier in [1/6, 6].
    let unit = (h.finish() % 10_000) as f64 / 10_000.0 * 2.0 - 1.0;
    6.0f64.powf(unit)
}

fn annotate_node(
    catalog: &Catalog,
    plan: &LogicalPlan,
    truth: bool,
    out: &mut Vec<f64>,
) -> Result<f64> {
    let slot = out.len();
    out.push(0.0);
    let rows = match &plan.kind {
        PlanKind::Scan { table } => catalog.table(table)?.rows as f64,
        PlanKind::Filter { predicate } => {
            let child_slot = out.len();
            annotate_node(catalog, &plan.children[0], truth, out)?;
            let child_rows = out[child_slot];
            let table = plan.base_table().ok_or_else(|| {
                adas_workload::WorkloadError::MalformedPlan("filter without base table".into())
            })?;
            let sel = predicate_selectivity(catalog, table, predicate, truth)?;
            let mut rows = child_rows * sel;
            if truth {
                rows *= correlation_factor(plan, catalog);
            }
            rows.min(child_rows)
        }
        PlanKind::Project { .. } => {
            let child_slot = out.len();
            annotate_node(catalog, &plan.children[0], truth, out)?;
            out[child_slot]
        }
        PlanKind::Join {
            left_key,
            right_key,
        } => {
            let left_slot = out.len();
            annotate_node(catalog, &plan.children[0], truth, out)?;
            let right_slot = out.len();
            annotate_node(catalog, &plan.children[1], truth, out)?;
            let (l, r) = (out[left_slot], out[right_slot]);
            // Strict resolution: a join key that no longer resolves against
            // its side's base table marks the plan invalid, exactly as
            // `LogicalPlan::validate` would — so the optimizer rejects
            // rewrites that rebind columns.
            let side_ndv = |side: usize, key: usize| -> Result<f64> {
                let table = plan.children[side].base_table().ok_or_else(|| {
                    adas_workload::WorkloadError::MalformedPlan(
                        "join side without base table".into(),
                    )
                })?;
                Ok(catalog.table(table)?.column(key)?.distinct as f64)
            };
            let l_ndv = side_ndv(0, *left_key)?;
            let r_ndv = side_ndv(1, *right_key)?;
            let mut rows = l * r / l_ndv.max(r_ndv).max(1.0);
            if truth {
                rows *= correlation_factor(plan, catalog);
            }
            rows.min(l * r)
        }
        PlanKind::Aggregate { group_by } => {
            let child_slot = out.len();
            annotate_node(catalog, &plan.children[0], truth, out)?;
            let child_rows = out[child_slot];
            let table = plan.base_table().ok_or_else(|| {
                adas_workload::WorkloadError::MalformedPlan("aggregate without base table".into())
            })?;
            let meta = catalog.table(table)?;
            let mut groups = 1.0f64;
            for &c in group_by {
                groups *= meta.column(c)?.distinct as f64;
            }
            groups.min(child_rows).max(1.0)
        }
        PlanKind::Union => {
            let left_slot = out.len();
            annotate_node(catalog, &plan.children[0], truth, out)?;
            let right_slot = out.len();
            annotate_node(catalog, &plan.children[1], truth, out)?;
            out[left_slot] + out[right_slot]
        }
    };
    let rows = rows.max(1.0);
    out[slot] = rows;
    Ok(rows)
}

/// The classical default estimator (uniformity + independence).
#[derive(Debug, Clone, Copy)]
pub struct DefaultEstimator<'a> {
    catalog: &'a Catalog,
}

impl<'a> DefaultEstimator<'a> {
    /// Creates an estimator over a catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        Self { catalog }
    }
}

impl CardinalityModel for DefaultEstimator<'_> {
    fn annotate(&self, plan: &LogicalPlan) -> Result<Vec<f64>> {
        let mut out = Vec::with_capacity(plan.node_count());
        annotate_node(self.catalog, plan, false, &mut out)?;
        Ok(out)
    }
}

/// The ground-truth oracle: skew- and correlation-aware cardinalities, the
/// ones the execution simulator charges for.
#[derive(Debug, Clone, Copy)]
pub struct TrueCardinality<'a> {
    catalog: &'a Catalog,
}

impl<'a> TrueCardinality<'a> {
    /// Creates the oracle over a catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        Self { catalog }
    }
}

impl CardinalityModel for TrueCardinality<'_> {
    fn annotate(&self, plan: &LogicalPlan) -> Result<Vec<f64>> {
        let mut out = Vec::with_capacity(plan.node_count());
        annotate_node(self.catalog, plan, true, &mut out)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adas_workload::plan::{CmpOp, LogicalPlan, Predicate};

    fn catalog() -> Catalog {
        Catalog::standard()
    }

    #[test]
    fn scan_estimates_table_rows() {
        let c = catalog();
        let plan = LogicalPlan::scan("events");
        assert_eq!(
            DefaultEstimator::new(&c).estimate(&plan).unwrap(),
            50_000_000.0
        );
        assert_eq!(
            TrueCardinality::new(&c).estimate(&plan).unwrap(),
            50_000_000.0
        );
    }

    #[test]
    fn uniform_equality_selectivity() {
        let c = catalog();
        // event_type has 50 distinct values, uniform.
        let plan = LogicalPlan::scan("events").filter(Predicate::single(1, CmpOp::Eq, 10));
        let est = DefaultEstimator::new(&c).estimate(&plan).unwrap();
        assert!((est - 1_000_000.0).abs() < 1.0, "est = {est}");
    }

    #[test]
    fn range_selectivity_monotone_in_literal() {
        let c = catalog();
        let est = |v: i64| {
            DefaultEstimator::new(&c)
                .estimate(&LogicalPlan::scan("events").filter(Predicate::single(2, CmpOp::Le, v)))
                .unwrap()
        };
        assert!(est(100) < est(500));
        assert!(est(500) < est(719));
        assert!((est(719) - 50_000_000.0).abs() < 1.0);
    }

    #[test]
    fn annotation_preorder_covers_all_nodes() {
        let c = catalog();
        let plan = LogicalPlan::join(
            LogicalPlan::scan("events").filter(Predicate::single(1, CmpOp::Eq, 3)),
            LogicalPlan::scan("users"),
            0,
            0,
        );
        let ann = DefaultEstimator::new(&c).annotate(&plan).unwrap();
        assert_eq!(ann.len(), plan.node_count());
        // Pre-order: [join, filter, scan(events), scan(users)].
        assert_eq!(ann[2], 50_000_000.0);
        assert_eq!(ann[3], 1_000_000.0);
        assert!(ann[1] < ann[2]);
        assert!(ann[0] > 0.0);
    }

    #[test]
    fn truth_differs_from_default_on_skewed_columns() {
        let c = catalog();
        // user_id is skewed (1.1): equality on a low id should carry more
        // mass under the truth than under uniformity.
        let plan = LogicalPlan::scan("events").filter(Predicate::single(0, CmpOp::Eq, 5));
        let default = DefaultEstimator::new(&c).estimate(&plan).unwrap();
        let truth = TrueCardinality::new(&c).estimate(&plan).unwrap();
        assert_ne!(default, truth);
    }

    #[test]
    fn truth_is_template_consistent() {
        // Two instances of one template (different literals) get the same
        // correlation factor, so truth is a smooth function of the literal.
        let c = catalog();
        let mk = |v: i64| LogicalPlan::scan("events").filter(Predicate::single(2, CmpOp::Le, v));
        let t = TrueCardinality::new(&c);
        let t100 = t.estimate(&mk(100)).unwrap();
        let t200 = t.estimate(&mk(200)).unwrap();
        let t400 = t.estimate(&mk(400)).unwrap();
        assert!(t100 < t200 && t200 < t400);
    }

    #[test]
    fn union_adds_and_aggregate_caps() {
        let c = catalog();
        let u = LogicalPlan::union(LogicalPlan::scan("users"), LogicalPlan::scan("regions"));
        assert_eq!(DefaultEstimator::new(&c).estimate(&u).unwrap(), 1_000_060.0);
        let agg = LogicalPlan::scan("users").aggregate(vec![1]); // segment: 8 distinct
        assert_eq!(DefaultEstimator::new(&c).estimate(&agg).unwrap(), 8.0);
    }

    #[test]
    fn estimates_never_below_one_row() {
        let c = catalog();
        let plan = LogicalPlan::scan("regions")
            .filter(Predicate::new(vec![
                adas_workload::plan::Comparison::new(0, CmpOp::Eq, 1),
                adas_workload::plan::Comparison::new(1, CmpOp::Eq, 2),
            ]))
            .aggregate(vec![1]);
        assert!(DefaultEstimator::new(&c).estimate(&plan).unwrap() >= 1.0);
        assert!(TrueCardinality::new(&c).estimate(&plan).unwrap() >= 1.0);
    }

    #[test]
    fn correlation_factor_bounded_and_deterministic() {
        let c = catalog();
        let plan = LogicalPlan::scan("events").filter(Predicate::single(1, CmpOp::Eq, 3));
        let f1 = correlation_factor(&plan, &c);
        let f2 = correlation_factor(&plan, &c);
        assert_eq!(f1, f2);
        assert!((1.0 / 6.0..=6.0).contains(&f1));
    }

    #[test]
    fn truth_invariant_under_view_rewrite() {
        // Replacing a subtree with a scan of a view registered for it must
        // not change the true cardinality of enclosing nodes.
        let c = catalog();
        let subtree = LogicalPlan::scan("telemetry").filter(Predicate::single(2, CmpOp::Le, 100));
        let original = LogicalPlan::join(subtree.clone(), LogicalPlan::scan("telemetry"), 1, 0);
        let original_rows = TrueCardinality::new(&c).estimate(&original).unwrap();

        let mut extended = c.clone();
        let view_rows = TrueCardinality::new(&c).estimate(&subtree).unwrap();
        extended.add_table(adas_workload::catalog::TableMeta {
            name: "view_t".into(),
            rows: view_rows as u64,
            columns: c.table("telemetry").unwrap().columns.clone(),
        });
        extended.register_view("view_t", subtree);
        let rewritten = LogicalPlan::join(
            LogicalPlan::scan("view_t"),
            LogicalPlan::scan("telemetry"),
            1,
            0,
        );
        let rewritten_rows = TrueCardinality::new(&extended)
            .estimate(&rewritten)
            .unwrap();
        let rel = (rewritten_rows - original_rows).abs() / original_rows;
        assert!(
            rel < 1e-6,
            "view rewrite changed truth: {original_rows} vs {rewritten_rows}"
        );
    }
}
