//! Physical compilation: logical plans to stage DAGs.
//!
//! Cosmos jobs are "compiled into a Direct Acyclic Graph (DAG) of stages
//! that are executed in parallel", with some production jobs "containing
//! thousands of stages" (Sec 4.2, \[52\]). Each logical operator becomes one
//! stage carrying its true and estimated work, output size, and task
//! parallelism; the checkpoint optimizer (Phoebe) and the execution
//! simulator both operate on this structure.

use crate::cardinality::{CardinalityModel, DefaultEstimator, TrueCardinality};
use crate::cost::CostModel;
use crate::{EngineError, Result};
use adas_workload::catalog::Catalog;
use adas_workload::plan::LogicalPlan;
use serde::Serialize;

/// Identifier of a stage within one DAG (index into [`StageDag::stages`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct StageId(pub usize);

/// Bytes per output row charged by the simulator.
pub const BYTES_PER_ROW: f64 = 64.0;

/// Rows of true output one task handles before another task is added.
pub const ROWS_PER_TASK: f64 = 2_000_000.0;

/// Maximum tasks per stage.
pub const MAX_TASKS: usize = 64;

/// One physical stage.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Stage {
    /// Stage identifier (== its index).
    pub id: StageId,
    /// Operator name (for display/features).
    pub op: &'static str,
    /// Upstream stages whose outputs this stage consumes.
    pub inputs: Vec<StageId>,
    /// True work (cost units) — what execution charges.
    pub work: f64,
    /// Estimated work (cost units) — what the optimizer believed.
    pub est_work: f64,
    /// True output rows.
    pub rows: f64,
    /// Estimated output rows.
    pub est_rows: f64,
    /// Output size written to local temp storage, in bytes.
    pub output_bytes: f64,
    /// Task parallelism.
    pub tasks: usize,
}

/// A DAG of stages in topological order (inputs always precede consumers).
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct StageDag {
    stages: Vec<Stage>,
}

impl StageDag {
    /// Compiles a logical plan into a stage DAG, annotating each stage with
    /// true and estimated work from the catalog's cardinality models.
    pub fn compile(plan: &LogicalPlan, catalog: &Catalog, cost_model: &CostModel) -> Result<Self> {
        let truth = TrueCardinality::new(catalog);
        let default = DefaultEstimator::new(catalog);
        let true_rows = truth.annotate(plan)?;
        let est_rows = default.annotate(plan)?;
        let true_cost = cost_model.breakdown(plan, &truth)?;
        let est_cost = cost_model.breakdown(plan, &default)?;

        // Walk the plan in pre-order, emitting stages in *post-order* so the
        // vector is topologically sorted (children first).
        let mut stages: Vec<Stage> = Vec::with_capacity(plan.node_count());
        let mut cursor = 0usize;
        fn emit(
            plan: &LogicalPlan,
            cursor: &mut usize,
            true_rows: &[f64],
            est_rows: &[f64],
            true_cost: &[f64],
            est_cost: &[f64],
            stages: &mut Vec<Stage>,
        ) -> StageId {
            let pre_idx = *cursor;
            *cursor += 1;
            let inputs: Vec<StageId> = plan
                .children
                .iter()
                .map(|c| emit(c, cursor, true_rows, est_rows, true_cost, est_cost, stages))
                .collect();
            let rows = true_rows[pre_idx];
            let id = StageId(stages.len());
            let tasks = ((rows / ROWS_PER_TASK).ceil() as usize).clamp(1, MAX_TASKS);
            stages.push(Stage {
                id,
                op: plan.kind.name(),
                inputs,
                work: true_cost[pre_idx],
                est_work: est_cost[pre_idx],
                rows,
                est_rows: est_rows[pre_idx],
                output_bytes: rows * BYTES_PER_ROW,
                tasks,
            });
            id
        }
        emit(
            plan,
            &mut cursor,
            &true_rows,
            &est_rows,
            &true_cost.per_node,
            &est_cost.per_node,
            &mut stages,
        );
        Ok(Self { stages })
    }

    /// Builds a DAG directly from stages (used by tests and the checkpoint
    /// crate's synthetic workloads). Validates topological order and edge
    /// sanity.
    pub fn from_stages(stages: Vec<Stage>) -> Result<Self> {
        for (i, stage) in stages.iter().enumerate() {
            if stage.id.0 != i {
                return Err(EngineError::MalformedDag(format!(
                    "stage at index {i} has id {}",
                    stage.id.0
                )));
            }
            for input in &stage.inputs {
                if input.0 >= i {
                    return Err(EngineError::MalformedDag(format!(
                        "stage {i} depends on later/own stage {}",
                        input.0
                    )));
                }
            }
        }
        Ok(Self { stages })
    }

    /// The stages, topologically ordered.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True when the DAG has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Consumers of each stage (inverse edges).
    pub fn consumers(&self) -> Vec<Vec<StageId>> {
        let mut out = vec![Vec::new(); self.stages.len()];
        for stage in &self.stages {
            for input in &stage.inputs {
                out[input.0].push(stage.id);
            }
        }
        out
    }

    /// Total true work across stages.
    pub fn total_work(&self) -> f64 {
        self.stages.iter().map(|s| s.work).sum()
    }

    /// Length (in work units) of the critical path through the DAG.
    pub fn critical_path_work(&self) -> f64 {
        let mut best = vec![0.0f64; self.stages.len()];
        for (i, stage) in self.stages.iter().enumerate() {
            let input_max = stage
                .inputs
                .iter()
                .map(|s| best[s.0])
                .fold(0.0f64, f64::max);
            best[i] = input_max + stage.work;
        }
        best.into_iter().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adas_workload::plan::{CmpOp, LogicalPlan, Predicate};

    fn compile(plan: &LogicalPlan) -> StageDag {
        let catalog = Catalog::standard();
        StageDag::compile(plan, &catalog, &CostModel::default()).unwrap()
    }

    #[test]
    fn one_stage_per_node_topologically_ordered() {
        let plan = LogicalPlan::join(
            LogicalPlan::scan("events").filter(Predicate::single(1, CmpOp::Eq, 3)),
            LogicalPlan::scan("users"),
            0,
            0,
        )
        .aggregate(vec![1]);
        let dag = compile(&plan);
        assert_eq!(dag.len(), plan.node_count());
        for (i, s) in dag.stages().iter().enumerate() {
            assert_eq!(s.id.0, i);
            assert!(s.inputs.iter().all(|x| x.0 < i));
        }
        // Root (the aggregate) is last.
        assert_eq!(dag.stages().last().unwrap().op, "Aggregate");
    }

    #[test]
    fn stage_annotations_positive() {
        let plan = LogicalPlan::scan("events")
            .filter(Predicate::single(2, CmpOp::Le, 100))
            .aggregate(vec![1]);
        let dag = compile(&plan);
        for s in dag.stages() {
            assert!(s.work >= 0.0);
            assert!(s.rows >= 1.0);
            assert!(s.output_bytes > 0.0);
            assert!((1..=MAX_TASKS).contains(&s.tasks));
        }
    }

    #[test]
    fn parallelism_scales_with_rows() {
        let big = compile(&LogicalPlan::scan("telemetry"));
        let small = compile(&LogicalPlan::scan("regions"));
        assert!(big.stages()[0].tasks > small.stages()[0].tasks);
        assert_eq!(small.stages()[0].tasks, 1);
    }

    #[test]
    fn critical_path_bounded_by_total() {
        let plan = LogicalPlan::union(
            LogicalPlan::scan("events").aggregate(vec![1]),
            LogicalPlan::scan("sessions").aggregate(vec![1]),
        );
        let dag = compile(&plan);
        let cp = dag.critical_path_work();
        assert!(cp > 0.0);
        assert!(cp <= dag.total_work() + 1e-9);
        // With two parallel branches the critical path is strictly shorter.
        assert!(cp < dag.total_work());
    }

    #[test]
    fn from_stages_validates() {
        let good = vec![
            Stage {
                id: StageId(0),
                op: "Scan",
                inputs: vec![],
                work: 1.0,
                est_work: 1.0,
                rows: 1.0,
                est_rows: 1.0,
                output_bytes: 64.0,
                tasks: 1,
            },
            Stage {
                id: StageId(1),
                op: "Filter",
                inputs: vec![StageId(0)],
                work: 1.0,
                est_work: 1.0,
                rows: 1.0,
                est_rows: 1.0,
                output_bytes: 64.0,
                tasks: 1,
            },
        ];
        assert!(StageDag::from_stages(good.clone()).is_ok());

        let mut bad_id = good.clone();
        bad_id[1].id = StageId(5);
        assert!(StageDag::from_stages(bad_id).is_err());

        let mut forward_edge = good;
        forward_edge[0].inputs = vec![StageId(1)];
        assert!(StageDag::from_stages(forward_edge).is_err());
    }

    #[test]
    fn consumers_invert_inputs() {
        let plan = LogicalPlan::union(LogicalPlan::scan("users"), LogicalPlan::scan("regions"));
        let dag = compile(&plan);
        let consumers = dag.consumers();
        // Both scans feed the union (the last stage).
        let root = StageId(dag.len() - 1);
        assert_eq!(consumers[0], vec![root]);
        assert_eq!(consumers[1], vec![root]);
        assert!(consumers[root.0].is_empty());
    }
}
