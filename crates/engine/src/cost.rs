//! Operator cost model over cardinality annotations.
//!
//! Costs are abstract work units (≈ row-operations). The same formulas are
//! applied to *estimated* cardinalities (what the optimizer sees) and to
//! *true* cardinalities (what execution charges); the learned cost
//! micromodels in the `learned` crate regress the latter from plan features.

use crate::cardinality::CardinalityModel;
use crate::Result;
use adas_workload::plan::{LogicalPlan, PlanKind};
use serde::{Deserialize, Serialize};

/// Per-operator unit costs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostWeights {
    /// Cost per row scanned.
    pub scan: f64,
    /// Cost per input row filtered.
    pub filter: f64,
    /// Cost per row projected.
    pub project: f64,
    /// Cost per row on the build side of a join.
    pub join_build: f64,
    /// Cost per row on the probe side of a join.
    pub join_probe: f64,
    /// Cost per output row of a join.
    pub join_output: f64,
    /// Cost per input row aggregated.
    pub aggregate: f64,
    /// Cost per row shuffled across the network (joins and aggregates
    /// repartition their inputs).
    pub shuffle: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        Self {
            scan: 1.0,
            filter: 0.2,
            project: 0.05,
            join_build: 1.5,
            join_probe: 0.8,
            join_output: 0.3,
            aggregate: 1.2,
            shuffle: 2.0,
        }
    }
}

/// Cost model parameterized by unit weights and a cardinality model.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostModel {
    weights: CostWeights,
}

/// Per-node cost annotation, pre-order, plus the total.
#[derive(Debug, Clone, PartialEq)]
pub struct CostBreakdown {
    /// Per-node costs in pre-order.
    pub per_node: Vec<f64>,
    /// Sum of per-node costs.
    pub total: f64,
}

impl CostModel {
    /// Creates a cost model with explicit weights.
    pub fn new(weights: CostWeights) -> Self {
        Self { weights }
    }

    /// Total plan cost under the given cardinality model.
    pub fn total_cost(&self, plan: &LogicalPlan, cards: &dyn CardinalityModel) -> Result<f64> {
        Ok(self.breakdown(plan, cards)?.total)
    }

    /// Per-node cost breakdown under the given cardinality model.
    pub fn breakdown(
        &self,
        plan: &LogicalPlan,
        cards: &dyn CardinalityModel,
    ) -> Result<CostBreakdown> {
        let rows = cards.annotate(plan)?;
        let mut per_node = vec![0.0; rows.len()];
        let mut cursor = 0usize;
        self.node_cost(plan, &rows, &mut cursor, &mut per_node);
        let total = per_node.iter().sum();
        Ok(CostBreakdown { per_node, total })
    }

    /// Computes the cost of the node at `*cursor` (pre-order) and recurses.
    /// Returns the node's pre-order index.
    fn node_cost(
        &self,
        plan: &LogicalPlan,
        rows: &[f64],
        cursor: &mut usize,
        out: &mut [f64],
    ) -> usize {
        let idx = *cursor;
        *cursor += 1;
        let child_indices: Vec<usize> = plan
            .children
            .iter()
            .map(|c| self.node_cost(c, rows, cursor, out))
            .collect();
        let w = &self.weights;
        let out_rows = rows[idx];
        let cost = match &plan.kind {
            PlanKind::Scan { .. } => w.scan * out_rows,
            PlanKind::Filter { .. } => w.filter * rows[child_indices[0]],
            PlanKind::Project { .. } => w.project * rows[child_indices[0]],
            PlanKind::Join { .. } => {
                let l = rows[child_indices[0]];
                let r = rows[child_indices[1]];
                // The LEFT input is the build side (hash-join convention:
                // input order is physical). Choosing the build side is the
                // optimizer's job — `Rule::JoinCommute` guided by
                // *estimated* cardinalities, which is exactly the decision
                // rule-hint steering learns to overrule when the estimates
                // mislead.
                w.join_build * l + w.join_probe * r + w.join_output * out_rows + w.shuffle * (l + r)
            }
            PlanKind::Aggregate { .. } => {
                let input = rows[child_indices[0]];
                w.aggregate * input + w.shuffle * input
            }
            PlanKind::Union => 0.0, // concatenation is free in this model
        };
        out[idx] = cost;
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cardinality::{DefaultEstimator, TrueCardinality};
    use adas_workload::catalog::Catalog;
    use adas_workload::plan::{CmpOp, LogicalPlan, Predicate};

    #[test]
    fn scan_cost_is_linear_in_rows() {
        let c = Catalog::standard();
        let model = CostModel::default();
        let est = DefaultEstimator::new(&c);
        let small = model
            .total_cost(&LogicalPlan::scan("regions"), &est)
            .unwrap();
        let large = model
            .total_cost(&LogicalPlan::scan("events"), &est)
            .unwrap();
        assert!((small - 60.0).abs() < 1e-9);
        assert!((large - 50_000_000.0).abs() < 1e-3);
    }

    #[test]
    fn filter_reduces_downstream_cost() {
        let c = Catalog::standard();
        let model = CostModel::default();
        let est = DefaultEstimator::new(&c);
        let unfiltered = LogicalPlan::join(
            LogicalPlan::scan("events"),
            LogicalPlan::scan("users"),
            0,
            0,
        );
        let filtered = LogicalPlan::join(
            LogicalPlan::scan("events").filter(Predicate::single(1, CmpOp::Eq, 3)),
            LogicalPlan::scan("users"),
            0,
            0,
        );
        assert!(
            model.total_cost(&filtered, &est).unwrap()
                < model.total_cost(&unfiltered, &est).unwrap()
        );
    }

    #[test]
    fn breakdown_matches_total_and_shape() {
        let c = Catalog::standard();
        let model = CostModel::default();
        let est = DefaultEstimator::new(&c);
        let plan = LogicalPlan::scan("events")
            .filter(Predicate::single(1, CmpOp::Eq, 3))
            .aggregate(vec![3])
            .project(vec![0]);
        let b = model.breakdown(&plan, &est).unwrap();
        assert_eq!(b.per_node.len(), plan.node_count());
        assert!((b.per_node.iter().sum::<f64>() - b.total).abs() < 1e-9);
        assert!(b.per_node.iter().all(|&c| c >= 0.0));
    }

    #[test]
    fn estimated_and_true_costs_diverge() {
        let c = Catalog::standard();
        let model = CostModel::default();
        let plan = LogicalPlan::join(
            LogicalPlan::scan("events").filter(Predicate::single(0, CmpOp::Le, 1000)),
            LogicalPlan::scan("users"),
            0,
            0,
        );
        let est = model.total_cost(&plan, &DefaultEstimator::new(&c)).unwrap();
        let truth = model.total_cost(&plan, &TrueCardinality::new(&c)).unwrap();
        assert_ne!(est, truth);
    }

    #[test]
    fn join_cost_is_build_side_sensitive() {
        // Building on the big side is more expensive than probing it:
        // the input order matters, which is what makes JoinCommute a real
        // optimization decision.
        let c = Catalog::standard();
        let model = CostModel::default();
        let est = DefaultEstimator::new(&c);
        let build_big = LogicalPlan::join(
            LogicalPlan::scan("events"),
            LogicalPlan::scan("regions"),
            3,
            0,
        );
        let build_small = LogicalPlan::join(
            LogicalPlan::scan("regions"),
            LogicalPlan::scan("events"),
            0,
            3,
        );
        let big = model.total_cost(&build_big, &est).unwrap();
        let small = model.total_cost(&build_small, &est).unwrap();
        assert!(
            small < big,
            "build-small {small} should beat build-big {big}"
        );
    }
}
