//! The workload feedback mechanism (Sec 4.2 / Direction 1).
//!
//! Peregrine "consists of an engine-agnostic workload representation,
//! workload categorization based on patterns, and a **workload feedback
//! mechanism that enables query engines to respond to workload feedback**."
//!
//! [`FeedbackStore`] is that mechanism: after a job executes, the engine
//! records what *actually* happened — observed cardinalities, true cost,
//! latency — keyed by the job's template. The learned components train from
//! these observations (see
//! `adas_learned::cardinality::LearnedCardinality::train_from_feedback`),
//! which is how production systems work: labels come from execution
//! telemetry, never from an oracle.

use crate::cardinality::{CardinalityModel, TrueCardinality};
use crate::cost::CostModel;
use crate::exec::ExecReport;
use crate::Result;
use adas_workload::catalog::Catalog;
use adas_workload::plan::LogicalPlan;
use adas_workload::signature::{template_signature, Signature};
use serde::Serialize;
use std::collections::HashMap;

/// What the engine observed from one executed job.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct JobObservation {
    /// The executed plan.
    pub plan: LogicalPlan,
    /// Observed output rows at the plan root.
    pub actual_rows: f64,
    /// Observed total work (cost units actually charged).
    pub actual_cost: f64,
    /// Observed wall-clock latency, seconds (0 when not executed on the
    /// cluster simulator).
    pub latency: f64,
}

/// Execution-feedback storage, keyed by template signature.
#[derive(Debug, Clone, Default)]
pub struct FeedbackStore {
    by_template: HashMap<Signature, Vec<JobObservation>>,
}

impl FeedbackStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the execution of `plan`: the observed cardinality and cost
    /// are what the simulator's ground truth charges (in production these
    /// arrive as runtime statistics from the executed vertices).
    pub fn record_execution(
        &mut self,
        plan: &LogicalPlan,
        catalog: &Catalog,
        report: Option<&ExecReport>,
    ) -> Result<()> {
        let truth = TrueCardinality::new(catalog);
        let actual_rows = truth.estimate(plan)?;
        let actual_cost = CostModel::default().total_cost(plan, &truth)?;
        let observation = JobObservation {
            plan: plan.clone(),
            actual_rows,
            actual_cost,
            latency: report.map_or(0.0, |r| r.latency),
        };
        self.by_template
            .entry(template_signature(plan))
            .or_default()
            .push(observation);
        Ok(())
    }

    /// Observations for one template.
    pub fn observations(&self, template: Signature) -> &[JobObservation] {
        self.by_template.get(&template).map_or(&[], Vec::as_slice)
    }

    /// All `(template, observations)` groups in deterministic order.
    pub fn templates(&self) -> Vec<(Signature, &[JobObservation])> {
        let mut v: Vec<(Signature, &[JobObservation])> = self
            .by_template
            .iter()
            .map(|(sig, obs)| (*sig, obs.as_slice()))
            .collect();
        v.sort_by_key(|(sig, _)| *sig);
        v
    }

    /// Total observations recorded.
    pub fn len(&self) -> usize {
        self.by_template.values().map(Vec::len).sum()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.by_template.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ClusterConfig, SimOptions, Simulator};
    use crate::physical::StageDag;
    use adas_workload::plan::{CmpOp, Predicate};

    fn plan(v: i64) -> LogicalPlan {
        // No aggregate on top: aggregates cap output at the group count,
        // which would make actual rows literal-independent.
        LogicalPlan::scan("events").filter(Predicate::single(2, CmpOp::Le, v))
    }

    #[test]
    fn observations_group_by_template() {
        let catalog = Catalog::standard();
        let mut store = FeedbackStore::new();
        for v in [100, 200, 300] {
            store
                .record_execution(&plan(v), &catalog, None)
                .expect("records");
        }
        store
            .record_execution(
                &LogicalPlan::scan("users").aggregate(vec![1]),
                &catalog,
                None,
            )
            .expect("records");
        assert_eq!(store.len(), 4);
        assert_eq!(store.templates().len(), 2);
        let sig = template_signature(&plan(100));
        assert_eq!(store.observations(sig).len(), 3);
        // Actuals vary with the literal (cardinality is literal-dependent).
        let obs = store.observations(sig);
        assert_ne!(obs[0].actual_rows, obs[2].actual_rows);
    }

    #[test]
    fn execution_report_latency_captured() {
        let catalog = Catalog::standard();
        let sim = Simulator::new(ClusterConfig::default()).expect("valid");
        let p = plan(250);
        let dag = StageDag::compile(&p, &catalog, &CostModel::default()).expect("compiles");
        let report = sim.run(&dag, &SimOptions::default()).expect("simulates");
        let mut store = FeedbackStore::new();
        store
            .record_execution(&p, &catalog, Some(&report))
            .expect("records");
        let sig = template_signature(&p);
        assert!(store.observations(sig)[0].latency > 0.0);
        assert!(store.observations(sig)[0].actual_cost > 0.0);
    }

    #[test]
    fn empty_store() {
        let store = FeedbackStore::new();
        assert!(store.is_empty());
        assert_eq!(store.len(), 0);
        assert!(store.observations(Signature(1)).is_empty());
    }
}
