//! SCOPE-like query engine simulator.
//!
//! The paper's query-engine-layer work (Sec 4.2) runs inside Cosmos' SCOPE
//! engine and Synapse Spark — closed production systems. This crate is the
//! substitute substrate: a deterministic engine simulator exposing exactly
//! the surfaces those learned components attach to:
//!
//! * [`cardinality`] — a *default* estimator that walks a plan with
//!   classical uniformity/independence assumptions, and a *ground-truth*
//!   oracle whose skew- and correlation-aware cardinalities are what the
//!   execution simulator actually charges. The gap between the two is the
//!   signal the learned cardinality micromodels recover.
//! * [`cost`] — an operator cost model over cardinality annotations, with
//!   both estimated and true variants.
//! * [`rules`] — a rule-based rewrite optimizer with a per-rule enable
//!   bitmask ([`rules::RuleSet`]). Rule-hint steering (Bao adapted to
//!   production, Sec 4.2) toggles these bits per template.
//! * [`physical`] — compilation of a logical plan into a DAG of stages with
//!   per-stage work, parallelism and temp-storage footprints (the structure
//!   Phoebe's checkpoint optimizer cuts).
//! * [`exec`] — an event-driven cluster execution simulator: machines with
//!   task slots and bounded local temp storage, list scheduling, and
//!   restart accounting.
//! * [`feedback`] — the Peregrine-style workload feedback mechanism:
//!   per-template runtime observations recorded at execution time, the
//!   label source the learned components train from.
//!
//! # Example
//!
//! ```
//! use adas_workload::catalog::Catalog;
//! use adas_workload::plan::{CmpOp, LogicalPlan, Predicate};
//! use adas_engine::cardinality::{CardinalityModel, DefaultEstimator, TrueCardinality};
//!
//! let catalog = Catalog::standard();
//! let plan = LogicalPlan::scan("events")
//!     .filter(Predicate::single(1, CmpOp::Eq, 3))
//!     .aggregate(vec![3]);
//! let default = DefaultEstimator::new(&catalog).estimate(&plan).unwrap();
//! let truth = TrueCardinality::new(&catalog).estimate(&plan).unwrap();
//! assert!(default > 0.0 && truth > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cardinality;
pub mod cost;
mod error;
pub mod exec;
pub mod feedback;
pub mod physical;
pub mod rules;

pub use error::EngineError;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, EngineError>;
