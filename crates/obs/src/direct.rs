//! The direct recording backend: per-record mutation of an in-memory
//! [`Trace`], strings owned eagerly.
//!
//! This is the original recorder implementation, kept verbatim as the
//! *reference semantics* for the batched backend ([`crate::ring`]): the
//! replay-equivalence suite drives identical scenarios through both and
//! asserts byte-identical canonical JSON. It is also what
//! [`crate::Obs::recording_direct`] hands out, for callers that prefer
//! simplicity over hot-path throughput.

use crate::flight::{DecisionRecord, DeploymentKind, DeploymentRecord};
use crate::metrics::{Histogram, MetricKey};
use crate::span::{SpanId, SpanRecord};
use crate::trace::{EventRecord, Trace};

/// Direct-mutation recorder state: a live [`Trace`] plus the sequence
/// counter and open-span stack.
#[derive(Debug, Default)]
pub(crate) struct DirectRecorder {
    seq: u64,
    span_stack: Vec<SpanId>,
    trace: Trace,
}

impl DirectRecorder {
    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    pub(crate) fn span_enter(&mut self, component: &str, name: &str, sim_time: f64) -> SpanId {
        let seq = self.next_seq();
        let id = SpanId(self.trace.spans.len() as u64);
        let parent = self.span_stack.last().copied();
        self.trace.spans.push(SpanRecord {
            id,
            parent,
            component: component.to_string(),
            name: name.to_string(),
            start: sim_time,
            end: sim_time,
            seq,
        });
        self.span_stack.push(id);
        id
    }

    pub(crate) fn span_exit(&mut self, id: SpanId, sim_time: f64) {
        if let Some(pos) = self.span_stack.iter().rposition(|&s| s == id) {
            self.span_stack.truncate(pos);
        }
        if let Some(span) = self.trace.spans.get_mut(id.0 as usize) {
            span.end = sim_time;
        }
    }

    pub(crate) fn event(
        &mut self,
        component: &str,
        name: &str,
        sim_time: f64,
        fields: &[(&str, &str)],
    ) {
        let seq = self.next_seq();
        let span = self.span_stack.last().copied();
        self.trace.events.push(EventRecord {
            seq,
            span,
            sim_time,
            component: component.to_string(),
            name: name.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        });
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_decision(
        &mut self,
        component: &str,
        decision: &str,
        model_id: &str,
        model_version: u64,
        features_digest: u64,
        predicted: f64,
        observed: Option<f64>,
        verdict: &str,
        vetoed: bool,
        feedback_latency_ticks: u64,
        sim_time: f64,
    ) {
        let seq = self.next_seq();
        let span = self.span_stack.last().copied();
        self.trace.decisions.push(DecisionRecord {
            seq,
            span,
            sim_time,
            component: component.to_string(),
            decision: decision.to_string(),
            model_id: model_id.to_string(),
            model_version,
            features_digest,
            predicted,
            observed,
            verdict: verdict.to_string(),
            vetoed,
            feedback_latency_ticks,
        });
    }

    pub(crate) fn record_deployment(
        &mut self,
        component: &str,
        kind: DeploymentKind,
        model_id: &str,
        version: u64,
        cause: &str,
        sim_time: f64,
    ) {
        let seq = self.next_seq();
        let span = self.span_stack.last().copied();
        self.trace.deployments.push(DeploymentRecord {
            seq,
            span,
            sim_time,
            component: component.to_string(),
            kind,
            model_id: model_id.to_string(),
            version,
            cause: cause.to_string(),
        });
    }

    pub(crate) fn counter_add(
        &mut self,
        component: &str,
        name: &str,
        labels: &[(&str, &str)],
        delta: u64,
    ) {
        self.trace
            .metrics
            .counter_add(MetricKey::new(component, name, labels), delta);
    }

    pub(crate) fn gauge_set(
        &mut self,
        component: &str,
        name: &str,
        labels: &[(&str, &str)],
        value: f64,
    ) {
        self.trace
            .metrics
            .gauge_set(MetricKey::new(component, name, labels), value);
    }

    pub(crate) fn histogram_observe(
        &mut self,
        component: &str,
        name: &str,
        labels: &[(&str, &str)],
        bounds: Option<&[f64]>,
        value: f64,
    ) {
        let key = MetricKey::new(component, name, labels);
        match bounds {
            Some(b) => self.trace.metrics.histogram_observe(key, b, value),
            None => self
                .trace
                .metrics
                .histogram_observe(key, &Histogram::default_bounds(), value),
        }
    }

    pub(crate) fn last_event_json(&self) -> Option<String> {
        self.trace
            .events
            .last()
            .map(|e| serde_json::to_string(e).expect("event serialization is infallible"))
    }

    pub(crate) fn snapshot(&self) -> Trace {
        self.trace.clone()
    }

    pub(crate) fn export_stream(&self, chunk_size: usize, sink: &mut dyn FnMut(&str)) {
        crate::export::to_json_stream(&self.trace, chunk_size, sink);
    }
}
