//! Structured spans over *simulated* time.
//!
//! A span is an interval of simulated seconds with a parent link; because
//! both endpoints come from the deterministic simulators (never the wall
//! clock) and ordering comes from a logical sequence counter, the serialized
//! span tree of a same-seed replay is byte-identical to the original run.

use serde::{Deserialize, Serialize};

/// Identifier of one span within a trace.
///
/// Ids are assigned sequentially by the recorder; [`SpanId::NONE`] is the
/// sentinel returned when recording is disabled, and exiting it is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The "not recording" sentinel.
    pub const NONE: SpanId = SpanId(u64::MAX);

    /// True when this id refers to a real recorded span.
    pub fn is_real(self) -> bool {
        self != Self::NONE
    }
}

/// One completed (or still-open) span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// This span's id.
    pub id: SpanId,
    /// Enclosing span at enter time, if any.
    pub parent: Option<SpanId>,
    /// Subsystem that opened the span (e.g. `engine.exec`).
    pub component: String,
    /// Operation name (e.g. `run_job`, `stage-3`).
    pub name: String,
    /// Simulated time at enter, seconds.
    pub start: f64,
    /// Simulated time at exit, seconds; equals `start` while open.
    pub end: f64,
    /// Logical sequence number of the enter event — the total order every
    /// replay reproduces exactly.
    pub seq: u64,
}

impl SpanRecord {
    /// Span duration in simulated seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}
