//! The flight recorder: decision provenance for the autonomy loop.
//!
//! Every autonomous decision — a guardrail check, a monitor verdict, a
//! steering hint, a forecast-driven schedule — is logged with the identity
//! of the model that made it, a digest of the inputs it saw, what it
//! predicted, what was later observed, and how the guardrails ruled. This is
//! the audit trail that makes learned-system regressions debuggable: "which
//! model version made which decision, and why".

use crate::span::SpanId;
use serde::{Deserialize, Serialize};

/// Identity of the model behind one decision, supplied by the call site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Provenance<'a> {
    /// Stable model identifier (e.g. `cost-ensemble`, `steering-bandit`).
    pub model_id: &'a str,
    /// Deployed version number (from the model registry).
    pub model_version: u64,
    /// Digest of the input features the model saw (see [`digest_f64`]).
    pub features_digest: u64,
}

impl<'a> Provenance<'a> {
    /// Builds a provenance tag.
    pub fn new(model_id: &'a str, model_version: u64, features_digest: u64) -> Self {
        Self {
            model_id,
            model_version,
            features_digest,
        }
    }
}

/// One autonomy-loop decision, as recorded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionRecord {
    /// Logical sequence number (total order within the trace).
    pub seq: u64,
    /// Enclosing span, if the decision was made inside one.
    pub span: Option<SpanId>,
    /// Simulated time of the decision, seconds.
    pub sim_time: f64,
    /// Deciding subsystem (e.g. `core.guardrails`).
    pub component: String,
    /// What was decided (e.g. `autonomy_decision`, `backup_window`).
    pub decision: String,
    /// Model identifier.
    pub model_id: String,
    /// Model version that produced the prediction.
    pub model_version: u64,
    /// Digest of the input features.
    pub features_digest: u64,
    /// The model's predicted outcome.
    pub predicted: f64,
    /// The observed outcome, when one exists at record time.
    pub observed: Option<f64>,
    /// Guardrail or monitor verdict, verbatim (e.g. `allow`,
    /// `block: regression guard: …`, `rollback`).
    pub verdict: String,
    /// True when the verdict vetoed the decision.
    pub vetoed: bool,
    /// Simulated ticks between the prediction being made and its outcome
    /// being observed (0 when feedback was immediate or absent).
    pub feedback_latency_ticks: u64,
}

impl DecisionRecord {
    /// Ratio of predicted to observed outcome, as a symmetric error factor
    /// `>= 1` (2.0 means the prediction was off by 2x in either direction).
    /// `None` when no outcome was observed or either side is non-positive.
    pub fn error_factor(&self) -> Option<f64> {
        let observed = self.observed?;
        if self.predicted <= 0.0 || observed <= 0.0 {
            return None;
        }
        Some((self.predicted / observed).max(observed / self.predicted))
    }
}

/// What kind of deployment change a [`DeploymentRecord`] captures.
///
/// These are the edges of the serving layer's deployment state machine
/// (Stable → Shadow → Canary → Promote/Demote, plus direct publishes and
/// rollbacks). Recording them as *typed* trace records — rather than
/// free-form events — is what makes every deployment change reproducible
/// and queryable from the flight record alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeploymentKind {
    /// A new version was published and is serving all traffic.
    Publish,
    /// Serving was rolled back to an earlier (redeployed) version.
    Rollback,
    /// A candidate version was staged in shadow mode (mirrored traffic,
    /// answers not served).
    ShadowStart,
    /// A candidate version began serving a slice of live traffic.
    CanaryStart,
    /// A candidate passed evaluation and became the serving version.
    Promote,
    /// A candidate failed evaluation and was discarded.
    Demote,
}

impl DeploymentKind {
    /// Stable lowercase name used in exports and queries.
    pub fn name(self) -> &'static str {
        match self {
            DeploymentKind::Publish => "publish",
            DeploymentKind::Rollback => "rollback",
            DeploymentKind::ShadowStart => "shadow_start",
            DeploymentKind::CanaryStart => "canary_start",
            DeploymentKind::Promote => "promote",
            DeploymentKind::Demote => "demote",
        }
    }
}

/// One deployment change, as recorded in the flight recorder: which model,
/// which version, what happened and *why* (the triggering cause — e.g.
/// `drift`, `guard_trip`, `breaker_open`, `canary_healthy`, `manual`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentRecord {
    /// Logical sequence number (total order within the trace).
    pub seq: u64,
    /// Enclosing span, if any.
    pub span: Option<SpanId>,
    /// Simulated time of the change, seconds.
    pub sim_time: f64,
    /// Subsystem that made the change (e.g. `serve.gateway`).
    pub component: String,
    /// What happened.
    pub kind: DeploymentKind,
    /// Model identifier (gateway registration name).
    pub model_id: String,
    /// Version the change concerns: the newly serving version for
    /// publish/rollback/promote, the candidate version for
    /// shadow/canary/demote.
    pub version: u64,
    /// The triggering cause, verbatim.
    pub cause: String,
}

/// FNV-1a digest over the bit patterns of a feature vector — the cheap,
/// deterministic input fingerprint decision records carry.
pub fn digest_f64(features: impl IntoIterator<Item = f64>) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for f in features {
        for byte in f.to_bits().to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
    }
    hash
}

/// FNV-1a digest over raw bytes (for string-shaped features such as
/// template signatures or plan fingerprints).
pub fn digest_bytes(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic_and_input_sensitive() {
        let a = digest_f64([1.0, 2.0, 3.0]);
        let b = digest_f64([1.0, 2.0, 3.0]);
        let c = digest_f64([1.0, 2.0, 3.0000001]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(digest_bytes(b"events"), digest_bytes(b"users"));
    }

    #[test]
    fn error_factor_is_symmetric() {
        let mut d = DecisionRecord {
            seq: 0,
            span: None,
            sim_time: 0.0,
            component: "t".into(),
            decision: "t".into(),
            model_id: "m".into(),
            model_version: 1,
            features_digest: 0,
            predicted: 10.0,
            observed: Some(5.0),
            verdict: "allow".into(),
            vetoed: false,
            feedback_latency_ticks: 0,
        };
        assert!((d.error_factor().unwrap() - 2.0).abs() < 1e-12);
        d.predicted = 5.0;
        d.observed = Some(10.0);
        assert!((d.error_factor().unwrap() - 2.0).abs() < 1e-12);
        d.observed = None;
        assert!(d.error_factor().is_none());
    }
}
