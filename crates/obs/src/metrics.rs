//! Metrics registry: counters, gauges and fixed-bucket histograms keyed by
//! `(component, name, labels)`.
//!
//! Keys live in a `BTreeMap` with sorted label sets, so iteration order —
//! and therefore every export — is deterministic regardless of the order in
//! which instruments were touched.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Fully-qualified metric identity.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MetricKey {
    /// Owning subsystem (e.g. `engine.exec`).
    pub component: String,
    /// Metric name (e.g. `stages_executed`).
    pub name: String,
    /// Label pairs, sorted by label name.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Builds a key with its labels sorted into canonical order.
    pub fn new(component: &str, name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Self {
            component: component.to_string(),
            name: name.to_string(),
            labels,
        }
    }
}

/// A fixed-bucket histogram.
///
/// `counts[i]` counts observations `<= bounds[i]`; the final slot counts the
/// overflow (`> bounds.last()`). Because each observation lands in exactly
/// one bucket and merging adds bucket counts, the merged histogram of any
/// partition of a sample set is independent of partition order — the
/// permutation invariance the determinism suite asserts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Ascending upper bucket bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts; `len == bounds.len() + 1`.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Total observations.
    pub count: u64,
}

impl Histogram {
    /// Creates an empty histogram over ascending `bounds`.
    pub fn new(bounds: &[f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Default latency-style bounds (simulated seconds), exponential from
    /// 1ms to ~17 minutes.
    pub fn default_bounds() -> Vec<f64> {
        (0..11).map(|i| 0.001 * 4.0f64.powi(i)).collect()
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.count += 1;
    }

    /// Adds another histogram's counts into this one. Returns `false`
    /// (leaving `self` untouched) when the bucket bounds differ.
    pub fn merge(&mut self, other: &Histogram) -> bool {
        if self.bounds != other.bounds {
            return false;
        }
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.sum += other.sum;
        self.count += other.count;
        true
    }
}

/// One metric's current value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// Monotonically increasing count.
    Counter(u64),
    /// Last-written measurement.
    Gauge(f64),
    /// Fixed-bucket distribution.
    Histogram(Histogram),
}

/// The registry: every instrument the recorder has touched.
///
/// Serialized as a list of `[key, value]` entries in canonical key order
/// (JSON maps cannot have structured keys).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsRegistry {
    /// Instruments in canonical (sorted-key) order.
    pub metrics: BTreeMap<MetricKey, MetricValue>,
}

impl Serialize for MetricsRegistry {
    fn to_value(&self) -> serde::Value {
        serde::Value::Seq(
            self.metrics
                .iter()
                .map(|(k, v)| serde::Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl Deserialize for MetricsRegistry {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let entries: Vec<(MetricKey, MetricValue)> = Vec::from_value(v)?;
        Ok(Self {
            metrics: entries.into_iter().collect(),
        })
    }
}

impl MetricsRegistry {
    /// Adds `delta` to a counter, creating it at zero first.
    pub fn counter_add(&mut self, key: MetricKey, delta: u64) {
        match self.metrics.entry(key).or_insert(MetricValue::Counter(0)) {
            MetricValue::Counter(c) => *c += delta,
            _ => debug_assert!(false, "metric kind mismatch: expected counter"),
        }
    }

    /// Sets a gauge.
    pub fn gauge_set(&mut self, key: MetricKey, value: f64) {
        self.metrics.insert(key, MetricValue::Gauge(value));
    }

    /// Observes into a histogram, creating it with `bounds` on first touch.
    pub fn histogram_observe(&mut self, key: MetricKey, bounds: &[f64], value: f64) {
        match self
            .metrics
            .entry(key)
            .or_insert_with(|| MetricValue::Histogram(Histogram::new(bounds)))
        {
            MetricValue::Histogram(h) => h.observe(value),
            _ => debug_assert!(false, "metric kind mismatch: expected histogram"),
        }
    }

    /// Looks up a counter's value (0 when absent).
    pub fn counter(&self, component: &str, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.metrics.get(&MetricKey::new(component, name, labels)) {
            Some(MetricValue::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Looks up a gauge's value.
    pub fn gauge(&self, component: &str, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.metrics.get(&MetricKey::new(component, name, labels)) {
            Some(MetricValue::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Looks up a histogram.
    pub fn histogram(
        &self,
        component: &str,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<&Histogram> {
        match self.metrics.get(&MetricKey::new(component, name, labels)) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_order_is_canonicalized() {
        let a = MetricKey::new("c", "n", &[("b", "2"), ("a", "1")]);
        let b = MetricKey::new("c", "n", &[("a", "1"), ("b", "2")]);
        assert_eq!(a, b);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.observe(0.5);
        h.observe(1.0); // inclusive upper bound
        h.observe(5.0);
        h.observe(100.0);
        assert_eq!(h.counts, vec![2, 1, 1]);
        assert_eq!(h.count, 4);
        assert!((h.sum - 106.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_requires_matching_bounds() {
        let mut a = Histogram::new(&[1.0]);
        let mut b = Histogram::new(&[1.0]);
        a.observe(0.5);
        b.observe(2.0);
        assert!(a.merge(&b));
        assert_eq!(a.counts, vec![1, 1]);
        let other = Histogram::new(&[2.0]);
        assert!(!a.merge(&other));
    }

    #[test]
    fn registry_counters_accumulate() {
        let mut r = MetricsRegistry::default();
        let key = || MetricKey::new("engine", "stages", &[("kind", "exec")]);
        r.counter_add(key(), 2);
        r.counter_add(key(), 3);
        assert_eq!(r.counter("engine", "stages", &[("kind", "exec")]), 5);
        assert_eq!(r.counter("engine", "stages", &[]), 0);
    }
}
