//! Trace snapshots and the query API over them.

use crate::flight::{DecisionRecord, DeploymentKind, DeploymentRecord};
use crate::metrics::MetricsRegistry;
use crate::span::{SpanId, SpanRecord};
use serde::{Deserialize, Serialize};

/// A free-form event attached to the trace (fault injections, deploys,
/// rollbacks, progress marks).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Logical sequence number.
    pub seq: u64,
    /// Enclosing span, if any.
    pub span: Option<SpanId>,
    /// Simulated time, seconds.
    pub sim_time: f64,
    /// Emitting subsystem.
    pub component: String,
    /// Event name (e.g. `fault_injected`).
    pub name: String,
    /// Key/value payload, in emission order.
    pub fields: Vec<(String, String)>,
}

impl EventRecord {
    /// The value of field `key`, if present.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// An immutable snapshot of everything a recorder captured.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Completed and open spans, in id order.
    pub spans: Vec<SpanRecord>,
    /// Free-form events, in sequence order.
    pub events: Vec<EventRecord>,
    /// Flight-recorder decision records, in sequence order.
    pub decisions: Vec<DecisionRecord>,
    /// Typed deployment changes (publish / rollback / shadow / canary /
    /// promote / demote), in sequence order. Defaults to empty when
    /// deserializing traces captured before this field existed.
    #[serde(default)]
    pub deployments: Vec<DeploymentRecord>,
    /// Metrics at snapshot time.
    pub metrics: MetricsRegistry,
}

impl Trace {
    /// Starts a query over this trace.
    pub fn query(&self) -> TraceQuery<'_> {
        TraceQuery {
            trace: self,
            component: None,
            model_id: None,
            vetoed_only: false,
            min_error_factor: None,
            kind: None,
            cause: None,
            version: None,
        }
    }

    /// Spans belonging to `component`.
    pub fn spans_of<'a>(&'a self, component: &'a str) -> impl Iterator<Item = &'a SpanRecord> {
        self.spans.iter().filter(move |s| s.component == component)
    }

    /// Direct children of span `parent`.
    pub fn children_of(&self, parent: SpanId) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(move |s| s.parent == Some(parent))
    }

    /// Events named `name`, across all components.
    pub fn events_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a EventRecord> {
        self.events.iter().filter(move |e| e.name == name)
    }

    /// Streams this trace as chunked canonical JSON: `sink` receives chunks
    /// of at least `chunk_size` bytes whose concatenation is byte-identical
    /// to [`crate::export::to_json`] of the same trace, without the full
    /// export string ever being materialized.
    pub fn export_stream(&self, chunk_size: usize, sink: impl FnMut(&str)) {
        crate::export::to_json_stream(self, chunk_size, sink);
    }

    /// Deployment records concerning model `model_id`, in sequence order.
    pub fn deployments_of<'a>(
        &'a self,
        model_id: &'a str,
    ) -> impl Iterator<Item = &'a DeploymentRecord> {
        self.deployments
            .iter()
            .filter(move |d| d.model_id == model_id)
    }
}

/// A filter-builder over a trace's decision and deployment records.
///
/// ```
/// use adas_obs::Obs;
///
/// let obs = Obs::recording();
/// // … run instrumented subsystems …
/// let trace = obs.snapshot();
/// let suspect = trace
///     .query()
///     .min_error_factor(2.0) // predicted/observed off by >= 2x
///     .decisions();
/// assert!(suspect.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct TraceQuery<'a> {
    trace: &'a Trace,
    component: Option<String>,
    model_id: Option<String>,
    vetoed_only: bool,
    min_error_factor: Option<f64>,
    kind: Option<DeploymentKind>,
    cause: Option<String>,
    version: Option<u64>,
}

impl<'a> TraceQuery<'a> {
    /// Keep only decisions from `component`.
    pub fn component(mut self, component: &str) -> Self {
        self.component = Some(component.to_string());
        self
    }

    /// Keep only decisions made by `model_id`.
    pub fn model(mut self, model_id: &str) -> Self {
        self.model_id = Some(model_id.to_string());
        self
    }

    /// Keep only vetoed decisions (guardrail blocks, rollbacks).
    pub fn vetoed(mut self) -> Self {
        self.vetoed_only = true;
        self
    }

    /// Keep only decisions whose predicted/observed error factor is at
    /// least `factor` (decisions without an observed outcome are dropped).
    pub fn min_error_factor(mut self, factor: f64) -> Self {
        self.min_error_factor = Some(factor);
        self
    }

    /// Keep only deployment records of `kind` (publish, rollback, …).
    /// Applies to [`TraceQuery::deployments`] only.
    pub fn kind(mut self, kind: DeploymentKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Keep only deployment records whose triggering cause is `cause`
    /// (e.g. `guard_trip_streak`, `slo_burn`, `canary_healthy`). Applies to
    /// [`TraceQuery::deployments`] only.
    pub fn cause(mut self, cause: &str) -> Self {
        self.cause = Some(cause.to_string());
        self
    }

    /// Keep only deployment records concerning `version`. Applies to
    /// [`TraceQuery::deployments`] only.
    pub fn version(mut self, version: u64) -> Self {
        self.version = Some(version);
        self
    }

    /// Runs the query over deployment records, honoring the shared
    /// component/model filters plus [`TraceQuery::kind`],
    /// [`TraceQuery::cause`] and [`TraceQuery::version`].
    pub fn deployments(&self) -> Vec<&'a DeploymentRecord> {
        self.trace
            .deployments
            .iter()
            .filter(|d| self.component.as_deref().map_or(true, |c| d.component == c))
            .filter(|d| self.model_id.as_deref().map_or(true, |m| d.model_id == m))
            .filter(|d| self.kind.map_or(true, |k| d.kind == k))
            .filter(|d| self.cause.as_deref().map_or(true, |c| d.cause == c))
            .filter(|d| self.version.map_or(true, |v| d.version == v))
            .collect()
    }

    /// Runs the query.
    pub fn decisions(&self) -> Vec<&'a DecisionRecord> {
        self.trace
            .decisions
            .iter()
            .filter(|d| self.component.as_deref().map_or(true, |c| d.component == c))
            .filter(|d| self.model_id.as_deref().map_or(true, |m| d.model_id == m))
            .filter(|d| !self.vetoed_only || d.vetoed)
            .filter(|d| {
                self.min_error_factor
                    .map_or(true, |f| d.error_factor().is_some_and(|e| e >= f))
            })
            .collect()
    }
}
