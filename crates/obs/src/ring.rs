//! The batched recording backend: preallocated ring staging, interned
//! label sets, and batched flush into compact trace storage.
//!
//! Hot-path anatomy (what one `span_enter`/`counter_add` costs):
//!
//! 1. strings intern to `u32` ids ([`crate::intern::Interner`]) — a hash
//!    plus a content compare on the hit path, no allocation;
//! 2. the record is staged as a plain-old-data [`Staged`] value into a
//!    preallocated ring (`Vec` reused across flushes — the push is a bounds
//!    check and a move);
//! 3. metrics bypass the ring entirely: each distinct
//!    `(component, name, labels)` set resolves once to a dense slot index
//!    and updates land directly in the slot (`u64` add / `f64` store /
//!    bucket increment) — the canonical `BTreeMap` registry is only
//!    materialized at snapshot time.
//!
//! When the ring fills (or a snapshot/export forces it), `flush` drains the
//! staged records *in order* into compact, id-based trace storage — still no
//! strings. Strings are resolved exactly once, at snapshot or streaming
//! export, which is what makes the batched recorder's canonical JSON
//! byte-identical to the direct reference recorder's
//! ([`crate::Obs::recording_direct`]): the equivalence suite pins that.
//!
//! Optional deterministic sampling ([`crate::sample`]) is applied at flush:
//! sequence numbers and span ids are assigned to every record regardless,
//! so a sampled trace is a strict filter of the full trace.

use crate::export::ChunkSink;
use crate::flight::{DecisionRecord, DeploymentKind, DeploymentRecord};
use crate::intern::{IdentityBuild, Interner, KeyHash, MixBuild};
use crate::metrics::{Histogram, MetricKey, MetricValue, MetricsRegistry};
use crate::sample::SampleConfig;
use crate::span::{SpanId, SpanRecord};
use crate::trace::{EventRecord, Trace};
use std::collections::HashMap;

/// Default staging-ring capacity (records between forced flushes).
pub(crate) const DEFAULT_RING_CAPACITY: usize = 4096;

/// Sentinel in `span_index` for spans dropped by the sampler.
const SAMPLED_OUT: u32 = u32::MAX;

/// Sentinel for "no enclosing span" in staged records (span ids are
/// sequential counters, so `u64::MAX` is unreachable). Staged as a bare
/// `u64` instead of `Option<SpanId>` to keep ring slots small — ring
/// records are written and read back once per record, so slot size is
/// hot-path memory traffic.
const NO_SPAN: u64 = u64::MAX;

fn unstage_span(raw: u64) -> Option<SpanId> {
    (raw != NO_SPAN).then_some(SpanId(raw))
}

/// One staged record: plain old data, interned ids only. Rare, wide record
/// kinds (decisions, deployments) keep their payloads in side arenas and
/// stage only an index, so the enum stays at the size of its hot variants.
#[derive(Debug, Clone, Copy)]
enum Staged {
    SpanEnter {
        seq: u64,
        id: u64,
        /// Parent span id or [`NO_SPAN`].
        parent: u64,
        component: u32,
        name: u32,
        time: f64,
    },
    SpanExit {
        id: u64,
        time: f64,
    },
    Event {
        seq: u64,
        /// Enclosing span id or [`NO_SPAN`].
        span: u64,
        time: f64,
        component: u32,
        name: u32,
        fields_start: u32,
        fields_len: u32,
    },
    /// Index into `staged_decisions`.
    Decision(u32),
    /// Index into `staged_deployments`.
    Deployment(u32),
}

#[derive(Debug, Clone, Copy)]
struct CompactSpan {
    id: u64,
    parent: Option<SpanId>,
    component: u32,
    name: u32,
    start: f64,
    end: f64,
    seq: u64,
}

#[derive(Debug, Clone, Copy)]
struct CompactEvent {
    seq: u64,
    span: Option<SpanId>,
    time: f64,
    component: u32,
    name: u32,
    fields_start: u32,
    fields_len: u32,
}

#[derive(Debug, Clone, Copy)]
struct CompactDecision {
    seq: u64,
    span: Option<SpanId>,
    time: f64,
    component: u32,
    decision: u32,
    model_id: u32,
    model_version: u64,
    features_digest: u64,
    predicted: f64,
    observed: Option<f64>,
    verdict: u32,
    vetoed: bool,
    feedback_latency_ticks: u64,
}

#[derive(Debug, Clone, Copy)]
struct CompactDeployment {
    seq: u64,
    span: Option<SpanId>,
    time: f64,
    component: u32,
    kind: DeploymentKind,
    model_id: u32,
    version: u64,
    cause: u32,
}

/// Flushed, id-based trace storage. Event fields live in one shared arena
/// (`event_fields`) addressed by `(fields_start, fields_len)` so flushing an
/// event never allocates.
#[derive(Debug, Default)]
struct CompactStore {
    spans: Vec<CompactSpan>,
    /// `span id -> index into spans`, [`SAMPLED_OUT`] when dropped.
    span_index: Vec<u32>,
    events: Vec<CompactEvent>,
    event_fields: Vec<(u32, u32)>,
    decisions: Vec<CompactDecision>,
    deployments: Vec<CompactDeployment>,
}

/// How a metric slot is created on first touch.
enum SlotInit<'a> {
    Counter,
    Gauge(f64),
    Histogram(Option<&'a [f64]>),
}

/// Interned metric identity: ids into the shared string interner, labels in
/// canonical (sorted-by-string) order.
#[derive(Debug)]
struct CompactMetricKey {
    component: u32,
    name: u32,
    labels: Vec<(u32, u32)>,
}

/// A pre-resolved metric identity for handle-based recording
/// ([`crate::CounterHandle`] and friends): the canonical-order hash plus
/// interned ids, computed once at handle creation so hot-path updates skip
/// string hashing and comparison entirely. Ids index this recorder's
/// interner — the handle layer guards against cross-recorder use.
#[derive(Debug, Clone)]
pub(crate) struct MetricIdKey {
    hash: u64,
    component: u32,
    name: u32,
    labels: Vec<(u32, u32)>,
}

/// Dense metric table: one slot per distinct `(component, name, labels)`
/// set, found via a word-at-a-time hash over the canonicalized strings.
#[derive(Debug, Default)]
struct MetricTable {
    keys: Vec<CompactMetricKey>,
    slots: Vec<MetricValue>,
    buckets: HashMap<u64, Vec<u32>, IdentityBuild>,
}

impl MetricTable {
    /// Resolves `(component, name, labels)` to a dense slot index, creating
    /// the slot with `init` on first touch. Allocation-free on the hit path.
    fn slot_id(
        &mut self,
        strings: &mut Interner,
        component: &str,
        name: &str,
        labels: &[(&str, &str)],
        init: SlotInit<'_>,
    ) -> u32 {
        // Canonical label order: sort indices by the (key, value) string
        // pair, exactly like `MetricKey::new` sorts its owned pairs.
        let mut order_stack = [0usize; 16];
        let mut order_heap;
        let order: &mut [usize] = if labels.len() <= order_stack.len() {
            let s = &mut order_stack[..labels.len()];
            for (i, o) in s.iter_mut().enumerate() {
                *o = i;
            }
            s
        } else {
            order_heap = (0..labels.len()).collect::<Vec<_>>();
            &mut order_heap[..]
        };
        order.sort_unstable_by(|&a, &b| labels[a].cmp(&labels[b]));

        let mut kh = KeyHash::new();
        kh.write(component.as_bytes());
        kh.sep();
        kh.write(name.as_bytes());
        kh.sep();
        for &i in order.iter() {
            kh.write(labels[i].0.as_bytes());
            kh.sep();
            kh.write(labels[i].1.as_bytes());
            kh.sep();
        }
        let hash = kh.finish();

        if let Some(bucket) = self.buckets.get(&hash) {
            'candidate: for &id in bucket {
                let key = &self.keys[id as usize];
                if strings.resolve(key.component) != component
                    || strings.resolve(key.name) != name
                    || key.labels.len() != labels.len()
                {
                    continue;
                }
                for (&(k, v), &i) in key.labels.iter().zip(order.iter()) {
                    if strings.resolve(k) != labels[i].0 || strings.resolve(v) != labels[i].1 {
                        continue 'candidate;
                    }
                }
                return id;
            }
        }

        let key = CompactMetricKey {
            component: strings.intern(component),
            name: strings.intern(name),
            labels: order
                .iter()
                .map(|&i| (strings.intern(labels[i].0), strings.intern(labels[i].1)))
                .collect(),
        };
        let id = u32::try_from(self.keys.len()).expect("metric table capacity exceeded");
        self.keys.push(key);
        self.slots.push(match init {
            SlotInit::Counter => MetricValue::Counter(0),
            SlotInit::Gauge(v) => MetricValue::Gauge(v),
            SlotInit::Histogram(bounds) => MetricValue::Histogram(match bounds {
                Some(b) => Histogram::new(b),
                None => Histogram::new(&Histogram::default_bounds()),
            }),
        });
        self.buckets.entry(hash).or_default().push(id);
        id
    }

    /// Resolves a pre-hashed, pre-interned key to a dense slot index,
    /// creating the slot with `init` on first touch. Probing compares
    /// interned ids — equal ids are equal strings by interner construction,
    /// so this finds exactly the slot [`MetricTable::slot_id`] would.
    fn slot_for_key(&mut self, key: &MetricIdKey, init: SlotInit<'_>) -> u32 {
        if let Some(bucket) = self.buckets.get(&key.hash) {
            for &id in bucket {
                let k = &self.keys[id as usize];
                if k.component == key.component && k.name == key.name && k.labels == key.labels {
                    return id;
                }
            }
        }
        let id = u32::try_from(self.keys.len()).expect("metric table capacity exceeded");
        self.keys.push(CompactMetricKey {
            component: key.component,
            name: key.name,
            labels: key.labels.clone(),
        });
        self.slots.push(match init {
            SlotInit::Counter => MetricValue::Counter(0),
            SlotInit::Gauge(v) => MetricValue::Gauge(v),
            SlotInit::Histogram(bounds) => MetricValue::Histogram(match bounds {
                Some(b) => Histogram::new(b),
                None => Histogram::new(&Histogram::default_bounds()),
            }),
        });
        self.buckets.entry(key.hash).or_default().push(id);
        id
    }

    /// Materializes the canonical sorted registry. Sorting happens here, on
    /// resolved strings, so the result is independent of intern order.
    fn to_registry(&self, strings: &Interner) -> MetricsRegistry {
        let mut registry = MetricsRegistry::default();
        for (key, slot) in self.keys.iter().zip(&self.slots) {
            registry.metrics.insert(
                MetricKey {
                    component: strings.resolve(key.component).to_string(),
                    name: strings.resolve(key.name).to_string(),
                    labels: key
                        .labels
                        .iter()
                        .map(|&(k, v)| {
                            (
                                strings.resolve(k).to_string(),
                                strings.resolve(v).to_string(),
                            )
                        })
                        .collect(),
                },
                slot.clone(),
            );
        }
        registry
    }
}

/// The batched recorder backend behind [`crate::Obs::recording`].
#[derive(Debug)]
pub(crate) struct BatchedRecorder {
    seq: u64,
    next_span_id: u64,
    span_stack: Vec<SpanId>,
    strings: Interner,
    /// `(base name id, index) -> full "{base}_{index}" name id`, so indexed
    /// span names (per-stage, per-job) never re-format on the hot path.
    /// Multiply-rotate hashed — the map compares full keys, so the cheap
    /// hash is safe.
    indexed: HashMap<(u32, u64), u32, MixBuild>,
    metrics: MetricTable,
    ring: Vec<Staged>,
    ring_capacity: usize,
    staged_fields: Vec<(u32, u32)>,
    staged_decisions: Vec<CompactDecision>,
    staged_deployments: Vec<CompactDeployment>,
    store: CompactStore,
    sampler: Option<SampleConfig>,
}

impl BatchedRecorder {
    pub(crate) fn new(ring_capacity: usize, sampler: Option<SampleConfig>) -> Self {
        let ring_capacity = ring_capacity.max(1);
        Self {
            seq: 0,
            next_span_id: 0,
            span_stack: Vec::with_capacity(16),
            strings: Interner::new(),
            indexed: HashMap::default(),
            metrics: MetricTable::default(),
            ring: Vec::with_capacity(ring_capacity),
            ring_capacity,
            staged_fields: Vec::with_capacity(64),
            staged_decisions: Vec::new(),
            staged_deployments: Vec::new(),
            store: CompactStore::default(),
            sampler,
        }
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Stages one record, flushing first when the ring is full.
    fn stage(&mut self, record: Staged) {
        if self.ring.len() >= self.ring_capacity {
            self.flush();
        }
        self.ring.push(record);
    }

    /// Drains the staging ring into compact storage, applying the sampler.
    pub(crate) fn flush(&mut self) {
        if self.ring.is_empty() {
            return;
        }
        let mut ring = std::mem::take(&mut self.ring);
        for staged in ring.drain(..) {
            match staged {
                Staged::SpanEnter {
                    seq,
                    id,
                    parent,
                    component,
                    name,
                    time,
                } => {
                    debug_assert_eq!(self.store.span_index.len() as u64, id);
                    if self.sampler.map_or(true, |s| s.keeps(id)) {
                        self.store.span_index.push(self.store.spans.len() as u32);
                        self.store.spans.push(CompactSpan {
                            id,
                            parent: unstage_span(parent),
                            component,
                            name,
                            start: time,
                            end: time,
                            seq,
                        });
                    } else {
                        self.store.span_index.push(SAMPLED_OUT);
                    }
                }
                Staged::SpanExit { id, time } => {
                    if let Some(&ix) = self.store.span_index.get(id as usize) {
                        if ix != SAMPLED_OUT {
                            self.store.spans[ix as usize].end = time;
                        }
                    }
                }
                Staged::Event {
                    seq,
                    span,
                    time,
                    component,
                    name,
                    fields_start,
                    fields_len,
                } => {
                    if self.sampler.map_or(true, |s| s.keeps(seq)) {
                        let start = self.store.event_fields.len() as u32;
                        let range = fields_start as usize..(fields_start + fields_len) as usize;
                        self.store
                            .event_fields
                            .extend_from_slice(&self.staged_fields[range]);
                        self.store.events.push(CompactEvent {
                            seq,
                            span: unstage_span(span),
                            time,
                            component,
                            name,
                            fields_start: start,
                            fields_len,
                        });
                    }
                }
                Staged::Decision(index) => {
                    let d = self.staged_decisions[index as usize];
                    if self.sampler.map_or(true, |s| s.keeps(d.seq)) {
                        self.store.decisions.push(d);
                    }
                }
                Staged::Deployment(index) => {
                    // Deployments are audit-critical and rare: never sampled.
                    self.store
                        .deployments
                        .push(self.staged_deployments[index as usize]);
                }
            }
        }
        self.ring = ring;
        self.staged_fields.clear();
        self.staged_decisions.clear();
        self.staged_deployments.clear();
    }

    // -- recording ops -----------------------------------------------------

    pub(crate) fn span_enter(&mut self, component: &str, name: &str, sim_time: f64) -> SpanId {
        let component = self.strings.intern(component);
        let name = self.strings.intern(name);
        self.span_enter_ids(component, name, sim_time)
    }

    pub(crate) fn span_enter_indexed(
        &mut self,
        component: &str,
        base: &str,
        index: usize,
        sim_time: f64,
    ) -> SpanId {
        let component = self.strings.intern(component);
        let name = self.indexed_name(base, index);
        self.span_enter_ids(component, name, sim_time)
    }

    fn indexed_name(&mut self, base: &str, index: usize) -> u32 {
        let base_id = self.strings.intern(base);
        self.indexed_name_ids(base_id, index)
    }

    fn indexed_name_ids(&mut self, base_id: u32, index: usize) -> u32 {
        let key = (base_id, index as u64);
        if let Some(&id) = self.indexed.get(&key) {
            return id;
        }
        let formatted = format!("{}_{}", self.strings.resolve(base_id), index);
        let id = self.strings.intern(&formatted);
        self.indexed.insert(key, id);
        id
    }

    /// Span entry from pre-interned ids (the [`crate::SpanKey`] fast path).
    pub(crate) fn span_enter_ids(&mut self, component: u32, name: u32, sim_time: f64) -> SpanId {
        let seq = self.next_seq();
        let id = self.next_span_id;
        self.next_span_id += 1;
        let parent = self.span_stack.last().map_or(NO_SPAN, |s| s.0);
        self.stage(Staged::SpanEnter {
            seq,
            id,
            parent,
            component,
            name,
            time: sim_time,
        });
        self.span_stack.push(SpanId(id));
        SpanId(id)
    }

    /// Indexed span entry from pre-interned ids (the
    /// [`crate::IndexedSpanKey`] fast path).
    pub(crate) fn span_enter_indexed_ids(
        &mut self,
        component: u32,
        base: u32,
        index: usize,
        sim_time: f64,
    ) -> SpanId {
        let name = self.indexed_name_ids(base, index);
        self.span_enter_ids(component, name, sim_time)
    }

    /// Interns a `(component, name)` pair for [`crate::SpanKey`] /
    /// [`crate::IndexedSpanKey`] creation.
    pub(crate) fn intern_pair(&mut self, component: &str, name: &str) -> (u32, u32) {
        (self.strings.intern(component), self.strings.intern(name))
    }

    pub(crate) fn span_exit(&mut self, id: SpanId, sim_time: f64) {
        if let Some(pos) = self.span_stack.iter().rposition(|&s| s == id) {
            self.span_stack.truncate(pos);
        }
        if id.0 < self.next_span_id {
            self.stage(Staged::SpanExit {
                id: id.0,
                time: sim_time,
            });
        }
    }

    pub(crate) fn event(
        &mut self,
        component: &str,
        name: &str,
        sim_time: f64,
        fields: &[(&str, &str)],
    ) {
        let seq = self.next_seq();
        let span = self.span_stack.last().map_or(NO_SPAN, |s| s.0);
        let component = self.strings.intern(component);
        let name = self.strings.intern(name);
        if self.ring.len() >= self.ring_capacity {
            self.flush();
        }
        let fields_start = self.staged_fields.len() as u32;
        for (k, v) in fields {
            let pair = (self.strings.intern(k), self.strings.intern(v));
            self.staged_fields.push(pair);
        }
        self.ring.push(Staged::Event {
            seq,
            span,
            time: sim_time,
            component,
            name,
            fields_start,
            fields_len: fields.len() as u32,
        });
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_decision(
        &mut self,
        component: &str,
        decision: &str,
        model_id: &str,
        model_version: u64,
        features_digest: u64,
        predicted: f64,
        observed: Option<f64>,
        verdict: &str,
        vetoed: bool,
        feedback_latency_ticks: u64,
        sim_time: f64,
    ) {
        let seq = self.next_seq();
        let span = self.span_stack.last().copied();
        let component = self.strings.intern(component);
        let decision = self.strings.intern(decision);
        let model_id = self.strings.intern(model_id);
        let verdict = self.strings.intern(verdict);
        // Flush check before touching the side arena: staged indices must
        // stay within the current flush epoch.
        if self.ring.len() >= self.ring_capacity {
            self.flush();
        }
        let index = self.staged_decisions.len() as u32;
        self.staged_decisions.push(CompactDecision {
            seq,
            span,
            time: sim_time,
            component,
            decision,
            model_id,
            model_version,
            features_digest,
            predicted,
            observed,
            verdict,
            vetoed,
            feedback_latency_ticks,
        });
        self.ring.push(Staged::Decision(index));
    }

    pub(crate) fn record_deployment(
        &mut self,
        component: &str,
        kind: DeploymentKind,
        model_id: &str,
        version: u64,
        cause: &str,
        sim_time: f64,
    ) {
        let seq = self.next_seq();
        let span = self.span_stack.last().copied();
        let component = self.strings.intern(component);
        let model_id = self.strings.intern(model_id);
        let cause = self.strings.intern(cause);
        if self.ring.len() >= self.ring_capacity {
            self.flush();
        }
        let index = self.staged_deployments.len() as u32;
        self.staged_deployments.push(CompactDeployment {
            seq,
            span,
            time: sim_time,
            component,
            kind,
            model_id,
            version,
            cause,
        });
        self.ring.push(Staged::Deployment(index));
    }

    pub(crate) fn counter_add(
        &mut self,
        component: &str,
        name: &str,
        labels: &[(&str, &str)],
        delta: u64,
    ) {
        let id = self.metrics.slot_id(
            &mut self.strings,
            component,
            name,
            labels,
            SlotInit::Counter,
        );
        match &mut self.metrics.slots[id as usize] {
            MetricValue::Counter(c) => *c += delta,
            _ => debug_assert!(false, "metric kind mismatch: expected counter"),
        }
    }

    pub(crate) fn gauge_set(
        &mut self,
        component: &str,
        name: &str,
        labels: &[(&str, &str)],
        value: f64,
    ) {
        let id = self.metrics.slot_id(
            &mut self.strings,
            component,
            name,
            labels,
            SlotInit::Gauge(value),
        );
        // Matches the registry's insert semantics: a gauge write replaces
        // whatever value (of whatever kind) was there.
        self.metrics.slots[id as usize] = MetricValue::Gauge(value);
    }

    pub(crate) fn histogram_observe(
        &mut self,
        component: &str,
        name: &str,
        labels: &[(&str, &str)],
        bounds: Option<&[f64]>,
        value: f64,
    ) {
        let id = self.metrics.slot_id(
            &mut self.strings,
            component,
            name,
            labels,
            SlotInit::Histogram(bounds),
        );
        match &mut self.metrics.slots[id as usize] {
            MetricValue::Histogram(h) => h.observe(value),
            _ => debug_assert!(false, "metric kind mismatch: expected histogram"),
        }
    }

    /// Builds a pre-resolved key for handle-based recording: canonical label
    /// order, the same hash sequence [`MetricTable::slot_id`] computes, and
    /// interned ids. Paid once at handle creation.
    pub(crate) fn make_metric_key(
        &mut self,
        component: &str,
        name: &str,
        labels: &[(&str, &str)],
    ) -> MetricIdKey {
        let mut order: Vec<usize> = (0..labels.len()).collect();
        order.sort_unstable_by(|&a, &b| labels[a].cmp(&labels[b]));
        let mut kh = KeyHash::new();
        kh.write(component.as_bytes());
        kh.sep();
        kh.write(name.as_bytes());
        kh.sep();
        for &i in &order {
            kh.write(labels[i].0.as_bytes());
            kh.sep();
            kh.write(labels[i].1.as_bytes());
            kh.sep();
        }
        MetricIdKey {
            hash: kh.finish(),
            component: self.strings.intern(component),
            name: self.strings.intern(name),
            labels: order
                .iter()
                .map(|&i| {
                    (
                        self.strings.intern(labels[i].0),
                        self.strings.intern(labels[i].1),
                    )
                })
                .collect(),
        }
    }

    pub(crate) fn counter_add_key(&mut self, key: &MetricIdKey, delta: u64) -> u32 {
        let id = self.metrics.slot_for_key(key, SlotInit::Counter);
        self.counter_add_slot(id, delta);
        id
    }

    pub(crate) fn counter_add_slot(&mut self, id: u32, delta: u64) {
        match &mut self.metrics.slots[id as usize] {
            MetricValue::Counter(c) => *c += delta,
            _ => debug_assert!(false, "metric kind mismatch: expected counter"),
        }
    }

    pub(crate) fn gauge_set_key(&mut self, key: &MetricIdKey, value: f64) -> u32 {
        let id = self.metrics.slot_for_key(key, SlotInit::Gauge(value));
        self.gauge_set_slot(id, value);
        id
    }

    pub(crate) fn gauge_set_slot(&mut self, id: u32, value: f64) {
        self.metrics.slots[id as usize] = MetricValue::Gauge(value);
    }

    pub(crate) fn histogram_observe_key(
        &mut self,
        key: &MetricIdKey,
        bounds: Option<&[f64]>,
        value: f64,
    ) -> u32 {
        let id = self.metrics.slot_for_key(key, SlotInit::Histogram(bounds));
        self.histogram_observe_slot(id, value);
        id
    }

    pub(crate) fn histogram_observe_slot(&mut self, id: u32, value: f64) {
        match &mut self.metrics.slots[id as usize] {
            MetricValue::Histogram(h) => h.observe(value),
            _ => debug_assert!(false, "metric kind mismatch: expected histogram"),
        }
    }

    // -- resolution --------------------------------------------------------

    fn resolve_span(&self, s: &CompactSpan) -> SpanRecord {
        SpanRecord {
            id: SpanId(s.id),
            parent: s.parent,
            component: self.strings.resolve(s.component).to_string(),
            name: self.strings.resolve(s.name).to_string(),
            start: s.start,
            end: s.end,
            seq: s.seq,
        }
    }

    fn resolve_event(&self, e: &CompactEvent) -> EventRecord {
        EventRecord {
            seq: e.seq,
            span: e.span,
            sim_time: e.time,
            component: self.strings.resolve(e.component).to_string(),
            name: self.strings.resolve(e.name).to_string(),
            fields: self.store.event_fields
                [e.fields_start as usize..(e.fields_start + e.fields_len) as usize]
                .iter()
                .map(|&(k, v)| {
                    (
                        self.strings.resolve(k).to_string(),
                        self.strings.resolve(v).to_string(),
                    )
                })
                .collect(),
        }
    }

    fn resolve_decision(&self, d: &CompactDecision) -> DecisionRecord {
        DecisionRecord {
            seq: d.seq,
            span: d.span,
            sim_time: d.time,
            component: self.strings.resolve(d.component).to_string(),
            decision: self.strings.resolve(d.decision).to_string(),
            model_id: self.strings.resolve(d.model_id).to_string(),
            model_version: d.model_version,
            features_digest: d.features_digest,
            predicted: d.predicted,
            observed: d.observed,
            verdict: self.strings.resolve(d.verdict).to_string(),
            vetoed: d.vetoed,
            feedback_latency_ticks: d.feedback_latency_ticks,
        }
    }

    fn resolve_deployment(&self, d: &CompactDeployment) -> DeploymentRecord {
        DeploymentRecord {
            seq: d.seq,
            span: d.span,
            sim_time: d.time,
            component: self.strings.resolve(d.component).to_string(),
            kind: d.kind,
            model_id: self.strings.resolve(d.model_id).to_string(),
            version: d.version,
            cause: self.strings.resolve(d.cause).to_string(),
        }
    }

    pub(crate) fn snapshot(&mut self) -> Trace {
        self.flush();
        Trace {
            spans: self
                .store
                .spans
                .iter()
                .map(|s| self.resolve_span(s))
                .collect(),
            events: self
                .store
                .events
                .iter()
                .map(|e| self.resolve_event(e))
                .collect(),
            decisions: self
                .store
                .decisions
                .iter()
                .map(|d| self.resolve_decision(d))
                .collect(),
            deployments: self
                .store
                .deployments
                .iter()
                .map(|d| self.resolve_deployment(d))
                .collect(),
            metrics: self.metrics.to_registry(&self.strings),
        }
    }

    pub(crate) fn last_event_json(&mut self) -> Option<String> {
        self.flush();
        self.store.events.last().copied().map(|e| {
            serde_json::to_string(&self.resolve_event(&e))
                .expect("event serialization is infallible")
        })
    }

    /// Streams the flight record as chunked canonical JSON, resolving one
    /// record at a time — the full `Trace` (and the full output string) are
    /// never materialized. Concatenated chunks are byte-identical to
    /// [`crate::export::to_json`] of the snapshot.
    pub(crate) fn export_stream(&mut self, chunk_size: usize, sink: &mut dyn FnMut(&str)) {
        self.flush();
        let mut w = ChunkSink::new(chunk_size, sink);
        w.raw("{\"spans\":[");
        for (i, s) in self.store.spans.iter().enumerate() {
            if i > 0 {
                w.raw(",");
            }
            w.record(&self.resolve_span(s));
        }
        w.raw("],\"events\":[");
        for (i, e) in self.store.events.iter().enumerate() {
            if i > 0 {
                w.raw(",");
            }
            w.record(&self.resolve_event(e));
        }
        w.raw("],\"decisions\":[");
        for (i, d) in self.store.decisions.iter().enumerate() {
            if i > 0 {
                w.raw(",");
            }
            w.record(&self.resolve_decision(d));
        }
        w.raw("],\"deployments\":[");
        for (i, d) in self.store.deployments.iter().enumerate() {
            if i > 0 {
                w.raw(",");
            }
            w.record(&self.resolve_deployment(d));
        }
        w.raw("],\"metrics\":");
        // Distinct metric identities are few; materializing the sorted
        // registry here is O(metrics), not O(trace).
        w.record(&self.metrics.to_registry(&self.strings));
        w.raw("}");
        w.finish();
    }
}
