//! Deterministic flight recorder for the autonomy loop.
//!
//! The paper's closed feedback loop — telemetry feeding models, models
//! making decisions, guardrails vetoing regressions — is only debuggable
//! when the loop can observe *itself*. This crate supplies that layer with
//! zero external dependencies:
//!
//! * **spans** ([`span`]) — structured enter/exit intervals over *simulated*
//!   time with parent links, byte-identical across same-seed replays;
//! * **metrics** ([`metrics`]) — counters, gauges and fixed-bucket
//!   histograms keyed by `(component, name, labels)` in deterministic order;
//! * **flight recorder** ([`flight`]) — every autonomy-loop decision as a
//!   provenance record: model id + version, input-feature digest, predicted
//!   vs. observed outcome, guardrail verdict, feedback latency in ticks;
//! * **exporters** ([`export`]) — canonical JSON and Prometheus text;
//! * **queries** ([`trace`]) — e.g. "all decisions where predicted/observed
//!   error exceeds 2x".
//!
//! Recording sits behind an [`Obs`] handle threaded through the
//! instrumented constructors — no globals, no wall clock. The disabled
//! handle ([`Obs::disabled`]) reduces every instrumentation site to one
//! branch; `obs_bench` holds that path to < 5% overhead.
//!
//! ```
//! use adas_obs::{Obs, Provenance};
//!
//! let obs = Obs::recording();
//! let span = obs.span_enter("engine.exec", "job-0", 0.0);
//! obs.counter_add("engine.exec", "stages_executed", &[], 4);
//! obs.record_decision(
//!     "core.guardrails",
//!     "autonomy_decision",
//!     &Provenance::new("cost-model", 3, 0xfeed),
//!     12.0,        // predicted
//!     Some(11.5),  // observed
//!     "allow",
//!     false,
//!     0,
//!     1.25,
//! );
//! obs.span_exit(span, 1.25);
//! let trace = obs.snapshot();
//! assert_eq!(trace.spans.len(), 1);
//! assert_eq!(trace.query().vetoed().decisions().len(), 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod export;
pub mod flight;
pub mod metrics;
pub mod span;
pub mod trace;

pub use flight::{
    digest_bytes, digest_f64, DecisionRecord, DeploymentKind, DeploymentRecord, Provenance,
};
pub use metrics::{Histogram, MetricKey, MetricValue, MetricsRegistry};
pub use span::{SpanId, SpanRecord};
pub use trace::{EventRecord, Trace, TraceQuery};

use parking_lot::Mutex;
use std::sync::Arc;

#[derive(Debug, Default)]
struct Recorder {
    seq: u64,
    span_stack: Vec<SpanId>,
    spans: Vec<SpanRecord>,
    events: Vec<EventRecord>,
    decisions: Vec<DecisionRecord>,
    deployments: Vec<DeploymentRecord>,
    metrics: MetricsRegistry,
}

impl Recorder {
    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }
}

/// The recording handle.
///
/// Cheap to clone (an `Arc` internally) and thread through constructors.
/// [`Obs::disabled`] carries no recorder at all: every instrumentation call
/// is a single `Option` branch, which is what keeps the always-on
/// production configuration within the overhead budget.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Mutex<Recorder>>>,
}

impl Obs {
    /// A handle that records nothing (the default).
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A live recorder.
    pub fn recording() -> Self {
        Self {
            inner: Some(Arc::new(Mutex::new(Recorder::default()))),
        }
    }

    /// True when this handle records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span at simulated time `sim_time`, parented to the innermost
    /// open span. Returns [`SpanId::NONE`] when disabled.
    pub fn span_enter(&self, component: &str, name: &str, sim_time: f64) -> SpanId {
        let Some(inner) = &self.inner else {
            return SpanId::NONE;
        };
        let mut rec = inner.lock();
        let seq = rec.next_seq();
        let id = SpanId(rec.spans.len() as u64);
        let parent = rec.span_stack.last().copied();
        rec.spans.push(SpanRecord {
            id,
            parent,
            component: component.to_string(),
            name: name.to_string(),
            start: sim_time,
            end: sim_time,
            seq,
        });
        rec.span_stack.push(id);
        id
    }

    /// Closes span `id` at simulated time `sim_time`. Tolerates exits out
    /// of order (pops the stack through `id`) and ignores [`SpanId::NONE`].
    pub fn span_exit(&self, id: SpanId, sim_time: f64) {
        if !id.is_real() {
            return;
        }
        let Some(inner) = &self.inner else { return };
        let mut rec = inner.lock();
        if let Some(pos) = rec.span_stack.iter().rposition(|&s| s == id) {
            rec.span_stack.truncate(pos);
        }
        if let Some(span) = rec.spans.get_mut(id.0 as usize) {
            span.end = sim_time;
        }
    }

    /// Emits a free-form event.
    pub fn event(&self, component: &str, name: &str, sim_time: f64, fields: &[(&str, &str)]) {
        let Some(inner) = &self.inner else { return };
        let mut rec = inner.lock();
        let seq = rec.next_seq();
        let span = rec.span_stack.last().copied();
        rec.events.push(EventRecord {
            seq,
            span,
            sim_time,
            component: component.to_string(),
            name: name.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        });
    }

    /// The most recent event as a JSON line, for streaming progress output
    /// alongside the full trace export.
    pub fn last_event_json(&self) -> Option<String> {
        let inner = self.inner.as_ref()?;
        let rec = inner.lock();
        rec.events
            .last()
            .map(|e| serde_json::to_string(e).expect("event serialization is infallible"))
    }

    /// Records one autonomy-loop decision into the flight recorder.
    #[allow(clippy::too_many_arguments)]
    pub fn record_decision(
        &self,
        component: &str,
        decision: &str,
        provenance: &Provenance<'_>,
        predicted: f64,
        observed: Option<f64>,
        verdict: &str,
        vetoed: bool,
        feedback_latency_ticks: u64,
        sim_time: f64,
    ) {
        let Some(inner) = &self.inner else { return };
        let mut rec = inner.lock();
        let seq = rec.next_seq();
        let span = rec.span_stack.last().copied();
        rec.decisions.push(DecisionRecord {
            seq,
            span,
            sim_time,
            component: component.to_string(),
            decision: decision.to_string(),
            model_id: provenance.model_id.to_string(),
            model_version: provenance.model_version,
            features_digest: provenance.features_digest,
            predicted,
            observed,
            verdict: verdict.to_string(),
            vetoed,
            feedback_latency_ticks,
        });
    }

    /// Records one typed deployment change (publish, rollback, shadow or
    /// canary start, promote, demote) with its triggering cause.
    pub fn record_deployment(
        &self,
        component: &str,
        kind: DeploymentKind,
        model_id: &str,
        version: u64,
        cause: &str,
        sim_time: f64,
    ) {
        let Some(inner) = &self.inner else { return };
        let mut rec = inner.lock();
        let seq = rec.next_seq();
        let span = rec.span_stack.last().copied();
        rec.deployments.push(DeploymentRecord {
            seq,
            span,
            sim_time,
            component: component.to_string(),
            kind,
            model_id: model_id.to_string(),
            version,
            cause: cause.to_string(),
        });
    }

    /// Adds `delta` to a counter.
    pub fn counter_add(&self, component: &str, name: &str, labels: &[(&str, &str)], delta: u64) {
        let Some(inner) = &self.inner else { return };
        inner
            .lock()
            .metrics
            .counter_add(MetricKey::new(component, name, labels), delta);
    }

    /// Sets a gauge.
    pub fn gauge_set(&self, component: &str, name: &str, labels: &[(&str, &str)], value: f64) {
        let Some(inner) = &self.inner else { return };
        inner
            .lock()
            .metrics
            .gauge_set(MetricKey::new(component, name, labels), value);
    }

    /// Observes into a histogram with the default latency buckets.
    pub fn histogram_observe(
        &self,
        component: &str,
        name: &str,
        labels: &[(&str, &str)],
        value: f64,
    ) {
        self.histogram_observe_with(component, name, labels, &Histogram::default_bounds(), value);
    }

    /// Observes into a histogram created with explicit `bounds` on first
    /// touch.
    pub fn histogram_observe_with(
        &self,
        component: &str,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
        value: f64,
    ) {
        let Some(inner) = &self.inner else { return };
        inner.lock().metrics.histogram_observe(
            MetricKey::new(component, name, labels),
            bounds,
            value,
        );
    }

    /// An immutable snapshot of everything recorded so far.
    pub fn snapshot(&self) -> Trace {
        let Some(inner) = &self.inner else {
            return Trace::default();
        };
        let rec = inner.lock();
        Trace {
            spans: rec.spans.clone(),
            events: rec.events.clone(),
            decisions: rec.decisions.clone(),
            deployments: rec.deployments.clone(),
            metrics: rec.metrics.clone(),
        }
    }

    /// Canonical JSON export of the current snapshot.
    pub fn export_json(&self) -> String {
        export::to_json(&self.snapshot())
    }

    /// Pretty JSON export of the current snapshot.
    pub fn export_json_pretty(&self) -> String {
        export::to_json_pretty(&self.snapshot())
    }

    /// Prometheus text exposition of the current metrics.
    pub fn export_prometheus(&self) -> String {
        export::to_prometheus(&self.snapshot().metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let obs = Obs::disabled();
        let span = obs.span_enter("c", "n", 0.0);
        assert_eq!(span, SpanId::NONE);
        obs.span_exit(span, 1.0);
        obs.counter_add("c", "n", &[], 1);
        obs.event("c", "e", 0.0, &[]);
        let trace = obs.snapshot();
        assert_eq!(trace, Trace::default());
        assert!(!obs.is_enabled());
    }

    #[test]
    fn spans_nest_and_parent() {
        let obs = Obs::recording();
        let outer = obs.span_enter("engine.exec", "job", 0.0);
        let inner = obs.span_enter("engine.exec", "stage-0", 0.5);
        obs.span_exit(inner, 1.5);
        let sibling = obs.span_enter("engine.exec", "stage-1", 1.5);
        obs.span_exit(sibling, 2.0);
        obs.span_exit(outer, 2.0);
        let trace = obs.snapshot();
        assert_eq!(trace.spans.len(), 3);
        assert_eq!(trace.spans[0].parent, None);
        assert_eq!(trace.spans[1].parent, Some(outer));
        assert_eq!(trace.spans[2].parent, Some(outer));
        assert_eq!(trace.children_of(outer).count(), 2);
        assert!((trace.spans[1].duration() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn events_and_decisions_attach_to_open_span() {
        let obs = Obs::recording();
        let span = obs.span_enter("faultsim.chaos", "attempt-0", 0.0);
        obs.event(
            "faultsim.chaos",
            "fault_injected",
            0.3,
            &[("kind", "crash")],
        );
        obs.record_decision(
            "core.guardrails",
            "autonomy_decision",
            &Provenance::new("m", 2, 7),
            1.0,
            Some(3.0),
            "block: regression",
            true,
            4,
            0.4,
        );
        obs.span_exit(span, 1.0);
        let trace = obs.snapshot();
        assert_eq!(trace.events[0].span, Some(span));
        assert_eq!(trace.events[0].field("kind"), Some("crash"));
        assert_eq!(trace.decisions[0].span, Some(span));
        assert_eq!(trace.decisions[0].model_version, 2);
        assert_eq!(trace.decisions[0].feedback_latency_ticks, 4);
        let vetoed = trace.query().vetoed().min_error_factor(2.0).decisions();
        assert_eq!(vetoed.len(), 1);
    }

    #[test]
    fn sequence_numbers_total_order_all_records() {
        let obs = Obs::recording();
        let s = obs.span_enter("a", "s", 0.0);
        obs.event("a", "e", 0.1, &[]);
        obs.record_decision(
            "a",
            "d",
            &Provenance::new("m", 1, 0),
            1.0,
            None,
            "allow",
            false,
            0,
            0.2,
        );
        obs.span_exit(s, 0.3);
        let t = obs.snapshot();
        assert_eq!(t.spans[0].seq, 0);
        assert_eq!(t.events[0].seq, 1);
        assert_eq!(t.decisions[0].seq, 2);
    }

    #[test]
    fn export_json_is_deterministic() {
        let run = || {
            let obs = Obs::recording();
            // Touch metrics in scrambled order; export must still agree.
            obs.counter_add("z", "c", &[("l", "2")], 1);
            obs.counter_add("a", "c", &[], 5);
            obs.gauge_set("m", "g", &[], 1.5);
            obs.histogram_observe("m", "h", &[], 0.25);
            let s = obs.span_enter("c", "s", 0.0);
            obs.span_exit(s, 2.0);
            obs.export_json()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn deployment_records_carry_cause_and_order() {
        let obs = Obs::recording();
        let span = obs.span_enter("serve.gateway", "deploy", 0.0);
        obs.record_deployment(
            "serve.gateway",
            DeploymentKind::Publish,
            "card",
            1,
            "manual",
            0.5,
        );
        obs.record_deployment(
            "serve.gateway",
            DeploymentKind::CanaryStart,
            "card",
            2,
            "drift",
            1.0,
        );
        obs.record_deployment(
            "serve.gateway",
            DeploymentKind::Rollback,
            "card",
            3,
            "guard_trip",
            2.0,
        );
        obs.span_exit(span, 2.5);
        let trace = obs.snapshot();
        assert_eq!(trace.deployments.len(), 3);
        assert_eq!(trace.deployments_of("card").count(), 3);
        assert_eq!(trace.deployments_of("other").count(), 0);
        assert_eq!(trace.deployments[0].span, Some(span));
        assert_eq!(trace.deployments[1].kind, DeploymentKind::CanaryStart);
        assert_eq!(trace.deployments[1].kind.name(), "canary_start");
        assert_eq!(trace.deployments[2].cause, "guard_trip");
        // Sequence numbers interleave with the span's.
        assert!(trace.deployments[0].seq > trace.spans[0].seq);
        assert!(trace.deployments[0].seq < trace.deployments[1].seq);
        // Round-trips through canonical JSON, and old traces (without the
        // field) still deserialize.
        let json = obs.export_json();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
        let mut value: serde_json::Value = serde_json::from_str(&json).unwrap();
        if let serde_json::Value::Map(map) = &mut value {
            map.retain(|(k, _)| k != "deployments");
        }
        let legacy: Trace = serde_json::from_value(value).unwrap();
        assert!(legacy.deployments.is_empty());
    }

    #[test]
    fn clones_share_one_recorder() {
        let obs = Obs::recording();
        let clone = obs.clone();
        clone.counter_add("c", "n", &[], 2);
        obs.counter_add("c", "n", &[], 1);
        assert_eq!(obs.snapshot().metrics.counter("c", "n", &[]), 3);
    }
}
