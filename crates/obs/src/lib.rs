//! Deterministic flight recorder for the autonomy loop.
//!
//! The paper's closed feedback loop — telemetry feeding models, models
//! making decisions, guardrails vetoing regressions — is only debuggable
//! when the loop can observe *itself*. This crate supplies that layer with
//! zero external dependencies:
//!
//! * **spans** ([`span`]) — structured enter/exit intervals over *simulated*
//!   time with parent links, byte-identical across same-seed replays;
//! * **metrics** ([`metrics`]) — counters, gauges and fixed-bucket
//!   histograms keyed by `(component, name, labels)` in deterministic order;
//! * **flight recorder** ([`flight`]) — every autonomy-loop decision as a
//!   provenance record: model id + version, input-feature digest, predicted
//!   vs. observed outcome, guardrail verdict, feedback latency in ticks;
//! * **exporters** ([`export`]) — canonical JSON (whole-string or chunked
//!   streaming) and Prometheus text;
//! * **queries** ([`trace`]) — e.g. "all decisions where predicted/observed
//!   error exceeds 2x".
//!
//! Recording sits behind an [`Obs`] handle threaded through the
//! instrumented constructors — no globals, no wall clock. The disabled
//! handle ([`Obs::disabled`]) reduces every instrumentation site to one
//! branch; `obs_bench` holds that path to < 5% overhead.
//!
//! ## The recording hot path
//!
//! Always-on recording must be budgeted like any other hot-path cost, so
//! the default backend ([`Obs::recording`]) never allocates per record:
//! strings intern to integer ids ([`intern`]), records stage into a
//! preallocated ring and flush in batches, metric updates land in dense
//! slots, and strings are only resolved back at snapshot/export time. A
//! direct-mutation reference backend ([`Obs::recording_direct`]) keeps the
//! original one-`Trace`-mutation-per-record semantics; the equivalence
//! suite pins both to byte-identical canonical JSON. Instrumentation sites
//! that emit several records at one point in time should take one
//! [`Obs::batch`] and record through it — one lock acquisition for the
//! whole block instead of one per record. Fleet-scale runs can bound trace
//! growth with deterministic per-seed sampling
//! ([`Obs::recording_sampled`], [`sample`]) and export without ever
//! holding the full JSON in memory ([`Obs::export_stream`]).
//!
//! ```
//! use adas_obs::{Obs, Provenance};
//!
//! let obs = Obs::recording();
//! let span = obs.span_enter("engine.exec", "job-0", 0.0);
//! obs.counter_add("engine.exec", "stages_executed", &[], 4);
//! obs.record_decision(
//!     "core.guardrails",
//!     "autonomy_decision",
//!     &Provenance::new("cost-model", 3, 0xfeed),
//!     12.0,        // predicted
//!     Some(11.5),  // observed
//!     "allow",
//!     false,
//!     0,
//!     1.25,
//! );
//! obs.span_exit(span, 1.25);
//! let trace = obs.snapshot();
//! assert_eq!(trace.spans.len(), 1);
//! assert_eq!(trace.query().vetoed().decisions().len(), 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod direct;
pub mod export;
pub mod flight;
pub mod intern;
pub mod metrics;
mod ring;
pub mod sample;
pub mod span;
pub mod trace;

pub use flight::{
    digest_bytes, digest_f64, DecisionRecord, DeploymentKind, DeploymentRecord, Provenance,
};
pub use intern::Interner;
pub use metrics::{Histogram, MetricKey, MetricValue, MetricsRegistry};
pub use sample::{sample_keeps, SampleConfig};
pub use span::{SpanId, SpanRecord};
pub use trace::{EventRecord, Trace, TraceQuery};

use direct::DirectRecorder;
use parking_lot::Mutex;
use ring::{BatchedRecorder, MetricIdKey, DEFAULT_RING_CAPACITY};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::sync::MutexGuard;

/// Default chunk size for [`Obs::export_stream`] and
/// [`Trace::export_stream`], in bytes. Every caller that streams a trace
/// (chaos runner, gateway, experiments bin, `tracectl`) should use this
/// instead of hardcoding its own size.
pub const DEFAULT_EXPORT_CHUNK: usize = 64 * 1024;

/// One recorder backend behind an [`Obs`] handle.
// The enum lives inside the handle's `Arc<Mutex<..>>`, heap-allocated once
// per recorder; boxing the large variant would add a pointer chase to every
// staged record for no memory win.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum Recorder {
    /// Per-record trace mutation — the reference semantics.
    Direct(DirectRecorder),
    /// Ring-staged, interned, batch-flushed — the hot-path default.
    Batched(BatchedRecorder),
}

/// Position in a recording for [`Obs::snapshot_since`]: how many records of
/// each kind the caller has already consumed. A fresh (default) cursor
/// makes the first incremental snapshot equal to a full [`Obs::snapshot`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TraceCursor {
    spans: usize,
    events: usize,
    decisions: usize,
    deployments: usize,
}

impl Recorder {
    fn span_enter(&mut self, component: &str, name: &str, sim_time: f64) -> SpanId {
        match self {
            Recorder::Direct(d) => d.span_enter(component, name, sim_time),
            Recorder::Batched(b) => b.span_enter(component, name, sim_time),
        }
    }

    fn span_enter_indexed(
        &mut self,
        component: &str,
        base: &str,
        index: usize,
        sim_time: f64,
    ) -> SpanId {
        match self {
            Recorder::Direct(d) => d.span_enter(component, &format!("{base}_{index}"), sim_time),
            Recorder::Batched(b) => b.span_enter_indexed(component, base, index, sim_time),
        }
    }

    fn span_exit(&mut self, id: SpanId, sim_time: f64) {
        match self {
            Recorder::Direct(d) => d.span_exit(id, sim_time),
            Recorder::Batched(b) => b.span_exit(id, sim_time),
        }
    }

    fn event(&mut self, component: &str, name: &str, sim_time: f64, fields: &[(&str, &str)]) {
        match self {
            Recorder::Direct(d) => d.event(component, name, sim_time, fields),
            Recorder::Batched(b) => b.event(component, name, sim_time, fields),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn record_decision(
        &mut self,
        component: &str,
        decision: &str,
        provenance: &Provenance<'_>,
        predicted: f64,
        observed: Option<f64>,
        verdict: &str,
        vetoed: bool,
        feedback_latency_ticks: u64,
        sim_time: f64,
    ) {
        match self {
            Recorder::Direct(d) => d.record_decision(
                component,
                decision,
                provenance.model_id,
                provenance.model_version,
                provenance.features_digest,
                predicted,
                observed,
                verdict,
                vetoed,
                feedback_latency_ticks,
                sim_time,
            ),
            Recorder::Batched(b) => b.record_decision(
                component,
                decision,
                provenance.model_id,
                provenance.model_version,
                provenance.features_digest,
                predicted,
                observed,
                verdict,
                vetoed,
                feedback_latency_ticks,
                sim_time,
            ),
        }
    }

    fn record_deployment(
        &mut self,
        component: &str,
        kind: DeploymentKind,
        model_id: &str,
        version: u64,
        cause: &str,
        sim_time: f64,
    ) {
        match self {
            Recorder::Direct(d) => {
                d.record_deployment(component, kind, model_id, version, cause, sim_time)
            }
            Recorder::Batched(b) => {
                b.record_deployment(component, kind, model_id, version, cause, sim_time)
            }
        }
    }

    fn counter_add(&mut self, component: &str, name: &str, labels: &[(&str, &str)], delta: u64) {
        match self {
            Recorder::Direct(d) => d.counter_add(component, name, labels, delta),
            Recorder::Batched(b) => b.counter_add(component, name, labels, delta),
        }
    }

    fn gauge_set(&mut self, component: &str, name: &str, labels: &[(&str, &str)], value: f64) {
        match self {
            Recorder::Direct(d) => d.gauge_set(component, name, labels, value),
            Recorder::Batched(b) => b.gauge_set(component, name, labels, value),
        }
    }

    fn histogram_observe(
        &mut self,
        component: &str,
        name: &str,
        labels: &[(&str, &str)],
        bounds: Option<&[f64]>,
        value: f64,
    ) {
        match self {
            Recorder::Direct(d) => d.histogram_observe(component, name, labels, bounds, value),
            Recorder::Batched(b) => b.histogram_observe(component, name, labels, bounds, value),
        }
    }

    fn last_event_json(&mut self) -> Option<String> {
        match self {
            Recorder::Direct(d) => d.last_event_json(),
            Recorder::Batched(b) => b.last_event_json(),
        }
    }

    fn snapshot(&mut self) -> Trace {
        match self {
            Recorder::Direct(d) => d.snapshot(),
            Recorder::Batched(b) => b.snapshot(),
        }
    }

    fn export_stream(&mut self, chunk_size: usize, sink: &mut dyn FnMut(&str)) {
        match self {
            Recorder::Direct(d) => d.export_stream(chunk_size, sink),
            Recorder::Batched(b) => b.export_stream(chunk_size, sink),
        }
    }
}

/// The recording handle.
///
/// Cheap to clone (an `Arc` internally) and thread through constructors.
/// [`Obs::disabled`] carries no recorder at all: every instrumentation call
/// is a single `Option` branch, which is what keeps the always-on
/// production configuration within the overhead budget. When recording,
/// the default backend stages records through a preallocated ring with
/// interned strings (see the crate docs); [`Obs::recording_direct`] selects
/// the per-record reference backend instead.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Mutex<Recorder>>>,
}

impl Obs {
    /// A handle that records nothing (the default).
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A live recorder using the batched hot-path backend.
    pub fn recording() -> Self {
        Self::from_recorder(Recorder::Batched(BatchedRecorder::new(
            DEFAULT_RING_CAPACITY,
            None,
        )))
    }

    /// A live recorder using the original direct-mutation backend — the
    /// reference semantics the batched backend is equivalence-tested
    /// against.
    pub fn recording_direct() -> Self {
        Self::from_recorder(Recorder::Direct(DirectRecorder::default()))
    }

    /// A batched recorder with an explicit staging-ring capacity (records
    /// between forced flushes). Mostly useful in tests that want to force
    /// many flush boundaries.
    pub fn recording_with_ring(capacity: usize) -> Self {
        Self::from_recorder(Recorder::Batched(BatchedRecorder::new(capacity, None)))
    }

    /// A batched recorder with deterministic per-seed sampling: whether a
    /// span/event/decision is kept is a pure function of `(seed, id)`, so
    /// same-seed replays export byte-identical sampled traces and the
    /// sampled trace is a strict filter of the full one (see [`sample`]).
    /// Deployment records and metrics are never sampled out.
    pub fn recording_sampled(seed: u64, keep_ratio: f64) -> Self {
        Self::from_recorder(Recorder::Batched(BatchedRecorder::new(
            DEFAULT_RING_CAPACITY,
            Some(SampleConfig::new(seed, keep_ratio)),
        )))
    }

    fn from_recorder(recorder: Recorder) -> Self {
        Self {
            inner: Some(Arc::new(Mutex::new(recorder))),
        }
    }

    /// True when this handle records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a recording batch: one lock acquisition for a whole block of
    /// records. Instrumentation sites that emit several records at one
    /// point in time should prefer this over repeated [`Obs`] calls.
    ///
    /// The batch holds the recorder lock until dropped — do **not** call
    /// back into the same `Obs` handle (directly or through a callback)
    /// while a batch is open, and keep batches scoped to straight-line
    /// recording code.
    pub fn batch(&self) -> ObsBatch<'_> {
        ObsBatch {
            token: self.token(),
            guard: self.inner.as_ref().map(|i| i.lock()),
        }
    }

    /// Identity of the recorder behind this handle (its allocation address),
    /// 0 when disabled. Metric handles remember it so their pre-resolved
    /// interned ids are only ever applied to the recorder they came from.
    fn token(&self) -> usize {
        self.inner
            .as_ref()
            .map(|i| Arc::as_ptr(i) as usize)
            .unwrap_or(0)
    }

    /// Creates a pre-resolved span identity for a fixed
    /// `(component, name)`. See [`SpanKey`].
    pub fn span_key(&self, component: &str, name: &str) -> SpanKey {
        SpanKey {
            component: component.to_string(),
            name: name.to_string(),
            fast: self.intern_pair(component, name),
        }
    }

    /// Creates a pre-resolved identity for `{base}_{index}`-named spans.
    /// See [`IndexedSpanKey`].
    pub fn indexed_span_key(&self, component: &str, base: &str) -> IndexedSpanKey {
        IndexedSpanKey {
            component: component.to_string(),
            base: base.to_string(),
            fast: self.intern_pair(component, base),
        }
    }

    fn intern_pair(&self, component: &str, name: &str) -> Option<(usize, (u32, u32))> {
        self.inner.as_ref().and_then(|arc| match &mut *arc.lock() {
            Recorder::Batched(b) => {
                Some((Arc::as_ptr(arc) as usize, b.intern_pair(component, name)))
            }
            Recorder::Direct(_) => None,
        })
    }

    /// Creates a pre-resolved counter handle for a fixed
    /// `(component, name, labels)` identity. See [`CounterHandle`].
    pub fn counter_handle(
        &self,
        component: &str,
        name: &str,
        labels: &[(&str, &str)],
    ) -> CounterHandle {
        CounterHandle(MetricHandle::new(self, component, name, labels))
    }

    /// Creates a pre-resolved gauge handle. See [`GaugeHandle`].
    pub fn gauge_handle(
        &self,
        component: &str,
        name: &str,
        labels: &[(&str, &str)],
    ) -> GaugeHandle {
        GaugeHandle(MetricHandle::new(self, component, name, labels))
    }

    /// Creates a pre-resolved histogram handle; `bounds` (used on first
    /// touch, like [`Obs::histogram_observe_with`]) default to the standard
    /// latency buckets when `None`. See [`HistogramHandle`].
    pub fn histogram_handle(
        &self,
        component: &str,
        name: &str,
        labels: &[(&str, &str)],
        bounds: Option<&[f64]>,
    ) -> HistogramHandle {
        HistogramHandle {
            inner: MetricHandle::new(self, component, name, labels),
            bounds: bounds.map(<[f64]>::to_vec),
        }
    }

    /// Opens a span at simulated time `sim_time`, parented to the innermost
    /// open span. Returns [`SpanId::NONE`] when disabled.
    pub fn span_enter(&self, component: &str, name: &str, sim_time: f64) -> SpanId {
        let Some(inner) = &self.inner else {
            return SpanId::NONE;
        };
        inner.lock().span_enter(component, name, sim_time)
    }

    /// Opens a span named `{base}_{index}` — the common per-stage /
    /// per-job naming scheme. The batched backend formats each distinct
    /// `(base, index)` pair once and reuses the interned name after that,
    /// keeping repeated hot-loop spans allocation-free.
    pub fn span_enter_indexed(
        &self,
        component: &str,
        base: &str,
        index: usize,
        sim_time: f64,
    ) -> SpanId {
        let Some(inner) = &self.inner else {
            return SpanId::NONE;
        };
        inner
            .lock()
            .span_enter_indexed(component, base, index, sim_time)
    }

    /// Closes span `id` at simulated time `sim_time`. Tolerates exits out
    /// of order (pops the stack through `id`) and ignores [`SpanId::NONE`].
    pub fn span_exit(&self, id: SpanId, sim_time: f64) {
        if !id.is_real() {
            return;
        }
        let Some(inner) = &self.inner else { return };
        inner.lock().span_exit(id, sim_time);
    }

    /// Emits a free-form event.
    pub fn event(&self, component: &str, name: &str, sim_time: f64, fields: &[(&str, &str)]) {
        let Some(inner) = &self.inner else { return };
        inner.lock().event(component, name, sim_time, fields);
    }

    /// The most recent event as a JSON line, for streaming progress output
    /// alongside the full trace export.
    pub fn last_event_json(&self) -> Option<String> {
        let inner = self.inner.as_ref()?;
        inner.lock().last_event_json()
    }

    /// Records one autonomy-loop decision into the flight recorder.
    #[allow(clippy::too_many_arguments)]
    pub fn record_decision(
        &self,
        component: &str,
        decision: &str,
        provenance: &Provenance<'_>,
        predicted: f64,
        observed: Option<f64>,
        verdict: &str,
        vetoed: bool,
        feedback_latency_ticks: u64,
        sim_time: f64,
    ) {
        let Some(inner) = &self.inner else { return };
        inner.lock().record_decision(
            component,
            decision,
            provenance,
            predicted,
            observed,
            verdict,
            vetoed,
            feedback_latency_ticks,
            sim_time,
        );
    }

    /// Records one typed deployment change (publish, rollback, shadow or
    /// canary start, promote, demote) with its triggering cause.
    pub fn record_deployment(
        &self,
        component: &str,
        kind: DeploymentKind,
        model_id: &str,
        version: u64,
        cause: &str,
        sim_time: f64,
    ) {
        let Some(inner) = &self.inner else { return };
        inner
            .lock()
            .record_deployment(component, kind, model_id, version, cause, sim_time);
    }

    /// Adds `delta` to a counter.
    pub fn counter_add(&self, component: &str, name: &str, labels: &[(&str, &str)], delta: u64) {
        let Some(inner) = &self.inner else { return };
        inner.lock().counter_add(component, name, labels, delta);
    }

    /// Sets a gauge.
    pub fn gauge_set(&self, component: &str, name: &str, labels: &[(&str, &str)], value: f64) {
        let Some(inner) = &self.inner else { return };
        inner.lock().gauge_set(component, name, labels, value);
    }

    /// Observes into a histogram with the default latency buckets.
    pub fn histogram_observe(
        &self,
        component: &str,
        name: &str,
        labels: &[(&str, &str)],
        value: f64,
    ) {
        let Some(inner) = &self.inner else { return };
        inner
            .lock()
            .histogram_observe(component, name, labels, None, value);
    }

    /// Observes into a histogram created with explicit `bounds` on first
    /// touch.
    pub fn histogram_observe_with(
        &self,
        component: &str,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
        value: f64,
    ) {
        let Some(inner) = &self.inner else { return };
        inner
            .lock()
            .histogram_observe(component, name, labels, Some(bounds), value);
    }

    /// An immutable snapshot of everything recorded so far.
    pub fn snapshot(&self) -> Trace {
        let Some(inner) = &self.inner else {
            return Trace::default();
        };
        inner.lock().snapshot()
    }

    /// Incremental snapshot: everything recorded since `cursor` last saw
    /// this handle, advancing the cursor. The delta's record vectors hold
    /// only new entries (all four are append-only in record order), while
    /// `metrics` is always the full cumulative registry — counters and
    /// histograms are running totals, not deltas.
    ///
    /// Spans are included in the delta when they are *entered*; a span
    /// still open at the cut keeps `end == start` in that delta and is not
    /// re-reported when it later closes. Online consumers doing latency
    /// analysis (watchtower's SLO engine) should therefore take their cuts
    /// after the spans they care about have exited.
    pub fn snapshot_since(&self, cursor: &mut TraceCursor) -> Trace {
        let mut full = self.snapshot();
        let delta = Trace {
            spans: full.spans.split_off(cursor.spans.min(full.spans.len())),
            events: full.events.split_off(cursor.events.min(full.events.len())),
            decisions: full
                .decisions
                .split_off(cursor.decisions.min(full.decisions.len())),
            deployments: full
                .deployments
                .split_off(cursor.deployments.min(full.deployments.len())),
            metrics: full.metrics,
        };
        cursor.spans += delta.spans.len();
        cursor.events += delta.events.len();
        cursor.decisions += delta.decisions.len();
        cursor.deployments += delta.deployments.len();
        delta
    }

    /// Canonical JSON export of the current snapshot.
    pub fn export_json(&self) -> String {
        export::to_json(&self.snapshot())
    }

    /// Pretty JSON export of the current snapshot.
    pub fn export_json_pretty(&self) -> String {
        export::to_json_pretty(&self.snapshot())
    }

    /// Streams the canonical JSON export in chunks of at least `chunk_size`
    /// bytes (the final chunk may be shorter). The concatenation of the
    /// chunks is byte-identical to [`Obs::export_json`], but the batched
    /// backend resolves one record at a time — neither the full `Trace`
    /// clone nor the full export string is ever materialized, which is what
    /// lets a fleet-scale run ship its flight record without holding it in
    /// memory. A disabled handle streams the empty trace.
    pub fn export_stream(&self, chunk_size: usize, mut sink: impl FnMut(&str)) {
        match &self.inner {
            Some(inner) => inner.lock().export_stream(chunk_size, &mut sink),
            None => export::to_json_stream(&Trace::default(), chunk_size, sink),
        }
    }

    /// Prometheus text exposition of the current snapshot: the metrics
    /// registry plus deployment/incident counters synthesized from the
    /// trace's typed records (see [`export::to_prometheus_trace`]).
    pub fn export_prometheus(&self) -> String {
        export::to_prometheus_trace(&self.snapshot())
    }
}

/// Shared innards of the typed metric handles: the full string identity
/// (always kept, so a handle works — more slowly — against any recorder)
/// plus, when the handle was created from a batched recorder, that
/// recorder's pre-resolved interned key. The hot-path update through the
/// fast key skips string hashing and comparison entirely; the `token` check
/// makes sure interned ids never reach a recorder they don't belong to.
#[derive(Debug)]
struct MetricHandle {
    component: String,
    name: String,
    labels: Vec<(String, String)>,
    fast: Option<(usize, MetricIdKey)>,
    /// Memoized dense slot index on the fast-path recorder, `u32::MAX`
    /// until first use. Only consulted after the `fast` token check, and
    /// slots are append-only for a recorder's lifetime, so a memoized
    /// index can never go stale or reach the wrong recorder.
    slot: AtomicU32,
}

impl Clone for MetricHandle {
    fn clone(&self) -> Self {
        Self {
            component: self.component.clone(),
            name: self.name.clone(),
            labels: self.labels.clone(),
            fast: self.fast.clone(),
            slot: AtomicU32::new(self.slot.load(Ordering::Relaxed)),
        }
    }
}

impl MetricHandle {
    fn new(obs: &Obs, component: &str, name: &str, labels: &[(&str, &str)]) -> Self {
        // Interns the identity strings but creates no metric slot: a handle
        // that is never used leaves the exported registry untouched, exactly
        // like a string-path call that never happens.
        let fast = obs.inner.as_ref().and_then(|arc| match &mut *arc.lock() {
            Recorder::Batched(b) => Some((
                Arc::as_ptr(arc) as usize,
                b.make_metric_key(component, name, labels),
            )),
            Recorder::Direct(_) => None,
        });
        Self {
            component: component.to_string(),
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            fast,
            slot: AtomicU32::new(u32::MAX),
        }
    }

    fn borrowed_labels(&self) -> Vec<(&str, &str)> {
        self.labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect()
    }

    /// The fast key, when it belongs to the recorder behind `batch`.
    fn key_for(&self, token: usize) -> Option<&MetricIdKey> {
        match &self.fast {
            Some((t, key)) if *t == token => Some(key),
            _ => None,
        }
    }
}

/// A pre-resolved `(component, name)` span identity (see [`Obs::span_key`]),
/// with the same fast-path/fallback contract as [`CounterHandle`]: entering
/// through the key skips interning lookups on the recorder the key came
/// from, and degrades to the ordinary string path anywhere else.
#[derive(Debug, Clone)]
pub struct SpanKey {
    component: String,
    name: String,
    fast: Option<(usize, (u32, u32))>,
}

impl SpanKey {
    /// Opens a span through an open batch (see [`ObsBatch::span_enter`]).
    pub fn enter(&self, batch: &mut ObsBatch<'_>, sim_time: f64) -> SpanId {
        let token = batch.token;
        let Some(rec) = batch.guard.as_deref_mut() else {
            return SpanId::NONE;
        };
        if let Recorder::Batched(b) = rec {
            if let Some((t, (component, name))) = self.fast {
                if t == token {
                    return b.span_enter_ids(component, name, sim_time);
                }
            }
        }
        rec.span_enter(&self.component, &self.name, sim_time)
    }
}

/// A pre-resolved `(component, base)` identity for `{base}_{index}`-named
/// spans (see [`Obs::indexed_span_key`] and the fast-path/fallback contract
/// on [`SpanKey`]).
#[derive(Debug, Clone)]
pub struct IndexedSpanKey {
    component: String,
    base: String,
    fast: Option<(usize, (u32, u32))>,
}

impl IndexedSpanKey {
    /// Opens a `{base}_{index}` span through an open batch (see
    /// [`ObsBatch::span_enter_indexed`]).
    pub fn enter(&self, batch: &mut ObsBatch<'_>, index: usize, sim_time: f64) -> SpanId {
        let token = batch.token;
        let Some(rec) = batch.guard.as_deref_mut() else {
            return SpanId::NONE;
        };
        if let Recorder::Batched(b) = rec {
            if let Some((t, (component, base))) = self.fast {
                if t == token {
                    return b.span_enter_indexed_ids(component, base, index, sim_time);
                }
            }
        }
        rec.span_enter_indexed(&self.component, &self.base, index, sim_time)
    }
}

/// A pre-resolved counter identity (see [`Obs::counter_handle`]).
///
/// Handles are for instrumentation sites hot enough that even interning
/// lookups matter: creation resolves `(component, name, labels)` once, and
/// each [`CounterHandle::add`] is then a hash-free slot update. A handle
/// used against a recorder other than the one it was created from (or after
/// the handle's `Obs` was swapped out) silently falls back to the normal
/// string path — same records, just slower — so caching handles (e.g. in a
/// `OnceLock`) can never corrupt a trace.
#[derive(Debug, Clone)]
pub struct CounterHandle(MetricHandle);

impl CounterHandle {
    /// Adds `delta` to the counter through an open batch.
    pub fn add(&self, batch: &mut ObsBatch<'_>, delta: u64) {
        let token = batch.token;
        let Some(rec) = batch.guard.as_deref_mut() else {
            return;
        };
        if let Recorder::Batched(b) = rec {
            if let Some(key) = self.0.key_for(token) {
                match self.0.slot.load(Ordering::Relaxed) {
                    u32::MAX => {
                        let slot = b.counter_add_key(key, delta);
                        self.0.slot.store(slot, Ordering::Relaxed);
                    }
                    slot => b.counter_add_slot(slot, delta),
                }
                return;
            }
        }
        rec.counter_add(
            &self.0.component,
            &self.0.name,
            &self.0.borrowed_labels(),
            delta,
        );
    }
}

/// A pre-resolved gauge identity (see [`Obs::gauge_handle`] and the
/// fast-path/fallback contract on [`CounterHandle`]).
#[derive(Debug, Clone)]
pub struct GaugeHandle(MetricHandle);

impl GaugeHandle {
    /// Sets the gauge through an open batch.
    pub fn set(&self, batch: &mut ObsBatch<'_>, value: f64) {
        let token = batch.token;
        let Some(rec) = batch.guard.as_deref_mut() else {
            return;
        };
        if let Recorder::Batched(b) = rec {
            if let Some(key) = self.0.key_for(token) {
                match self.0.slot.load(Ordering::Relaxed) {
                    u32::MAX => {
                        let slot = b.gauge_set_key(key, value);
                        self.0.slot.store(slot, Ordering::Relaxed);
                    }
                    slot => b.gauge_set_slot(slot, value),
                }
                return;
            }
        }
        rec.gauge_set(
            &self.0.component,
            &self.0.name,
            &self.0.borrowed_labels(),
            value,
        );
    }
}

/// A pre-resolved histogram identity (see [`Obs::histogram_handle`] and the
/// fast-path/fallback contract on [`CounterHandle`]).
#[derive(Debug, Clone)]
pub struct HistogramHandle {
    inner: MetricHandle,
    bounds: Option<Vec<f64>>,
}

impl HistogramHandle {
    /// Observes `value` through an open batch.
    pub fn observe(&self, batch: &mut ObsBatch<'_>, value: f64) {
        let token = batch.token;
        let Some(rec) = batch.guard.as_deref_mut() else {
            return;
        };
        if let Recorder::Batched(b) = rec {
            if let Some(key) = self.inner.key_for(token) {
                match self.inner.slot.load(Ordering::Relaxed) {
                    u32::MAX => {
                        let slot = b.histogram_observe_key(key, self.bounds.as_deref(), value);
                        self.inner.slot.store(slot, Ordering::Relaxed);
                    }
                    slot => b.histogram_observe_slot(slot, value),
                }
                return;
            }
        }
        rec.histogram_observe(
            &self.inner.component,
            &self.inner.name,
            &self.inner.borrowed_labels(),
            self.bounds.as_deref(),
            value,
        );
    }
}

/// A recording batch: holds the recorder lock once for a whole block of
/// records (see [`Obs::batch`]). All methods are no-ops on a disabled
/// handle; `span_enter*` then return [`SpanId::NONE`].
pub struct ObsBatch<'a> {
    token: usize,
    guard: Option<MutexGuard<'a, Recorder>>,
}

impl ObsBatch<'_> {
    /// True when this batch actually records.
    pub fn is_recording(&self) -> bool {
        self.guard.is_some()
    }

    /// Batch equivalent of [`Obs::span_enter`].
    pub fn span_enter(&mut self, component: &str, name: &str, sim_time: f64) -> SpanId {
        match &mut self.guard {
            Some(rec) => rec.span_enter(component, name, sim_time),
            None => SpanId::NONE,
        }
    }

    /// Batch equivalent of [`Obs::span_enter_indexed`].
    pub fn span_enter_indexed(
        &mut self,
        component: &str,
        base: &str,
        index: usize,
        sim_time: f64,
    ) -> SpanId {
        match &mut self.guard {
            Some(rec) => rec.span_enter_indexed(component, base, index, sim_time),
            None => SpanId::NONE,
        }
    }

    /// Batch equivalent of [`Obs::span_exit`].
    pub fn span_exit(&mut self, id: SpanId, sim_time: f64) {
        if !id.is_real() {
            return;
        }
        if let Some(rec) = &mut self.guard {
            rec.span_exit(id, sim_time);
        }
    }

    /// Batch equivalent of [`Obs::event`].
    pub fn event(&mut self, component: &str, name: &str, sim_time: f64, fields: &[(&str, &str)]) {
        if let Some(rec) = &mut self.guard {
            rec.event(component, name, sim_time, fields);
        }
    }

    /// Batch equivalent of [`Obs::record_decision`].
    #[allow(clippy::too_many_arguments)]
    pub fn record_decision(
        &mut self,
        component: &str,
        decision: &str,
        provenance: &Provenance<'_>,
        predicted: f64,
        observed: Option<f64>,
        verdict: &str,
        vetoed: bool,
        feedback_latency_ticks: u64,
        sim_time: f64,
    ) {
        if let Some(rec) = &mut self.guard {
            rec.record_decision(
                component,
                decision,
                provenance,
                predicted,
                observed,
                verdict,
                vetoed,
                feedback_latency_ticks,
                sim_time,
            );
        }
    }

    /// Batch equivalent of [`Obs::record_deployment`].
    pub fn record_deployment(
        &mut self,
        component: &str,
        kind: DeploymentKind,
        model_id: &str,
        version: u64,
        cause: &str,
        sim_time: f64,
    ) {
        if let Some(rec) = &mut self.guard {
            rec.record_deployment(component, kind, model_id, version, cause, sim_time);
        }
    }

    /// Batch equivalent of [`Obs::counter_add`].
    pub fn counter_add(
        &mut self,
        component: &str,
        name: &str,
        labels: &[(&str, &str)],
        delta: u64,
    ) {
        if let Some(rec) = &mut self.guard {
            rec.counter_add(component, name, labels, delta);
        }
    }

    /// Batch equivalent of [`Obs::gauge_set`].
    pub fn gauge_set(&mut self, component: &str, name: &str, labels: &[(&str, &str)], value: f64) {
        if let Some(rec) = &mut self.guard {
            rec.gauge_set(component, name, labels, value);
        }
    }

    /// Batch equivalent of [`Obs::histogram_observe`].
    pub fn histogram_observe(
        &mut self,
        component: &str,
        name: &str,
        labels: &[(&str, &str)],
        value: f64,
    ) {
        if let Some(rec) = &mut self.guard {
            rec.histogram_observe(component, name, labels, None, value);
        }
    }

    /// Batch equivalent of [`Obs::histogram_observe_with`].
    pub fn histogram_observe_with(
        &mut self,
        component: &str,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
        value: f64,
    ) {
        if let Some(rec) = &mut self.guard {
            rec.histogram_observe(component, name, labels, Some(bounds), value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let obs = Obs::disabled();
        let span = obs.span_enter("c", "n", 0.0);
        assert_eq!(span, SpanId::NONE);
        obs.span_exit(span, 1.0);
        obs.counter_add("c", "n", &[], 1);
        obs.event("c", "e", 0.0, &[]);
        let mut batch = obs.batch();
        assert!(!batch.is_recording());
        assert_eq!(batch.span_enter("c", "n", 0.0), SpanId::NONE);
        drop(batch);
        let trace = obs.snapshot();
        assert_eq!(trace, Trace::default());
        assert!(!obs.is_enabled());
    }

    #[test]
    fn spans_nest_and_parent() {
        let obs = Obs::recording();
        let outer = obs.span_enter("engine.exec", "job", 0.0);
        let inner = obs.span_enter("engine.exec", "stage-0", 0.5);
        obs.span_exit(inner, 1.5);
        let sibling = obs.span_enter("engine.exec", "stage-1", 1.5);
        obs.span_exit(sibling, 2.0);
        obs.span_exit(outer, 2.0);
        let trace = obs.snapshot();
        assert_eq!(trace.spans.len(), 3);
        assert_eq!(trace.spans[0].parent, None);
        assert_eq!(trace.spans[1].parent, Some(outer));
        assert_eq!(trace.spans[2].parent, Some(outer));
        assert_eq!(trace.children_of(outer).count(), 2);
        assert!((trace.spans[1].duration() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn events_and_decisions_attach_to_open_span() {
        let obs = Obs::recording();
        let span = obs.span_enter("faultsim.chaos", "attempt-0", 0.0);
        obs.event(
            "faultsim.chaos",
            "fault_injected",
            0.3,
            &[("kind", "crash")],
        );
        obs.record_decision(
            "core.guardrails",
            "autonomy_decision",
            &Provenance::new("m", 2, 7),
            1.0,
            Some(3.0),
            "block: regression",
            true,
            4,
            0.4,
        );
        obs.span_exit(span, 1.0);
        let trace = obs.snapshot();
        assert_eq!(trace.events[0].span, Some(span));
        assert_eq!(trace.events[0].field("kind"), Some("crash"));
        assert_eq!(trace.decisions[0].span, Some(span));
        assert_eq!(trace.decisions[0].model_version, 2);
        assert_eq!(trace.decisions[0].feedback_latency_ticks, 4);
        let vetoed = trace.query().vetoed().min_error_factor(2.0).decisions();
        assert_eq!(vetoed.len(), 1);
    }

    #[test]
    fn sequence_numbers_total_order_all_records() {
        let obs = Obs::recording();
        let s = obs.span_enter("a", "s", 0.0);
        obs.event("a", "e", 0.1, &[]);
        obs.record_decision(
            "a",
            "d",
            &Provenance::new("m", 1, 0),
            1.0,
            None,
            "allow",
            false,
            0,
            0.2,
        );
        obs.span_exit(s, 0.3);
        let t = obs.snapshot();
        assert_eq!(t.spans[0].seq, 0);
        assert_eq!(t.events[0].seq, 1);
        assert_eq!(t.decisions[0].seq, 2);
    }

    #[test]
    fn export_json_is_deterministic() {
        let run = || {
            let obs = Obs::recording();
            // Touch metrics in scrambled order; export must still agree.
            obs.counter_add("z", "c", &[("l", "2")], 1);
            obs.counter_add("a", "c", &[], 5);
            obs.gauge_set("m", "g", &[], 1.5);
            obs.histogram_observe("m", "h", &[], 0.25);
            let s = obs.span_enter("c", "s", 0.0);
            obs.span_exit(s, 2.0);
            obs.export_json()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn deployment_records_carry_cause_and_order() {
        let obs = Obs::recording();
        let span = obs.span_enter("serve.gateway", "deploy", 0.0);
        obs.record_deployment(
            "serve.gateway",
            DeploymentKind::Publish,
            "card",
            1,
            "manual",
            0.5,
        );
        obs.record_deployment(
            "serve.gateway",
            DeploymentKind::CanaryStart,
            "card",
            2,
            "drift",
            1.0,
        );
        obs.record_deployment(
            "serve.gateway",
            DeploymentKind::Rollback,
            "card",
            3,
            "guard_trip",
            2.0,
        );
        obs.span_exit(span, 2.5);
        let trace = obs.snapshot();
        assert_eq!(trace.deployments.len(), 3);
        assert_eq!(trace.deployments_of("card").count(), 3);
        assert_eq!(trace.deployments_of("other").count(), 0);
        assert_eq!(trace.deployments[0].span, Some(span));
        assert_eq!(trace.deployments[1].kind, DeploymentKind::CanaryStart);
        assert_eq!(trace.deployments[1].kind.name(), "canary_start");
        assert_eq!(trace.deployments[2].cause, "guard_trip");
        // Sequence numbers interleave with the span's.
        assert!(trace.deployments[0].seq > trace.spans[0].seq);
        assert!(trace.deployments[0].seq < trace.deployments[1].seq);
        // Round-trips through canonical JSON, and old traces (without the
        // field) still deserialize.
        let json = obs.export_json();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
        let mut value: serde_json::Value = serde_json::from_str(&json).unwrap();
        if let serde_json::Value::Map(map) = &mut value {
            map.retain(|(k, _)| k != "deployments");
        }
        let legacy: Trace = serde_json::from_value(value).unwrap();
        assert!(legacy.deployments.is_empty());
    }

    #[test]
    fn clones_share_one_recorder() {
        let obs = Obs::recording();
        let clone = obs.clone();
        clone.counter_add("c", "n", &[], 2);
        obs.counter_add("c", "n", &[], 1);
        assert_eq!(obs.snapshot().metrics.counter("c", "n", &[]), 3);
    }

    #[test]
    fn batch_records_like_individual_calls() {
        let individual = {
            let obs = Obs::recording();
            let s = obs.span_enter("c", "block", 0.0);
            obs.event("c", "e", 0.1, &[("k", "v")]);
            obs.counter_add("c", "n", &[], 2);
            obs.gauge_set("c", "g", &[], 1.5);
            obs.histogram_observe("c", "h", &[], 0.02);
            obs.span_exit(s, 0.2);
            obs.export_json()
        };
        let batched = {
            let obs = Obs::recording();
            let mut b = obs.batch();
            assert!(b.is_recording());
            let s = b.span_enter("c", "block", 0.0);
            b.event("c", "e", 0.1, &[("k", "v")]);
            b.counter_add("c", "n", &[], 2);
            b.gauge_set("c", "g", &[], 1.5);
            b.histogram_observe("c", "h", &[], 0.02);
            b.span_exit(s, 0.2);
            drop(b);
            obs.export_json()
        };
        assert_eq!(individual, batched);
    }

    #[test]
    fn indexed_span_names_match_formatted_names() {
        let obs = Obs::recording();
        for i in [0usize, 3, 3, 11] {
            let s = obs.span_enter_indexed("engine.exec", "stage", i, 0.0);
            obs.span_exit(s, 1.0);
        }
        let trace = obs.snapshot();
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["stage_0", "stage_3", "stage_3", "stage_11"]);

        let direct = Obs::recording_direct();
        for i in [0usize, 3, 3, 11] {
            let s = direct.span_enter_indexed("engine.exec", "stage", i, 0.0);
            direct.span_exit(s, 1.0);
        }
        assert_eq!(direct.export_json(), obs.export_json());
    }

    #[test]
    fn direct_and_batched_backends_export_identically() {
        let drive = |obs: &Obs| {
            for i in 0..50usize {
                let t = i as f64 * 0.1;
                let s = obs.span_enter_indexed("c", "job", i % 7, t);
                obs.event("c", "tick", t, &[("i", "x")]);
                obs.counter_add("c", "ticks", &[("shard", "0")], 1);
                obs.histogram_observe("c", "lat", &[], 0.004 * (i % 9) as f64);
                obs.gauge_set("c", "depth", &[], i as f64);
                obs.record_decision(
                    "c",
                    "d",
                    &Provenance::new("m", 1, i as u64),
                    1.0,
                    Some(1.5),
                    "allow",
                    false,
                    2,
                    t,
                );
                obs.span_exit(s, t + 0.05);
            }
            obs.record_deployment("c", DeploymentKind::Promote, "m", 2, "canary_healthy", 9.0);
        };
        let direct = Obs::recording_direct();
        let batched = Obs::recording();
        let tiny_ring = Obs::recording_with_ring(3);
        drive(&direct);
        drive(&batched);
        drive(&tiny_ring);
        assert_eq!(direct.export_json(), batched.export_json());
        assert_eq!(direct.export_json(), tiny_ring.export_json());
    }

    #[test]
    fn sampled_trace_is_strict_filter_of_full_trace() {
        let drive = |obs: &Obs| {
            for i in 0..200usize {
                let t = i as f64;
                let s = obs.span_enter("c", "s", t);
                obs.event("c", "e", t, &[]);
                obs.span_exit(s, t + 0.5);
            }
            obs.record_deployment("c", DeploymentKind::Publish, "m", 1, "manual", 0.0);
        };
        let full = Obs::recording();
        let sampled = Obs::recording_sampled(7, 0.5);
        drive(&full);
        drive(&sampled);
        let full = full.snapshot();
        let sampled = sampled.snapshot();
        assert!(sampled.spans.len() < full.spans.len());
        assert!(!sampled.spans.is_empty());
        // Every sampled record is bit-for-bit one of the full run's.
        for s in &sampled.spans {
            assert!(full.spans.contains(s));
        }
        for e in &sampled.events {
            assert!(full.events.contains(e));
        }
        // Deployments and metrics are never sampled out.
        assert_eq!(sampled.deployments, full.deployments);
        assert_eq!(sampled.metrics, full.metrics);
        // Same seed, same scenario: byte-identical replay.
        let replay = Obs::recording_sampled(7, 0.5);
        drive(&replay);
        assert_eq!(replay.snapshot(), sampled);
    }

    #[test]
    fn metric_handles_record_like_string_calls() {
        let drive_strings = |obs: &Obs| {
            let mut b = obs.batch();
            b.counter_add("c", "hits", &[("shard", "0")], 3);
            b.gauge_set("c", "depth", &[], 2.5);
            b.histogram_observe("c", "lat", &[], 0.004);
        };
        let drive_handles = |obs: &Obs| {
            let hits = obs.counter_handle("c", "hits", &[("shard", "0")]);
            let depth = obs.gauge_handle("c", "depth", &[]);
            let lat = obs.histogram_handle("c", "lat", &[], None);
            let mut b = obs.batch();
            hits.add(&mut b, 3);
            depth.set(&mut b, 2.5);
            lat.observe(&mut b, 0.004);
        };

        // Handles and string calls export identically, on both backends.
        for (strings, handles) in [
            (Obs::recording(), Obs::recording()),
            (Obs::recording_direct(), Obs::recording_direct()),
        ] {
            drive_strings(&strings);
            drive_handles(&handles);
            assert_eq!(strings.export_json(), handles.export_json());
        }

        // A handle created from one recorder falls back to the string path
        // against another recorder — same records, no id confusion.
        let origin = Obs::recording();
        let hits = origin.counter_handle("c", "hits", &[("shard", "0")]);
        // Skew the other recorder's interner so equal ids mean different
        // strings across the two recorders.
        let other = Obs::recording();
        other.counter_add("zzz", "unrelated", &[], 1);
        let mut b = other.batch();
        hits.add(&mut b, 7);
        drop(b);
        assert_eq!(
            other
                .snapshot()
                .metrics
                .counter("c", "hits", &[("shard", "0")]),
            7
        );

        // A handle from a disabled Obs still records through the strings.
        let disabled_handle = Obs::disabled().counter_handle("c", "hits", &[]);
        let rec = Obs::recording();
        let mut b = rec.batch();
        disabled_handle.add(&mut b, 2);
        drop(b);
        assert_eq!(rec.snapshot().metrics.counter("c", "hits", &[]), 2);

        // An unused handle creates no metric slot.
        let obs = Obs::recording();
        let _unused = obs.histogram_handle("c", "never_touched", &[], None);
        assert!(obs.snapshot().metrics.metrics.is_empty());
    }

    #[test]
    fn export_stream_concatenates_to_export_json() {
        let obs = Obs::recording();
        let s = obs.span_enter("c", "s", 0.0);
        obs.event("c", "e", 0.1, &[("k", "v")]);
        obs.counter_add("c", "n", &[], 1);
        obs.span_exit(s, 1.0);
        for chunk_size in [1usize, 7, 64, 1 << 20] {
            let mut streamed = String::new();
            obs.export_stream(chunk_size, |chunk| streamed.push_str(chunk));
            assert_eq!(streamed, obs.export_json(), "chunk_size {chunk_size}");
        }
        let disabled = Obs::disabled();
        let mut streamed = String::new();
        disabled.export_stream(16, |chunk| streamed.push_str(chunk));
        assert_eq!(streamed, disabled.export_json());
    }

    #[test]
    fn snapshot_since_returns_disjoint_deltas_and_cumulative_metrics() {
        let obs = Obs::recording();
        let mut cursor = TraceCursor::default();

        obs.event("c", "first", 0.0, &[]);
        obs.counter_add("c", "n", &[], 1);
        let d1 = obs.snapshot_since(&mut cursor);
        assert_eq!(d1.events.len(), 1);
        assert_eq!(d1.events[0].name, "first");
        assert_eq!(d1.metrics.counter("c", "n", &[]), 1);

        // Nothing new: the delta is empty, metrics still cumulative.
        let d2 = obs.snapshot_since(&mut cursor);
        assert!(d2.events.is_empty() && d2.spans.is_empty());
        assert_eq!(d2.metrics.counter("c", "n", &[]), 1);

        let s = obs.span_enter("c", "s", 1.0);
        obs.event("c", "second", 1.5, &[]);
        obs.record_decision(
            "c",
            "d",
            &Provenance::new("m", 1, 0),
            1.0,
            Some(1.0),
            "ok",
            false,
            0,
            1.6,
        );
        obs.counter_add("c", "n", &[], 2);
        obs.span_exit(s, 2.0);
        let d3 = obs.snapshot_since(&mut cursor);
        assert_eq!(d3.events.len(), 1);
        assert_eq!(d3.events[0].name, "second");
        assert_eq!(d3.spans.len(), 1);
        assert_eq!(d3.decisions.len(), 1);
        assert_eq!(d3.metrics.counter("c", "n", &[]), 3);

        // Deltas partition the full snapshot.
        let full = obs.snapshot();
        assert_eq!(
            full.events.len(),
            d1.events.len() + d3.events.len(),
            "deltas must be disjoint and exhaustive"
        );
        // A fresh cursor replays everything.
        let mut fresh = TraceCursor::default();
        let all = obs.snapshot_since(&mut fresh);
        assert_eq!(serde_json::to_string(&all), serde_json::to_string(&full));
    }
}
