//! Exporters: canonical JSON (whole-string and chunked streaming) and
//! Prometheus text exposition.

use crate::metrics::{MetricKey, MetricValue, MetricsRegistry};
use crate::trace::Trace;
use serde::Serialize;
use std::fmt::Write as _;

/// Serializes a trace to canonical JSON.
///
/// All containers iterate in deterministic order, so two traces of the same
/// seeded run serialize to byte-identical strings — the property the
/// determinism suite asserts.
pub fn to_json(trace: &Trace) -> String {
    serde_json::to_string(trace).expect("trace serialization is infallible")
}

/// Pretty-printed variant of [`to_json`], for human eyes.
pub fn to_json_pretty(trace: &Trace) -> String {
    serde_json::to_string_pretty(trace).expect("trace serialization is infallible")
}

/// Accumulates serialized output and hands it to `sink` in chunks of at
/// least `chunk_size` bytes (the final chunk may be shorter). Chunk
/// boundaries are arbitrary — only the concatenation is meaningful.
pub(crate) struct ChunkSink<'a> {
    buf: String,
    chunk_size: usize,
    sink: &'a mut dyn FnMut(&str),
}

impl<'a> ChunkSink<'a> {
    pub(crate) fn new(chunk_size: usize, sink: &'a mut dyn FnMut(&str)) -> Self {
        Self {
            buf: String::with_capacity(chunk_size.clamp(1, 1 << 20) * 2),
            chunk_size: chunk_size.max(1),
            sink,
        }
    }

    pub(crate) fn raw(&mut self, s: &str) {
        self.buf.push_str(s);
        if self.buf.len() >= self.chunk_size {
            (self.sink)(&self.buf);
            self.buf.clear();
        }
    }

    pub(crate) fn record<T: Serialize>(&mut self, record: &T) {
        let s = serde_json::to_string(record).expect("record serialization is infallible");
        self.raw(&s);
    }

    pub(crate) fn finish(self) {
        if !self.buf.is_empty() {
            (self.sink)(&self.buf);
        }
    }
}

/// Streams a trace as chunked canonical JSON: each record serializes on its
/// own, so the peak allocation is one record plus one chunk buffer — the
/// whole export string never exists in memory. The concatenation of the
/// chunks handed to `sink` is byte-identical to [`to_json`] of the same
/// trace.
pub fn to_json_stream(trace: &Trace, chunk_size: usize, mut sink: impl FnMut(&str)) {
    let mut w = ChunkSink::new(chunk_size, &mut sink);
    w.raw("{\"spans\":[");
    for (i, s) in trace.spans.iter().enumerate() {
        if i > 0 {
            w.raw(",");
        }
        w.record(s);
    }
    w.raw("],\"events\":[");
    for (i, e) in trace.events.iter().enumerate() {
        if i > 0 {
            w.raw(",");
        }
        w.record(e);
    }
    w.raw("],\"decisions\":[");
    for (i, d) in trace.decisions.iter().enumerate() {
        if i > 0 {
            w.raw(",");
        }
        w.record(d);
    }
    w.raw("],\"deployments\":[");
    for (i, d) in trace.deployments.iter().enumerate() {
        if i > 0 {
            w.raw(",");
        }
        w.record(d);
    }
    w.raw("],\"metrics\":[");
    for (i, (key, value)) in trace.metrics.metrics.iter().enumerate() {
        if i > 0 {
            w.raw(",");
        }
        w.record(&serde::Value::Seq(vec![key.to_value(), value.to_value()]));
    }
    w.raw("]}");
    w.finish();
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn render_labels(labels: &[(String, String)], extra: Option<(&str, String)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize(k), v.replace('"', "\\\"")))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Renders the registry in the Prometheus text exposition format.
///
/// Metric names are `<component>_<name>` with non-alphanumerics folded to
/// `_`; histograms expand to `_bucket{le=…}` / `_sum` / `_count` series
/// with a trailing `+Inf` bucket, exactly as scrapers expect.
pub fn to_prometheus(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (key, value) in &registry.metrics {
        let MetricKey {
            component,
            name,
            labels,
        } = key;
        let base = format!("{}_{}", sanitize(component), sanitize(name));
        match value {
            MetricValue::Counter(c) => {
                let _ = writeln!(out, "# TYPE {base} counter");
                let _ = writeln!(out, "{base}{} {c}", render_labels(labels, None));
            }
            MetricValue::Gauge(g) => {
                let _ = writeln!(out, "# TYPE {base} gauge");
                let _ = writeln!(out, "{base}{} {g}", render_labels(labels, None));
            }
            MetricValue::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {base} histogram");
                let mut cumulative = 0u64;
                for (bound, count) in h.bounds.iter().zip(&h.counts) {
                    cumulative += count;
                    let _ = writeln!(
                        out,
                        "{base}_bucket{} {cumulative}",
                        render_labels(labels, Some(("le", format!("{bound}"))))
                    );
                }
                let _ = writeln!(
                    out,
                    "{base}_bucket{} {}",
                    render_labels(labels, Some(("le", "+Inf".to_string()))),
                    h.count
                );
                let _ = writeln!(out, "{base}_sum{} {}", render_labels(labels, None), h.sum);
                let _ = writeln!(
                    out,
                    "{base}_count{} {}",
                    render_labels(labels, None),
                    h.count
                );
            }
        }
    }
    out
}

/// Renders a whole trace in the Prometheus text exposition format: the
/// metrics registry (via [`to_prometheus`]) plus counters synthesized from
/// the trace's typed records — `deployments_total{model,kind}` from
/// deployment records and `autonomy_incidents_total{model,cause}` from
/// `autonomy_incident` decisions — so a scraper sees deployment churn and
/// incident pressure without parsing the JSON export.
///
/// Synthesized series are grouped in sorted `(model, label)` order, so the
/// output is deterministic for a deterministic trace.
pub fn to_prometheus_trace(trace: &Trace) -> String {
    let mut out = to_prometheus(&trace.metrics);
    let mut deployments: std::collections::BTreeMap<(String, String), u64> =
        std::collections::BTreeMap::new();
    for d in &trace.deployments {
        *deployments
            .entry((d.model_id.clone(), d.kind.name().to_string()))
            .or_insert(0) += 1;
    }
    if !deployments.is_empty() {
        let _ = writeln!(out, "# TYPE deployments_total counter");
        for ((model, kind), count) in &deployments {
            let _ = writeln!(
                out,
                "deployments_total{{model=\"{model}\",kind=\"{kind}\"}} {count}"
            );
        }
    }
    let mut incidents: std::collections::BTreeMap<(String, String), u64> =
        std::collections::BTreeMap::new();
    for d in trace
        .decisions
        .iter()
        .filter(|d| d.decision == "autonomy_incident")
    {
        *incidents
            .entry((d.model_id.clone(), d.verdict.clone()))
            .or_insert(0) += 1;
    }
    if !incidents.is_empty() {
        let _ = writeln!(out, "# TYPE autonomy_incidents_total counter");
        for ((model, cause), count) in &incidents {
            let _ = writeln!(
                out,
                "autonomy_incidents_total{{model=\"{model}\",cause=\"{cause}\"}} {count}"
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricKey;

    #[test]
    fn prometheus_renders_all_kinds() {
        let mut reg = MetricsRegistry::default();
        reg.counter_add(MetricKey::new("engine.exec", "restarts", &[]), 3);
        reg.gauge_set(
            MetricKey::new("engine.exec", "hotspot_peak", &[("machine", "0")]),
            12.5,
        );
        reg.histogram_observe(
            MetricKey::new("engine.exec", "stage_latency", &[]),
            &[1.0, 10.0],
            0.5,
        );
        let text = to_prometheus(&reg);
        assert!(text.contains("# TYPE engine_exec_restarts counter"));
        assert!(text.contains("engine_exec_restarts 3"));
        assert!(text.contains("engine_exec_hotspot_peak{machine=\"0\"} 12.5"));
        assert!(text.contains("engine_exec_stage_latency_bucket{le=\"1\"} 1"));
        assert!(text.contains("engine_exec_stage_latency_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("engine_exec_stage_latency_count 1"));
    }

    #[test]
    fn prometheus_trace_output_is_pinned() {
        use crate::flight::{DecisionRecord, DeploymentKind, DeploymentRecord};
        let mut reg = MetricsRegistry::default();
        reg.counter_add(
            MetricKey::new("serve.gateway", "requests", &[("model", "card")]),
            4,
        );
        for v in [0.5, 3.0] {
            reg.histogram_observe(
                MetricKey::new("serve.gateway", "latency", &[]),
                &[1.0, 10.0],
                v,
            );
        }
        let trace = Trace {
            spans: vec![],
            events: vec![],
            decisions: vec![DecisionRecord {
                seq: 5,
                span: None,
                sim_time: 3.0,
                component: "serve.autonomy".into(),
                decision: "autonomy_incident".into(),
                model_id: "card".into(),
                model_version: 2,
                features_digest: 0,
                predicted: 12.0,
                observed: None,
                verdict: "slo_burn".into(),
                vetoed: true,
                feedback_latency_ticks: 0,
            }],
            deployments: vec![
                DeploymentRecord {
                    seq: 1,
                    span: None,
                    sim_time: 0.0,
                    component: "serve.gateway".into(),
                    kind: DeploymentKind::Publish,
                    model_id: "card".into(),
                    version: 1,
                    cause: "bootstrap".into(),
                },
                DeploymentRecord {
                    seq: 9,
                    span: None,
                    sim_time: 4.0,
                    component: "serve.gateway".into(),
                    kind: DeploymentKind::Rollback,
                    model_id: "card".into(),
                    version: 2,
                    cause: "slo_burn".into(),
                },
                DeploymentRecord {
                    seq: 11,
                    span: None,
                    sim_time: 5.0,
                    component: "serve.gateway".into(),
                    kind: DeploymentKind::Publish,
                    model_id: "cost".into(),
                    version: 1,
                    cause: "bootstrap".into(),
                },
            ],
            metrics: reg,
        };
        // The full exposition, byte for byte: conformant cumulative
        // histogram series plus the synthesized deployment/incident
        // counters in sorted group order.
        let expected = "# TYPE serve_gateway_latency histogram\n\
            serve_gateway_latency_bucket{le=\"1\"} 1\n\
            serve_gateway_latency_bucket{le=\"10\"} 2\n\
            serve_gateway_latency_bucket{le=\"+Inf\"} 2\n\
            serve_gateway_latency_sum 3.5\n\
            serve_gateway_latency_count 2\n\
            # TYPE serve_gateway_requests counter\n\
            serve_gateway_requests{model=\"card\"} 4\n\
            # TYPE deployments_total counter\n\
            deployments_total{model=\"card\",kind=\"publish\"} 1\n\
            deployments_total{model=\"card\",kind=\"rollback\"} 1\n\
            deployments_total{model=\"cost\",kind=\"publish\"} 1\n\
            # TYPE autonomy_incidents_total counter\n\
            autonomy_incidents_total{model=\"card\",cause=\"slo_burn\"} 1\n";
        assert_eq!(to_prometheus_trace(&trace), expected);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut reg = MetricsRegistry::default();
        let key = || MetricKey::new("c", "h", &[]);
        for v in [0.5, 0.6, 5.0, 50.0] {
            reg.histogram_observe(key(), &[1.0, 10.0], v);
        }
        let text = to_prometheus(&reg);
        assert!(text.contains("c_h_bucket{le=\"1\"} 2"));
        assert!(text.contains("c_h_bucket{le=\"10\"} 3"));
        assert!(text.contains("c_h_bucket{le=\"+Inf\"} 4"));
    }
}
