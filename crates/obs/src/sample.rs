//! Deterministic per-seed trace sampling.
//!
//! Fleet-scale runs cannot always afford a full flight record. Sampling
//! here is *deterministic*: whether a record is kept is a pure function of
//! `(seed, record id)` — a seeded splitmix64 hash compared against a
//! threshold derived from the keep ratio. Two replays of the same seeded
//! scenario with the same sample seed therefore keep exactly the same
//! records and export byte-identical traces, and the sampled trace is a
//! strict filter of the full trace: kept records are bit-for-bit the
//! records the unsampled run would have produced (sequence numbers and
//! span ids included — dropped records leave gaps, never renumbering).
//!
//! Which id a record samples by: spans use their [`SpanId`]
//! (`crate::span::SpanId`), events and decisions their sequence number.
//! Deployment records and metrics are never sampled out — deployments are
//! rare and audit-critical, metrics are aggregates whose cost does not
//! grow with trace length.

/// Sampling configuration: a seed and the fraction of records to keep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleConfig {
    /// Seed mixed into every keep/drop draw.
    pub seed: u64,
    /// Fraction of records kept, clamped to `[0, 1]`. `1.0` keeps
    /// everything (equivalent to no sampler), `0.0` drops every sampled
    /// record kind.
    pub keep_ratio: f64,
}

impl SampleConfig {
    /// Builds a config.
    pub fn new(seed: u64, keep_ratio: f64) -> Self {
        Self { seed, keep_ratio }
    }

    /// Whether the record with id `id` is kept under this config.
    pub fn keeps(&self, id: u64) -> bool {
        sample_keeps(self.seed, self.keep_ratio, id)
    }
}

/// splitmix64 finalizer: a fast, well-mixed 64-bit permutation.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Pure keep/drop decision: a seeded hash of `id` compared against the
/// keep-ratio threshold. The sampled id set is a pure function of
/// `(seed, keep_ratio)` — no global state, no record content.
pub fn sample_keeps(seed: u64, keep_ratio: f64, id: u64) -> bool {
    if keep_ratio >= 1.0 {
        return true;
    }
    if keep_ratio <= 0.0 {
        return false;
    }
    let threshold = (keep_ratio * u64::MAX as f64) as u64;
    mix(seed ^ mix(id)) <= threshold
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_is_pure_and_seed_sensitive() {
        for id in 0..256u64 {
            assert_eq!(
                sample_keeps(7, 0.5, id),
                sample_keeps(7, 0.5, id),
                "same (seed, id) must always agree"
            );
        }
        let a: Vec<bool> = (0..256).map(|id| sample_keeps(7, 0.5, id)).collect();
        let b: Vec<bool> = (0..256).map(|id| sample_keeps(8, 0.5, id)).collect();
        assert_ne!(a, b, "different seeds should keep different id sets");
    }

    #[test]
    fn extreme_ratios_keep_all_or_none() {
        for id in 0..64u64 {
            assert!(sample_keeps(1, 1.0, id));
            assert!(sample_keeps(1, 1.5, id));
            assert!(!sample_keeps(1, 0.0, id));
            assert!(!sample_keeps(1, -0.5, id));
        }
    }

    #[test]
    fn keep_rate_tracks_ratio_roughly() {
        let kept = (0..10_000u64)
            .filter(|&id| sample_keeps(42, 0.25, id))
            .count();
        assert!((2_000..3_000).contains(&kept), "kept {kept} of 10000");
    }
}
