//! String interning for the recording hot path.
//!
//! The recorder's hot path must not allocate per record: every
//! `(component, name)` pair and every metric label string is interned into a
//! `u32` id on first sight and recorded as that id from then on. Resolution
//! back to strings happens once, at export/snapshot time, so the canonical
//! JSON a batched recorder emits is byte-identical to what the old
//! direct-mutation recorder produced — interning is invisible outside the
//! crate boundary.
//!
//! Lookups are allocation-free: strings hash word-at-a-time into buckets
//! keyed by the raw hash (with an identity re-hash, since the hash is
//! already mixed), and candidates are compared by content — the hash only
//! routes, equality decides, so hash quality affects speed but never
//! correctness or any exported byte. Ids are assigned in first-intern
//! order, but nothing downstream depends on that order — exports sort by
//! resolved string, which is what the intern-order independence proptest
//! pins down.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Odd, high-entropy multiplier (the FxHash constant). One multiply mixes a
/// whole 8-byte word — roughly 8x fewer dependent multiplies than a
/// byte-at-a-time FNV loop, which matters because the recorder hashes
/// component/name strings on every record.
const MIX_K: u64 = 0x517cc1b727220a95;

/// Incremental word-at-a-time hash over byte chunks, with `0xff` separators
/// so `("ab","c")` and `("a","bc")` hash differently. Each `write` also
/// folds in the chunk length, so zero-padding of the final partial word
/// cannot conflate `"a"` with `"a\0"`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct KeyHash(u64);

impl KeyHash {
    pub(crate) fn new() -> Self {
        Self(0)
    }

    #[inline]
    fn mix(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(MIX_K);
    }

    #[inline]
    pub(crate) fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.mix(u64::from_le_bytes(buf));
        }
        self.mix(bytes.len() as u64);
    }

    /// Terminates one field (prevents concatenation ambiguity).
    pub(crate) fn sep(&mut self) {
        self.mix(0xff);
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

/// Cheap multiply-rotate hasher for small fixed-size keys (e.g. the
/// `(base name id, index)` keys of the indexed-span-name cache), where
/// SipHash latency would dominate the lookup. `HashMap` still compares full
/// keys, so this trades only speed, never correctness.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct MixHasher(u64);

impl Hasher for MixHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0.rotate_left(5) ^ b as u64).wrapping_mul(MIX_K);
        }
    }

    fn write_u32(&mut self, i: u32) {
        self.0 = (self.0.rotate_left(5) ^ i as u64).wrapping_mul(MIX_K);
    }

    fn write_u64(&mut self, i: u64) {
        self.0 = (self.0.rotate_left(5) ^ i).wrapping_mul(MIX_K);
    }
}

pub(crate) type MixBuild = BuildHasherDefault<MixHasher>;

/// Pass-through hasher for keys that are already well-mixed 64-bit hashes
/// (avoids paying SipHash on every bucket probe).
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only u64 keys are ever hashed; fold bytes just in case.
        for &b in bytes {
            self.0 = self.0.rotate_left(8) ^ b as u64;
        }
    }

    fn write_u64(&mut self, i: u64) {
        self.0 = i;
    }
}

pub(crate) type IdentityBuild = BuildHasherDefault<IdentityHasher>;

/// An append-only string interner: `intern` maps a string to a stable
/// `u32` id (equal strings always get the same id), `resolve` maps it back.
#[derive(Debug, Default)]
pub struct Interner {
    strings: Vec<Box<str>>,
    buckets: HashMap<u64, Vec<u32>, IdentityBuild>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `s`, allocating one on first sight. Allocation-free
    /// when `s` was seen before.
    pub fn intern(&mut self, s: &str) -> u32 {
        let mut kh = KeyHash::new();
        kh.write(s.as_bytes());
        let hash = kh.finish();
        if let Some(bucket) = self.buckets.get(&hash) {
            for &id in bucket {
                if &*self.strings[id as usize] == s {
                    return id;
                }
            }
        }
        let id = u32::try_from(self.strings.len()).expect("interner capacity exceeded");
        self.strings.push(s.into());
        self.buckets.entry(hash).or_default().push(id);
        id
    }

    /// The string behind `id`.
    ///
    /// # Panics
    /// Panics when `id` was not produced by this interner.
    pub fn resolve(&self, id: u32) -> &str {
        &self.strings[id as usize]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_resolve_round_trips() {
        let mut i = Interner::new();
        let a = i.intern("engine.exec");
        let b = i.intern("stage_0");
        let a2 = i.intern("engine.exec");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "engine.exec");
        assert_eq!(i.resolve(b), "stage_0");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn empty_and_similar_strings_stay_distinct() {
        let mut i = Interner::new();
        let empty = i.intern("");
        let ab_c = i.intern("ab");
        let a_bc = i.intern("a");
        assert_ne!(empty, ab_c);
        assert_ne!(ab_c, a_bc);
        assert_eq!(i.resolve(empty), "");
    }
}
