//! Peregrine-style workload analysis.
//!
//! "Our first step is to combine this information. … queries or
//! subexpressions of queries are categorized into templates based on their
//! recurrence and similarity, and the dependencies of queries/jobs … in
//! pipelines are captured. Furthermore, workloads evolve over time, and as
//! such, we also learn the evolving nature of the historical workloads to
//! forecast future workloads." (Sec 4.2)
//!
//! [`WorkloadAnalysis::analyze`] re-discovers, from plans alone:
//!
//! * recurring templates (grouping by [`template_signature`]),
//! * cross-job subexpression sharing (grouping non-trivial subplans by
//!   [`strict_signature`]),
//! * the inter-job dependency graph (matching produced to consumed
//!   datasets),
//! * per-template arrival counts, from which [`WorkloadAnalysis::
//!   forecast_next_day`] projects the next day's load.

use crate::job::Trace;
use crate::signature::{strict_signature, template_signature, Signature};
use crate::JobId;
use adas_ml::forecast::{Forecaster, SeasonalNaive};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};

const SECONDS_PER_DAY: u64 = 86_400;

/// Summary of one discovered template.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemplateInfo {
    /// The template signature that groups the instances.
    pub signature: Signature,
    /// Instance job ids, in submit order.
    pub instances: Vec<JobId>,
    /// Number of distinct days on which an instance ran.
    pub active_days: usize,
}

impl TemplateInfo {
    /// A template is *recurring* when it ran on at least two distinct days —
    /// the "periodic runs of scripts" criterion.
    pub fn is_recurring(&self) -> bool {
        self.active_days >= 2
    }
}

/// Headline workload statistics (the paper's calibration targets).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadStats {
    /// Total jobs analyzed.
    pub total_jobs: usize,
    /// Number of distinct template signatures.
    pub distinct_templates: usize,
    /// Fraction of jobs that belong to a recurring template.
    pub recurring_fraction: f64,
    /// Fraction of jobs sharing a non-trivial subexpression with at least
    /// one *other* job.
    pub shared_subexpression_fraction: f64,
    /// Fraction of jobs with at least one inter-job dependency (either
    /// direction).
    pub dependent_fraction: f64,
}

/// The full analysis result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadAnalysis {
    templates: Vec<TemplateInfo>,
    /// Dependency edges `(producer, consumer)`.
    edges: Vec<(JobId, JobId)>,
    stats: WorkloadStats,
    /// Per-template daily instance counts: `template index -> counts[day]`.
    daily_counts: Vec<Vec<f64>>,
    days: usize,
}

impl WorkloadAnalysis {
    /// Analyzes a trace.
    pub fn analyze(trace: &Trace) -> Self {
        let total = trace.len();
        let days = if total == 0 {
            0
        } else {
            (trace.jobs().last().expect("non-empty").submit_time / SECONDS_PER_DAY + 1) as usize
        };

        // --- Templatization.
        let mut groups: BTreeMap<Signature, TemplateInfo> = BTreeMap::new();
        for job in trace.jobs() {
            let sig = template_signature(&job.plan);
            let entry = groups.entry(sig).or_insert_with(|| TemplateInfo {
                signature: sig,
                instances: Vec::new(),
                active_days: 0,
            });
            entry.instances.push(job.id);
        }
        let mut daily_counts: Vec<Vec<f64>> = Vec::with_capacity(groups.len());
        let day_of: HashMap<JobId, usize> = trace
            .jobs()
            .iter()
            .map(|j| (j.id, (j.submit_time / SECONDS_PER_DAY) as usize))
            .collect();
        for info in groups.values_mut() {
            let mut counts = vec![0.0f64; days];
            let mut seen_days = HashSet::new();
            for id in &info.instances {
                let d = day_of[id];
                counts[d] += 1.0;
                seen_days.insert(d);
            }
            info.active_days = seen_days.len();
            daily_counts.push(counts);
        }
        let templates: Vec<TemplateInfo> = groups.into_values().collect();
        let recurring_jobs: usize = templates
            .iter()
            .filter(|t| t.is_recurring())
            .map(|t| t.instances.len())
            .sum();

        // --- Subexpression sharing (non-trivial subplans only).
        let mut subexpr_jobs: HashMap<Signature, HashSet<JobId>> = HashMap::new();
        for job in trace.jobs() {
            for sub in job.plan.subplans() {
                if sub.node_count() >= 2 {
                    subexpr_jobs
                        .entry(strict_signature(sub))
                        .or_default()
                        .insert(job.id);
                }
            }
        }
        let mut sharing_jobs: HashSet<JobId> = HashSet::new();
        for jobs in subexpr_jobs.values() {
            if jobs.len() >= 2 {
                sharing_jobs.extend(jobs.iter().copied());
            }
        }

        // --- Dependency graph.
        let mut producer_of: HashMap<crate::DatasetId, JobId> = HashMap::new();
        for job in trace.jobs() {
            for out in &job.outputs {
                producer_of.insert(*out, job.id);
            }
        }
        let mut edges = Vec::new();
        let mut dependent: HashSet<JobId> = HashSet::new();
        for job in trace.jobs() {
            for input in &job.inputs {
                if let Some(&producer) = producer_of.get(input) {
                    edges.push((producer, job.id));
                    dependent.insert(producer);
                    dependent.insert(job.id);
                }
            }
        }

        let frac = |n: usize| {
            if total == 0 {
                0.0
            } else {
                n as f64 / total as f64
            }
        };
        let stats = WorkloadStats {
            total_jobs: total,
            distinct_templates: templates.len(),
            recurring_fraction: frac(recurring_jobs),
            shared_subexpression_fraction: frac(sharing_jobs.len()),
            dependent_fraction: frac(dependent.len()),
        };
        Self {
            templates,
            edges,
            stats,
            daily_counts,
            days,
        }
    }

    /// The headline statistics.
    pub fn stats(&self) -> WorkloadStats {
        self.stats
    }

    /// Discovered templates, ordered by signature.
    pub fn templates(&self) -> &[TemplateInfo] {
        &self.templates
    }

    /// Templates that recur (ran on >= 2 distinct days), largest first.
    pub fn recurring_templates(&self) -> Vec<&TemplateInfo> {
        let mut v: Vec<&TemplateInfo> =
            self.templates.iter().filter(|t| t.is_recurring()).collect();
        v.sort_by_key(|t| std::cmp::Reverse(t.instances.len()));
        v
    }

    /// Dependency edges `(producer, consumer)`.
    pub fn dependency_edges(&self) -> &[(JobId, JobId)] {
        &self.edges
    }

    /// Forecasts the number of instances of each recurring template expected
    /// tomorrow, using a seasonal-naive (previous-day) forecaster over the
    /// observed daily counts. Returns `(signature, expected_instances)`
    /// pairs for recurring templates only.
    pub fn forecast_next_day(&self) -> Vec<(Signature, f64)> {
        self.templates
            .iter()
            .zip(&self.daily_counts)
            .filter(|(t, _)| t.is_recurring())
            .filter_map(|(t, counts)| {
                // Period 1 (daily cadence at day granularity).
                SeasonalNaive::fit(counts, 1)
                    .ok()
                    .map(|f| (t.signature, f.forecast(1)[0]))
            })
            .collect()
    }

    /// Number of days the analyzed trace spans.
    pub fn days(&self) -> usize {
        self.days
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GeneratorConfig, WorkloadGenerator};
    use crate::job::{Job, Trace};
    use crate::plan::{CmpOp, LogicalPlan, Predicate};
    use crate::{DatasetId, TemplateId};

    fn mk_job(id: u64, day: u64, literal: i64) -> Job {
        Job {
            id: JobId(id),
            template: TemplateId(0),
            plan: LogicalPlan::scan("events").filter(Predicate::single(0, CmpOp::Le, literal)),
            submit_time: day * SECONDS_PER_DAY + 100,
            inputs: vec![],
            outputs: vec![],
        }
    }

    #[test]
    fn recurrence_requires_multiple_days() {
        // Same template on days 0 and 1 → recurring; a one-off on day 0 → not.
        let one_off = Job {
            plan: LogicalPlan::scan("users").aggregate(vec![0]),
            ..mk_job(99, 0, 0)
        };
        let trace = Trace::new(vec![mk_job(0, 0, 5), mk_job(1, 1, 9), one_off]);
        let a = WorkloadAnalysis::analyze(&trace);
        assert_eq!(a.stats().distinct_templates, 2);
        assert!((a.stats().recurring_fraction - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(a.recurring_templates().len(), 1);
        assert_eq!(a.days(), 2);
    }

    #[test]
    fn sharing_detected_via_identical_subplans() {
        // Two jobs with the same (literal-identical) filter share; a third
        // with a different literal does not share with them.
        let trace = Trace::new(vec![mk_job(0, 0, 5), mk_job(1, 0, 5), mk_job(2, 0, 6)]);
        let a = WorkloadAnalysis::analyze(&trace);
        assert!((a.stats().shared_subexpression_fraction - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn dependencies_matched_by_dataset() {
        let mut producer = mk_job(0, 0, 1);
        producer.outputs.push(DatasetId(7));
        let mut consumer = mk_job(1, 0, 2);
        consumer.inputs.push(DatasetId(7));
        let loner = mk_job(2, 0, 3);
        let a = WorkloadAnalysis::analyze(&Trace::new(vec![producer, consumer, loner]));
        assert_eq!(a.dependency_edges(), &[(JobId(0), JobId(1))]);
        assert!((a.stats().dependent_fraction - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_analysis() {
        let a = WorkloadAnalysis::analyze(&Trace::default());
        assert_eq!(a.stats().total_jobs, 0);
        assert_eq!(a.stats().recurring_fraction, 0.0);
        assert!(a.forecast_next_day().is_empty());
    }

    #[test]
    fn analysis_recovers_generator_calibration() {
        // The C1 experiment in miniature: analyzer statistics should land on
        // the paper's numbers (>60% recurring, ~40% sharing, ~70% dependent).
        let w = WorkloadGenerator::new(GeneratorConfig::default())
            .unwrap()
            .generate()
            .unwrap();
        let a = WorkloadAnalysis::analyze(&w.trace);
        let s = a.stats();
        assert!(
            s.recurring_fraction > 0.60,
            "recurring {}",
            s.recurring_fraction
        );
        assert!(
            (0.30..=0.55).contains(&s.shared_subexpression_fraction),
            "sharing {}",
            s.shared_subexpression_fraction
        );
        assert!(
            (0.60..=0.80).contains(&s.dependent_fraction),
            "dependent {}",
            s.dependent_fraction
        );
    }

    #[test]
    fn forecast_projects_previous_day() {
        // Template runs 3x on day 0, 5x on day 1 → previous-day forecast = 5.
        let mut jobs = Vec::new();
        let mut id = 0;
        for _ in 0..3 {
            jobs.push(mk_job(id, 0, id as i64));
            id += 1;
        }
        for _ in 0..5 {
            jobs.push(mk_job(id, 1, id as i64));
            id += 1;
        }
        let a = WorkloadAnalysis::analyze(&Trace::new(jobs));
        let forecast = a.forecast_next_day();
        assert_eq!(forecast.len(), 1);
        assert_eq!(forecast[0].1, 5.0);
    }
}
