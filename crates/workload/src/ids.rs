use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// Returns the raw numeric identifier.
            pub fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a submitted job within a trace.
    JobId,
    "job-"
);
id_type!(
    /// Identifier of a recurring job template (shared by all its instances).
    TemplateId,
    "tpl-"
);
id_type!(
    /// Identifier of a named dataset consumed/produced by jobs; matching
    /// producer outputs to consumer inputs yields the pipeline graph.
    DatasetId,
    "ds-"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_has_prefix() {
        assert_eq!(JobId(7).to_string(), "job-7");
        assert_eq!(TemplateId(1).to_string(), "tpl-1");
        assert_eq!(DatasetId(3).to_string(), "ds-3");
    }

    #[test]
    fn ordering_follows_raw() {
        assert!(JobId(1) < JobId(2));
        assert_eq!(JobId(5).raw(), 5);
    }
}
