//! Table and column metadata with basic statistics.
//!
//! The default (non-learned) cardinality estimator in the engine crate uses
//! these statistics — row counts, distinct-value counts and min/max ranges —
//! exactly the inputs a classical optimizer has before any learning.

use crate::plan::LogicalPlan;
use crate::{Result, WorkloadError};
use serde::{Deserialize, Serialize};

/// Statistics for one column. Values are modelled as integers drawn
/// uniformly from `[min, max]` with `distinct` distinct values; the *true*
/// data distribution used by the execution simulator may be skewed, which
/// is precisely what makes the default estimator err and learned models
/// valuable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnMeta {
    /// Column name.
    pub name: String,
    /// Number of distinct values.
    pub distinct: u64,
    /// Minimum value.
    pub min: i64,
    /// Maximum value.
    pub max: i64,
    /// Skew exponent of the true value distribution (0 = uniform; larger
    /// values concentrate mass on small keys, Zipf-style).
    pub skew: f64,
}

impl ColumnMeta {
    /// Creates a uniform column.
    pub fn uniform(name: &str, distinct: u64, min: i64, max: i64) -> Self {
        Self {
            name: name.to_string(),
            distinct,
            min,
            max,
            skew: 0.0,
        }
    }

    /// Creates a skewed column.
    pub fn skewed(name: &str, distinct: u64, min: i64, max: i64, skew: f64) -> Self {
        Self {
            name: name.to_string(),
            distinct,
            min,
            max,
            skew,
        }
    }
}

/// Metadata for one table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableMeta {
    /// Table name.
    pub name: String,
    /// Row count.
    pub rows: u64,
    /// Column metadata, indexed by ordinal.
    pub columns: Vec<ColumnMeta>,
}

impl TableMeta {
    /// Column metadata by ordinal, with a descriptive error.
    pub fn column(&self, index: usize) -> Result<&ColumnMeta> {
        self.columns
            .get(index)
            .ok_or_else(|| WorkloadError::UnknownColumn {
                table: self.name.clone(),
                column: index,
            })
    }
}

/// A catalog of tables, looked up by name.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    tables: Vec<TableMeta>,
    /// Definitions of tables that materialize a logical plan (views,
    /// pushed subexpressions). Signature hashing expands these scans to
    /// the defining plan so "true" cardinalities stay invariant under
    /// semantics-preserving rewrites.
    views: Vec<(String, LogicalPlan)>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a table, replacing any previous table with the same name.
    pub fn add_table(&mut self, table: TableMeta) {
        if let Some(existing) = self.tables.iter_mut().find(|t| t.name == table.name) {
            *existing = table;
        } else {
            self.tables.push(table);
        }
    }

    /// Looks a table up by name.
    pub fn table(&self, name: &str) -> Result<&TableMeta> {
        self.tables
            .iter()
            .find(|t| t.name == name)
            .ok_or_else(|| WorkloadError::UnknownTable(name.to_string()))
    }

    /// All tables in insertion order.
    pub fn tables(&self) -> &[TableMeta] {
        &self.tables
    }

    /// Records that `name` materializes `plan` (replacing any previous
    /// definition under the same name). Call alongside `add_table` when
    /// registering a view or pushed-subexpression table.
    pub fn register_view(&mut self, name: &str, plan: LogicalPlan) {
        if let Some(existing) = self.views.iter_mut().find(|(n, _)| n == name) {
            existing.1 = plan;
        } else {
            self.views.push((name.to_string(), plan));
        }
    }

    /// The plan materialized by `name`, when it was registered as a view.
    pub fn view_definition(&self, name: &str) -> Option<&LogicalPlan> {
        self.views.iter().find(|(n, _)| n == name).map(|(_, p)| p)
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when the catalog has no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// The catalog used across the workspace's experiments: a star-schema
    /// flavoured set of fact and dimension tables with a mix of uniform and
    /// skewed columns, loosely shaped like a telemetry warehouse.
    pub fn standard() -> Self {
        let mut catalog = Self::new();
        catalog.add_table(TableMeta {
            name: "events".into(),
            rows: 50_000_000,
            columns: vec![
                ColumnMeta::skewed("user_id", 1_000_000, 0, 999_999, 1.1),
                ColumnMeta::uniform("event_type", 50, 0, 49),
                ColumnMeta::uniform("ts_hour", 720, 0, 719),
                ColumnMeta::skewed("region_id", 60, 0, 59, 0.8),
            ],
        });
        catalog.add_table(TableMeta {
            name: "sessions".into(),
            rows: 8_000_000,
            columns: vec![
                ColumnMeta::skewed("user_id", 1_000_000, 0, 999_999, 1.1),
                ColumnMeta::uniform("duration_s", 10_000, 0, 9_999),
                ColumnMeta::uniform("ts_hour", 720, 0, 719),
            ],
        });
        catalog.add_table(TableMeta {
            name: "users".into(),
            rows: 1_000_000,
            columns: vec![
                ColumnMeta::uniform("user_id", 1_000_000, 0, 999_999),
                ColumnMeta::uniform("segment", 8, 0, 7),
                ColumnMeta::skewed("country_id", 120, 0, 119, 0.9),
            ],
        });
        catalog.add_table(TableMeta {
            name: "regions".into(),
            rows: 60,
            columns: vec![
                ColumnMeta::uniform("region_id", 60, 0, 59),
                ColumnMeta::uniform("tier", 3, 0, 2),
            ],
        });
        catalog.add_table(TableMeta {
            name: "telemetry".into(),
            rows: 200_000_000,
            columns: vec![
                ColumnMeta::skewed("machine_id", 100_000, 0, 99_999, 1.2),
                ColumnMeta::uniform("counter_id", 200, 0, 199),
                ColumnMeta::uniform("ts_hour", 720, 0, 719),
                ColumnMeta::uniform("value_bucket", 1000, 0, 999),
            ],
        });
        catalog
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_catalog_contents() {
        let c = Catalog::standard();
        assert_eq!(c.len(), 5);
        assert!(!c.is_empty());
        let events = c.table("events").unwrap();
        assert_eq!(events.rows, 50_000_000);
        assert_eq!(events.columns.len(), 4);
        assert_eq!(events.column(0).unwrap().name, "user_id");
    }

    #[test]
    fn unknown_lookups_error() {
        let c = Catalog::standard();
        assert!(matches!(
            c.table("nope"),
            Err(WorkloadError::UnknownTable(_))
        ));
        let events = c.table("events").unwrap();
        assert!(matches!(
            events.column(99),
            Err(WorkloadError::UnknownColumn { column: 99, .. })
        ));
    }

    #[test]
    fn add_table_replaces_same_name() {
        let mut c = Catalog::new();
        c.add_table(TableMeta {
            name: "t".into(),
            rows: 1,
            columns: vec![],
        });
        c.add_table(TableMeta {
            name: "t".into(),
            rows: 2,
            columns: vec![],
        });
        assert_eq!(c.len(), 1);
        assert_eq!(c.table("t").unwrap().rows, 2);
    }
}
