use std::fmt;

/// Errors produced by the workload crate.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// A plan referenced a table missing from the catalog.
    UnknownTable(String),
    /// A plan referenced a column index outside a table's width.
    UnknownColumn {
        /// Table name.
        table: String,
        /// Offending column index.
        column: usize,
    },
    /// A generator configuration value was out of range.
    InvalidConfig(String),
    /// A plan failed structural validation (e.g. wrong child count).
    MalformedPlan(String),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            Self::UnknownColumn { table, column } => {
                write!(f, "table `{table}` has no column index {column}")
            }
            Self::InvalidConfig(msg) => write!(f, "invalid generator config: {msg}"),
            Self::MalformedPlan(msg) => write!(f, "malformed plan: {msg}"),
        }
    }
}

impl std::error::Error for WorkloadError {}
