//! Workload evolution and forecasting (Sec 4.2).
//!
//! "Workloads evolve over time, and as such, we also learn the evolving
//! nature of the historical workloads to forecast future workloads."
//!
//! [`EvolutionReport`] extends the static analysis with the time dimension:
//! a fleet-volume trend, per-template growth classification (emerging /
//! stable / receding), and multi-day forecasts of per-template arrivals —
//! the inputs proactive provisioning and model-retraining schedules consume.

use crate::analyze::WorkloadAnalysis;
use crate::job::Trace;
use crate::signature::Signature;
use adas_ml::dataset::Dataset;
use adas_ml::forecast::{Forecaster, SeasonalNaive};
use adas_ml::linear::LinearRegression;
use serde::Serialize;
use std::collections::BTreeMap;

const SECONDS_PER_DAY: u64 = 86_400;

/// Growth classification of one template's arrival series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Growth {
    /// Daily arrivals trend upward beyond the threshold.
    Emerging,
    /// No significant trend.
    Stable,
    /// Daily arrivals trend downward beyond the threshold.
    Receding,
}

/// One template's evolution summary.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TemplateEvolution {
    /// Template signature.
    pub signature: Signature,
    /// Daily arrival counts across the trace.
    pub daily: Vec<f64>,
    /// Fitted linear trend, jobs/day per day.
    pub trend_per_day: f64,
    /// Growth class at the given threshold.
    pub growth: Growth,
    /// Forecast arrivals for the next `horizon` days (seasonal-naive over
    /// the daily series, i.e. previous-day carried forward when period=1).
    pub forecast: Vec<f64>,
}

/// The full evolution report.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EvolutionReport {
    /// Days covered by the trace.
    pub days: usize,
    /// Total jobs per day.
    pub daily_volume: Vec<f64>,
    /// Fleet volume trend, jobs/day per day.
    pub volume_trend_per_day: f64,
    /// Per-template evolution, ordered by signature.
    pub templates: Vec<TemplateEvolution>,
}

impl EvolutionReport {
    /// Templates in a growth class, largest daily volume first.
    pub fn in_class(&self, growth: Growth) -> Vec<&TemplateEvolution> {
        let mut v: Vec<&TemplateEvolution> = self
            .templates
            .iter()
            .filter(|t| t.growth == growth)
            .collect();
        v.sort_by(|a, b| {
            let sa: f64 = a.daily.iter().sum();
            let sb: f64 = b.daily.iter().sum();
            sb.partial_cmp(&sa).unwrap_or(std::cmp::Ordering::Equal)
        });
        v
    }

    /// Forecast total fleet volume for the next `horizon` days: the linear
    /// trend extrapolated from the daily totals.
    pub fn forecast_volume(&self, horizon: usize) -> Vec<f64> {
        let n = self.daily_volume.len() as f64;
        let last = *self.daily_volume.last().unwrap_or(&0.0);
        (1..=horizon)
            .map(|h| (last + self.volume_trend_per_day * h as f64).max(0.0))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|v| if n == 0.0 { 0.0 } else { v })
            .collect()
    }
}

fn linear_trend(series: &[f64]) -> f64 {
    if series.len() < 2 {
        return 0.0;
    }
    let pairs: Vec<(f64, f64)> = series
        .iter()
        .enumerate()
        .map(|(i, &v)| (i as f64, v))
        .collect();
    Dataset::from_xy(&pairs)
        .ok()
        .and_then(|d| LinearRegression::fit(&d).ok())
        .map_or(0.0, |m| m.coefficients()[0])
}

/// Analyzes workload evolution over a trace.
///
/// A template is `Emerging`/`Receding` when its fitted daily trend exceeds
/// `trend_threshold` (jobs/day per day) in magnitude relative to its mean
/// volume; templates below `min_instances` arrivals are skipped.
pub fn analyze_evolution(
    trace: &Trace,
    min_instances: usize,
    trend_threshold: f64,
    horizon: usize,
) -> EvolutionReport {
    let analysis = WorkloadAnalysis::analyze(trace);
    let days = analysis.days().max(1);

    // Fleet daily volume.
    let mut daily_volume = vec![0.0f64; days];
    for job in trace.jobs() {
        daily_volume[(job.submit_time / SECONDS_PER_DAY) as usize] += 1.0;
    }

    // Per-template daily series, rebuilt from the analysis's instances.
    let day_of: BTreeMap<crate::JobId, usize> = trace
        .jobs()
        .iter()
        .map(|j| (j.id, (j.submit_time / SECONDS_PER_DAY) as usize))
        .collect();
    let mut templates = Vec::new();
    for info in analysis.templates() {
        if info.instances.len() < min_instances {
            continue;
        }
        let mut daily = vec![0.0f64; days];
        for id in &info.instances {
            daily[day_of[id]] += 1.0;
        }
        let trend = linear_trend(&daily);
        let mean = daily.iter().sum::<f64>() / days as f64;
        let rel = if mean > 0.0 { trend / mean } else { 0.0 };
        let growth = if rel > trend_threshold {
            Growth::Emerging
        } else if rel < -trend_threshold {
            Growth::Receding
        } else {
            Growth::Stable
        };
        let forecast = SeasonalNaive::fit(&daily, 1)
            .map(|m| m.forecast(horizon))
            .unwrap_or_else(|_| vec![0.0; horizon]);
        templates.push(TemplateEvolution {
            signature: info.signature,
            daily,
            trend_per_day: trend,
            growth,
            forecast,
        });
    }
    EvolutionReport {
        days,
        volume_trend_per_day: linear_trend(&daily_volume),
        daily_volume,
        templates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::plan::{CmpOp, LogicalPlan, Predicate};
    use crate::{JobId, TemplateId};

    /// `counts[d]` instances of a template (identified by `tag`) on day `d`.
    fn jobs_with_counts(tag: i64, counts: &[usize], next_id: &mut u64) -> Vec<Job> {
        let mut out = Vec::new();
        for (day, &n) in counts.iter().enumerate() {
            for k in 0..n {
                out.push(Job {
                    id: JobId(*next_id),
                    template: TemplateId(tag as u64),
                    // Literal varies per instance; column choice tags the template.
                    plan: LogicalPlan::scan("events")
                        .filter(Predicate::single(0, CmpOp::Le, *next_id as i64))
                        .aggregate(vec![(tag as usize) % 4])
                        .project(vec![(tag as usize) % 4]),
                    submit_time: day as u64 * SECONDS_PER_DAY + 100 + k as u64,
                    inputs: vec![],
                    outputs: vec![],
                });
                *next_id += 1;
            }
        }
        out
    }

    fn trace() -> Trace {
        let mut id = 0;
        let mut jobs = Vec::new();
        jobs.extend(jobs_with_counts(0, &[2, 4, 6, 8, 10, 12], &mut id)); // emerging
        jobs.extend(jobs_with_counts(1, &[7, 7, 7, 7, 7, 7], &mut id)); // stable
        jobs.extend(jobs_with_counts(2, &[12, 10, 8, 6, 4, 2], &mut id)); // receding
        Trace::new(jobs)
    }

    #[test]
    fn growth_classes_recovered() {
        let report = analyze_evolution(&trace(), 5, 0.1, 2);
        assert_eq!(report.days, 6);
        assert_eq!(report.templates.len(), 3);
        assert_eq!(report.in_class(Growth::Emerging).len(), 1);
        assert_eq!(report.in_class(Growth::Stable).len(), 1);
        assert_eq!(report.in_class(Growth::Receding).len(), 1);
        let emerging = &report.in_class(Growth::Emerging)[0];
        assert!(emerging.trend_per_day > 1.5);
        // Previous-day forecast carries the last day forward.
        assert_eq!(emerging.forecast, vec![12.0, 12.0]);
    }

    #[test]
    fn fleet_volume_trend_detected() {
        let report = analyze_evolution(&trace(), 5, 0.1, 3);
        // Totals: 21 per day, flat (2+7+12, 4+7+10, ...).
        assert!(report.volume_trend_per_day.abs() < 1e-9);
        assert_eq!(report.forecast_volume(3), vec![21.0, 21.0, 21.0]);
    }

    #[test]
    fn growing_fleet_extrapolates() {
        let mut id = 0;
        let jobs = jobs_with_counts(0, &[10, 14, 18, 22], &mut id);
        let report = analyze_evolution(&Trace::new(jobs), 5, 0.1, 2);
        assert!((report.volume_trend_per_day - 4.0).abs() < 1e-9);
        assert_eq!(report.forecast_volume(2), vec![26.0, 30.0]);
    }

    #[test]
    fn small_templates_skipped() {
        let mut id = 0;
        let jobs = jobs_with_counts(0, &[1, 1], &mut id);
        let report = analyze_evolution(&Trace::new(jobs), 5, 0.1, 1);
        assert!(report.templates.is_empty());
        assert_eq!(report.days, 2);
    }

    #[test]
    fn empty_trace_safe() {
        let report = analyze_evolution(&Trace::default(), 1, 0.1, 2);
        assert!(report.templates.is_empty());
        assert_eq!(report.daily_volume, vec![0.0]);
    }
}
