//! Cross-engine plan interchange (Direction 2).
//!
//! "At the query engine level, we require standardization for representing
//! workloads and query plans. … We are now exploring the use of
//! cross-language query plan specification, such as Substrait, as a
//! standard plan representation across our engines."
//!
//! [`PlanDocument`] is that specification in miniature: a versioned JSON
//! envelope around a [`LogicalPlan`], with the producing engine recorded
//! and strict version checking at the consuming side. Because the plan IR
//! in this workspace is already engine-agnostic, interchange is exact:
//! round-tripping preserves the plan bit-for-bit, including both signature
//! flavours.

use crate::plan::LogicalPlan;
use crate::{Result, WorkloadError};
use serde::{Deserialize, Serialize};

/// The interchange format identifier + version.
pub const FORMAT: &str = "adas-plan/1";

/// A versioned plan document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanDocument {
    /// Format identifier; must equal [`FORMAT`] to load.
    pub format: String,
    /// Engine that produced the plan (informational).
    pub producer: String,
    /// The plan itself.
    pub plan: LogicalPlan,
}

impl PlanDocument {
    /// Wraps a plan for interchange.
    pub fn new(producer: &str, plan: LogicalPlan) -> Self {
        Self {
            format: FORMAT.to_string(),
            producer: producer.to_string(),
            plan,
        }
    }

    /// Serializes to the JSON wire form.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self)
            .map_err(|e| WorkloadError::MalformedPlan(format!("plan not serializable: {e}")))
    }

    /// Parses and version-checks a document.
    pub fn from_json(json: &str) -> Result<Self> {
        let doc: PlanDocument = serde_json::from_str(json)
            .map_err(|e| WorkloadError::MalformedPlan(format!("not a plan document: {e}")))?;
        if doc.format != FORMAT {
            return Err(WorkloadError::MalformedPlan(format!(
                "unsupported plan format `{}` (this build reads `{FORMAT}`)",
                doc.format
            )));
        }
        Ok(doc)
    }
}

/// Convenience: plan → JSON in one call.
pub fn export_plan(producer: &str, plan: &LogicalPlan) -> Result<String> {
    PlanDocument::new(producer, plan.clone()).to_json()
}

/// Convenience: JSON → plan in one call.
pub fn import_plan(json: &str) -> Result<LogicalPlan> {
    Ok(PlanDocument::from_json(json)?.plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::plan::{CmpOp, LogicalPlan, Predicate};
    use crate::signature::{strict_signature, template_signature};

    fn sample() -> LogicalPlan {
        LogicalPlan::join(
            LogicalPlan::scan("events").filter(Predicate::single(2, CmpOp::Le, 120)),
            LogicalPlan::scan("users"),
            0,
            0,
        )
        .aggregate(vec![1])
        .project(vec![0, 1])
    }

    #[test]
    fn round_trip_preserves_plan_and_signatures() {
        let plan = sample();
        let json = export_plan("adas-engine", &plan).expect("exports");
        let back = import_plan(&json).expect("imports");
        assert_eq!(back, plan);
        assert_eq!(strict_signature(&back), strict_signature(&plan));
        assert_eq!(template_signature(&back), template_signature(&plan));
        back.validate(&Catalog::standard())
            .expect("still validates");
    }

    #[test]
    fn document_records_producer() {
        let doc = PlanDocument::new("synapse-spark", sample());
        let parsed = PlanDocument::from_json(&doc.to_json().expect("exports")).expect("imports");
        assert_eq!(parsed.producer, "synapse-spark");
        assert_eq!(parsed.format, FORMAT);
    }

    #[test]
    fn wrong_version_rejected() {
        let mut doc = PlanDocument::new("x", sample());
        doc.format = "adas-plan/2".to_string();
        let json = serde_json::to_string(&doc).expect("serializes");
        let err = PlanDocument::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("unsupported plan format"));
    }

    #[test]
    fn garbage_rejected() {
        assert!(import_plan("nope").is_err());
        assert!(import_plan("{\"format\": \"adas-plan/1\"}").is_err());
    }
}
