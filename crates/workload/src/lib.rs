//! Engine-agnostic workload representation, synthetic SCOPE-like trace
//! generation, and Peregrine-style workload analysis.
//!
//! The paper's query-engine layer starts "from workload analysis": queries
//! and subexpressions are "categorized into templates based on their
//! recurrence and similarity, and the dependencies of queries/jobs … in
//! pipelines are captured" (Sec 4.2, citing the Peregrine platform). Its
//! headline workload statistics — **over 60% of SCOPE jobs are recurring,
//! nearly 40% of daily jobs share common subexpressions with at least one
//! other job, and 70% of daily jobs have inter-job dependencies** — are the
//! calibration targets for the generator in [`gen`], verified by experiment
//! C1.
//!
//! Contents:
//!
//! * [`plan`] — a small relational-algebra IR (`Scan`/`Filter`/`Project`/
//!   `Join`/`Aggregate`/`Union`) shared by every engine-layer crate; this is
//!   the "engine-agnostic workload representation" of Direction 2.
//! * [`catalog`] — table/column metadata with the statistics the default
//!   cardinality estimator uses.
//! * [`signature`] — stable 64-bit plan signatures, both *strict* (literals
//!   included; CloudViews view matching) and *template* (literals
//!   abstracted; recurrence detection and micromodel keying).
//! * [`job`] — jobs (a plan + submit time + input/output datasets) and
//!   traces.
//! * [`gen`] — the calibrated synthetic workload generator.
//! * [`analyze`] — templatization, subexpression-overlap and dependency
//!   analysis, and per-template arrival forecasting.
//! * [`interchange`] — a versioned, Substrait-flavoured JSON plan
//!   interchange format (Direction 2 standardization).
//! * [`sqltext`] — canonical SQL rendering of plans (inverse of the
//!   `adas-sql` front-end's lowering), including `?`-templated rendering
//!   for recurring jobs.
//! * [`evolution`] — workload-evolution analysis: fleet volume trends,
//!   emerging/receding template detection, multi-day arrival forecasts.

//! # Example
//!
//! ```
//! use adas_workload::analyze::WorkloadAnalysis;
//! use adas_workload::gen::{GeneratorConfig, WorkloadGenerator};
//!
//! let workload = WorkloadGenerator::new(GeneratorConfig {
//!     days: 2,
//!     jobs_per_day: 50,
//!     n_templates: 8,
//!     ..Default::default()
//! })
//! .unwrap()
//! .generate()
//! .unwrap();
//! let stats = WorkloadAnalysis::analyze(&workload.trace).stats();
//! assert_eq!(stats.total_jobs, 100);
//! assert!(stats.recurring_fraction > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analyze;
pub mod catalog;
mod error;
pub mod evolution;
pub mod gen;
mod ids;
pub mod interchange;
pub mod job;
pub mod plan;
pub mod signature;
pub mod sqltext;

pub use error::WorkloadError;
pub use ids::{DatasetId, JobId, TemplateId};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, WorkloadError>;
