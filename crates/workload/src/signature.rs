//! Stable 64-bit plan signatures.
//!
//! CloudViews "relies on a lightweight subexpression hash, called a
//! *signature*, for scalable materialized view selection and efficient view
//! matching" (Sec 4.2). Two flavours:
//!
//! * [`strict_signature`] — hashes the full plan including literals; equal
//!   signatures mean syntactically identical subexpressions (view matching).
//! * [`template_signature`] — hashes the plan with filter literals
//!   abstracted away; equal signatures group the *instances of one recurring
//!   template* ("periodic runs of scripts with the same operations but
//!   different predicate values").
//!
//! Hashing is FNV-1a, implemented here so signatures are stable across Rust
//! versions and processes (std's `DefaultHasher` makes no such guarantee).

use crate::catalog::Catalog;
use crate::plan::{LogicalPlan, PlanKind};
use serde::{Deserialize, Serialize};

/// A 64-bit plan signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Signature(pub u64);

impl std::fmt::Display for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sig-{:016x}", self.0)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self(FNV_OFFSET)
    }
}

impl Fnv1a {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs an `i64`.
    pub fn write_i64(&mut self, v: i64) {
        self.write(&v.to_le_bytes());
    }

    /// Finishes and returns the hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

fn hash_node(
    plan: &LogicalPlan,
    hasher: &mut Fnv1a,
    include_literals: bool,
    expand: Option<&Catalog>,
) {
    match &plan.kind {
        PlanKind::Scan { table } => {
            // A scan of a registered view hashes as the plan it
            // materializes, so signatures (and everything keyed on them,
            // like the truth oracle's correlation factors) are invariant
            // under semantics-preserving view rewrites.
            if let Some(def) = expand.and_then(|c| c.view_definition(table)) {
                hash_node(def, hasher, include_literals, expand);
                return;
            }
            hasher.write(&[0]);
            hasher.write(table.as_bytes());
        }
        PlanKind::Filter { predicate } => {
            hasher.write(&[1]);
            hasher.write_u64(predicate.clauses.len() as u64);
            for clause in &predicate.clauses {
                hasher.write_u64(clause.column as u64);
                hasher.write(&[clause.op.discriminant()]);
                if include_literals {
                    hasher.write_i64(clause.value);
                }
            }
        }
        PlanKind::Project { columns } => {
            hasher.write(&[2]);
            for &c in columns {
                hasher.write_u64(c as u64);
            }
        }
        PlanKind::Join {
            left_key,
            right_key,
        } => {
            hasher.write(&[3]);
            hasher.write_u64(*left_key as u64);
            hasher.write_u64(*right_key as u64);
        }
        PlanKind::Aggregate { group_by } => {
            hasher.write(&[4]);
            for &c in group_by {
                hasher.write_u64(c as u64);
            }
        }
        PlanKind::Union => hasher.write(&[5]),
    }
    hasher.write_u64(plan.children.len() as u64);
    for child in &plan.children {
        hash_node(child, hasher, include_literals, expand);
    }
}

/// Full signature, literals included: equality ⇒ syntactic identity.
pub fn strict_signature(plan: &LogicalPlan) -> Signature {
    let mut hasher = Fnv1a::new();
    hash_node(plan, &mut hasher, true, None);
    Signature(hasher.finish())
}

/// Template signature, literals abstracted: equality ⇒ same recurring
/// template.
pub fn template_signature(plan: &LogicalPlan) -> Signature {
    let mut hasher = Fnv1a::new();
    hash_node(plan, &mut hasher, false, None);
    Signature(hasher.finish())
}

/// Template signature with view scans expanded to their definitions in
/// `catalog` (see [`Catalog::register_view`]). For a plan without view
/// scans this equals [`template_signature`].
pub fn template_signature_in(plan: &LogicalPlan, catalog: &Catalog) -> Signature {
    let mut hasher = Fnv1a::new();
    hash_node(plan, &mut hasher, false, Some(catalog));
    Signature(hasher.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{CmpOp, LogicalPlan, Predicate};
    use proptest::prelude::*;

    fn plan_with_literal(v: i64) -> LogicalPlan {
        LogicalPlan::join(
            LogicalPlan::scan("events").filter(Predicate::single(2, CmpOp::Ge, v)),
            LogicalPlan::scan("users"),
            0,
            0,
        )
        .aggregate(vec![1])
    }

    #[test]
    fn strict_distinguishes_literals() {
        assert_ne!(
            strict_signature(&plan_with_literal(1)),
            strict_signature(&plan_with_literal(2))
        );
    }

    #[test]
    fn template_ignores_literals() {
        assert_eq!(
            template_signature(&plan_with_literal(1)),
            template_signature(&plan_with_literal(2))
        );
    }

    #[test]
    fn template_distinguishes_structure() {
        let a = plan_with_literal(1);
        let b = LogicalPlan::scan("events").filter(Predicate::single(2, CmpOp::Ge, 1));
        assert_ne!(template_signature(&a), template_signature(&b));
        // Different operator for the same shape also differs.
        let lt = LogicalPlan::scan("events").filter(Predicate::single(2, CmpOp::Lt, 1));
        let ge = LogicalPlan::scan("events").filter(Predicate::single(2, CmpOp::Ge, 1));
        assert_ne!(template_signature(&lt), template_signature(&ge));
    }

    #[test]
    fn signature_stable_known_value() {
        // Pin one signature so accidental hash-algorithm changes are caught.
        let plan = LogicalPlan::scan("events");
        assert_eq!(
            strict_signature(&plan),
            strict_signature(&LogicalPlan::scan("events"))
        );
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63dc4c8601ec8c); // FNV-1a("a"), published test vector
    }

    #[test]
    fn child_order_matters() {
        let a = LogicalPlan::union(LogicalPlan::scan("events"), LogicalPlan::scan("users"));
        let b = LogicalPlan::union(LogicalPlan::scan("users"), LogicalPlan::scan("events"));
        assert_ne!(strict_signature(&a), strict_signature(&b));
    }

    proptest! {
        /// Strict signatures are deterministic and literal-sensitive;
        /// template signatures are literal-insensitive.
        #[test]
        fn prop_signature_laws(v1 in -1000i64..1000, v2 in -1000i64..1000) {
            let p1 = plan_with_literal(v1);
            let p2 = plan_with_literal(v2);
            prop_assert_eq!(strict_signature(&p1), strict_signature(&plan_with_literal(v1)));
            prop_assert_eq!(template_signature(&p1), template_signature(&p2));
            if v1 != v2 {
                prop_assert_ne!(strict_signature(&p1), strict_signature(&p2));
            }
        }
    }
}
