//! The engine-agnostic logical-plan IR.
//!
//! A deliberately small relational algebra — scans, conjunctive filters,
//! projections, equi-joins, group-by aggregates, unions — rich enough to
//! exhibit everything the paper's engine-layer work needs: recurring
//! templates differing only in literals, shared subexpressions, containment
//! relationships, and multi-stage physical DAGs.

use crate::catalog::Catalog;
use crate::{Result, WorkloadError};
use serde::{Deserialize, Serialize};

/// Comparison operator in a filter clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `!=` (also spelled `<>` in SQL text)
    Ne,
}

impl CmpOp {
    /// Stable discriminant used by signature hashing. `Ne` was added after
    /// the original five; its discriminant extends the sequence so every
    /// pre-existing signature stays byte-identical.
    pub fn discriminant(self) -> u8 {
        match self {
            Self::Lt => 0,
            Self::Le => 1,
            Self::Gt => 2,
            Self::Ge => 3,
            Self::Eq => 4,
            Self::Ne => 5,
        }
    }

    /// Evaluates the comparison.
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            Self::Lt => lhs < rhs,
            Self::Le => lhs <= rhs,
            Self::Gt => lhs > rhs,
            Self::Ge => lhs >= rhs,
            Self::Eq => lhs == rhs,
            Self::Ne => lhs != rhs,
        }
    }

    /// The operator with its operands swapped: `a op b` ⇔ `b op.mirror() a`.
    /// Used by the SQL front-end to canonicalize literal-on-the-left
    /// comparisons.
    pub fn mirror(self) -> Self {
        match self {
            Self::Lt => Self::Gt,
            Self::Le => Self::Ge,
            Self::Gt => Self::Lt,
            Self::Ge => Self::Le,
            Self::Eq => Self::Eq,
            Self::Ne => Self::Ne,
        }
    }

    /// Canonical SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            Self::Lt => "<",
            Self::Le => "<=",
            Self::Gt => ">",
            Self::Ge => ">=",
            Self::Eq => "=",
            Self::Ne => "!=",
        }
    }
}

/// One clause `column <op> literal`. Column indices refer to the base table
/// feeding the filter (the leftmost scan beneath it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Comparison {
    /// Base-table column ordinal.
    pub column: usize,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal value — the part that varies across instances of a
    /// recurring template.
    pub value: i64,
}

impl Comparison {
    /// Creates a clause.
    pub fn new(column: usize, op: CmpOp, value: i64) -> Self {
        Self { column, op, value }
    }
}

/// A conjunction of comparison clauses.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Predicate {
    /// Conjoined clauses; empty means "true".
    pub clauses: Vec<Comparison>,
}

impl Predicate {
    /// Creates a predicate from clauses.
    pub fn new(clauses: Vec<Comparison>) -> Self {
        Self { clauses }
    }

    /// Single-clause convenience constructor.
    pub fn single(column: usize, op: CmpOp, value: i64) -> Self {
        Self {
            clauses: vec![Comparison::new(column, op, value)],
        }
    }

    /// True when `self` is implied by every row satisfying `other` being a
    /// superset — i.e. `self` is *contained in* `other` (every row passing
    /// `self` also passes `other`). Used by the reuse crate's containment
    /// matching. Conservative: returns `false` when unsure.
    pub fn contained_in(&self, other: &Predicate) -> bool {
        // Every clause of `other` must be implied by some clause of `self`.
        other.clauses.iter().all(|oc| {
            self.clauses.iter().any(|sc| {
                if sc.column != oc.column {
                    return false;
                }
                match (sc.op, oc.op) {
                    (CmpOp::Lt, CmpOp::Lt) | (CmpOp::Le, CmpOp::Le) => sc.value <= oc.value,
                    (CmpOp::Lt, CmpOp::Le) => sc.value <= oc.value + 1,
                    (CmpOp::Le, CmpOp::Lt) => sc.value < oc.value,
                    (CmpOp::Gt, CmpOp::Gt) | (CmpOp::Ge, CmpOp::Ge) => sc.value >= oc.value,
                    (CmpOp::Gt, CmpOp::Ge) => sc.value + 1 >= oc.value,
                    (CmpOp::Ge, CmpOp::Gt) => sc.value > oc.value,
                    (CmpOp::Eq, CmpOp::Eq) => sc.value == oc.value,
                    (CmpOp::Eq, CmpOp::Lt) => sc.value < oc.value,
                    (CmpOp::Eq, CmpOp::Le) => sc.value <= oc.value,
                    (CmpOp::Eq, CmpOp::Gt) => sc.value > oc.value,
                    (CmpOp::Eq, CmpOp::Ge) => sc.value >= oc.value,
                    // `x != w` is implied whenever `self` excludes `w`.
                    (CmpOp::Ne, CmpOp::Ne) => sc.value == oc.value,
                    (CmpOp::Eq, CmpOp::Ne) => sc.value != oc.value,
                    (CmpOp::Lt, CmpOp::Ne) => sc.value <= oc.value,
                    (CmpOp::Le, CmpOp::Ne) => sc.value < oc.value,
                    (CmpOp::Gt, CmpOp::Ne) => sc.value >= oc.value,
                    (CmpOp::Ge, CmpOp::Ne) => sc.value > oc.value,
                    _ => false,
                }
            })
        })
    }
}

/// The operator at a plan node.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlanKind {
    /// Leaf scan of a named base table.
    Scan {
        /// Catalog table name.
        table: String,
    },
    /// Conjunctive filter over one child.
    Filter {
        /// Filter predicate.
        predicate: Predicate,
    },
    /// Column projection over one child (no row-count change).
    Project {
        /// Retained column ordinals.
        columns: Vec<usize>,
    },
    /// Equi-join of two children on one key column each.
    Join {
        /// Key ordinal on the left input's base table.
        left_key: usize,
        /// Key ordinal on the right input's base table.
        right_key: usize,
    },
    /// Group-by aggregate over one child.
    Aggregate {
        /// Grouping column ordinals on the base table.
        group_by: Vec<usize>,
    },
    /// Bag union of two children.
    Union,
}

impl PlanKind {
    /// Number of children this operator requires.
    pub fn arity(&self) -> usize {
        match self {
            Self::Scan { .. } => 0,
            Self::Filter { .. } | Self::Project { .. } | Self::Aggregate { .. } => 1,
            Self::Join { .. } | Self::Union => 2,
        }
    }

    /// Short operator name for display and feature encoding.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Scan { .. } => "Scan",
            Self::Filter { .. } => "Filter",
            Self::Project { .. } => "Project",
            Self::Join { .. } => "Join",
            Self::Aggregate { .. } => "Aggregate",
            Self::Union => "Union",
        }
    }
}

/// A logical plan tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LogicalPlan {
    /// Operator at this node.
    pub kind: PlanKind,
    /// Child plans; length must equal `kind.arity()`.
    pub children: Vec<LogicalPlan>,
}

impl LogicalPlan {
    /// Leaf scan.
    pub fn scan(table: &str) -> Self {
        Self {
            kind: PlanKind::Scan {
                table: table.to_string(),
            },
            children: vec![],
        }
    }

    /// Wraps `self` in a filter.
    pub fn filter(self, predicate: Predicate) -> Self {
        Self {
            kind: PlanKind::Filter { predicate },
            children: vec![self],
        }
    }

    /// Wraps `self` in a projection.
    pub fn project(self, columns: Vec<usize>) -> Self {
        Self {
            kind: PlanKind::Project { columns },
            children: vec![self],
        }
    }

    /// Joins two plans on key ordinals.
    pub fn join(left: LogicalPlan, right: LogicalPlan, left_key: usize, right_key: usize) -> Self {
        Self {
            kind: PlanKind::Join {
                left_key,
                right_key,
            },
            children: vec![left, right],
        }
    }

    /// Wraps `self` in a group-by aggregate.
    pub fn aggregate(self, group_by: Vec<usize>) -> Self {
        Self {
            kind: PlanKind::Aggregate { group_by },
            children: vec![self],
        }
    }

    /// Bag union of two plans.
    pub fn union(left: LogicalPlan, right: LogicalPlan) -> Self {
        Self {
            kind: PlanKind::Union,
            children: vec![left, right],
        }
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(LogicalPlan::node_count)
            .sum::<usize>()
    }

    /// Height of the tree (a leaf has height 1).
    pub fn height(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(LogicalPlan::height)
            .max()
            .unwrap_or(0)
    }

    /// Pre-order iterator over all nodes.
    pub fn iter(&self) -> PlanIter<'_> {
        PlanIter { stack: vec![self] }
    }

    /// All subtrees (including `self`), pre-order.
    pub fn subplans(&self) -> Vec<&LogicalPlan> {
        self.iter().collect()
    }

    /// Name of the leftmost base table under this node, if any. Filters and
    /// aggregates resolve their column ordinals against this table.
    pub fn base_table(&self) -> Option<&str> {
        match &self.kind {
            PlanKind::Scan { table } => Some(table),
            _ => self.children.first().and_then(LogicalPlan::base_table),
        }
    }

    /// Applies `f` to every literal in every filter predicate, in pre-order.
    /// This is how template instances are stamped out from a template plan.
    pub fn map_literals(&self, f: &mut impl FnMut(i64) -> i64) -> LogicalPlan {
        let kind = match &self.kind {
            PlanKind::Filter { predicate } => PlanKind::Filter {
                predicate: Predicate::new(
                    predicate
                        .clauses
                        .iter()
                        .map(|c| Comparison::new(c.column, c.op, f(c.value)))
                        .collect(),
                ),
            },
            other => other.clone(),
        };
        LogicalPlan {
            kind,
            children: self.children.iter().map(|c| c.map_literals(f)).collect(),
        }
    }

    /// Structural validation: arity of every node, and every scanned table
    /// (plus every filter/aggregate/join column) exists in the catalog.
    pub fn validate(&self, catalog: &Catalog) -> Result<()> {
        if self.children.len() != self.kind.arity() {
            return Err(WorkloadError::MalformedPlan(format!(
                "{} requires {} children, has {}",
                self.kind.name(),
                self.kind.arity(),
                self.children.len()
            )));
        }
        match &self.kind {
            PlanKind::Scan { table } => {
                catalog.table(table)?;
            }
            PlanKind::Filter { predicate } => {
                let table = self.base_table().ok_or_else(|| {
                    WorkloadError::MalformedPlan("filter without base table".into())
                })?;
                let meta = catalog.table(table)?;
                for clause in &predicate.clauses {
                    meta.column(clause.column)?;
                }
            }
            PlanKind::Aggregate { group_by } => {
                let table = self.base_table().ok_or_else(|| {
                    WorkloadError::MalformedPlan("aggregate without base table".into())
                })?;
                let meta = catalog.table(table)?;
                for &c in group_by {
                    meta.column(c)?;
                }
            }
            PlanKind::Join {
                left_key,
                right_key,
            } => {
                for (side, key) in [(0usize, *left_key), (1, *right_key)] {
                    let table = self.children[side].base_table().ok_or_else(|| {
                        WorkloadError::MalformedPlan("join side without base table".into())
                    })?;
                    catalog.table(table)?.column(key)?;
                }
            }
            PlanKind::Project { .. } | PlanKind::Union => {}
        }
        for child in &self.children {
            child.validate(catalog)?;
        }
        Ok(())
    }
}

/// Pre-order iterator over plan nodes.
pub struct PlanIter<'a> {
    stack: Vec<&'a LogicalPlan>,
}

impl<'a> Iterator for PlanIter<'a> {
    type Item = &'a LogicalPlan;

    fn next(&mut self) -> Option<Self::Item> {
        let node = self.stack.pop()?;
        // Push children in reverse so the left child is visited first.
        for child in node.children.iter().rev() {
            self.stack.push(child);
        }
        Some(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> LogicalPlan {
        let left = LogicalPlan::scan("events").filter(Predicate::single(1, CmpOp::Eq, 7));
        let right = LogicalPlan::scan("users");
        LogicalPlan::join(left, right, 0, 0)
            .aggregate(vec![1])
            .project(vec![0])
    }

    #[test]
    fn structure_metrics() {
        let p = sample_plan();
        assert_eq!(p.node_count(), 6);
        assert_eq!(p.height(), 5);
        assert_eq!(p.subplans().len(), 6);
    }

    #[test]
    fn preorder_iteration() {
        let p = sample_plan();
        let names: Vec<&str> = p.iter().map(|n| n.kind.name()).collect();
        assert_eq!(
            names,
            vec!["Project", "Aggregate", "Join", "Filter", "Scan", "Scan"]
        );
    }

    #[test]
    fn base_table_is_leftmost() {
        let p = sample_plan();
        assert_eq!(p.base_table(), Some("events"));
        assert_eq!(
            p.children[0].children[0].children[1].base_table(),
            Some("users")
        );
    }

    #[test]
    fn validate_standard_plan() {
        let catalog = Catalog::standard();
        assert!(sample_plan().validate(&catalog).is_ok());
    }

    #[test]
    fn validate_rejects_bad_references() {
        let catalog = Catalog::standard();
        assert!(LogicalPlan::scan("missing").validate(&catalog).is_err());
        let bad_col = LogicalPlan::scan("events").filter(Predicate::single(99, CmpOp::Eq, 1));
        assert!(bad_col.validate(&catalog).is_err());
        let bad_arity = LogicalPlan {
            kind: PlanKind::Union,
            children: vec![LogicalPlan::scan("events")],
        };
        assert!(bad_arity.validate(&catalog).is_err());
    }

    #[test]
    fn map_literals_rewrites_only_filters() {
        let p = sample_plan();
        let shifted = p.map_literals(&mut |v| v + 100);
        let filter = &shifted.children[0].children[0].children[0];
        match &filter.kind {
            PlanKind::Filter { predicate } => assert_eq!(predicate.clauses[0].value, 107),
            other => panic!("expected filter, got {other:?}"),
        }
        // Structure is unchanged.
        assert_eq!(shifted.node_count(), p.node_count());
    }

    #[test]
    fn cmp_op_eval() {
        assert!(CmpOp::Lt.eval(1, 2));
        assert!(CmpOp::Le.eval(2, 2));
        assert!(CmpOp::Gt.eval(3, 2));
        assert!(CmpOp::Ge.eval(2, 2));
        assert!(CmpOp::Eq.eval(2, 2));
        assert!(!CmpOp::Eq.eval(1, 2));
        assert!(CmpOp::Ne.eval(1, 2));
        assert!(!CmpOp::Ne.eval(2, 2));
    }

    #[test]
    fn cmp_op_discriminants_are_stable() {
        // Pinned: these feed signature hashing, so any renumbering would
        // silently invalidate every recorded signature.
        let all = [
            (CmpOp::Lt, 0u8),
            (CmpOp::Le, 1),
            (CmpOp::Gt, 2),
            (CmpOp::Ge, 3),
            (CmpOp::Eq, 4),
            (CmpOp::Ne, 5),
        ];
        for (op, d) in all {
            assert_eq!(op.discriminant(), d);
        }
    }

    #[test]
    fn cmp_op_mirror_preserves_truth() {
        for op in [
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
            CmpOp::Eq,
            CmpOp::Ne,
        ] {
            for a in -2i64..=2 {
                for b in -2i64..=2 {
                    assert_eq!(op.eval(a, b), op.mirror().eval(b, a), "{op:?} {a} {b}");
                }
            }
        }
    }

    #[test]
    fn ne_containment() {
        let ne = |v| Predicate::single(0, CmpOp::Ne, v);
        // x = 3 implies x != 4, not x != 3.
        assert!(Predicate::single(0, CmpOp::Eq, 3).contained_in(&ne(4)));
        assert!(!Predicate::single(0, CmpOp::Eq, 3).contained_in(&ne(3)));
        // x < 5 implies x != 5 and x != 7 but not x != 4.
        assert!(Predicate::single(0, CmpOp::Lt, 5).contained_in(&ne(5)));
        assert!(Predicate::single(0, CmpOp::Lt, 5).contained_in(&ne(7)));
        assert!(!Predicate::single(0, CmpOp::Lt, 5).contained_in(&ne(4)));
        // x <= 5 implies x != 6 but not x != 5.
        assert!(Predicate::single(0, CmpOp::Le, 5).contained_in(&ne(6)));
        assert!(!Predicate::single(0, CmpOp::Le, 5).contained_in(&ne(5)));
        // x > 5 implies x != 5; x >= 5 implies x != 4 but not x != 5.
        assert!(Predicate::single(0, CmpOp::Gt, 5).contained_in(&ne(5)));
        assert!(Predicate::single(0, CmpOp::Ge, 5).contained_in(&ne(4)));
        assert!(!Predicate::single(0, CmpOp::Ge, 5).contained_in(&ne(5)));
        // Ne only implies the same Ne; it is never contained in Eq/ranges.
        assert!(ne(5).contained_in(&ne(5)));
        assert!(!ne(5).contained_in(&ne(6)));
        assert!(!ne(5).contained_in(&Predicate::single(0, CmpOp::Lt, 5)));
    }

    #[test]
    fn predicate_containment() {
        // x < 10 is contained in x < 20.
        let narrow = Predicate::single(0, CmpOp::Lt, 10);
        let wide = Predicate::single(0, CmpOp::Lt, 20);
        assert!(narrow.contained_in(&wide));
        assert!(!wide.contained_in(&narrow));
        // Equality within a range.
        let eq = Predicate::single(0, CmpOp::Eq, 5);
        assert!(eq.contained_in(&wide));
        assert!(eq.contained_in(&Predicate::single(0, CmpOp::Ge, 5)));
        assert!(!eq.contained_in(&Predicate::single(0, CmpOp::Gt, 5)));
        // Different columns never contain.
        assert!(!narrow.contained_in(&Predicate::single(1, CmpOp::Lt, 20)));
        // Anything is contained in "true".
        assert!(narrow.contained_in(&Predicate::default()));
        // Conjunction: (x<10 AND y>3) contained in (x<20).
        let conj = Predicate::new(vec![
            Comparison::new(0, CmpOp::Lt, 10),
            Comparison::new(1, CmpOp::Gt, 3),
        ]);
        assert!(conj.contained_in(&wide));
        assert!(!wide.contained_in(&conj));
    }
}
