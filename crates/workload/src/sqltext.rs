//! Canonical SQL rendering of logical plans.
//!
//! [`to_sql`] turns any [`LogicalPlan`] into SQL text in the subset grammar
//! the `adas-sql` front-end parses, and [`to_sql_template`] additionally
//! abstracts every filter literal into a `?` placeholder (returning the
//! bound values in placeholder order) — the textual twin of
//! [`template_signature`](crate::signature::template_signature), which
//! abstracts exactly the same literals.
//!
//! The rendering is **canonical** and designed as an exact inverse of the
//! front-end's lowering: `lower(parse(to_sql(plan))) == plan`, node for
//! node, so strict and template signatures survive the round trip
//! byte-identically. That inverse property is what lets the workload
//! generator emit its recurring jobs as SQL templates and have
//! recurring-job detection, shared-subexpression reuse and cloud-views
//! produce results identical to the hand-built plans.
//!
//! Shape mapping (one query block per chain of mergeable operators):
//!
//! | plan nesting (bottom-up) | SQL clause |
//! |---|---|
//! | `Scan` / `Join` | `FROM` (tables or parenthesized subqueries) |
//! | `Filter` directly above | `WHERE` (conjunction, clause order kept) |
//! | `Aggregate` above that | `GROUP BY` |
//! | `Project` on top | explicit `SELECT` list (`*` when absent) |
//! | `Union` | `UNION ALL` (left-associative; right nests in parens) |
//!
//! Any operator arriving out of that order (stacked filters, aggregate over
//! project, …) wraps its input in a parenthesized derived table, which the
//! front-end lowers back to the same nesting.

use crate::catalog::Catalog;
use crate::plan::{LogicalPlan, PlanKind, Predicate};
use crate::{Result, WorkloadError};
use std::fmt::Write as _;

/// Renders a plan to canonical SQL with literals inlined.
pub fn to_sql(plan: &LogicalPlan, catalog: &Catalog) -> Result<String> {
    let mut r = Renderer {
        catalog,
        params: None,
    };
    r.query(plan)
}

/// Renders a plan to a canonical SQL *template*: every filter literal
/// becomes a `?` placeholder and the second return value holds the bound
/// values in placeholder (text) order. Instances of one recurring template
/// render to byte-identical template text, differing only in the bindings.
pub fn to_sql_template(plan: &LogicalPlan, catalog: &Catalog) -> Result<(String, Vec<i64>)> {
    let mut r = Renderer {
        catalog,
        params: Some(Vec::new()),
    };
    let sql = r.query(plan)?;
    Ok((sql, r.params.expect("template mode collects params")))
}

/// One SQL query block under construction. `None` slots render as their
/// defaults (`SELECT *`, no `WHERE`, no `GROUP BY`); a plan operator merges
/// into a slot only when lowering would re-nest it in the original order.
struct Block<'p> {
    /// Rendered FROM clause (a table name, a derived table, or a JOIN).
    from: String,
    /// Base table resolving this block's column ordinals (the leftmost
    /// scan beneath it).
    base: String,
    where_: Option<&'p Predicate>,
    group: Option<&'p [usize]>,
    select: Option<&'p [usize]>,
}

struct Renderer<'a> {
    catalog: &'a Catalog,
    /// `Some` ⇒ template mode: emit `?` for filter literals, collect here.
    params: Option<Vec<i64>>,
}

impl<'a> Renderer<'a> {
    /// Full query text for any plan (the only entry point that handles
    /// `Union` roots).
    fn query(&mut self, plan: &LogicalPlan) -> Result<String> {
        if let PlanKind::Union = plan.kind {
            // Left-associative chains stay flat; a union as the *right*
            // operand needs parentheses to preserve the tree shape.
            let left = &plan.children[0];
            let right = &plan.children[1];
            let left_sql = self.query(left)?;
            let right_sql = if matches!(right.kind, PlanKind::Union) {
                format!("({})", self.query(right)?)
            } else {
                self.query(right)?
            };
            return Ok(format!("{left_sql} UNION ALL {right_sql}"));
        }
        let block = self.block(plan)?;
        self.render_block(block)
    }

    /// Builds the query block for a non-`Union` plan, merging operators
    /// into clause slots where lowering order permits and wrapping in a
    /// derived table where it does not.
    fn block<'p>(&mut self, plan: &'p LogicalPlan) -> Result<Block<'p>> {
        match &plan.kind {
            PlanKind::Scan { table } => {
                self.catalog.table(table)?;
                Ok(Block {
                    from: table.clone(),
                    base: table.clone(),
                    where_: None,
                    group: None,
                    select: None,
                })
            }
            PlanKind::Join {
                left_key,
                right_key,
            } => {
                let left = &plan.children[0];
                let right = &plan.children[1];
                let left_base = base_table_of(left)?;
                let right_base = base_table_of(right)?;
                let left_col = self.column_name(&left_base, *left_key)?;
                // The left item renders before the right so template
                // placeholders stay in text order.
                let left_item = self.render_from(left)?;
                let right_item = self.render_from(right)?;
                let right_col = self.column_name(&right_base, *right_key)?;
                Ok(Block {
                    from: format!(
                        "{left_item} JOIN {right_item} ON {left_base}.{left_col} = \
                         {right_base}.{right_col}"
                    ),
                    base: left_base,
                    where_: None,
                    group: None,
                    select: None,
                })
            }
            PlanKind::Filter { predicate } => {
                if predicate.clauses.is_empty() {
                    return Err(WorkloadError::MalformedPlan(
                        "cannot render an empty (always-true) predicate as SQL".into(),
                    ));
                }
                let child = self.block(&plan.children[0])?;
                let mut b =
                    if child.where_.is_none() && child.group.is_none() && child.select.is_none() {
                        child
                    } else {
                        self.wrap(child)?
                    };
                b.where_ = Some(predicate);
                Ok(b)
            }
            PlanKind::Aggregate { group_by } => {
                if group_by.is_empty() {
                    return Err(WorkloadError::MalformedPlan(
                        "cannot render an aggregate with no grouping columns as SQL".into(),
                    ));
                }
                let child = self.block(&plan.children[0])?;
                let mut b = if child.group.is_none() && child.select.is_none() {
                    child
                } else {
                    self.wrap(child)?
                };
                b.group = Some(group_by);
                Ok(b)
            }
            PlanKind::Project { columns } => {
                if columns.is_empty() {
                    return Err(WorkloadError::MalformedPlan(
                        "cannot render a projection with no columns as SQL".into(),
                    ));
                }
                let child = self.block(&plan.children[0])?;
                let mut b = if child.select.is_none() {
                    child
                } else {
                    self.wrap(child)?
                };
                b.select = Some(columns);
                Ok(b)
            }
            PlanKind::Union => {
                // A union below another operator becomes a derived table.
                let sql = self.query(plan)?;
                Ok(Block {
                    from: format!("({sql})"),
                    base: base_table_of(plan)?,
                    where_: None,
                    group: None,
                    select: None,
                })
            }
        }
    }

    /// Re-renders a finished block as the derived table of a fresh one.
    fn wrap<'p>(&mut self, block: Block<'p>) -> Result<Block<'p>> {
        let base = block.base.clone();
        let sql = self.render_block(block)?;
        Ok(Block {
            from: format!("({sql})"),
            base,
            where_: None,
            group: None,
            select: None,
        })
    }

    /// A FROM-position item: a bare table name for scans, a parenthesized
    /// subquery for anything else.
    fn render_from(&mut self, plan: &LogicalPlan) -> Result<String> {
        match &plan.kind {
            PlanKind::Scan { table } => {
                self.catalog.table(table)?;
                Ok(table.clone())
            }
            _ => Ok(format!("({})", self.query(plan)?)),
        }
    }

    /// Final clause-order assembly. `WHERE` literals are emitted here, after
    /// the (already rendered) FROM text, preserving placeholder text order.
    fn render_block(&mut self, block: Block<'_>) -> Result<String> {
        let mut sql = String::from("SELECT ");
        match block.select {
            None => sql.push('*'),
            Some(columns) => {
                for (i, &c) in columns.iter().enumerate() {
                    if i > 0 {
                        sql.push_str(", ");
                    }
                    sql.push_str(&self.column_name(&block.base, c)?);
                }
            }
        }
        write!(sql, " FROM {}", block.from).expect("infallible");
        if let Some(predicate) = block.where_ {
            sql.push_str(" WHERE ");
            for (i, clause) in predicate.clauses.iter().enumerate() {
                if i > 0 {
                    sql.push_str(" AND ");
                }
                let name = self.column_name(&block.base, clause.column)?;
                write!(sql, "{name} {} ", clause.op.sql()).expect("infallible");
                match &mut self.params {
                    Some(params) => {
                        params.push(clause.value);
                        sql.push('?');
                    }
                    None => write!(sql, "{}", clause.value).expect("infallible"),
                }
            }
        }
        if let Some(group) = block.group {
            sql.push_str(" GROUP BY ");
            for (i, &c) in group.iter().enumerate() {
                if i > 0 {
                    sql.push_str(", ");
                }
                sql.push_str(&self.column_name(&block.base, c)?);
            }
        }
        Ok(sql)
    }

    fn column_name(&self, table: &str, ordinal: usize) -> Result<String> {
        Ok(self.catalog.table(table)?.column(ordinal)?.name.clone())
    }
}

fn base_table_of(plan: &LogicalPlan) -> Result<String> {
    plan.base_table()
        .map(str::to_string)
        .ok_or_else(|| WorkloadError::MalformedPlan("plan has no base table to render".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{CmpOp, Comparison, LogicalPlan, Predicate};

    fn catalog() -> Catalog {
        Catalog::standard()
    }

    #[test]
    fn scan_renders_star() {
        assert_eq!(
            to_sql(&LogicalPlan::scan("events"), &catalog()).unwrap(),
            "SELECT * FROM events"
        );
    }

    #[test]
    fn filter_merges_into_scan_block() {
        let plan = LogicalPlan::scan("events").filter(Predicate::new(vec![
            Comparison::new(1, CmpOp::Ge, 3),
            Comparison::new(2, CmpOp::Ne, 100),
        ]));
        assert_eq!(
            to_sql(&plan, &catalog()).unwrap(),
            "SELECT * FROM events WHERE event_type >= 3 AND ts_hour != 100"
        );
    }

    #[test]
    fn stacked_filters_wrap() {
        let plan = LogicalPlan::scan("events")
            .filter(Predicate::single(1, CmpOp::Eq, 3))
            .filter(Predicate::single(2, CmpOp::Le, 10));
        assert_eq!(
            to_sql(&plan, &catalog()).unwrap(),
            "SELECT * FROM (SELECT * FROM events WHERE event_type = 3) WHERE ts_hour <= 10"
        );
    }

    #[test]
    fn join_filter_aggregate_project_share_one_block() {
        let plan = LogicalPlan::join(
            LogicalPlan::scan("events"),
            LogicalPlan::scan("users"),
            0,
            0,
        )
        .filter(Predicate::single(1, CmpOp::Eq, 7))
        .aggregate(vec![3])
        .project(vec![0, 3]);
        assert_eq!(
            to_sql(&plan, &catalog()).unwrap(),
            "SELECT user_id, region_id FROM events JOIN users ON events.user_id = users.user_id \
             WHERE event_type = 7 GROUP BY region_id"
        );
    }

    #[test]
    fn union_is_left_associative_and_right_parenthesized() {
        let a = LogicalPlan::scan("events");
        let b = LogicalPlan::scan("sessions");
        let c = LogicalPlan::scan("users");
        let left_assoc = LogicalPlan::union(LogicalPlan::union(a.clone(), b.clone()), c.clone());
        assert_eq!(
            to_sql(&left_assoc, &catalog()).unwrap(),
            "SELECT * FROM events UNION ALL SELECT * FROM sessions UNION ALL SELECT * FROM users"
        );
        let right_nested = LogicalPlan::union(a, LogicalPlan::union(b, c));
        assert_eq!(
            to_sql(&right_nested, &catalog()).unwrap(),
            "SELECT * FROM events UNION ALL (SELECT * FROM sessions UNION ALL SELECT * FROM users)"
        );
    }

    #[test]
    fn union_below_operator_becomes_derived_table() {
        let plan = LogicalPlan::union(LogicalPlan::scan("events"), LogicalPlan::scan("sessions"))
            .filter(Predicate::single(0, CmpOp::Gt, 5));
        assert_eq!(
            to_sql(&plan, &catalog()).unwrap(),
            "SELECT * FROM (SELECT * FROM events UNION ALL SELECT * FROM sessions) \
             WHERE user_id > 5"
        );
    }

    #[test]
    fn template_mode_abstracts_literals_in_text_order() {
        let plan = LogicalPlan::join(
            LogicalPlan::scan("events").filter(Predicate::single(2, CmpOp::Ge, 11)),
            LogicalPlan::scan("users"),
            0,
            0,
        )
        .filter(Predicate::single(1, CmpOp::Le, 22));
        let (sql, params) = to_sql_template(&plan, &catalog()).unwrap();
        assert_eq!(
            sql,
            "SELECT * FROM (SELECT * FROM events WHERE ts_hour >= ?) JOIN users \
             ON events.user_id = users.user_id WHERE event_type <= ?"
        );
        assert_eq!(params, vec![11, 22]);
        // Instances of one template render to identical text.
        let other = plan.map_literals(&mut |v| v + 1000);
        let (sql2, params2) = to_sql_template(&other, &catalog()).unwrap();
        assert_eq!(sql, sql2);
        assert_eq!(params2, vec![1011, 1022]);
    }

    #[test]
    fn unrenderable_shapes_error() {
        let c = catalog();
        assert!(to_sql(&LogicalPlan::scan("missing"), &c).is_err());
        let empty_pred = LogicalPlan::scan("events").filter(Predicate::default());
        assert!(to_sql(&empty_pred, &c).is_err());
        let empty_proj = LogicalPlan::scan("events").project(vec![]);
        assert!(to_sql(&empty_proj, &c).is_err());
        let wide = LogicalPlan::scan("regions").project(vec![9]);
        assert!(to_sql(&wide, &c).is_err());
    }

    #[test]
    fn negative_literals_render() {
        let plan = LogicalPlan::scan("events").filter(Predicate::single(0, CmpOp::Ne, -42));
        assert_eq!(
            to_sql(&plan, &catalog()).unwrap(),
            "SELECT * FROM events WHERE user_id != -42"
        );
    }
}
