//! Jobs and traces.

use crate::plan::LogicalPlan;
use crate::signature::{strict_signature, template_signature, Signature};
use crate::{DatasetId, JobId, TemplateId};
use serde::{Deserialize, Serialize};

/// One submitted job: a logical plan plus scheduling metadata and the
/// datasets it consumes/produces (the edges of the pipeline graph).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Unique job identifier.
    pub id: JobId,
    /// The template this job instantiates (ground truth from the generator;
    /// the analyzer must *re-discover* it from the plan alone).
    pub template: TemplateId,
    /// The logical plan.
    pub plan: LogicalPlan,
    /// Submission time (seconds since trace epoch).
    pub submit_time: u64,
    /// Datasets read, beyond base tables. Non-empty input lists create
    /// inter-job dependencies when another job produces the dataset.
    pub inputs: Vec<DatasetId>,
    /// Datasets written.
    pub outputs: Vec<DatasetId>,
}

impl Job {
    /// Strict signature of the job's plan.
    pub fn strict_signature(&self) -> Signature {
        strict_signature(&self.plan)
    }

    /// Template signature of the job's plan.
    pub fn template_signature(&self) -> Signature {
        template_signature(&self.plan)
    }
}

/// An ordered collection of jobs (by submit time).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    jobs: Vec<Job>,
}

impl Trace {
    /// Creates a trace, sorting jobs by submit time (stable, so equal times
    /// keep generation order).
    pub fn new(mut jobs: Vec<Job>) -> Self {
        jobs.sort_by_key(|j| j.submit_time);
        Self { jobs }
    }

    /// The jobs in submit-time order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when the trace has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Jobs submitted in `[start, end)`.
    pub fn between(&self, start: u64, end: u64) -> impl Iterator<Item = &Job> {
        self.jobs
            .iter()
            .filter(move |j| j.submit_time >= start && j.submit_time < end)
    }

    /// Duration covered by the trace (0 when empty).
    pub fn span(&self) -> u64 {
        match (self.jobs.first(), self.jobs.last()) {
            (Some(first), Some(last)) => last.submit_time - first.submit_time,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::LogicalPlan;

    fn job(id: u64, t: u64) -> Job {
        Job {
            id: JobId(id),
            template: TemplateId(0),
            plan: LogicalPlan::scan("events"),
            submit_time: t,
            inputs: vec![],
            outputs: vec![],
        }
    }

    #[test]
    fn trace_sorts_by_submit_time() {
        let trace = Trace::new(vec![job(0, 50), job(1, 10), job(2, 30)]);
        let ids: Vec<u64> = trace.jobs().iter().map(|j| j.id.raw()).collect();
        assert_eq!(ids, vec![1, 2, 0]);
        assert_eq!(trace.span(), 40);
    }

    #[test]
    fn between_filters_half_open() {
        let trace = Trace::new(vec![job(0, 0), job(1, 10), job(2, 20)]);
        let picked: Vec<u64> = trace.between(10, 20).map(|j| j.id.raw()).collect();
        assert_eq!(picked, vec![1]);
    }

    #[test]
    fn empty_trace() {
        let trace = Trace::default();
        assert!(trace.is_empty());
        assert_eq!(trace.span(), 0);
    }
}
