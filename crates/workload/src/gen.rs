//! Calibrated synthetic workload generation.
//!
//! Production SCOPE/Cosmos traces are proprietary, so the workspace
//! substitutes a generator calibrated to the workload statistics the paper
//! publishes (Sec 4.2): **>60% recurring jobs**, **~40% of jobs sharing a
//! common subexpression with at least one other job**, and **70% of jobs
//! with inter-job dependencies**. Experiment C1 verifies the calibration by
//! running the [`analyze`](crate::analyze) pipeline over a generated trace.
//!
//! Mechanics:
//!
//! * A pool of *shared subplans* with fixed literals is built first; a
//!   configurable fraction of templates embed one, which is what makes jobs
//!   from different templates syntactically share subexpressions
//!   (CloudViews' reuse opportunity).
//! * Each recurring template is instantiated on every day of the trace with
//!   fresh filter literals ("same operations but different predicate
//!   values").
//! * Ad-hoc jobs scan job-private tables added to the catalog, guaranteeing
//!   they never collide with a template.
//! * A fraction of each day's jobs is threaded into pipeline chains via
//!   produced/consumed datasets.

use crate::catalog::{Catalog, ColumnMeta, TableMeta};
use crate::job::{Job, Trace};
use crate::plan::{CmpOp, Comparison, LogicalPlan, Predicate};
use crate::{DatasetId, JobId, Result, TemplateId, WorkloadError};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration for [`WorkloadGenerator`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of simulated days.
    pub days: usize,
    /// Jobs submitted per day.
    pub jobs_per_day: usize,
    /// Fraction of jobs that are instances of recurring templates, in
    /// `[0, 1]`. Paper calibration: 0.65.
    pub recurring_fraction: f64,
    /// Fraction of recurring templates that embed a shared subplan, in
    /// `[0, 1]`. Paper calibration: 0.6 (yields ~40% of all jobs sharing).
    pub shared_template_fraction: f64,
    /// Fraction of jobs threaded into pipeline chains, in `[0, 1]`.
    /// Paper calibration: 0.7.
    pub pipeline_fraction: f64,
    /// Number of distinct recurring templates.
    pub n_templates: usize,
    /// Number of shared subplans in the pool.
    pub n_shared_subplans: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    /// The paper-calibrated configuration used by experiment C1.
    fn default() -> Self {
        Self {
            days: 7,
            jobs_per_day: 500,
            recurring_fraction: 0.65,
            shared_template_fraction: 0.6,
            pipeline_fraction: 0.7,
            n_templates: 80,
            n_shared_subplans: 12,
            seed: 7,
        }
    }
}

impl GeneratorConfig {
    fn validate(&self) -> Result<()> {
        for (name, v) in [
            ("recurring_fraction", self.recurring_fraction),
            ("shared_template_fraction", self.shared_template_fraction),
            ("pipeline_fraction", self.pipeline_fraction),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(WorkloadError::InvalidConfig(format!(
                    "{name} must be in [0,1], got {v}"
                )));
            }
        }
        if self.days == 0 || self.jobs_per_day == 0 {
            return Err(WorkloadError::InvalidConfig(
                "days and jobs_per_day must be >= 1".into(),
            ));
        }
        if self.n_templates == 0 {
            return Err(WorkloadError::InvalidConfig(
                "n_templates must be >= 1".into(),
            ));
        }
        Ok(())
    }
}

/// The generated workload: the trace plus the catalog extended with the
/// ad-hoc tables the trace references.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratedWorkload {
    /// Catalog covering every table any job scans.
    pub catalog: Catalog,
    /// The job trace.
    pub trace: Trace,
    /// Ground-truth number of recurring-template jobs (for calibration
    /// tests; the analyzer must approximate this from plans alone).
    pub recurring_jobs: usize,
    /// Ground-truth number of jobs participating in a pipeline.
    pub pipelined_jobs: usize,
}

/// One job rendered as a SQL template: the `?`-parameterized text shared by
/// every instance of the job's template, plus this instance's bindings.
/// Feeding `sql` + `params` through the `adas-sql` front-end (parse →
/// rewrite → lower) reproduces the job's plan exactly, signatures included.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SqlJob {
    /// The job this rendering came from.
    pub id: JobId,
    /// The job's template (the ad-hoc sentinel for non-recurring jobs).
    pub template: TemplateId,
    /// Canonical `?`-templated SQL text.
    pub sql: String,
    /// Literal bindings, in placeholder order.
    pub params: Vec<i64>,
    /// Submit time, copied from the job.
    pub submit_time: u64,
}

impl GeneratedWorkload {
    /// Renders every job in the trace as a SQL template plus bindings, in
    /// trace order. Instances of one recurring template share byte-identical
    /// `sql` text and differ only in `params`.
    pub fn sql_jobs(&self) -> Result<Vec<SqlJob>> {
        self.trace
            .jobs()
            .iter()
            .map(|job| {
                let (sql, params) = crate::sqltext::to_sql_template(&job.plan, &self.catalog)?;
                Ok(SqlJob {
                    id: job.id,
                    template: job.template,
                    sql,
                    params,
                    submit_time: job.submit_time,
                })
            })
            .collect()
    }

    /// The distinct SQL template texts of the recurring templates that
    /// actually appear in the trace, sorted by template id.
    pub fn sql_templates(&self) -> Result<Vec<(TemplateId, String)>> {
        let mut out = std::collections::BTreeMap::new();
        for job in self.trace.jobs() {
            if job.template == TemplateId(u64::MAX) {
                continue;
            }
            if let std::collections::btree_map::Entry::Vacant(e) = out.entry(job.template) {
                let (sql, _) = crate::sqltext::to_sql_template(&job.plan, &self.catalog)?;
                e.insert(sql);
            }
        }
        Ok(out.into_iter().collect())
    }
}

/// Deterministic, calibrated workload generator.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    config: GeneratorConfig,
}

const SECONDS_PER_DAY: u64 = 86_400;

/// A recurring template: a plan whose filter literals get re-randomized per
/// instance.
struct Template {
    id: TemplateId,
    plan: LogicalPlan,
    /// Range for the top filter's two varying literals.
    literal_range: (i64, i64),
    /// Range for the join-inner filter's varying literal.
    literal_range2: (i64, i64),
}

impl WorkloadGenerator {
    /// Creates a generator after validating the configuration.
    pub fn new(config: GeneratorConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self { config })
    }

    /// Generates the workload.
    pub fn generate(&self) -> Result<GeneratedWorkload> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut catalog = Catalog::standard();

        let shared_pool = self.build_shared_subplans(&catalog, &mut rng);
        let templates = self.build_templates(&catalog, &shared_pool, &mut rng);

        let mut jobs = Vec::with_capacity(self.config.days * self.config.jobs_per_day);
        let mut next_job = 0u64;
        let mut next_adhoc_table = 0u64;
        let mut next_dataset = 0u64;
        let mut recurring_jobs = 0usize;
        let mut pipelined_jobs = 0usize;

        for day in 0..self.config.days {
            let day_start = day as u64 * SECONDS_PER_DAY;
            let mut day_jobs: Vec<Job> = Vec::with_capacity(self.config.jobs_per_day);
            for _ in 0..self.config.jobs_per_day {
                let submit = day_start + rng.gen_range(0..SECONDS_PER_DAY);
                let job = if rng.gen::<f64>() < self.config.recurring_fraction {
                    recurring_jobs += 1;
                    let template = &templates[rng.gen_range(0..templates.len())];
                    self.instantiate(template, JobId(next_job), submit, &mut rng)
                } else {
                    self.adhoc_job(
                        &mut catalog,
                        JobId(next_job),
                        submit,
                        &mut next_adhoc_table,
                        &mut rng,
                    )
                };
                next_job += 1;
                day_jobs.push(job);
            }

            // Thread a fraction of the day's jobs into pipeline chains.
            let mut member_idx: Vec<usize> = (0..day_jobs.len())
                .filter(|_| rng.gen::<f64>() < self.config.pipeline_fraction)
                .collect();
            member_idx.shuffle(&mut rng);
            let mut i = 0;
            while i + 1 < member_idx.len() {
                let chain_len = rng.gen_range(2..=4usize).min(member_idx.len() - i);
                if chain_len < 2 {
                    break;
                }
                for step in 0..chain_len {
                    let ds_in = DatasetId(next_dataset);
                    let ds_out = DatasetId(next_dataset + 1);
                    let job = &mut day_jobs[member_idx[i + step]];
                    if step > 0 {
                        job.inputs.push(ds_in);
                    }
                    if step + 1 < chain_len {
                        job.outputs.push(ds_out);
                        next_dataset += 1;
                    }
                    pipelined_jobs += 1;
                }
                i += chain_len;
            }
            jobs.extend(day_jobs);
        }

        Ok(GeneratedWorkload {
            catalog,
            trace: Trace::new(jobs),
            recurring_jobs,
            pipelined_jobs,
        })
    }

    /// Shared subplans: join/filter fragments with *fixed* literals so that
    /// any two jobs embedding the same fragment are syntactically equal on
    /// it.
    fn build_shared_subplans(&self, catalog: &Catalog, rng: &mut StdRng) -> Vec<LogicalPlan> {
        (0..self.config.n_shared_subplans.max(1))
            .map(|_| {
                let tables = catalog.tables();
                let t1 = &tables[rng.gen_range(0..tables.len())];
                let col = rng.gen_range(0..t1.columns.len());
                let meta = &t1.columns[col];
                let lit = rng.gen_range(meta.min..=meta.max);
                let base =
                    LogicalPlan::scan(&t1.name).filter(Predicate::single(col, CmpOp::Le, lit));
                if rng.gen_bool(0.5) {
                    let t2 = &tables[rng.gen_range(0..tables.len())];
                    LogicalPlan::join(
                        base,
                        LogicalPlan::scan(&t2.name),
                        rng.gen_range(0..t1.columns.len()),
                        rng.gen_range(0..t2.columns.len()),
                    )
                } else {
                    base.aggregate(vec![rng.gen_range(0..t1.columns.len())])
                }
            })
            .collect()
    }

    fn build_templates(
        &self,
        catalog: &Catalog,
        shared_pool: &[LogicalPlan],
        rng: &mut StdRng,
    ) -> Vec<Template> {
        (0..self.config.n_templates)
            .map(|i| {
                let tables = catalog.tables();
                let t = &tables[rng.gen_range(0..tables.len())];
                let col = rng.gen_range(0..t.columns.len());
                let meta = &t.columns[col];
                let literal_range = (meta.min, meta.max);
                // The varying part joins the fact-side table against the
                // `users` dimension on the highest-NDV keys (keeping join
                // outputs realistic) and filters *above* the join — the
                // classic pushdown decision the rewrite optimizer faces and
                // rule-hint steering acts on. All four filter literals vary
                // per instance, over wide columns, so instances never
                // register as spurious subexpression sharing.
                let t2 = catalog.table("users").expect("standard catalog has users");
                let meta2 = &t2.columns[0]; // user_id: 10^6 distinct values
                let literal_range2 = (meta2.min, meta2.max);
                let key_l = (0..t.columns.len())
                    .max_by_key(|&c| t.columns[c].distinct)
                    .expect("tables have columns");
                let varying = LogicalPlan::join(
                    LogicalPlan::scan(&t.name),
                    LogicalPlan::scan(&t2.name).filter(Predicate::new(vec![
                        Comparison::new(0, CmpOp::Ge, meta2.min),
                        Comparison::new(0, CmpOp::Le, meta2.max),
                    ])),
                    key_l,
                    0,
                )
                .filter(Predicate::new(vec![
                    Comparison::new(col, CmpOp::Ge, meta.min),
                    Comparison::new(col, CmpOp::Le, meta.max),
                ]));
                let body = if rng.gen::<f64>() < self.config.shared_template_fraction {
                    let shared = shared_pool[rng.gen_range(0..shared_pool.len())].clone();
                    LogicalPlan::union(varying, shared)
                } else {
                    // Group by the two widest columns so the group-count cap
                    // exceeds the input and estimator error survives the
                    // aggregate.
                    let mut by_width: Vec<usize> = (0..t.columns.len()).collect();
                    by_width
                        .sort_by_key(|&c| std::cmp::Reverse(t.columns[c].max - t.columns[c].min));
                    by_width.truncate(2);
                    varying.aggregate(by_width)
                };
                // A distinguishing projection makes template signatures
                // unique even when two templates pick the same table/column.
                let width = t.columns.len();
                let cols = vec![
                    i % width,
                    (i / width) % width,
                    (i / (width * width)) % width,
                ];
                Template {
                    id: TemplateId(i as u64),
                    plan: body.project(cols),
                    literal_range,
                    literal_range2,
                }
            })
            .collect()
    }

    fn instantiate(&self, template: &Template, id: JobId, submit: u64, rng: &mut StdRng) -> Job {
        let (lo, hi) = template.literal_range;
        let (lo2, hi2) = template.literal_range2;
        // Re-draw only the varying branch's four leading literals; shared-
        // branch literals must stay fixed to keep the fragment syntactically
        // shared across jobs. Pre-order traversal visits the varying branch
        // (the left child) first: the top filter's clauses are literals 0
        // and 1, the join-inner filter's clauses are literals 2 and 3.
        let mut replaced = 0u8;
        let draw_lo = rng.gen_range(lo..=hi);
        let draw_hi = rng.gen_range(lo..=hi);
        let inner_lo = rng.gen_range(lo2..=hi2);
        let inner_hi = rng.gen_range(lo2..=hi2);
        let plan = template.plan.map_literals(&mut |old| match replaced {
            0 => {
                replaced = 1;
                draw_lo.min(draw_hi)
            }
            1 => {
                replaced = 2;
                draw_lo.max(draw_hi)
            }
            2 => {
                replaced = 3;
                inner_lo.min(inner_hi)
            }
            3 => {
                replaced = 4;
                inner_lo.max(inner_hi)
            }
            _ => old,
        });
        Job {
            id,
            template: template.id,
            plan,
            submit_time: submit,
            inputs: vec![],
            outputs: vec![],
        }
    }

    fn adhoc_job(
        &self,
        catalog: &mut Catalog,
        id: JobId,
        submit: u64,
        next_adhoc_table: &mut u64,
        rng: &mut StdRng,
    ) -> Job {
        // Ad-hoc jobs read a job-private staging table, so their template
        // signature is globally unique.
        let table_name = format!("adhoc_{next_adhoc_table}");
        *next_adhoc_table += 1;
        catalog.add_table(TableMeta {
            name: table_name.clone(),
            rows: rng.gen_range(10_000u64..10_000_000),
            columns: vec![
                ColumnMeta::uniform("key", 10_000, 0, 9_999),
                ColumnMeta::uniform("value", 1_000, 0, 999),
            ],
        });
        let plan = LogicalPlan::scan(&table_name)
            .filter(Predicate::single(0, CmpOp::Le, rng.gen_range(0i64..10_000)))
            .aggregate(vec![1]);
        Job {
            id,
            template: TemplateId(u64::MAX), // sentinel: not a recurring template
            plan,
            submit_time: submit,
            inputs: vec![],
            outputs: vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> GeneratorConfig {
        GeneratorConfig {
            days: 3,
            jobs_per_day: 100,
            n_templates: 20,
            ..Default::default()
        }
    }

    #[test]
    fn generates_requested_volume() {
        let w = WorkloadGenerator::new(small_config())
            .unwrap()
            .generate()
            .unwrap();
        assert_eq!(w.trace.len(), 300);
        // Every plan validates against the returned catalog.
        for job in w.trace.jobs() {
            job.plan.validate(&w.catalog).unwrap();
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = WorkloadGenerator::new(small_config())
            .unwrap()
            .generate()
            .unwrap();
        let b = WorkloadGenerator::new(small_config())
            .unwrap()
            .generate()
            .unwrap();
        assert_eq!(a.trace, b.trace);
        let c = WorkloadGenerator::new(GeneratorConfig {
            seed: 99,
            ..small_config()
        })
        .unwrap()
        .generate()
        .unwrap();
        assert_ne!(a.trace, c.trace);
    }

    #[test]
    fn recurring_share_near_target() {
        let w = WorkloadGenerator::new(GeneratorConfig::default())
            .unwrap()
            .generate()
            .unwrap();
        let share = w.recurring_jobs as f64 / w.trace.len() as f64;
        assert!((share - 0.65).abs() < 0.05, "recurring share {share}");
    }

    #[test]
    fn pipeline_share_near_target() {
        let w = WorkloadGenerator::new(GeneratorConfig::default())
            .unwrap()
            .generate()
            .unwrap();
        let share = w.pipelined_jobs as f64 / w.trace.len() as f64;
        // Chain packing can drop a trailing singleton per day, so allow slack below 0.7.
        assert!(share > 0.6 && share < 0.8, "pipeline share {share}");
    }

    #[test]
    fn pipeline_edges_resolve_within_trace() {
        let w = WorkloadGenerator::new(small_config())
            .unwrap()
            .generate()
            .unwrap();
        let produced: std::collections::HashSet<_> = w
            .trace
            .jobs()
            .iter()
            .flat_map(|j| j.outputs.iter().copied())
            .collect();
        for job in w.trace.jobs() {
            for input in &job.inputs {
                assert!(
                    produced.contains(input),
                    "dangling input {input} on {}",
                    job.id
                );
            }
        }
    }

    #[test]
    fn template_instances_share_template_signature() {
        let w = WorkloadGenerator::new(small_config())
            .unwrap()
            .generate()
            .unwrap();
        use std::collections::HashMap;
        let mut by_template: HashMap<TemplateId, Vec<crate::signature::Signature>> = HashMap::new();
        for job in w.trace.jobs() {
            if job.template != TemplateId(u64::MAX) {
                by_template
                    .entry(job.template)
                    .or_default()
                    .push(job.template_signature());
            }
        }
        for (tpl, sigs) in by_template {
            assert!(
                sigs.windows(2).all(|w| w[0] == w[1]),
                "template {tpl} instances disagree on template signature"
            );
        }
    }

    #[test]
    fn sql_jobs_share_template_text_within_a_template() {
        let w = WorkloadGenerator::new(small_config())
            .unwrap()
            .generate()
            .unwrap();
        let sql_jobs = w.sql_jobs().unwrap();
        assert_eq!(sql_jobs.len(), w.trace.len());
        use std::collections::HashMap;
        let mut text_by_template: HashMap<TemplateId, &str> = HashMap::new();
        for sj in &sql_jobs {
            if sj.template == TemplateId(u64::MAX) {
                continue;
            }
            let prev = text_by_template.entry(sj.template).or_insert(&sj.sql);
            assert_eq!(
                *prev, sj.sql,
                "template {} instances rendered different SQL",
                sj.template
            );
            // Recurring templates vary exactly four literals per instance,
            // but the shared-branch literals also become placeholders.
            assert!(sj.params.len() >= 4, "too few bindings: {:?}", sj.params);
        }
        let templates = w.sql_templates().unwrap();
        assert_eq!(templates.len(), text_by_template.len());
        for (id, sql) in &templates {
            assert_eq!(text_by_template[id], sql);
        }
        // Sorted by template id.
        assert!(templates.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn config_validation() {
        let bad = GeneratorConfig {
            recurring_fraction: 1.5,
            ..Default::default()
        };
        assert!(WorkloadGenerator::new(bad).is_err());
        let bad = GeneratorConfig {
            days: 0,
            ..Default::default()
        };
        assert!(WorkloadGenerator::new(bad).is_err());
        let bad = GeneratorConfig {
            n_templates: 0,
            ..Default::default()
        };
        assert!(WorkloadGenerator::new(bad).is_err());
    }
}
