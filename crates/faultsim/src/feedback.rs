//! Feedback-delivery delay: observations reach the monitor late.
//!
//! In production the `(prediction, actual)` pairs feeding
//! [`FeedbackLoop`](adas_core::feedback::FeedbackLoop) arrive through a
//! telemetry pipeline with its own lag; a drifting model therefore keeps
//! serving bad answers for a while before the monitor can react.
//! [`DelayedFeedback`] models that lag as a fixed-length FIFO queue:
//! `push` returns the observation that is `delay` submissions old (or
//! `None` while the pipe is still filling). Delay 0 is a transparent
//! pass-through, preserving the disabled-path-is-free property.

use std::collections::VecDeque;

/// A fixed-delay FIFO for `(prediction, actual)` observations.
#[derive(Debug, Clone, Default)]
pub struct DelayedFeedback {
    delay: usize,
    pipe: VecDeque<(f64, f64)>,
}

impl DelayedFeedback {
    /// Creates a queue delaying observations by `delay` submissions.
    pub fn new(delay: usize) -> Self {
        Self {
            delay,
            pipe: VecDeque::with_capacity(delay + 1),
        }
    }

    /// The configured delay.
    pub fn delay(&self) -> usize {
        self.delay
    }

    /// Submits one observation; returns the observation due for delivery,
    /// which lags the input by exactly `delay` submissions.
    pub fn push(&mut self, prediction: f64, actual: f64) -> Option<(f64, f64)> {
        if self.delay == 0 {
            return Some((prediction, actual));
        }
        self.pipe.push_back((prediction, actual));
        if self.pipe.len() > self.delay {
            self.pipe.pop_front()
        } else {
            None
        }
    }

    /// Delivers everything still in flight (e.g. at end of an epoch), in
    /// submission order. The queue is empty afterwards.
    pub fn drain(&mut self) -> Vec<(f64, f64)> {
        self.pipe.drain(..).collect()
    }

    /// Observations submitted but not yet delivered.
    pub fn in_flight(&self) -> usize {
        self.pipe.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_delay_is_pass_through() {
        let mut q = DelayedFeedback::new(0);
        assert_eq!(q.push(1.0, 2.0), Some((1.0, 2.0)));
        assert_eq!(q.in_flight(), 0);
    }

    #[test]
    fn delivery_lags_by_exactly_delay() {
        let mut q = DelayedFeedback::new(3);
        assert_eq!(q.push(1.0, 1.0), None);
        assert_eq!(q.push(2.0, 2.0), None);
        assert_eq!(q.push(3.0, 3.0), None);
        assert_eq!(q.push(4.0, 4.0), Some((1.0, 1.0)));
        assert_eq!(q.push(5.0, 5.0), Some((2.0, 2.0)));
        assert_eq!(q.in_flight(), 3);
    }

    #[test]
    fn drain_flushes_in_order() {
        let mut q = DelayedFeedback::new(2);
        q.push(1.0, 1.0);
        q.push(2.0, 2.0);
        assert_eq!(q.drain(), vec![(1.0, 1.0), (2.0, 2.0)]);
        assert_eq!(q.in_flight(), 0);
    }
}
