//! Driving a [`FaultSchedule`] through the cluster simulator.
//!
//! [`ChaosRunner`] replays a job's [`StageDag`](adas_engine::physical::StageDag)
//! under a schedule of crashes and machine losses, restarting after each
//! fault with exactly the outputs that genuinely survive: checkpointed
//! stages always, temp outputs only when their machine is intact. The
//! runner never panics on any schedule — indices and fractions are
//! clamped, and a fault that cannot fire (temp exhaustion below capacity)
//! is simply skipped.

use crate::schedule::{FaultEvent, FaultSchedule};
use adas_engine::exec::{ClusterConfig, ExecReport, SimOptions, Simulator};
use adas_engine::physical::{StageDag, StageId};
use adas_engine::Result;
use adas_obs::Obs;
use adas_simkern::{Component, Ctx, Simulation};
use serde::Serialize;
use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

/// The resolved cause of one aborted attempt. Unlike the scheduled
/// [`FaultEvent`], this records what *actually* struck: a temp-exhaustion
/// event resolves to the hotspot machine it took down, and machine indices
/// are the clamped, in-range values the runner used.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum FaultCause {
    /// The job's tasks crashed mid-run.
    TaskCrash,
    /// A specific machine died, losing its temp outputs.
    MachineLoss {
        /// The (clamped) machine that died.
        machine: usize,
    },
    /// Local temp filled past capacity; the hotspot machine was lost.
    TempExhaustion {
        /// The hotspot machine taken out of service.
        hotspot: usize,
    },
}

impl FaultCause {
    /// Stable kind name for metrics labels and trace events.
    pub fn kind(&self) -> &'static str {
        match self {
            FaultCause::TaskCrash => "task_crash",
            FaultCause::MachineLoss { .. } => "machine_loss",
            FaultCause::TempExhaustion { .. } => "temp_exhaustion",
        }
    }
}

/// One aborted attempt: which run failed, why, and what survived. Earlier
/// versions of the runner swallowed the per-attempt cause entirely — the
/// chaos suite now asserts it is surfaced.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct AttemptFailure {
    /// 1-based index of the aborted attempt.
    pub attempt: usize,
    /// What struck.
    pub cause: FaultCause,
    /// Latency/stage fraction of the attempt at which it struck.
    pub at: f64,
    /// Stages whose outputs survived into the next attempt.
    pub surviving_stages: usize,
}

/// The outcome of one chaos run: the final successful report plus the
/// fault-handling bookkeeping the chaos suite asserts on.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ChaosOutcome {
    /// Report of the final (successful) attempt.
    pub final_report: ExecReport,
    /// Runs started, including the successful one (= faults fired + 1).
    pub attempts: usize,
    /// Faults that actually fired (a temp-exhaustion event below capacity
    /// does not fire).
    pub injected: usize,
    /// Checkpointed stages that completed before a fault and were executed
    /// again afterwards. Structurally zero: persisted checkpoints feed the
    /// restart's precomputed set, which is what the chaos suite proves.
    pub recomputed_checkpointed: usize,
    /// Wall-clock across all attempts: each aborted run contributes the
    /// latency fraction it reached, the final run its full latency.
    pub total_latency: f64,
    /// Per-attempt failure causes, in firing order (one entry per injected
    /// fault).
    pub attempt_failures: Vec<AttemptFailure>,
}

/// Replays jobs through [`Simulator`] under fault schedules.
#[derive(Debug, Clone)]
pub struct ChaosRunner {
    sim: Simulator,
    machines: usize,
    temp_capacity: f64,
    obs: Obs,
}

impl ChaosRunner {
    /// Creates a runner over a cluster. `temp_capacity_bytes` is the local
    /// temp capacity a [`FaultEvent::TempExhaustion`] tests against
    /// (`f64::INFINITY` means exhaustion never fires). Observability is
    /// disabled; see [`ChaosRunner::with_obs`].
    pub fn new(cluster: ClusterConfig, temp_capacity_bytes: f64) -> Result<Self> {
        Self::with_obs(cluster, temp_capacity_bytes, Obs::disabled())
    }

    /// Creates a runner whose fault injections and final-run execution spans
    /// land in the same trace: the runner emits `fault_injected` events and
    /// restart counters into `obs`, and hands the same handle to the inner
    /// [`Simulator`] so the consequences (per-stage spans, restart counters)
    /// are correlated with their causes.
    pub fn with_obs(cluster: ClusterConfig, temp_capacity_bytes: f64, obs: Obs) -> Result<Self> {
        Ok(Self {
            sim: Simulator::with_obs(cluster, obs.clone())?,
            machines: cluster.machines,
            temp_capacity: temp_capacity_bytes,
            obs,
        })
    }

    /// The underlying simulator (for fault-free baselines).
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// Streams this runner's flight record as chunked canonical JSON (see
    /// [`Obs::export_stream`]): a long chaos campaign can ship its trace
    /// without ever materializing the full export string.
    pub fn export_trace_stream(&self, chunk_size: usize, sink: impl FnMut(&str)) {
        self.obs.export_stream(chunk_size, sink);
    }

    /// Resolves what a scheduled fault does to the attempt described by
    /// `report`/`placement`: the surviving stage outputs and the concrete
    /// [`FaultCause`], or `None` when the fault cannot fire (temp
    /// exhaustion below capacity). Shared verbatim by the kernel-backed
    /// [`ChaosRunner::run_job`] and [`ChaosRunner::run_job_legacy`].
    #[allow(clippy::too_many_arguments)]
    fn resolve_fault(
        &self,
        dag: &StageDag,
        checkpointed: &HashSet<StageId>,
        precomputed: &HashSet<StageId>,
        report: &ExecReport,
        placement: &[Vec<usize>],
        event: FaultEvent,
        at: f64,
    ) -> Option<(HashSet<StageId>, FaultCause)> {
        match event {
            FaultEvent::TaskCrash { .. } => {
                // The job dies after `at` of its stages (by finish
                // order) completed; only globally-stored outputs
                // (checkpointed or already precomputed) survive.
                let mut order: Vec<usize> = (0..dag.len()).collect();
                order.sort_by(|&a, &b| {
                    report.stage_finish[a]
                        .partial_cmp(&report.stage_finish[b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                let completed = ((dag.len() as f64) * at).floor() as usize;
                Some((
                    order[..completed.min(dag.len())]
                        .iter()
                        .map(|&i| StageId(i))
                        .filter(|id| checkpointed.contains(id) || precomputed.contains(id))
                        .collect(),
                    FaultCause::TaskCrash,
                ))
            }
            FaultEvent::MachineLoss { machine, .. } => {
                let clamped = machine.min(self.machines.saturating_sub(1));
                Some((
                    self.machine_loss_survivors(
                        dag,
                        checkpointed,
                        precomputed,
                        report,
                        placement,
                        clamped,
                        at,
                    ),
                    FaultCause::MachineLoss { machine: clamped },
                ))
            }
            FaultEvent::TempExhaustion { .. } => {
                if report.hotspot_peak() > self.temp_capacity {
                    // The hotspot machine spills past capacity and is
                    // taken out of service.
                    let hotspot = report
                        .machine_temp_peak
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                        .map(|(m, _)| m)
                        .unwrap_or(0);
                    Some((
                        self.machine_loss_survivors(
                            dag,
                            checkpointed,
                            precomputed,
                            report,
                            placement,
                            hotspot,
                            at,
                        ),
                        FaultCause::TempExhaustion { hotspot },
                    ))
                } else {
                    None
                }
            }
        }
    }

    /// Runs `dag` to completion under `schedule`, restarting after every
    /// fault that fires. Checkpointed outputs persist in the global store
    /// and are never executed twice; non-checkpointed temp outputs survive
    /// a machine loss only when they avoided the dead machine.
    ///
    /// The fault schedule is replayed as `simkern` events: each strike is
    /// an event whose fire time is the accumulated wall-clock at which it
    /// lands, so the kernel clock *is* the `total_latency` accumulator.
    /// Reports, outcomes and recorded traces are bit-for-bit those of
    /// [`ChaosRunner::run_job_legacy`].
    pub fn run_job(
        &self,
        dag: &StageDag,
        checkpointed: &HashSet<StageId>,
        schedule: &FaultSchedule,
    ) -> Result<ChaosOutcome> {
        let job_span = self.obs.span_enter("faultsim.chaos", "run_job", 0.0);
        if schedule.events.is_empty() {
            // No scheduled faults means no kernel events to replay: the
            // drill is exactly one clean attempt at clock zero. Taking it
            // directly skips the per-job simulation setup (dag/checkpoint
            // clones, event queue) that the disabled-path budget would
            // otherwise pay for. Bit-identical to the event-driven path
            // below — with an empty schedule `Attempt(0)` goes straight to
            // the final run — and therefore to `run_job_legacy` too.
            let options = SimOptions {
                checkpointed: checkpointed.clone(),
                precomputed: HashSet::new(),
            };
            let final_report = self.sim.run(dag, &options)?;
            let total_latency = final_report.latency;
            self.obs.span_exit(job_span, total_latency);
            return Ok(ChaosOutcome {
                final_report,
                attempts: 1,
                injected: 0,
                recomputed_checkpointed: 0,
                total_latency,
                attempt_failures: Vec::new(),
            });
        }
        let drill = Rc::new(RefCell::new(ChaosSim {
            runner: self.clone(),
            dag: dag.clone(),
            checkpointed: checkpointed.clone(),
            events: schedule.events.clone(),
            precomputed: HashSet::new(),
            persisted: HashSet::new(),
            attempts: 0,
            injected: 0,
            recomputed_checkpointed: 0,
            attempt_failures: Vec::new(),
            final_report: None,
            total_latency: 0.0,
            error: None,
        }));
        let mut sim = Simulation::new(0);
        let id = sim.add_component(drill.clone());
        sim.schedule(0.0, id, ChaosEvent::Attempt(0));
        sim.run();
        drop(sim);
        let state = Rc::try_unwrap(drill)
            .unwrap_or_else(|_| unreachable!("simulation still holds the component"))
            .into_inner();
        if let Some(err) = state.error {
            return Err(err);
        }
        self.obs.span_exit(job_span, state.total_latency);
        Ok(ChaosOutcome {
            final_report: state.final_report.expect("final attempt ran"),
            attempts: state.attempts,
            injected: state.injected,
            recomputed_checkpointed: state.recomputed_checkpointed,
            total_latency: state.total_latency,
            attempt_failures: state.attempt_failures,
        })
    }

    /// The pre-simkern drill: a blocking loop that re-runs the simulator
    /// per scheduled fault and accumulates `total_latency` by hand. Kept as
    /// the reference implementation the equivalence suite pins
    /// [`ChaosRunner::run_job`] bit-for-bit against.
    pub fn run_job_legacy(
        &self,
        dag: &StageDag,
        checkpointed: &HashSet<StageId>,
        schedule: &FaultSchedule,
    ) -> Result<ChaosOutcome> {
        let mut precomputed: HashSet<StageId> = HashSet::new();
        // Checkpointed stages whose output is known to be persisted; if a
        // later attempt executes one of these, that's a recomputation bug.
        let mut persisted: HashSet<StageId> = HashSet::new();
        let mut attempts = 0usize;
        let mut injected = 0usize;
        let mut recomputed_checkpointed = 0usize;
        let mut total_latency = 0.0f64;
        let mut attempt_failures: Vec<AttemptFailure> = Vec::new();
        let job_span = self.obs.span_enter("faultsim.chaos", "run_job", 0.0);

        for event in &schedule.events {
            let options = SimOptions {
                checkpointed: checkpointed.clone(),
                precomputed: precomputed.clone(),
            };
            let (report, placement) = self.sim.run_with_placement(dag, &options)?;
            recomputed_checkpointed += persisted.iter().filter(|id| report.executed[id.0]).count();

            let at = event.strike_fraction().clamp(0.0, 1.0);
            let survivors = self.resolve_fault(
                dag,
                checkpointed,
                &precomputed,
                &report,
                &placement,
                *event,
                at,
            );

            if let Some((survivors, cause)) = survivors {
                injected += 1;
                attempts += 1;
                total_latency += report.latency * at;
                attempt_failures.push(AttemptFailure {
                    attempt: attempts,
                    cause,
                    at,
                    surviving_stages: survivors.len(),
                });
                // One lock for the injection triple; the enclosing loop runs
                // the simulator (which records through the same handle), so
                // the batch stays scoped to this block.
                let mut batch = self.obs.batch();
                batch.event(
                    "faultsim.chaos",
                    "fault_injected",
                    total_latency,
                    &[
                        ("kind", cause.kind()),
                        ("attempt", &attempts.to_string()),
                        ("at", &format!("{at:.6}")),
                        ("surviving_stages", &survivors.len().to_string()),
                    ],
                );
                batch.counter_add(
                    "faultsim.chaos",
                    "faults_injected",
                    &[("kind", cause.kind())],
                    1,
                );
                batch.counter_add("faultsim.chaos", "restarts", &[], 1);
                drop(batch);
                persisted.extend(survivors.iter().filter(|id| checkpointed.contains(*id)));
                precomputed.extend(survivors);
            }
        }

        let options = SimOptions {
            checkpointed: checkpointed.clone(),
            precomputed,
        };
        // The final (successful) run goes through `Simulator::run` so its
        // per-stage spans land in the same trace as the fault events above.
        let final_report = self.sim.run(dag, &options)?;
        recomputed_checkpointed += persisted
            .iter()
            .filter(|id| final_report.executed[id.0])
            .count();
        total_latency += final_report.latency;
        attempts += 1;
        self.obs.span_exit(job_span, total_latency);

        Ok(ChaosOutcome {
            final_report,
            attempts,
            injected,
            recomputed_checkpointed,
            total_latency,
            attempt_failures,
        })
    }

    /// Survivors of losing `machine` at latency fraction `at`: stages that
    /// finished in time AND whose output is either globally stored or held
    /// entirely off the dead machine. The index is clamped so arbitrary
    /// schedules cannot panic.
    #[allow(clippy::too_many_arguments)]
    fn machine_loss_survivors(
        &self,
        dag: &StageDag,
        checkpointed: &HashSet<StageId>,
        precomputed: &HashSet<StageId>,
        report: &ExecReport,
        placement: &[Vec<usize>],
        machine: usize,
        at: f64,
    ) -> HashSet<StageId> {
        let machine = machine.min(self.machines.saturating_sub(1));
        let failure_time = report.latency * at;
        dag.stages()
            .iter()
            .filter(|s| report.stage_finish[s.id.0] <= failure_time)
            .filter(|s| {
                checkpointed.contains(&s.id)
                    || precomputed.contains(&s.id)
                    || !placement[s.id.0].contains(&machine)
            })
            .map(|s| s.id)
            .collect()
    }
}

/// The chaos drill as simulation events: `Attempt(k)` fires at the
/// accumulated wall-clock at which attempt `k` begins.
enum ChaosEvent {
    /// Start attempt `k`: run the simulator, resolve scheduled fault `k`
    /// (or, past the end of the schedule, the final successful run).
    Attempt(usize),
}

/// Component state for one [`ChaosRunner::run_job`] drill. Owns clones of
/// the inputs so the component satisfies the kernel's `'static` bound; the
/// runner clone shares the same `Obs` handle, so everything it records
/// lands in the caller's trace.
struct ChaosSim {
    runner: ChaosRunner,
    dag: StageDag,
    checkpointed: HashSet<StageId>,
    events: Vec<FaultEvent>,
    precomputed: HashSet<StageId>,
    persisted: HashSet<StageId>,
    attempts: usize,
    injected: usize,
    recomputed_checkpointed: usize,
    attempt_failures: Vec<AttemptFailure>,
    final_report: Option<ExecReport>,
    total_latency: f64,
    error: Option<adas_engine::EngineError>,
}

impl ChaosSim {
    /// Runs scheduled fault `k` against a fresh attempt. Returns the next
    /// event to emit: the following strike at the accumulated latency, or
    /// at the unchanged clock when the fault could not fire.
    fn strike(&mut self, k: usize, now: f64) -> Option<(ChaosEvent, f64)> {
        let options = SimOptions {
            checkpointed: self.checkpointed.clone(),
            precomputed: self.precomputed.clone(),
        };
        let (report, placement) = match self.runner.sim.run_with_placement(&self.dag, &options) {
            Ok(r) => r,
            Err(e) => {
                self.error = Some(e);
                return None;
            }
        };
        self.recomputed_checkpointed += self
            .persisted
            .iter()
            .filter(|id| report.executed[id.0])
            .count();

        let event = self.events[k];
        let at = event.strike_fraction().clamp(0.0, 1.0);
        let survivors = self.runner.resolve_fault(
            &self.dag,
            &self.checkpointed,
            &self.precomputed,
            &report,
            &placement,
            event,
            at,
        );

        let Some((survivors, cause)) = survivors else {
            // Fault could not fire: no latency accrues, next strike lands
            // at the same instant.
            return Some((ChaosEvent::Attempt(k + 1), now));
        };
        self.injected += 1;
        self.attempts += 1;
        // The kernel clock is the `total_latency` accumulator: this strike
        // lands at `now + latency·at`, exactly the legacy left-to-right sum.
        let strike_time = now + report.latency * at;
        self.attempt_failures.push(AttemptFailure {
            attempt: self.attempts,
            cause,
            at,
            surviving_stages: survivors.len(),
        });
        // One lock for the injection triple; `run_with_placement` above
        // records through the same handle, so the batch stays scoped here.
        let mut batch = self.runner.obs.batch();
        batch.event(
            "faultsim.chaos",
            "fault_injected",
            strike_time,
            &[
                ("kind", cause.kind()),
                ("attempt", &self.attempts.to_string()),
                ("at", &format!("{at:.6}")),
                ("surviving_stages", &survivors.len().to_string()),
            ],
        );
        batch.counter_add(
            "faultsim.chaos",
            "faults_injected",
            &[("kind", cause.kind())],
            1,
        );
        batch.counter_add("faultsim.chaos", "restarts", &[], 1);
        drop(batch);
        self.persisted.extend(
            survivors
                .iter()
                .filter(|id| self.checkpointed.contains(*id)),
        );
        self.precomputed.extend(survivors);
        Some((ChaosEvent::Attempt(k + 1), strike_time))
    }

    /// The final (successful) run, at the accumulated clock.
    fn finish(&mut self, now: f64) {
        let options = SimOptions {
            checkpointed: self.checkpointed.clone(),
            precomputed: std::mem::take(&mut self.precomputed),
        };
        // Goes through `Simulator::run` so its per-stage spans land in the
        // same trace as the fault events above.
        let final_report = match self.runner.sim.run(&self.dag, &options) {
            Ok(r) => r,
            Err(e) => {
                self.error = Some(e);
                return;
            }
        };
        self.recomputed_checkpointed += self
            .persisted
            .iter()
            .filter(|id| final_report.executed[id.0])
            .count();
        self.total_latency = now + final_report.latency;
        self.attempts += 1;
        self.final_report = Some(final_report);
    }
}

impl Component<ChaosEvent> for ChaosSim {
    fn on_event(&mut self, event: &ChaosEvent, ctx: &mut Ctx<'_, ChaosEvent>) {
        let ChaosEvent::Attempt(k) = *event;
        if self.error.is_some() {
            return;
        }
        if k < self.events.len() {
            if let Some((next, time)) = self.strike(k, ctx.time()) {
                ctx.emit_self_at(next, time);
            }
        } else {
            self.finish(ctx.time());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adas_engine::cost::CostModel;
    use adas_workload::catalog::Catalog;
    use adas_workload::plan::{CmpOp, LogicalPlan, Predicate};

    fn dag() -> StageDag {
        let plan = LogicalPlan::join(
            LogicalPlan::scan("events").filter(Predicate::single(2, CmpOp::Le, 300)),
            LogicalPlan::scan("users"),
            0,
            0,
        )
        .aggregate(vec![1]);
        StageDag::compile(&plan, &Catalog::standard(), &CostModel::default()).unwrap()
    }

    fn runner() -> ChaosRunner {
        ChaosRunner::new(ClusterConfig::default(), f64::INFINITY).unwrap()
    }

    #[test]
    fn empty_schedule_matches_plain_run() {
        let dag = dag();
        let r = runner();
        let outcome = r
            .run_job(&dag, &HashSet::new(), &FaultSchedule::none())
            .unwrap();
        let plain = r.simulator().run(&dag, &SimOptions::default()).unwrap();
        assert_eq!(outcome.final_report, plain);
        assert_eq!(outcome.attempts, 1);
        assert_eq!(outcome.injected, 0);
        assert!((outcome.total_latency - plain.latency).abs() < 1e-9);
    }

    #[test]
    fn task_crash_restarts_and_checkpoints_survive() {
        let dag = dag();
        let r = runner();
        let all: HashSet<StageId> = dag.stages().iter().map(|s| s.id).collect();
        let schedule = FaultSchedule {
            events: vec![FaultEvent::TaskCrash { at: 0.8 }],
        };
        let ckpt = r.run_job(&dag, &all, &schedule).unwrap();
        let bare = r.run_job(&dag, &HashSet::new(), &schedule).unwrap();
        assert_eq!(ckpt.attempts, 2);
        assert_eq!(ckpt.recomputed_checkpointed, 0);
        assert!(ckpt.total_latency <= bare.total_latency + 1e-9);
    }

    #[test]
    fn out_of_range_machine_is_clamped_not_fatal() {
        let dag = dag();
        let r = runner();
        let schedule = FaultSchedule {
            events: vec![FaultEvent::MachineLoss {
                machine: usize::MAX,
                at: 2.5,
            }],
        };
        let outcome = r.run_job(&dag, &HashSet::new(), &schedule).unwrap();
        assert_eq!(outcome.attempts, 2);
    }

    #[test]
    fn kernel_drill_matches_legacy_bit_for_bit() {
        let dag = dag();
        let r = ChaosRunner::new(ClusterConfig::default(), 1.0).unwrap();
        let ckpt: HashSet<StageId> = dag
            .stages()
            .iter()
            .map(|s| s.id)
            .filter(|id| id.0 % 2 == 0)
            .collect();
        let schedule = FaultSchedule {
            events: vec![
                FaultEvent::TaskCrash { at: 0.6 },
                FaultEvent::TempExhaustion { at: 0.4 },
                FaultEvent::MachineLoss {
                    machine: 1,
                    at: 0.9,
                },
            ],
        };
        let kernel = r.run_job(&dag, &ckpt, &schedule).unwrap();
        let legacy = r.run_job_legacy(&dag, &ckpt, &schedule).unwrap();
        assert_eq!(kernel.final_report, legacy.final_report);
        assert_eq!(kernel.attempts, legacy.attempts);
        assert_eq!(kernel.injected, legacy.injected);
        assert_eq!(
            kernel.recomputed_checkpointed,
            legacy.recomputed_checkpointed
        );
        assert_eq!(
            kernel.total_latency.to_bits(),
            legacy.total_latency.to_bits()
        );
        assert_eq!(kernel.attempt_failures, legacy.attempt_failures);
    }

    #[test]
    fn temp_exhaustion_fires_only_past_capacity() {
        let dag = dag();
        let schedule = FaultSchedule {
            events: vec![FaultEvent::TempExhaustion { at: 0.9 }],
        };
        let roomy = ChaosRunner::new(ClusterConfig::default(), f64::INFINITY).unwrap();
        assert_eq!(
            roomy
                .run_job(&dag, &HashSet::new(), &schedule)
                .unwrap()
                .injected,
            0
        );
        let cramped = ChaosRunner::new(ClusterConfig::default(), 1.0).unwrap();
        assert_eq!(
            cramped
                .run_job(&dag, &HashSet::new(), &schedule)
                .unwrap()
                .injected,
            1
        );
    }
}
