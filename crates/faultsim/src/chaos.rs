//! Driving a [`FaultSchedule`] through the cluster simulator.
//!
//! [`ChaosRunner`] replays a job's [`StageDag`](adas_engine::physical::StageDag)
//! under a schedule of crashes and machine losses, restarting after each
//! fault with exactly the outputs that genuinely survive: checkpointed
//! stages always, temp outputs only when their machine is intact. The
//! runner never panics on any schedule — indices and fractions are
//! clamped, and a fault that cannot fire (temp exhaustion below capacity)
//! is simply skipped.

use crate::schedule::{FaultEvent, FaultSchedule};
use adas_engine::exec::{ClusterConfig, ExecReport, SimOptions, Simulator};
use adas_engine::physical::{StageDag, StageId};
use adas_engine::Result;
use adas_obs::Obs;
use serde::Serialize;
use std::collections::HashSet;

/// The resolved cause of one aborted attempt. Unlike the scheduled
/// [`FaultEvent`], this records what *actually* struck: a temp-exhaustion
/// event resolves to the hotspot machine it took down, and machine indices
/// are the clamped, in-range values the runner used.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum FaultCause {
    /// The job's tasks crashed mid-run.
    TaskCrash,
    /// A specific machine died, losing its temp outputs.
    MachineLoss {
        /// The (clamped) machine that died.
        machine: usize,
    },
    /// Local temp filled past capacity; the hotspot machine was lost.
    TempExhaustion {
        /// The hotspot machine taken out of service.
        hotspot: usize,
    },
}

impl FaultCause {
    /// Stable kind name for metrics labels and trace events.
    pub fn kind(&self) -> &'static str {
        match self {
            FaultCause::TaskCrash => "task_crash",
            FaultCause::MachineLoss { .. } => "machine_loss",
            FaultCause::TempExhaustion { .. } => "temp_exhaustion",
        }
    }
}

/// One aborted attempt: which run failed, why, and what survived. Earlier
/// versions of the runner swallowed the per-attempt cause entirely — the
/// chaos suite now asserts it is surfaced.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct AttemptFailure {
    /// 1-based index of the aborted attempt.
    pub attempt: usize,
    /// What struck.
    pub cause: FaultCause,
    /// Latency/stage fraction of the attempt at which it struck.
    pub at: f64,
    /// Stages whose outputs survived into the next attempt.
    pub surviving_stages: usize,
}

/// The outcome of one chaos run: the final successful report plus the
/// fault-handling bookkeeping the chaos suite asserts on.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ChaosOutcome {
    /// Report of the final (successful) attempt.
    pub final_report: ExecReport,
    /// Runs started, including the successful one (= faults fired + 1).
    pub attempts: usize,
    /// Faults that actually fired (a temp-exhaustion event below capacity
    /// does not fire).
    pub injected: usize,
    /// Checkpointed stages that completed before a fault and were executed
    /// again afterwards. Structurally zero: persisted checkpoints feed the
    /// restart's precomputed set, which is what the chaos suite proves.
    pub recomputed_checkpointed: usize,
    /// Wall-clock across all attempts: each aborted run contributes the
    /// latency fraction it reached, the final run its full latency.
    pub total_latency: f64,
    /// Per-attempt failure causes, in firing order (one entry per injected
    /// fault).
    pub attempt_failures: Vec<AttemptFailure>,
}

/// Replays jobs through [`Simulator`] under fault schedules.
#[derive(Debug, Clone)]
pub struct ChaosRunner {
    sim: Simulator,
    machines: usize,
    temp_capacity: f64,
    obs: Obs,
}

impl ChaosRunner {
    /// Creates a runner over a cluster. `temp_capacity_bytes` is the local
    /// temp capacity a [`FaultEvent::TempExhaustion`] tests against
    /// (`f64::INFINITY` means exhaustion never fires). Observability is
    /// disabled; see [`ChaosRunner::with_obs`].
    pub fn new(cluster: ClusterConfig, temp_capacity_bytes: f64) -> Result<Self> {
        Self::with_obs(cluster, temp_capacity_bytes, Obs::disabled())
    }

    /// Creates a runner whose fault injections and final-run execution spans
    /// land in the same trace: the runner emits `fault_injected` events and
    /// restart counters into `obs`, and hands the same handle to the inner
    /// [`Simulator`] so the consequences (per-stage spans, restart counters)
    /// are correlated with their causes.
    pub fn with_obs(cluster: ClusterConfig, temp_capacity_bytes: f64, obs: Obs) -> Result<Self> {
        Ok(Self {
            sim: Simulator::with_obs(cluster, obs.clone())?,
            machines: cluster.machines,
            temp_capacity: temp_capacity_bytes,
            obs,
        })
    }

    /// The underlying simulator (for fault-free baselines).
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// Streams this runner's flight record as chunked canonical JSON (see
    /// [`Obs::export_stream`]): a long chaos campaign can ship its trace
    /// without ever materializing the full export string.
    pub fn export_trace_stream(&self, chunk_size: usize, sink: impl FnMut(&str)) {
        self.obs.export_stream(chunk_size, sink);
    }

    /// Runs `dag` to completion under `schedule`, restarting after every
    /// fault that fires. Checkpointed outputs persist in the global store
    /// and are never executed twice; non-checkpointed temp outputs survive
    /// a machine loss only when they avoided the dead machine.
    pub fn run_job(
        &self,
        dag: &StageDag,
        checkpointed: &HashSet<StageId>,
        schedule: &FaultSchedule,
    ) -> Result<ChaosOutcome> {
        let mut precomputed: HashSet<StageId> = HashSet::new();
        // Checkpointed stages whose output is known to be persisted; if a
        // later attempt executes one of these, that's a recomputation bug.
        let mut persisted: HashSet<StageId> = HashSet::new();
        let mut attempts = 0usize;
        let mut injected = 0usize;
        let mut recomputed_checkpointed = 0usize;
        let mut total_latency = 0.0f64;
        let mut attempt_failures: Vec<AttemptFailure> = Vec::new();
        let job_span = self.obs.span_enter("faultsim.chaos", "run_job", 0.0);

        for event in &schedule.events {
            let options = SimOptions {
                checkpointed: checkpointed.clone(),
                precomputed: precomputed.clone(),
            };
            let (report, placement) = self.sim.run_with_placement(dag, &options)?;
            recomputed_checkpointed += persisted.iter().filter(|id| report.executed[id.0]).count();

            let at = event.strike_fraction().clamp(0.0, 1.0);
            let survivors: Option<(HashSet<StageId>, FaultCause)> = match *event {
                FaultEvent::TaskCrash { .. } => {
                    // The job dies after `at` of its stages (by finish
                    // order) completed; only globally-stored outputs
                    // (checkpointed or already precomputed) survive.
                    let mut order: Vec<usize> = (0..dag.len()).collect();
                    order.sort_by(|&a, &b| {
                        report.stage_finish[a]
                            .partial_cmp(&report.stage_finish[b])
                            .unwrap_or(std::cmp::Ordering::Equal)
                    });
                    let completed = ((dag.len() as f64) * at).floor() as usize;
                    Some((
                        order[..completed.min(dag.len())]
                            .iter()
                            .map(|&i| StageId(i))
                            .filter(|id| checkpointed.contains(id) || precomputed.contains(id))
                            .collect(),
                        FaultCause::TaskCrash,
                    ))
                }
                FaultEvent::MachineLoss { machine, .. } => {
                    let clamped = machine.min(self.machines.saturating_sub(1));
                    Some((
                        self.machine_loss_survivors(
                            dag,
                            checkpointed,
                            &precomputed,
                            &report,
                            &placement,
                            clamped,
                            at,
                        ),
                        FaultCause::MachineLoss { machine: clamped },
                    ))
                }
                FaultEvent::TempExhaustion { .. } => {
                    if report.hotspot_peak() > self.temp_capacity {
                        // The hotspot machine spills past capacity and is
                        // taken out of service.
                        let hotspot = report
                            .machine_temp_peak
                            .iter()
                            .enumerate()
                            .max_by(|a, b| {
                                a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal)
                            })
                            .map(|(m, _)| m)
                            .unwrap_or(0);
                        Some((
                            self.machine_loss_survivors(
                                dag,
                                checkpointed,
                                &precomputed,
                                &report,
                                &placement,
                                hotspot,
                                at,
                            ),
                            FaultCause::TempExhaustion { hotspot },
                        ))
                    } else {
                        None
                    }
                }
            };

            if let Some((survivors, cause)) = survivors {
                injected += 1;
                attempts += 1;
                total_latency += report.latency * at;
                attempt_failures.push(AttemptFailure {
                    attempt: attempts,
                    cause,
                    at,
                    surviving_stages: survivors.len(),
                });
                // One lock for the injection triple; the enclosing loop runs
                // the simulator (which records through the same handle), so
                // the batch stays scoped to this block.
                let mut batch = self.obs.batch();
                batch.event(
                    "faultsim.chaos",
                    "fault_injected",
                    total_latency,
                    &[
                        ("kind", cause.kind()),
                        ("attempt", &attempts.to_string()),
                        ("at", &format!("{at:.6}")),
                        ("surviving_stages", &survivors.len().to_string()),
                    ],
                );
                batch.counter_add(
                    "faultsim.chaos",
                    "faults_injected",
                    &[("kind", cause.kind())],
                    1,
                );
                batch.counter_add("faultsim.chaos", "restarts", &[], 1);
                drop(batch);
                persisted.extend(survivors.iter().filter(|id| checkpointed.contains(*id)));
                precomputed.extend(survivors);
            }
        }

        let options = SimOptions {
            checkpointed: checkpointed.clone(),
            precomputed,
        };
        // The final (successful) run goes through `Simulator::run` so its
        // per-stage spans land in the same trace as the fault events above.
        let final_report = self.sim.run(dag, &options)?;
        recomputed_checkpointed += persisted
            .iter()
            .filter(|id| final_report.executed[id.0])
            .count();
        total_latency += final_report.latency;
        attempts += 1;
        self.obs.span_exit(job_span, total_latency);

        Ok(ChaosOutcome {
            final_report,
            attempts,
            injected,
            recomputed_checkpointed,
            total_latency,
            attempt_failures,
        })
    }

    /// Survivors of losing `machine` at latency fraction `at`: stages that
    /// finished in time AND whose output is either globally stored or held
    /// entirely off the dead machine. The index is clamped so arbitrary
    /// schedules cannot panic.
    #[allow(clippy::too_many_arguments)]
    fn machine_loss_survivors(
        &self,
        dag: &StageDag,
        checkpointed: &HashSet<StageId>,
        precomputed: &HashSet<StageId>,
        report: &ExecReport,
        placement: &[Vec<usize>],
        machine: usize,
        at: f64,
    ) -> HashSet<StageId> {
        let machine = machine.min(self.machines.saturating_sub(1));
        let failure_time = report.latency * at;
        dag.stages()
            .iter()
            .filter(|s| report.stage_finish[s.id.0] <= failure_time)
            .filter(|s| {
                checkpointed.contains(&s.id)
                    || precomputed.contains(&s.id)
                    || !placement[s.id.0].contains(&machine)
            })
            .map(|s| s.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adas_engine::cost::CostModel;
    use adas_workload::catalog::Catalog;
    use adas_workload::plan::{CmpOp, LogicalPlan, Predicate};

    fn dag() -> StageDag {
        let plan = LogicalPlan::join(
            LogicalPlan::scan("events").filter(Predicate::single(2, CmpOp::Le, 300)),
            LogicalPlan::scan("users"),
            0,
            0,
        )
        .aggregate(vec![1]);
        StageDag::compile(&plan, &Catalog::standard(), &CostModel::default()).unwrap()
    }

    fn runner() -> ChaosRunner {
        ChaosRunner::new(ClusterConfig::default(), f64::INFINITY).unwrap()
    }

    #[test]
    fn empty_schedule_matches_plain_run() {
        let dag = dag();
        let r = runner();
        let outcome = r
            .run_job(&dag, &HashSet::new(), &FaultSchedule::none())
            .unwrap();
        let plain = r.simulator().run(&dag, &SimOptions::default()).unwrap();
        assert_eq!(outcome.final_report, plain);
        assert_eq!(outcome.attempts, 1);
        assert_eq!(outcome.injected, 0);
        assert!((outcome.total_latency - plain.latency).abs() < 1e-9);
    }

    #[test]
    fn task_crash_restarts_and_checkpoints_survive() {
        let dag = dag();
        let r = runner();
        let all: HashSet<StageId> = dag.stages().iter().map(|s| s.id).collect();
        let schedule = FaultSchedule {
            events: vec![FaultEvent::TaskCrash { at: 0.8 }],
        };
        let ckpt = r.run_job(&dag, &all, &schedule).unwrap();
        let bare = r.run_job(&dag, &HashSet::new(), &schedule).unwrap();
        assert_eq!(ckpt.attempts, 2);
        assert_eq!(ckpt.recomputed_checkpointed, 0);
        assert!(ckpt.total_latency <= bare.total_latency + 1e-9);
    }

    #[test]
    fn out_of_range_machine_is_clamped_not_fatal() {
        let dag = dag();
        let r = runner();
        let schedule = FaultSchedule {
            events: vec![FaultEvent::MachineLoss {
                machine: usize::MAX,
                at: 2.5,
            }],
        };
        let outcome = r.run_job(&dag, &HashSet::new(), &schedule).unwrap();
        assert_eq!(outcome.attempts, 2);
    }

    #[test]
    fn temp_exhaustion_fires_only_past_capacity() {
        let dag = dag();
        let schedule = FaultSchedule {
            events: vec![FaultEvent::TempExhaustion { at: 0.9 }],
        };
        let roomy = ChaosRunner::new(ClusterConfig::default(), f64::INFINITY).unwrap();
        assert_eq!(
            roomy
                .run_job(&dag, &HashSet::new(), &schedule)
                .unwrap()
                .injected,
            0
        );
        let cramped = ChaosRunner::new(ClusterConfig::default(), 1.0).unwrap();
        assert_eq!(
            cramped
                .run_job(&dag, &HashSet::new(), &schedule)
                .unwrap()
                .injected,
            1
        );
    }
}
