//! Execution-fault schedules: what goes wrong during one job, and when.

use crate::seed::{channel_rng, Channel};
use crate::FaultConfig;
use rand::Rng;
use serde::Serialize;

/// One injected execution fault. `at` is the fraction of the baseline run
/// (stage-completion fraction for task crashes, latency fraction for
/// machine loss) at which the fault strikes; always in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum FaultEvent {
    /// A task crashes, killing the job; it restarts with surviving
    /// checkpoints after `at` of the stages (by finish order) completed.
    TaskCrash {
        /// Completed-stage fraction at the moment of the crash.
        at: f64,
    },
    /// Machine `machine` dies at `at` of the baseline latency, losing every
    /// non-checkpointed temp output it holds.
    MachineLoss {
        /// Index of the machine that dies.
        machine: usize,
        /// Latency fraction at the moment of loss.
        at: f64,
    },
    /// Local temp storage fills up: if the run's hotspot peak exceeds the
    /// configured capacity, the hotspot machine is lost at `at`.
    TempExhaustion {
        /// Latency fraction at the moment of exhaustion.
        at: f64,
    },
}

impl FaultEvent {
    /// The fraction of the baseline run at which the fault strikes.
    pub fn strike_fraction(&self) -> f64 {
        match *self {
            FaultEvent::TaskCrash { at }
            | FaultEvent::MachineLoss { at, .. }
            | FaultEvent::TempExhaustion { at } => at,
        }
    }
}

/// The ordered fault schedule for one job.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultSchedule {
    /// Events sorted by their strike fraction.
    pub events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule (no faults).
    pub fn none() -> Self {
        Self { events: Vec::new() }
    }

    /// Expands a derived seed into a schedule under `config`, for a cluster
    /// of `machines` machines. Deterministic in `(seed, config, machines)`.
    pub fn generate(seed: u64, config: &FaultConfig, machines: usize) -> Self {
        if !config.enabled {
            return Self::none();
        }
        let mut rng = channel_rng(seed, Channel::Execution);
        let mut events = Vec::new();
        for _ in 0..config.max_task_crashes {
            if rng.gen_bool(config.task_crash_rate) {
                events.push(FaultEvent::TaskCrash {
                    at: rng.gen_range(0.05..0.95),
                });
            }
        }
        if machines > 0 && rng.gen_bool(config.machine_loss_rate) {
            events.push(FaultEvent::MachineLoss {
                machine: rng.gen_range(0..machines),
                at: rng.gen_range(0.05..0.95),
            });
        }
        if config.temp_capacity_bytes.is_finite() {
            events.push(FaultEvent::TempExhaustion {
                at: rng.gen_range(0.05..0.95),
            });
        }
        events.sort_by(|a, b| {
            a.strike_fraction()
                .partial_cmp(&b.strike_fraction())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Self { events }
    }

    /// Whether the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = FaultConfig::standard();
        assert_eq!(
            FaultSchedule::generate(5, &cfg, 16),
            FaultSchedule::generate(5, &cfg, 16)
        );
    }

    #[test]
    fn events_are_sorted_and_bounded() {
        let cfg = FaultConfig {
            machine_loss_rate: 1.0,
            task_crash_rate: 1.0,
            ..FaultConfig::standard()
        };
        for seed in 0..64 {
            let s = FaultSchedule::generate(seed, &cfg, 16);
            assert!(!s.is_empty());
            let mut prev = 0.0;
            for e in &s.events {
                let at = e.strike_fraction();
                assert!((0.0..=1.0).contains(&at));
                assert!(at >= prev);
                prev = at;
                if let FaultEvent::MachineLoss { machine, .. } = e {
                    assert!(*machine < 16);
                }
            }
        }
    }

    #[test]
    fn disabled_and_zero_rates_inject_nothing() {
        assert!(FaultSchedule::generate(1, &FaultConfig::disabled(), 16).is_empty());
        let silent = FaultConfig {
            enabled: true,
            task_crash_rate: 0.0,
            machine_loss_rate: 0.0,
            temp_capacity_bytes: f64::INFINITY,
            ..FaultConfig::standard()
        };
        assert!(FaultSchedule::generate(1, &silent, 16).is_empty());
    }

    #[test]
    fn temp_exhaustion_emitted_when_capacity_finite() {
        let cfg = FaultConfig {
            temp_capacity_bytes: 1.0,
            ..FaultConfig::standard()
        };
        let s = FaultSchedule::generate(3, &cfg, 16);
        assert!(s
            .events
            .iter()
            .any(|e| matches!(e, FaultEvent::TempExhaustion { .. })));
    }
}
